"""Integration tests: the committed ``docs/`` tree is current.

The docs counterpart of ``tests/integration/test_figures_check.py``: the
generated pages committed under ``docs/`` must re-render byte-identically
from the live code (the CI ``docs-drift`` job runs exactly this), and the
hand-written pages the README links to must actually exist.
"""

import re
from pathlib import Path

from repro import cli
from repro.docs import GENERATED_DOCS, GENERATED_MARKER, check_docs

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"


class TestCommittedDocsAreCurrent:
    def test_generated_pages_reproduce_byte_identically(self):
        outcomes = check_docs(DOCS_DIR, root=REPO_ROOT)
        drifted = [o for o in outcomes if not o.ok]
        assert not drifted, (
            "docs drift — regenerate with 'repro docs build': "
            + ", ".join(f"{o.name} ({o.status})" for o in drifted)
        )

    def test_committed_pages_carry_the_generated_marker(self):
        for name in GENERATED_DOCS:
            text = (DOCS_DIR / name).read_text(encoding="utf-8")
            assert GENERATED_MARKER in text, name

    def test_cli_check_exits_zero_against_committed_docs(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = cli.main(["docs", "check"])
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out
        assert "are current" in captured.out


class TestHandWrittenPages:
    def test_architecture_page_exists_and_maps_subsystems(self):
        text = (DOCS_DIR / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for anchor in (
            "repro.exec",
            "ExecutionBackend",
            "repro.batch",
            "repro.cosim",
            "where does my code go",
        ):
            assert anchor.lower() in text.lower(), anchor

    def test_readme_links_resolve_to_committed_pages(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        linked = re.findall(r"\]\((docs/[A-Za-z0-9_./-]+\.md)\)", readme)
        assert linked, "README should link into docs/"
        for rel in linked:
            assert (REPO_ROOT / rel).is_file(), rel

    def test_docs_internal_links_resolve(self):
        for page in sorted(DOCS_DIR.glob("*.md")):
            text = page.read_text(encoding="utf-8")
            for rel in re.findall(r"\]\(((?!http|#)[A-Za-z0-9_./-]+\.md)\)", text):
                assert (DOCS_DIR / rel).is_file(), f"{page.name} -> {rel}"
