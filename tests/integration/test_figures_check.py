"""Integration tests: figure byte-identity gate and the profile diff CLI.

These exercise the two acceptance criteria of the figures subsystem end to
end: every committed ``results/`` text artifact must regenerate
byte-identically through the registry, and ``repro profile --diff`` over
two snapshots of the same serial workload must report zero work delta.
"""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.figures import FIGURES, FigureInputs, check_figures

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS_DIR = REPO_ROOT / "results"


class TestByteIdentity:
    def test_every_committed_artifact_reproduces_byte_identically(self):
        outcomes = check_figures(
            FigureInputs(
                quick=False,
                manifest_path=RESULTS_DIR / "manifests" / "baseline.json",
                history_dir=RESULTS_DIR / "manifests",
            ),
            results_dir=RESULTS_DIR,
        )
        gated = [spec for spec in FIGURES.values() if spec.artifact]
        assert len(outcomes) == len(gated)
        drifted = [outcome for outcome in outcomes if not outcome.ok]
        assert not drifted, (
            "artifact drift — regenerate with 'repro figures build --all': "
            + ", ".join(f"{outcome.artifact} ({outcome.status})" for outcome in drifted)
        )

    def test_cli_check_exits_zero_against_committed_results(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = cli.main(["figures", "check"])
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out
        assert "reproduce byte-identically" in captured.out


class TestCliBuild:
    def test_build_all_quick_writes_artifact_triples(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        out = tmp_path / "figures"
        exit_code = cli.main(
            ["figures", "build", "--all", "--quick", "--out", str(out)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out
        # Snapshot-sourced figures are skipped without --snapshot inputs.
        assert "skipped" in captured.out
        for name in ("figure_4a", "table_I", "fleet_dashboard", "run_history"):
            assert (out / f"{name}.txt").is_file()
            assert (out / f"{name}.csv").is_file()
            spec = json.loads((out / f"{name}.vl.json").read_text())
            assert spec["data"]["url"] == f"{name}.csv"

    def test_list_names_every_figure(self, capsys):
        assert cli.main(["figures", "list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out


class TestProfileDiff:
    @pytest.fixture(scope="class")
    def snapshots(self, tmp_path_factory):
        """Two telemetry snapshots of the same serial batch workload."""
        directory = tmp_path_factory.mktemp("snapshots")
        paths = [directory / "a.json", directory / "b.json"]
        for path in paths:
            assert cli.main(["profile", "batch", "--json", str(path)]) == 0
        return paths

    def test_same_run_reports_zero_work_delta(self, snapshots, capsys):
        capsys.readouterr()
        exit_code = cli.main(
            ["profile", "--diff", str(snapshots[0]), str(snapshots[1])]
        )
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "verdict: identical work (max counter delta 0)" in out

    def test_diverged_snapshot_exits_nonzero(self, snapshots, tmp_path, capsys):
        payload = json.loads(snapshots[0].read_text())
        # A counter present on only one side counts at full magnitude.
        payload["counters"]["extra_work"] = 7.0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(payload))
        capsys.readouterr()
        exit_code = cli.main(["profile", "--diff", str(snapshots[0]), str(tampered)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "WORK DIVERGED" in out

    def test_profile_without_workload_or_diff_is_an_error(self, capsys):
        exit_code = cli.main(["profile"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "workload is required" in captured.err
