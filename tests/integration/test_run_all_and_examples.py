"""Integration tests: the run-all harness and the example scripts."""

import runpy
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"


class TestRunAll:
    def test_quick_run_writes_experiments_markdown(self, tmp_path, monkeypatch):
        from repro.evaluation import run_all

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        output = tmp_path / "EXPERIMENTS.md"
        exit_code = run_all.main(["--quick", "--output", str(output)])
        assert exit_code == 0
        content = output.read_text()
        assert "Fig. 4a" in content
        assert "Fig. 5b" in content
        assert (tmp_path / "results" / "figure_4a.txt").exists()
        assert (tmp_path / "results" / "table_I.txt").exists()


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_example_scripts_run(script, tmp_path, monkeypatch, capsys):
    """Every example script must run end-to-end and print something useful."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_EXAMPLE_QUICK", "1")
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    captured = capsys.readouterr()
    assert len(captured.out.strip()) > 0


def test_examples_directory_has_at_least_three_scripts():
    scripts = list(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
