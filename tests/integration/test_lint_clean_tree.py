"""Integration test: the committed tree passes its own lint gate.

This is the acceptance criterion of the analysis subsystem — ``repro lint``
over the real ``src``/``tests``/``benchmarks``/``examples`` trees (and the
bundled scenario TOMLs) must exit 0 with the committed, empty baseline.
If this test fails, either fix the violation or suppress it with an inline
``# repro: noqa[RULE]`` carrying a reason; growing ``lint-baseline.json``
is the last resort.
"""

import json
from pathlib import Path

from repro.analysis import Baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCleanTree:
    def test_repo_lints_clean_with_every_rule(self):
        report = run_lint(
            root=REPO_ROOT, baseline_path=REPO_ROOT / "lint-baseline.json"
        )
        formatted = "\n".join(d.format() for d in report.diagnostics)
        assert report.exit_code == 0, f"repro lint found violations:\n{formatted}"
        assert report.files_checked > 200
        assert report.rules_run == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
        ]

    def test_committed_baseline_is_empty_and_not_stale(self):
        path = REPO_ROOT / "lint-baseline.json"
        payload = json.loads(path.read_text())
        assert payload == {"version": 1, "entries": []}
        assert len(Baseline.load(path)) == 0
