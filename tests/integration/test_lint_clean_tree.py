"""Integration test: the committed tree passes its own lint gate.

This is the acceptance criterion of the analysis subsystem — ``repro lint``
over the real ``src``/``tests``/``benchmarks``/``examples`` trees (and the
bundled scenario TOMLs) must exit 0 with the committed baseline.  The
baseline is a ratchet, not a dumping ground: every entry is a REP007
docstring gap grandfathered when the rule was introduced, and each carries
a real justification.  If this test fails, either fix the violation or
suppress it with an inline ``# repro: noqa[RULE]`` carrying a reason;
growing ``lint-baseline.json`` is the last resort.
"""

import json
from pathlib import Path

from repro.analysis import Baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCleanTree:
    def test_repo_lints_clean_with_every_rule(self):
        report = run_lint(
            root=REPO_ROOT, baseline_path=REPO_ROOT / "lint-baseline.json"
        )
        formatted = "\n".join(d.format() for d in report.diagnostics)
        assert report.exit_code == 0, f"repro lint found violations:\n{formatted}"
        assert report.files_checked > 200
        assert report.rules_run == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
        ]

    def test_committed_baseline_is_a_justified_rep007_ratchet(self):
        """Baseline entries are grandfathered REP007 gaps only, all justified."""
        path = REPO_ROOT / "lint-baseline.json"
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        for entry in payload["entries"]:
            assert entry["rule"] == "REP007", (
                "only REP007 docstring gaps may be grandfathered; fix "
                f"{entry['rule']} findings at the source instead"
            )
            justification = entry.get("justification", "")
            assert justification and "TODO" not in justification, (
                f"baseline entry for {entry['path']} needs a real justification"
            )
        assert len(Baseline.load(path)) == len(payload["entries"])

    def test_baseline_is_not_stale(self):
        """Every baseline entry still matches a live finding (ratchet down)."""
        report = run_lint(root=REPO_ROOT, rules=["REP007"])
        live = {(d.rule, d.path, d.message) for d in report.diagnostics}
        payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        for entry in payload["entries"]:
            key = (entry["rule"], entry["path"], entry["message"])
            assert key in live, (
                f"stale baseline entry (finding fixed - delete it): {key}"
            )
