"""Integration tests: quick end-to-end reproduction of the paper's headline claims.

These tests run the full chain (synthetic calibration -> analytical model ->
simulated testbed -> comparison) on the reduced sweep and assert the paper's
qualitative claims: the proposed model tracks the ground truth within a few
percent, the AoI model matches the emulation, and the proposed model is more
accurate than both FACT and LEAF.
"""

import pytest

from repro.config.application import ExecutionMode
from repro.evaluation.figures import (
    FigureContext,
    figure_4a,
    figure_4b,
    figure_4c,
    figure_4d,
    figure_4e,
    figure_4f,
    figure_5a,
    figure_5b,
)


@pytest.fixture(scope="module")
def context():
    return FigureContext(quick=True)


class TestLatencyEnergyValidation:
    def test_fig4a_local_latency_error_small(self, context):
        figure = figure_4a(context=context)
        assert figure.mean_error_percent < 8.0

    def test_fig4b_remote_latency_error_small(self, context):
        figure = figure_4b(context=context)
        assert figure.mean_error_percent < 8.0

    def test_fig4c_local_energy_error_small(self, context):
        figure = figure_4c(context=context)
        assert figure.mean_error_percent < 10.0

    def test_fig4d_remote_energy_error_small(self, context):
        figure = figure_4d(context=context)
        assert figure.mean_error_percent < 10.0

    def test_ground_truth_curves_ordered_by_cpu_frequency(self, context):
        comparison = context.comparison("latency", ExecutionMode.LOCAL)
        slowest = comparison.series[0]
        fastest = comparison.series[-1]
        # Higher CPU clock -> lower latency at every frame size.
        for slow_value, fast_value in zip(slowest.ground_truth, fastest.ground_truth):
            assert fast_value < slow_value

    def test_remote_latency_exceeds_local_latency(self, context):
        local = context.comparison("latency", ExecutionMode.LOCAL)
        remote = context.comparison("latency", ExecutionMode.REMOTE)
        # With a lightweight local CNN and an uncongested edge, the remote path
        # pays for encoding + transmission, so it is slower on this testbed.
        assert remote.series[0].ground_truth[0] > local.series[0].ground_truth[0]


class TestAoIValidation:
    def test_fig4e_model_tracks_emulation(self):
        figure = figure_4e()
        assert figure.mean_error_percent() < 15.0

    def test_fig4f_matches_paper_staircase(self):
        figure = figure_4f()
        staircase = figure.analytical[0].aoi_ms[:3]
        assert staircase == pytest.approx([10.0, 15.0, 20.0], abs=1.5)


class TestBaselineComparison:
    def test_fig5a_proposed_wins_latency(self, context):
        figure = figure_5a(context=context)
        assert figure.gain_vs_fact > 0.0
        assert figure.gain_vs_leaf > 0.0
        assert figure.mean_accuracy("Proposed") > 90.0

    def test_fig5b_proposed_wins_energy(self, context):
        figure = figure_5b(context=context)
        assert figure.gain_vs_fact > 0.0
        assert figure.gain_vs_leaf > 0.0
