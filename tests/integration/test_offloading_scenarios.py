"""Integration tests: offloading decisions and session-length scenarios."""

import dataclasses

import pytest

from repro.config.application import ExecutionMode, InferenceConfig
from repro.config.network import NetworkConfig
from repro.core.framework import XRPerformanceModel
from repro.devices.battery import Battery
from repro.devices.catalog import get_device


class TestOffloadingTradeoffs:
    def test_slow_network_pushes_inference_local(self):
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
        congested = NetworkConfig(throughput_mbps=2.0)
        fast = NetworkConfig(throughput_mbps=500.0)
        slow_decision = model.best_placement(objective="latency", network=congested)
        fast_decision = model.best_placement(objective="latency", network=fast)
        # With a 2 Mbps uplink, transmitting frames costs more than the local CNN.
        congested_remote = model.analyze_latency(
            model.app.with_mode(ExecutionMode.REMOTE), congested
        )
        congested_local = model.analyze_latency(model.app, congested)
        assert congested_local.total_ms < congested_remote.total_ms
        assert slow_decision.total_latency_ms <= fast_decision.total_latency_ms + 1e6

    def test_split_across_two_edges_beats_single_edge_for_remote_inference(self):
        model = XRPerformanceModel(device="XR3", edge="EDGE-TX2")
        app = model.app
        single = dataclasses.replace(
            app, inference=InferenceConfig(mode=ExecutionMode.REMOTE)
        )
        split = dataclasses.replace(
            app,
            inference=InferenceConfig(
                mode=ExecutionMode.REMOTE, omega_client=0.0, edge_shares=(0.5, 0.5)
            ),
        )
        single_latency = model.latency_model.remote_inference_ms(single)
        split_latency = model.latency_model.remote_inference_ms(split)
        assert split_latency < single_latency

    def test_weaker_device_benefits_more_from_offloading(self):
        strong = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
        weak = XRPerformanceModel(device="XR5", edge="EDGE-AGX")
        # Compare the local-inference segment cost across devices: the paper's
        # resource model is device-agnostic, but the memory subsystem differs.
        strong_local = strong.analyze_latency().segment_ms
        weak_local = weak.analyze_latency().segment_ms
        from repro.core.segments import Segment

        assert weak_local(Segment.LOCAL_INFERENCE) >= strong_local(Segment.LOCAL_INFERENCE)


class TestSessionLength:
    def test_battery_supports_fewer_frames_at_higher_clock(self):
        model = XRPerformanceModel(device="XR6", edge="EDGE-AGX")
        slow = model.analyze_energy(model.app.with_cpu_freq(2.0))
        fast = model.analyze_energy(model.app.with_cpu_freq(2.84))
        battery = Battery.from_spec(get_device("XR6"))
        frames_slow = battery.frames_remaining(slow.total_mj)
        frames_fast = battery.frames_remaining(fast.total_mj)
        assert frames_fast < frames_slow

    def test_quest2_session_outlasts_minutes(self):
        model = XRPerformanceModel(device="XR6", edge="EDGE-AGX")
        report = model.analyze(include_aoi=False)
        battery = Battery.from_spec(get_device("XR6"))
        runtime_s = battery.runtime_remaining_s(
            report.total_energy_mj, report.total_latency_ms
        )
        # A Quest 2 battery holds ~50 kJ; at a few J per ~0.5 s frame the
        # session should last between tens of minutes and several hours.
        assert 600.0 < runtime_s < 6 * 3600.0


class TestCrossDeviceConsistency:
    @pytest.mark.parametrize("device", ["XR1", "XR2", "XR3", "XR4", "XR5", "XR6"])
    def test_every_catalog_device_analyzable(self, device):
        model = XRPerformanceModel(device=device, edge="EDGE-AGX")
        report = model.analyze(include_aoi=False)
        assert report.total_latency_ms > 0.0
        assert report.total_energy_mj > 0.0

    def test_low_memory_bandwidth_device_pays_more_for_memory(self):
        fast_mem = XRPerformanceModel(device="XR1")  # LPDDR5, 44 GB/s
        slow_mem = XRPerformanceModel(device="XR3")  # LPDDR4X, 14.9 GB/s
        assert (
            slow_mem.analyze_latency().total_ms >= fast_mem.analyze_latency().total_ms
        )
