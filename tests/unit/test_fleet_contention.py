"""Unit tests for the shared-channel contention model."""

import pytest

from repro.config.network import NetworkConfig
from repro.exceptions import ModelDomainError
from repro.fleet.contention import ContentionModel


@pytest.fixture
def contention(network: NetworkConfig) -> ContentionModel:
    return ContentionModel(network=network)


class TestSingleStation:
    def test_single_station_matches_configured_throughput(self, contention, network):
        assert contention.per_user_throughput_mbps(1) == network.throughput_mbps

    def test_single_station_network_is_unchanged(self, contention, network):
        assert contention.network_for(1) is network

    def test_channel_efficiency_is_one_at_one_station(self, contention):
        assert contention.channel_efficiency(1) == pytest.approx(1.0)


class TestDegradation:
    def test_per_user_rate_non_increasing(self, contention):
        rates = [contention.per_user_throughput_mbps(n) for n in range(1, 65)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_aggregate_rate_non_increasing(self, contention):
        totals = [contention.aggregate_throughput_mbps(n) for n in range(1, 65)]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_per_user_share_below_fair_split(self, contention, network):
        # Contention overhead makes the share strictly worse than r_w / N.
        assert contention.per_user_throughput_mbps(10) < network.throughput_mbps / 10

    def test_ideal_channel_is_a_fair_split(self, network):
        ideal = ContentionModel(network=network, collision_overhead=0.0)
        assert ideal.per_user_throughput_mbps(8) == pytest.approx(
            network.throughput_mbps / 8
        )

    def test_network_for_carries_degraded_throughput(self, contention):
        degraded = contention.network_for(16)
        assert degraded.throughput_mbps == pytest.approx(
            contention.per_user_throughput_mbps(16)
        )
        # Everything else about the topology is preserved.
        assert degraded.sensors == contention.network.sensors


class TestValidation:
    def test_zero_stations_rejected(self, contention):
        with pytest.raises(ModelDomainError):
            contention.per_user_throughput_mbps(0)

    def test_negative_overhead_rejected(self, network):
        with pytest.raises(ModelDomainError):
            ContentionModel(network=network, collision_overhead=-0.1)


class TestSaturation:
    def test_saturation_station_count_is_boundary(self, contention):
        floor = 5.0
        n = contention.saturation_stations(floor)
        assert contention.per_user_throughput_mbps(n) >= floor
        assert contention.per_user_throughput_mbps(n + 1) < floor

    def test_unreachable_floor_gives_zero(self, contention, network):
        assert contention.saturation_stations(network.throughput_mbps * 2) == 0

    def test_non_positive_floor_rejected(self, contention):
        with pytest.raises(ModelDomainError):
            contention.saturation_stations(0.0)
