"""Unit tests for the manifest and bench regression gates."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    RunManifest,
    ScenarioResult,
    compare_bench,
    compare_bench_files,
    compare_manifests,
    metrics_close,
)


def _manifest(metrics, tolerances=None, status="ok", spec_hash="h", name="scn"):
    return RunManifest(
        suite="s",
        spec_hash=spec_hash,
        scenarios=(
            ScenarioResult(
                name=name,
                kind="analyze",
                status=status,
                metrics=dict(metrics),
                tolerances=dict(tolerances or {}),
            ),
        ),
    )


class TestMetricsClose:
    def test_relative_tolerance_boundary_is_inclusive(self):
        # |c - b| == rtol * |b| exactly (plus the tiny atol slack) passes...
        assert metrics_close(101.0, 100.0, rtol=0.01)
        # ...and one part in 1e9 beyond it fails.
        assert not metrics_close(101.0000001, 100.0, rtol=0.01)

    def test_zero_baseline_needs_absolute_agreement(self):
        assert metrics_close(0.0, 0.0, rtol=1e-6)
        assert not metrics_close(1e-3, 0.0, rtol=1e-6)

    def test_nan_pairs(self):
        assert metrics_close(math.nan, math.nan, rtol=0.0)
        assert not metrics_close(math.nan, 1.0, rtol=1e9)
        assert not metrics_close(1.0, math.nan, rtol=1e9)

    def test_inf_pairs(self):
        assert metrics_close(math.inf, math.inf, rtol=0.0)
        assert not metrics_close(math.inf, -math.inf, rtol=1e9)
        assert not metrics_close(math.inf, 1.0, rtol=1e9)


class TestCompareManifests:
    def test_identical_manifests_pass(self):
        current = _manifest({"latency": 100.0, "count": 3})
        report = compare_manifests(current, _manifest({"latency": 100.0, "count": 3}))
        assert report.passed
        assert report.n_compared == 2
        assert "PASS" in report.summary()

    def test_drift_beyond_tolerance_fails_with_named_metric(self):
        report = compare_manifests(
            _manifest({"latency": 120.0}), _manifest({"latency": 100.0})
        )
        assert not report.passed
        (drift,) = report.drifts
        assert drift.scenario == "scn"
        assert drift.metric == "latency"
        assert drift.reason == "drift"
        assert "scn/latency" in report.summary()

    def test_tolerance_boundary_passes_just_beyond_fails(self):
        baseline = _manifest({"latency": 100.0}, tolerances={"latency": 0.05})
        assert compare_manifests(_manifest({"latency": 105.0}), baseline).passed
        assert not compare_manifests(_manifest({"latency": 105.001}), baseline).passed

    def test_baseline_tolerance_beats_current_and_default(self):
        baseline = _manifest({"latency": 100.0}, tolerances={"latency": 0.5})
        current = _manifest({"latency": 130.0}, tolerances={"latency": 1e-9})
        assert compare_manifests(current, baseline).passed

    def test_missing_metric_fails(self):
        report = compare_manifests(
            _manifest({"other": 1.0}), _manifest({"latency": 100.0, "other": 1.0})
        )
        assert not report.passed
        (drift,) = report.drifts
        assert drift.reason == "missing-metric"
        assert "latency" in report.summary()

    def test_missing_scenario_fails(self):
        current = _manifest({"latency": 100.0}, name="present")
        baseline = _manifest({"latency": 100.0}, name="gone")
        report = compare_manifests(current, baseline, ignore_spec_hash=True)
        assert not report.passed
        assert report.drifts[0].reason == "missing-scenario"

    def test_nan_baseline_matches_only_nan(self):
        baseline = _manifest({"p95": math.nan})
        assert compare_manifests(_manifest({"p95": math.nan}), baseline).passed
        report = compare_manifests(_manifest({"p95": 12.0}), baseline)
        assert not report.passed
        assert report.drifts[0].reason == "drift"

    def test_none_baseline_requires_none(self):
        baseline = _manifest({"aoi": None})
        assert compare_manifests(_manifest({"aoi": None}), baseline).passed
        assert not compare_manifests(_manifest({"aoi": 3.0}), baseline).passed

    def test_spec_hash_mismatch_fails_unless_ignored(self):
        current = _manifest({"latency": 100.0}, spec_hash="new")
        baseline = _manifest({"latency": 100.0}, spec_hash="old")
        report = compare_manifests(current, baseline)
        assert not report.passed
        assert report.drifts[0].reason == "spec-hash"
        assert "regenerate the baseline" in report.summary()
        assert compare_manifests(current, baseline, ignore_spec_hash=True).passed

    def test_error_status_fails_even_with_matching_metrics(self):
        current = _manifest({"latency": 100.0}, status="error")
        report = compare_manifests(current, _manifest({"latency": 100.0}))
        assert not report.passed
        assert report.drifts[0].reason == "status"

    def test_error_baseline_cannot_silently_gate_nothing(self):
        # A baseline regenerated from a failed run (empty metrics) must be
        # rejected, not quietly compared against zero metrics.
        baseline = _manifest({}, status="error")
        report = compare_manifests(_manifest({"latency": 100.0}), baseline)
        assert not report.passed
        assert report.drifts[0].reason == "baseline-status"
        assert "regenerate the baseline" in report.summary()

    def test_new_metrics_are_informational_not_drift(self):
        current = _manifest({"latency": 100.0, "brand_new": 7.0})
        report = compare_manifests(current, _manifest({"latency": 100.0}))
        assert report.passed
        assert report.n_new_metrics == 1


def _bench_payload(points_per_s=1000.0, p95=275.0, fleet=True):
    return {
        "grids": [
            {
                "name": "grid_1000",
                "points": 1000,
                "batch_points_per_s": points_per_s,
                "speedup": 50.0,
            }
        ],
        "fleet": (
            {"name": "fleet_10", "users": 10, "users_per_s": 5000.0, "p95_latency_ms": p95}
            if fleet
            else None
        ),
        "adaptive": None,
        "cosim": None,
    }


class TestCompareBench:
    def test_identical_payloads_pass(self):
        report = compare_bench(_bench_payload(), _bench_payload())
        assert report.passed
        assert report.n_compared > 0

    def test_faster_is_never_drift(self):
        report = compare_bench(_bench_payload(points_per_s=9999.0), _bench_payload())
        assert report.passed

    def test_slower_within_tolerance_passes(self):
        report = compare_bench(
            _bench_payload(points_per_s=500.0), _bench_payload(), tolerance=0.6
        )
        assert report.passed

    def test_slower_beyond_tolerance_fails(self):
        report = compare_bench(
            _bench_payload(points_per_s=300.0), _bench_payload(), tolerance=0.6
        )
        assert not report.passed
        (drift,) = report.drifts
        assert drift.reason == "slower"
        assert drift.metric == "batch_points_per_s"
        assert "grid_1000/batch_points_per_s" in report.summary()

    def test_correctness_metric_is_two_sided_and_tight(self):
        report = compare_bench(_bench_payload(p95=275.1), _bench_payload(p95=275.0))
        assert not report.passed
        assert report.drifts[0].metric == "p95_latency_ms"
        # ... even when the current run is "better" (lower latency).
        report = compare_bench(_bench_payload(p95=274.9), _bench_payload(p95=275.0))
        assert not report.passed

    def test_missing_case_fails(self):
        report = compare_bench(_bench_payload(fleet=False), _bench_payload())
        assert not report.passed
        assert report.drifts[0].reason == "missing-scenario"

    def test_compare_bench_files(self, tmp_path):
        import json

        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_bench_payload()))
        (report,) = compare_bench_files(_bench_payload(), [str(path)])
        assert report.passed
        assert report.baseline_label == "BENCH_x.json"
        with pytest.raises(ConfigurationError, match="does not exist"):
            compare_bench_files(_bench_payload(), [str(tmp_path / "nope.json")])
