"""Unit tests for the hidden testbed response surfaces."""

import pytest

from repro.exceptions import ModelDomainError
from repro.measurement.truth import DEVICE_FACTORS, SEGMENT_POWER_FACTORS


class TestComputeCapability:
    def test_increases_with_cpu_clock(self, truth):
        slow = truth.compute_capability(1.0, 0.8, 1.0)
        fast = truth.compute_capability(3.0, 0.8, 1.0)
        assert fast > slow

    def test_increases_with_gpu_clock(self, truth):
        slow = truth.compute_capability(2.0, 0.4, 0.0)
        fast = truth.compute_capability(2.0, 1.2, 0.0)
        assert fast > slow

    def test_share_blends_cpu_and_gpu(self, truth):
        cpu_only = truth.compute_capability(2.0, 0.8, 1.0)
        gpu_only = truth.compute_capability(2.0, 0.8, 0.0)
        blended = truth.compute_capability(2.0, 0.8, 0.5)
        assert min(cpu_only, gpu_only) < blended < max(cpu_only, gpu_only)

    def test_device_factor_applied(self, truth):
        nominal = truth.compute_capability(2.0, 0.8, 0.8)
        xr1 = truth.compute_capability(2.0, 0.8, 0.8, device_name="XR1")
        assert xr1 == pytest.approx(nominal * DEVICE_FACTORS["XR1"][0])

    def test_unknown_device_uses_nominal_surface(self, truth):
        assert truth.compute_capability(2.0, 0.8, 0.8, device_name="XR99") == pytest.approx(
            truth.compute_capability(2.0, 0.8, 0.8)
        )

    def test_invalid_share_rejected(self, truth):
        with pytest.raises(ModelDomainError):
            truth.compute_capability(2.0, 0.8, 1.5)

    def test_edge_scale_matches_paper(self, truth):
        assert truth.edge_compute_capability(2.0) == pytest.approx(2.0 * 11.76)


class TestPower:
    def test_power_increases_with_clock(self, truth):
        assert truth.mean_power_w(3.0, 0.8, 1.0) > truth.mean_power_w(1.0, 0.8, 1.0)

    def test_power_positive_over_sweep_domain(self, truth):
        for fc in (0.8, 1.0, 2.0, 3.2):
            for fg in (0.3, 0.8, 1.3):
                for share in (0.0, 0.5, 1.0):
                    assert truth.mean_power_w(fc, fg, share) > 0.0

    def test_segment_power_uses_factors(self, truth):
        mean = truth.mean_power_w(2.0, 0.8, 0.8)
        encoding = truth.segment_power_w("encoding", 2.0, 0.8, 0.8)
        inference = truth.segment_power_w("local_inference", 2.0, 0.8, 0.8)
        assert encoding == pytest.approx(SEGMENT_POWER_FACTORS["encoding"] * mean)
        assert inference > encoding

    def test_unknown_segment_rejected(self, truth):
        with pytest.raises(ModelDomainError):
            truth.segment_power_w("warp-drive", 2.0, 0.8, 0.8)


class TestEncodingAndDecoding:
    def test_encoding_latency_decreases_with_compute(self, truth):
        slow = truth.encoding_latency_ms(2.0, 30, 2, 10.0, 500.0, 30.0, 28)
        fast = truth.encoding_latency_ms(4.0, 30, 2, 10.0, 500.0, 30.0, 28)
        assert fast < slow

    def test_encoding_increases_with_frame_size(self, truth):
        small = truth.encoding_numerator(30, 2, 10.0, 300.0, 30.0, 28)
        large = truth.encoding_numerator(30, 2, 10.0, 700.0, 30.0, 28)
        assert large > small

    def test_decoding_is_discounted_encoding(self, truth):
        encoding = 300.0
        client, edge = 3.0, 3.0 * 11.76
        decode = truth.decoding_latency_ms(encoding, client, edge)
        assert decode == pytest.approx(encoding * truth.decode_discount / 11.76)

    def test_cnn_complexity_positive_for_all_zoo_models(self, truth):
        from repro.cnn.zoo import list_cnns

        for model in list_cnns():
            assert truth.cnn_complexity(model.depth, model.size_mb, model.depth_scale) > 0.0

    def test_invalid_compute_rejected(self, truth):
        with pytest.raises(ModelDomainError):
            truth.encoding_latency_ms(0.0, 30, 2, 10.0, 500.0, 30.0, 28)


class TestDeviceFactors:
    def test_every_catalog_device_has_factors(self):
        from repro.devices.catalog import DEVICE_CATALOG

        assert set(DEVICE_FACTORS) == set(DEVICE_CATALOG)

    def test_factors_are_moderate_perturbations(self):
        for compute, power in DEVICE_FACTORS.values():
            assert 0.8 < compute < 1.2
            assert 0.8 < power < 1.2
