"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_device_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--device", "PIXEL9"])


class TestCommands:
    def test_analyze_prints_report(self, capsys):
        assert main(["analyze", "--device", "XR2", "--mode", "remote"]) == 0
        output = capsys.readouterr().out
        assert "Latency (ms):" in output
        assert "Energy (mJ):" in output

    def test_sweep_prints_all_points(self, capsys):
        assert main(["sweep", "--device", "XR1"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") >= 16  # 15 sweep rows + header

    def test_offload_ranks_three_placements(self, capsys):
        assert main(["offload", "--device", "XR6", "--objective", "energy"]) == 0
        output = capsys.readouterr().out
        assert "1." in output and "3." in output
        assert "local" in output and "remote" in output

    def test_aoi_reports_each_frequency(self, capsys):
        assert main(["aoi", "--frequencies", "200", "100", "50"]) == 0
        output = capsys.readouterr().out
        for frequency in ("200", "100", "50"):
            assert frequency in output

    def test_session_analytical_mode(self, capsys):
        assert main(["session", "--device", "XR6", "--frames", "20", "--analytical"]) == 0
        assert "battery" in capsys.readouterr().out

    def test_bench_prints_throughput_summary(self, capsys):
        assert main(
            [
                "bench",
                "--points", "60",
                "--fleet-users", "50",
                "--adaptive-epochs", "0",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "fig4_grid" in output
        assert "speedup" in output
        assert "Fleet analysis: 50 users" in output

    def test_bench_includes_adaptive_case(self, capsys):
        assert main(
            [
                "bench",
                "--points", "0",
                "--fleet-users", "0",
                "--adaptive-epochs", "40",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "Adaptive runtime: 40 epochs" in output
        assert "greedy full-grid sweep" in output

    def test_bench_writes_json_baseline(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        assert main(
            [
                "bench",
                "--points", "0",
                "--fleet-users", "0",
                "--adaptive-epochs", "30",
                "--json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["grids"][0]["name"] == "fig4_grid"
        assert payload["grids"][0]["points"] == 15
        assert payload["fleet"] is None
        assert payload["adaptive"]["epochs"] == 30
        assert payload["adaptive"]["deadline_miss_rate"] == 0.0
        assert "wrote" in capsys.readouterr().out

    def test_cosim_prints_closed_loop_summary(self, capsys):
        assert main(
            [
                "cosim",
                "--users", "6",
                "--epochs", "10",
                "--controller", "greedy",
                "--edge-servers", "2",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "Closed-loop co-simulation" in output
        assert "fixed point" in output
        assert "offload fraction" in output

    def test_cosim_sharded_run(self, capsys):
        assert main(
            [
                "cosim",
                "--users", "8",
                "--epochs", "6",
                "--controller", "hysteresis",
                "--shards", "2",
            ]
        ) == 0
        assert "independent cells" in capsys.readouterr().out

    def test_bench_includes_cosim_case(self, capsys):
        assert main(
            [
                "bench",
                "--points", "0",
                "--fleet-users", "0",
                "--adaptive-epochs", "0",
                "--cosim-users", "40",
                "--cosim-epochs", "12",
            ]
        ) == 0
        assert "Co-simulation:" in capsys.readouterr().out

    def test_adapt_compares_controllers_to_best_static(self, capsys):
        assert main(["adapt", "--epochs", "50", "--trace", "burst"]) == 0
        output = capsys.readouterr().out
        assert "static[" in output
        assert "hysteresis" in output
        assert "greedy-sweep" in output
        assert "ewma-predictive" in output
        assert "best static operating point" in output

    def test_adapt_single_controller_and_objective(self, capsys):
        assert main(
            [
                "adapt",
                "--epochs", "30",
                "--trace", "drift",
                "--controller", "greedy",
                "--objective", "energy",
                "--deadline-ms", "400",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "greedy-sweep" in output
        assert "ewma-predictive" not in output
        assert "objective 'energy'" in output

    def test_adapt_rejects_unknown_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt", "--trace", "tsunami"])

    def test_fleet_prints_report_and_capacity(self, capsys):
        assert main(["fleet", "--device", "XR1", "--edge", "EDGE-AGX", "--users", "16"]) == 0
        output = capsys.readouterr().out
        for token in ("p50", "p95", "p99", "fleet total", "Capacity plan"):
            assert token in output

    def test_fleet_no_capacity_flag(self, capsys):
        assert main(["fleet", "--users", "4", "--no-capacity"]) == 0
        output = capsys.readouterr().out
        assert "Capacity plan" not in output

    def test_fleet_mixed_devices_and_policies(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--users",
                    "6",
                    "--mixed-devices",
                    "XR1",
                    "XR3",
                    "--policy",
                    "energy",
                    "--no-capacity",
                ]
            )
            == 0
        )
        assert "mixed" in capsys.readouterr().out

    def test_tables_prints_both_tables(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "Table I:" in output
        assert "Table II:" in output

    def test_validate_quick(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["validate", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4a" in output
        assert "reproduction mean error" in output


class TestExperimentsCommand:
    def _suite_file(self, tmp_path):
        import json

        path = tmp_path / "suite.json"
        path.write_text(
            json.dumps(
                {
                    "scenarios": [
                        {"name": "point", "kind": "analyze", "mode": "local"},
                        {
                            "name": "grid",
                            "kind": "sweep",
                            "params": {
                                "frame_sides_px": [300.0, 500.0],
                                "cpu_freqs_ghz": [1.0],
                            },
                        },
                    ]
                }
            )
        )
        return path

    def test_list_prints_scenario_table(self, tmp_path, capsys):
        path = self._suite_file(tmp_path)
        assert main(["experiments", "list", "--suite", str(path)]) == 0
        output = capsys.readouterr().out
        assert "point" in output and "grid" in output
        assert "spec hash" in output

    def test_run_writes_manifest_and_check_passes_against_it(self, tmp_path, capsys):
        import json

        suite = self._suite_file(tmp_path)
        manifest = tmp_path / "manifest.json"
        assert (
            main(["experiments", "run", "--suite", str(suite), "--out", str(manifest)])
            == 0
        )
        payload = json.loads(manifest.read_text())
        assert [s["name"] for s in payload["scenarios"]] == ["point", "grid"]
        assert payload["repro_version"]
        capsys.readouterr()
        assert (
            main(
                [
                    "experiments",
                    "check",
                    "--suite", str(suite),
                    "--manifest", str(manifest),
                    "--baseline", str(manifest),
                ]
            )
            == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_check_fails_on_doctored_baseline(self, tmp_path, capsys):
        import json

        suite = self._suite_file(tmp_path)
        manifest = tmp_path / "manifest.json"
        assert (
            main(["experiments", "run", "--suite", str(suite), "--out", str(manifest)])
            == 0
        )
        payload = json.loads(manifest.read_text())
        payload["scenarios"][0]["metrics"]["total_latency_ms"] *= 2.0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        assert (
            main(
                [
                    "experiments",
                    "check",
                    "--suite", str(suite),
                    "--manifest", str(manifest),
                    "--baseline", str(baseline),
                ]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "FAIL" in output
        # Drifting metrics render as an aligned scenario/metric table with
        # the relative error as its own column.
        assert "point/total_latency_ms" in output
        assert "rel_err" in output

    def test_run_select_subset(self, tmp_path, capsys):
        suite = self._suite_file(tmp_path)
        out = tmp_path / "selected.json"
        assert (
            main(
                [
                    "experiments",
                    "run",
                    "--suite", str(suite),
                    "--select", "grid",
                    "--out", str(out),
                ]
            )
            == 0
        )
        assert "grid" in capsys.readouterr().out

    def test_bench_check_gates_payload(self, tmp_path, capsys):
        import json

        current = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--points", "0",
                    "--fleet-users", "0",
                    "--adaptive-epochs", "0",
                    "--json", str(current),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Self-comparison passes...
        assert (
            main(
                [
                    "experiments",
                    "bench-check",
                    "--current", str(current),
                    "--baselines", str(current),
                ]
            )
            == 0
        )
        assert "PASS" in capsys.readouterr().out
        # ...and a doctored baseline (much faster + different model output) fails.
        payload = json.loads(current.read_text())
        payload["grids"][0]["batch_points_per_s"] *= 100.0
        payload["grids"][0]["points"] = 16
        baseline = tmp_path / "BENCH_doctored.json"
        baseline.write_text(json.dumps(payload))
        assert (
            main(
                [
                    "experiments",
                    "bench-check",
                    "--current", str(current),
                    "--baselines", str(baseline),
                    "--tolerance", "0.5",
                ]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "FAIL" in output
        assert "fig4_grid/points" in output


class TestProfileAndTelemetry:
    def test_profile_batch_prints_span_tree(self, capsys):
        assert main(["profile", "batch"]) == 0
        output = capsys.readouterr().out
        assert "Telemetry profile" in output
        assert "span tree" in output
        assert "batch.evaluate_grid" in output
        assert "lru_cache" in output

    def test_profile_cosim_reports_convergence_counters(self, capsys):
        assert main(["profile", "cosim", "--users", "8", "--epochs", "10"]) == 0
        output = capsys.readouterr().out
        assert "cosim.run" in output
        assert "cosim.epochs" in output
        assert "cosim.best_response_iterations" in output
        assert "cosim.iterations_per_epoch" in output

    def test_profile_writes_snapshot_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "profile.json"
        assert main(
            ["profile", "adapt", "--epochs", "10", "--json", str(path)]
        ) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["adaptive.epochs"] == 10
        assert "adaptive.run" in snapshot["spans"]
        assert "wrote" in capsys.readouterr().out

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "nonsense"])

    def test_bench_telemetry_flag_writes_snapshot(self, tmp_path, capsys):
        import json

        path = tmp_path / "telemetry.json"
        assert main(
            [
                "bench",
                "--points", "0",
                "--fleet-users", "0",
                "--adaptive-epochs", "20",
                "--telemetry", str(path),
            ]
        ) == 0
        snapshot = json.loads(path.read_text())
        assert "bench.adaptive.control" in snapshot["spans"]
        assert snapshot["counters"]["adaptive.epochs"] == 20
        assert "wrote telemetry snapshot" in capsys.readouterr().out

    def test_experiments_run_telemetry_flag_writes_snapshot(self, tmp_path, capsys):
        import json

        path = tmp_path / "telemetry.json"
        out = tmp_path / "manifest.json"
        assert main(
            [
                "experiments",
                "run",
                "--select", "table1_analyze_xr1_local",
                "--out", str(out),
                "--telemetry", str(path),
            ]
        ) == 0
        snapshot = json.loads(path.read_text())
        assert "experiments.run" in snapshot["spans"]
        assert snapshot["counters"]["experiments.scenarios"] == 1
        assert "wrote telemetry snapshot" in capsys.readouterr().out
        manifest = json.loads(out.read_text())
        assert "telemetry" in manifest
