"""Unit tests for the pipeline simulator and segment sampler."""

import numpy as np
import pytest

from repro.core.segments import Segment
from repro.devices.catalog import get_device, get_edge_server
from repro.measurement.truth import TestbedTruth
from repro.simulation.noise import NoiseModel
from repro.simulation.pipeline_sim import PipelineSimulator
from repro.simulation.testbed import truth_coefficients


@pytest.fixture(scope="module")
def simulator():
    truth = TestbedTruth()
    return PipelineSimulator(
        device=get_device("XR2"),
        edge=get_edge_server("EDGE-AGX"),
        exact_coefficients=truth_coefficients(truth, "XR2"),
        truth=truth,
        noise=NoiseModel(),
    )


@pytest.fixture(scope="module")
def noiseless_simulator():
    truth = TestbedTruth()
    return PipelineSimulator(
        device=get_device("XR2"),
        edge=get_edge_server("EDGE-AGX"),
        exact_coefficients=truth_coefficients(truth, "XR2"),
        truth=truth,
        noise=NoiseModel.none(),
    )


class TestSimulate:
    def test_produces_requested_frames(self, simulator, app, network):
        trace = simulator.simulate(app, network, n_frames=7, seed=1)
        assert len(trace) == 7

    def test_local_mode_segments(self, simulator, app, network):
        trace = simulator.simulate(app, network, n_frames=3, seed=1)
        segments = set(trace.frames[0].segment_latency_ms)
        assert Segment.LOCAL_INFERENCE in segments
        assert Segment.ENCODING not in segments

    def test_remote_mode_segments(self, simulator, remote_app, network):
        trace = simulator.simulate(remote_app, network, n_frames=3, seed=1)
        segments = set(trace.frames[0].segment_latency_ms)
        assert Segment.ENCODING in segments
        assert Segment.LOCAL_INFERENCE not in segments

    def test_same_seed_reproduces_trace(self, simulator, app, network):
        first = simulator.simulate(app, network, n_frames=5, seed=9)
        second = simulator.simulate(app, network, n_frames=5, seed=9)
        assert first.latencies_ms == pytest.approx(second.latencies_ms)

    def test_different_seeds_differ(self, simulator, app, network):
        first = simulator.simulate(app, network, n_frames=5, seed=1)
        second = simulator.simulate(app, network, n_frames=5, seed=2)
        assert not np.allclose(first.latencies_ms, second.latencies_ms)

    def test_invalid_frame_count_rejected(self, simulator, app, network):
        with pytest.raises(ValueError):
            simulator.simulate(app, network, n_frames=0)

    def test_noiseless_simulation_close_to_expected_breakdown(
        self, noiseless_simulator, app, network
    ):
        trace = noiseless_simulator.simulate(app, network, n_frames=3, seed=0)
        expected = noiseless_simulator.expected_breakdown(app, network)
        # The only stochastic part left is the realised buffer delay inside
        # rendering, which has the analytic value as its mean.
        assert trace.mean_latency_ms == pytest.approx(expected.total_ms, rel=0.05)

    def test_noisy_mean_latency_close_to_expected(self, simulator, app, network):
        trace = simulator.simulate(app, network, n_frames=60, seed=4)
        expected = simulator.expected_breakdown(app, network)
        assert trace.mean_latency_ms == pytest.approx(expected.total_ms, rel=0.08)

    def test_energy_scales_with_latency(self, simulator, app, network):
        trace = simulator.simulate(app, network, n_frames=20, seed=5)
        correlation = np.corrcoef(trace.latencies_ms, trace.energies_mj)[0, 1]
        assert correlation > 0.8

    def test_track_device_state_drains_battery(self, simulator, app, network):
        trace = simulator.simulate(app, network, n_frames=5, seed=6, track_device_state=True)
        assert trace.mean_energy_mj > 0.0
