"""Unit tests for the fleet analyzer, report aggregation, and capacity planner."""

import math

import pytest

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.core.framework import XRPerformanceModel
from repro.exceptions import ConfigurationError
from repro.fleet import (
    CapacityPlan,
    EdgePlan,
    FleetAnalyzer,
    FleetReport,
    GreedySLOAdmission,
    RoundRobinAdmission,
    bisect_capacity,
    homogeneous,
    mixed_devices,
    plan_capacity,
    plan_edges,
)

SLO_MS = 800.0


@pytest.fixture
def remote_fleet_app() -> ApplicationConfig:
    return ApplicationConfig.object_detection_default().with_mode(ExecutionMode.REMOTE)


class TestSingleUserEquivalence:
    @pytest.mark.parametrize("mode", (ExecutionMode.LOCAL, ExecutionMode.REMOTE))
    def test_one_user_reproduces_single_user_model_exactly(self, mode):
        app = ApplicationConfig.object_detection_default().with_mode(mode)
        single = XRPerformanceModel(device="XR1", edge="EDGE-AGX").analyze(app)
        fleet = FleetAnalyzer(homogeneous(1, device="XR1", app=app)).analyze()
        assert fleet.p50_latency_ms == single.total_latency_ms
        assert fleet.p95_latency_ms == single.total_latency_ms
        assert fleet.p99_latency_ms == single.total_latency_ms
        assert fleet.outcomes[0].energy_mj == single.total_energy_mj
        assert fleet.outcomes[0].edge_wait_ms == 0.0

    def test_one_user_aoi_matches(self, remote_fleet_app):
        single = XRPerformanceModel(device="XR1", edge="EDGE-AGX").analyze(
            remote_fleet_app
        )
        fleet = FleetAnalyzer(
            homogeneous(1, device="XR1", app=remote_fleet_app)
        ).analyze()
        outcome = fleet.outcomes[0]
        assert outcome.report.aoi.roi == single.aoi.roi


class TestFleetEffects:
    def test_more_users_never_faster(self, remote_fleet_app):
        def p95(n):
            return FleetAnalyzer(
                homogeneous(n, device="XR1", app=remote_fleet_app)
            ).analyze().p95_latency_ms

        assert p95(1) <= p95(2) <= p95(3)

    def test_saturated_edge_reports_infinite_latency(self, remote_fleet_app):
        report = FleetAnalyzer(
            homogeneous(16, device="XR1", app=remote_fleet_app)
        ).analyze()
        assert report.p95_latency_ms == math.inf
        assert not report.is_stable

    def test_saturated_edge_is_infinite_for_every_tenant(self):
        # A light tenant must not be reported with a finite wait when the
        # edge's aggregate load (dominated by heavy tenants) is unstable.
        from repro.fleet import mixed_workloads

        heavy = ApplicationConfig(
            frame_side_px=1400.0, frame_rate_fps=25.0
        ).with_mode(ExecutionMode.REMOTE)
        light = ApplicationConfig(frame_side_px=100.0, frame_rate_fps=10.0).with_mode(
            ExecutionMode.REMOTE
        )
        report = FleetAnalyzer(
            mixed_workloads(4, apps=(heavy, light)), edge="EDGE-TX2"
        ).analyze()
        assert not report.is_stable
        assert all(
            math.isinf(outcome.latency_ms)
            for outcome in report.outcomes
            if outcome.offloaded
        )

    def test_greedy_never_admits_users_into_violation(self):
        # Contention-bounded candidates: the SLO guard must hold in the
        # final contended report, not just against uncontended numbers.
        app = ApplicationConfig(frame_rate_fps=5.0).with_mode(ExecutionMode.REMOTE)
        slo = 551.0
        report = FleetAnalyzer(
            homogeneous(50, device="XR1", app=app),
            policy=GreedySLOAdmission(slo_ms=slo),
            slo_ms=slo,
        ).analyze()
        assert all(
            outcome.meets_slo(slo)
            for outcome in report.outcomes
            if outcome.offloaded
        )

    def test_greedy_policy_keeps_fleet_finite(self, remote_fleet_app):
        report = FleetAnalyzer(
            homogeneous(16, device="XR1", app=remote_fleet_app),
            policy=GreedySLOAdmission(slo_ms=SLO_MS),
            slo_ms=SLO_MS,
        ).analyze()
        assert report.p95_latency_ms < math.inf
        assert report.is_stable
        assert 0 < report.n_offloaded < report.n_users

    def test_extra_edges_raise_offload_count(self, remote_fleet_app):
        def offloaded(n_edges):
            return FleetAnalyzer(
                homogeneous(16, device="XR1", app=remote_fleet_app),
                n_edges=n_edges,
                policy=GreedySLOAdmission(slo_ms=SLO_MS),
            ).analyze().n_offloaded

        assert offloaded(2) > offloaded(1)

    def test_offloaders_share_contended_throughput(self, remote_fleet_app, network):
        report = FleetAnalyzer(
            homogeneous(4, device="XR1", app=remote_fleet_app)
        ).analyze()
        throughputs = {outcome.throughput_mbps for outcome in report.outcomes}
        assert len(throughputs) == 1
        assert throughputs.pop() < network.throughput_mbps

    def test_mixed_device_fleet_counts(self, remote_fleet_app):
        report = FleetAnalyzer(
            mixed_devices(6, devices=("XR1", "XR3"), app=remote_fleet_app),
            policy=GreedySLOAdmission(slo_ms=SLO_MS),
        ).analyze()
        assert report.device_counts == {"XR1": 3, "XR3": 3}

    def test_memoization_shares_models_and_reports(self, remote_fleet_app):
        analyzer = FleetAnalyzer(
            homogeneous(500, device="XR1", app=remote_fleet_app),
            policy=RoundRobinAdmission(),
        )
        analyzer.analyze()
        assert len(analyzer._models) == 1
        # local + remote candidates, plus the contended offload evaluation.
        assert len(analyzer._reports) <= 4

    def test_zero_edges_rejected(self, remote_fleet_app):
        with pytest.raises(ConfigurationError):
            FleetAnalyzer(homogeneous(2, app=remote_fleet_app), n_edges=0)


class TestFleetReport:
    def test_summary_mentions_percentiles_and_energy(self, remote_fleet_app):
        report = FleetAnalyzer(
            homogeneous(8, device="XR1", app=remote_fleet_app),
            policy=GreedySLOAdmission(slo_ms=SLO_MS),
            slo_ms=SLO_MS,
        ).analyze()
        text = report.summary()
        for token in ("p50", "p95", "p99", "fleet total", "SLO"):
            assert token in text

    def test_energy_aggregates_sum_per_user(self, remote_fleet_app):
        report = FleetAnalyzer(
            homogeneous(4, device="XR1", app=remote_fleet_app),
            policy=GreedySLOAdmission(slo_ms=SLO_MS),
        ).analyze()
        assert report.total_energy_mj == pytest.approx(
            sum(outcome.energy_mj for outcome in report.outcomes)
        )

    def test_slo_violation_count(self, remote_fleet_app):
        report = FleetAnalyzer(
            homogeneous(3, device="XR1", app=remote_fleet_app),
            slo_ms=1.0,  # impossible budget: everyone violates
        ).analyze()
        assert report.slo_violations == report.n_users
        assert not report.meets_slo()

    def test_meets_slo_requires_a_budget(self, remote_fleet_app):
        report = FleetAnalyzer(
            homogeneous(1, device="XR1", app=remote_fleet_app)
        ).analyze()
        with pytest.raises(ValueError):
            report.meets_slo()

    def test_zero_outcomes_yield_well_defined_report(self):
        # Regression: an all-rejected admission round used to blow up inside
        # NumPy's percentile machinery; it must degrade to NaN percentiles
        # with the SLO reported as not met.
        report = FleetReport.from_outcomes([], slo_ms=100.0)
        assert report.n_users == 0
        assert math.isnan(report.p50_latency_ms)
        assert math.isnan(report.p95_latency_ms)
        assert math.isnan(report.p99_latency_ms)
        assert math.isnan(report.mean_latency_ms)
        assert report.total_energy_mj == 0.0
        assert report.slo_violations == 0
        assert not report.meets_slo()
        assert not report.meets_slo(1e9)
        assert "0 users" in report.summary()


class TestBisectCapacity:
    def test_exact_threshold_found(self):
        capacity, capped, _ = bisect_capacity(lambda n: n <= 37, max_users=4096)
        assert capacity == 37
        assert not capped

    def test_infeasible_at_one(self):
        capacity, capped, evaluations = bisect_capacity(lambda n: False)
        assert capacity == 0
        assert not capped
        assert evaluations == 1

    def test_ceiling_reached(self):
        capacity, capped, _ = bisect_capacity(lambda n: True, max_users=100)
        assert capacity == 100
        assert capped

    def test_logarithmic_evaluation_count(self):
        _, _, evaluations = bisect_capacity(lambda n: n <= 1000, max_users=4096)
        assert evaluations <= 2 * math.ceil(math.log2(4096)) + 2

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(ConfigurationError):
            bisect_capacity(lambda n: True, max_users=0)


class TestPlanCapacity:
    def test_capacity_is_the_slo_boundary(self):
        plan = plan_capacity(device="XR1", edge="EDGE-AGX", slo_ms=SLO_MS)
        assert isinstance(plan, CapacityPlan)
        assert plan.feasible
        assert plan.p95_at_capacity_ms <= SLO_MS
        # One more user must violate the SLO.
        beyond = FleetAnalyzer(
            homogeneous(plan.max_users + 1, device="XR1"),
            policy=RoundRobinAdmission(),
        ).analyze()
        assert beyond.p95_latency_ms > SLO_MS

    def test_more_edges_mean_more_capacity(self):
        single = plan_capacity(device="XR1", slo_ms=SLO_MS, n_edges=1)
        double = plan_capacity(device="XR1", slo_ms=SLO_MS, n_edges=2)
        assert double.max_users > single.max_users

    def test_impossible_slo_is_infeasible(self):
        plan = plan_capacity(device="XR1", slo_ms=1.0)
        assert not plan.feasible
        assert plan.max_users == 0
        assert "infeasible" in plan.summary()

    def test_summary_mentions_capacity(self):
        plan = plan_capacity(device="XR1", slo_ms=SLO_MS)
        assert str(plan.max_users) in plan.summary()

    def test_invalid_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_capacity(slo_ms=-5.0)

    def test_unmeetable_slo_raises_when_feasibility_required(self):
        with pytest.raises(ConfigurationError, match="unmeetable"):
            plan_capacity(device="XR1", slo_ms=1.0, require_feasible=True)

    def test_unmeetable_slo_raises_for_custom_policy_too(self):
        with pytest.raises(ConfigurationError, match="unmeetable"):
            plan_capacity(
                device="XR1",
                slo_ms=1.0,
                policy=GreedySLOAdmission(slo_ms=1.0),
                require_feasible=True,
            )


class TestPlanEdges:
    def test_minimal_edge_count_found(self):
        plan = plan_edges(device="XR1", n_users=8, slo_ms=SLO_MS, max_edges=16)
        assert isinstance(plan, EdgePlan)
        assert 1 <= plan.n_edges <= 16
        assert plan.p95_ms <= SLO_MS
        assert str(plan.n_edges) in plan.summary()
        if plan.n_edges > 1:
            # One fewer edge must violate the SLO (minimality).
            fewer = FleetAnalyzer(
                homogeneous(8, device="XR1"),
                n_edges=plan.n_edges - 1,
                policy=RoundRobinAdmission(),
            ).analyze()
            assert fewer.p95_latency_ms > SLO_MS

    def test_unmeetable_slo_terminates_with_configuration_error(self):
        # The channel (not the edge count) is binding at a 1 ms SLO: the
        # search must probe the ceiling once and fail loudly instead of
        # looping or returning a bogus plan.
        with pytest.raises(ConfigurationError, match="unmeetable"):
            plan_edges(device="XR1", n_users=8, slo_ms=1.0, max_edges=8)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_edges(slo_ms=0.0)
        with pytest.raises(ConfigurationError):
            plan_edges(n_users=0)
        with pytest.raises(ConfigurationError):
            plan_edges(max_edges=0)
