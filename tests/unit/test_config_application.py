"""Unit tests for the application-pipeline configuration."""

import pytest

from repro.config.application import (
    ApplicationConfig,
    CooperationConfig,
    EncoderConfig,
    ExecutionMode,
    InferenceConfig,
)
from repro.exceptions import ConfigurationError


class TestEncoderConfig:
    def test_defaults_are_valid(self):
        encoder = EncoderConfig()
        assert encoder.i_frame_interval == 30
        assert encoder.bitrate_mbps == pytest.approx(10.0)

    def test_quantization_range_enforced(self):
        with pytest.raises(ConfigurationError, match="quantization"):
            EncoderConfig(quantization=70)

    def test_encoded_frame_size_uses_compression_ratio(self):
        encoder = EncoderConfig(compression_ratio=10.0)
        assert encoder.encoded_frame_size_mb(500.0) == pytest.approx(0.375 / 10.0)

    def test_compression_ratio_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(compression_ratio=0.0)


class TestInferenceConfig:
    def test_local_default(self):
        inference = InferenceConfig()
        assert inference.mode is ExecutionMode.LOCAL
        assert inference.omega_client == pytest.approx(1.0)
        assert inference.n_edge_servers == 0

    def test_local_with_edge_shares_rejected(self):
        with pytest.raises(ConfigurationError):
            InferenceConfig(mode=ExecutionMode.LOCAL, edge_shares=(0.5,))

    def test_remote_defaults_to_single_full_edge_share(self):
        inference = InferenceConfig(mode=ExecutionMode.REMOTE)
        assert inference.edge_shares == (1.0,)
        assert inference.omega_client == pytest.approx(0.0)

    def test_split_shares_must_sum_to_total(self):
        with pytest.raises(ConfigurationError, match="must equal total_task"):
            InferenceConfig(
                mode=ExecutionMode.SPLIT, omega_client=0.5, edge_shares=(0.6,)
            )

    def test_split_with_consistent_shares(self):
        inference = InferenceConfig(
            mode=ExecutionMode.SPLIT, omega_client=0.4, edge_shares=(0.3, 0.3)
        )
        assert inference.n_edge_servers == 2

    def test_omega_loc_indicator(self):
        assert ExecutionMode.LOCAL.omega_loc == 1
        assert ExecutionMode.REMOTE.omega_loc == 0
        assert ExecutionMode.SPLIT.omega_loc == 0


class TestCooperationConfig:
    def test_disabled_by_default(self):
        cooperation = CooperationConfig()
        assert not cooperation.enabled
        assert not cooperation.include_in_totals

    def test_cannot_include_in_totals_while_disabled(self):
        with pytest.raises(ConfigurationError):
            CooperationConfig(enabled=False, include_in_totals=True)


class TestApplicationConfig:
    def test_frame_period_matches_rate(self, app):
        assert app.frame_period_ms == pytest.approx(1000.0 / app.frame_rate_fps)

    def test_raw_frame_size_is_yuv(self, app):
        assert app.raw_frame_size_mb == pytest.approx(0.375)

    def test_virtual_scene_data_includes_point_cloud(self, app):
        assert app.virtual_scene_data_mb > app.point_cloud_mb

    def test_encoded_frame_smaller_than_raw(self, app):
        assert app.encoded_frame_size_mb < app.raw_frame_size_mb

    def test_with_frame_side_returns_new_config(self, app):
        other = app.with_frame_side(700.0)
        assert other.frame_side_px == 700.0
        assert app.frame_side_px == 500.0

    def test_with_cpu_freq(self, app):
        assert app.with_cpu_freq(3.0).cpu_freq_ghz == pytest.approx(3.0)

    def test_with_mode_remote_moves_task_to_edge(self, app):
        remote = app.with_mode(ExecutionMode.REMOTE)
        assert remote.inference.mode is ExecutionMode.REMOTE
        assert remote.inference.omega_client == pytest.approx(0.0)
        assert sum(remote.inference.edge_shares) == pytest.approx(1.0)

    def test_with_mode_local_restores_client_task(self, app):
        local = app.with_mode(ExecutionMode.REMOTE).with_mode(ExecutionMode.LOCAL)
        assert local.inference.omega_client == pytest.approx(1.0)
        assert local.inference.edge_shares == ()

    def test_invalid_frame_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationConfig(frame_rate_fps=0.0)

    def test_invalid_cpu_share_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationConfig(cpu_share=1.5)

    def test_converted_frame_size_is_rgb(self, app):
        assert app.converted_frame_size_mb(300.0) == pytest.approx(
            300.0 * 300.0 * 3.0 / 1e6
        )

    def test_configs_are_hashable(self, app):
        assert hash(app) == hash(ApplicationConfig.object_detection_default())
