"""Unit tests for :mod:`repro.units`."""


import pytest

from repro import units


class TestTimeConversions:
    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(1.5) == pytest.approx(1500.0)

    def test_ms_to_seconds_roundtrip(self):
        assert units.ms_to_seconds(units.seconds_to_ms(0.25)) == pytest.approx(0.25)

    def test_hz_to_period_ms(self):
        assert units.hz_to_period_ms(100.0) == pytest.approx(10.0)

    def test_hz_to_period_ms_of_frame_rate(self):
        assert units.hz_to_period_ms(30.0) == pytest.approx(33.333, rel=1e-3)

    def test_period_ms_to_hz_roundtrip(self):
        assert units.period_ms_to_hz(units.hz_to_period_ms(66.67)) == pytest.approx(66.67)

    def test_hz_to_period_rejects_zero(self):
        with pytest.raises(ValueError):
            units.hz_to_period_ms(0.0)

    def test_period_to_hz_rejects_negative(self):
        with pytest.raises(ValueError):
            units.period_ms_to_hz(-5.0)


class TestDataSizes:
    def test_bytes_to_mb(self):
        assert units.bytes_to_mb(2_000_000) == pytest.approx(2.0)

    def test_mb_to_bytes_roundtrip(self):
        assert units.mb_to_bytes(units.bytes_to_mb(123456.0)) == pytest.approx(123456.0)

    def test_mb_to_megabits(self):
        assert units.mb_to_megabits(1.0) == pytest.approx(8.0)

    def test_frame_pixels_square(self):
        assert units.frame_pixels(500.0) == pytest.approx(250_000.0)

    def test_frame_pixels_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.frame_pixels(0.0)

    def test_yuv_frame_size(self):
        # 500x500 pixels x 1.5 bytes = 375 kB = 0.375 MB
        assert units.yuv_frame_size_mb(500.0) == pytest.approx(0.375)

    def test_rgb_frame_is_twice_yuv420(self):
        assert units.rgb_frame_size_mb(400.0) == pytest.approx(
            2.0 * units.yuv_frame_size_mb(400.0)
        )


class TestLatencyPrimitives:
    def test_memory_access_latency(self):
        # 44 GB/s moving 4.4 MB -> 0.1 ms
        assert units.memory_access_latency_ms(4.4, 44.0) == pytest.approx(0.1)

    def test_memory_access_zero_data(self):
        assert units.memory_access_latency_ms(0.0, 10.0) == 0.0

    def test_memory_access_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.memory_access_latency_ms(1.0, 0.0)

    def test_transmission_latency(self):
        # 1 MB = 8 Mb over 100 Mbps = 80 ms
        assert units.transmission_latency_ms(1.0, 100.0) == pytest.approx(80.0)

    def test_transmission_rejects_negative_data(self):
        with pytest.raises(ValueError):
            units.transmission_latency_ms(-1.0, 100.0)

    def test_propagation_delay_speed_of_light(self):
        delay = units.propagation_delay_ms(300.0)
        assert delay == pytest.approx(300.0 / units.SPEED_OF_LIGHT_M_PER_S * 1e3)

    def test_propagation_delay_zero_distance(self):
        assert units.propagation_delay_ms(0.0) == 0.0

    def test_propagation_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            units.propagation_delay_ms(10.0, 0.0)


class TestEnergyPrimitives:
    def test_energy_w_times_ms_is_mj(self):
        assert units.energy_mj(2.0, 500.0) == pytest.approx(1000.0)

    def test_energy_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            units.energy_mj(1.0, -1.0)

    def test_db_roundtrip(self):
        assert units.linear_to_db(units.db_to_linear(13.0)) == pytest.approx(13.0)

    def test_db_to_linear_of_zero_db(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
