"""Unit tests for the closed-form M/M/1 queue (Eq. 7 / Eq. 22 substrate)."""

import pytest

from repro.exceptions import UnstableQueueError
from repro.queueing.mm1 import MM1Queue


class TestStability:
    def test_unstable_queue_rejected(self):
        with pytest.raises(UnstableQueueError):
            MM1Queue(arrival_rate_per_ms=1.0, service_rate_per_ms=1.0)

    def test_negative_rates_rejected(self):
        with pytest.raises(UnstableQueueError):
            MM1Queue(arrival_rate_per_ms=-0.1, service_rate_per_ms=1.0)

    def test_idle_queue_is_a_valid_boundary_case(self):
        # A fleet with zero offloaders presents an empty queue, not an error.
        queue = MM1Queue(arrival_rate_per_ms=0.0, service_rate_per_ms=1.0)
        assert queue.utilization == 0.0
        assert queue.mean_waiting_time_ms == 0.0
        assert queue.mean_number_in_queue == 0.0
        assert queue.mean_time_in_system_ms == pytest.approx(queue.mean_service_time_ms)
        assert queue.prob_empty() == pytest.approx(1.0)

    def test_from_rates_hz(self):
        queue = MM1Queue.from_rates_hz(300.0, 600.0)
        assert queue.arrival_rate_per_ms == pytest.approx(0.3)
        assert queue.service_rate_per_ms == pytest.approx(0.6)


class TestFirstOrderQuantities:
    def test_utilization(self):
        assert MM1Queue(0.3, 0.6).utilization == pytest.approx(0.5)

    def test_paper_equation_22(self):
        # T = 1 / (mu - lambda)
        queue = MM1Queue(0.4, 0.9)
        assert queue.mean_time_in_system_ms == pytest.approx(1.0 / 0.5)

    def test_waiting_plus_service_equals_sojourn(self):
        queue = MM1Queue(0.2, 0.5)
        assert queue.mean_waiting_time_ms + queue.mean_service_time_ms == pytest.approx(
            queue.mean_time_in_system_ms
        )

    def test_mean_number_in_system(self):
        queue = MM1Queue(0.25, 0.5)
        assert queue.mean_number_in_system == pytest.approx(1.0)

    def test_queue_length_relation(self):
        queue = MM1Queue(0.3, 0.4)
        assert queue.mean_number_in_queue == pytest.approx(
            queue.mean_number_in_system - queue.utilization
        )

    def test_sojourn_grows_with_load(self):
        light = MM1Queue(0.1, 1.0)
        heavy = MM1Queue(0.9, 1.0)
        assert heavy.mean_time_in_system_ms > light.mean_time_in_system_ms


class TestDistributions:
    def test_state_probabilities_sum_to_one(self):
        queue = MM1Queue(0.4, 1.0)
        total = sum(queue.prob_n_in_system(n) for n in range(200))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_prob_empty(self):
        assert MM1Queue(0.3, 1.0).prob_empty() == pytest.approx(0.7)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            MM1Queue(0.3, 1.0).prob_n_in_system(-1)

    def test_sojourn_cdf_is_exponential(self):
        queue = MM1Queue(0.5, 1.0)
        assert queue.sojourn_time_cdf(0.0) == pytest.approx(0.0)
        assert queue.sojourn_time_cdf(1e9) == pytest.approx(1.0)

    def test_sojourn_quantile_inverts_cdf(self):
        queue = MM1Queue(0.5, 1.0)
        q90 = queue.sojourn_time_quantile(0.9)
        assert queue.sojourn_time_cdf(q90) == pytest.approx(0.9, abs=1e-9)

    def test_quantile_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            MM1Queue(0.5, 1.0).sojourn_time_quantile(1.0)
