"""Fixture tests for the convention rules: REP004, REP005, REP006.

Each rule gets at least one clean fixture and two violating ones.
"""

from __future__ import annotations

from repro.analysis import run_lint


def lint(tmp_path, source, rule, rel="src/repro/mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([rel], root=tmp_path, rules=[rule]).diagnostics


class TestREP004TelemetryNaming:
    def test_well_formed_names_pass(self, tmp_path):
        clean = (
            "from repro import telemetry\n"
            "\n"
            "\n"
            "def work(registry, n):\n"
            "    registry.add('fleet.users_admitted', n)\n"
            "    registry.gauge('fleet.queue_depth', n)\n"
            "    registry.record('cosim.epoch.latency_ms', 1.5)\n"
            "    with telemetry.get().span('fleet.analyze'):\n"
            "        pass\n"
        )
        assert lint(tmp_path, clean, "REP004") == []

    def test_single_segment_name_flagged(self, tmp_path):
        source = "def work(registry):\n    registry.add('hits', 1)\n"
        found = lint(tmp_path, source, "REP004")
        assert len(found) == 1 and "dotted segment" in found[0].message

    def test_malformed_segment_flagged(self, tmp_path):
        source = "def work(registry):\n    registry.add('Fleet.Users', 1)\n"
        found = lint(tmp_path, source, "REP004")
        assert len(found) == 1 and "naming convention" in found[0].message

    def test_cross_kind_collision_flagged(self, tmp_path):
        source = (
            "from repro import telemetry\n"
            "\n"
            "\n"
            "def work(registry):\n"
            "    registry.add('fleet.analyze', 1)\n"
            "    with telemetry.get().span('fleet.analyze'):\n"
            "        pass\n"
        )
        found = lint(tmp_path, source, "REP004")
        assert len(found) == 1
        assert "span" in found[0].message and "counter" in found[0].message

    def test_same_kind_shared_name_is_allowed(self, tmp_path):
        clean = (
            "def a(registry):\n"
            "    registry.add('faults.epochs_faulted', 1)\n"
            "\n"
            "\n"
            "def b(registry):\n"
            "    registry.add('faults.epochs_faulted', 1)\n"
        )
        assert lint(tmp_path, clean, "REP004") == []

    def test_fstring_literal_head_validated(self, tmp_path):
        bad = (
            "def work(registry, key):\n"
            "    registry.add(f'Fleet.{key}.count', 1)\n"
        )
        found = lint(tmp_path, bad, "REP004")
        assert len(found) == 1 and "literal head" in found[0].message
        clean = (
            "def work(registry, key):\n"
            "    registry.add(f'fleet.{key}.count', 1)\n"
            "    registry.add(f'{key}.count', 1)\n"
        )
        assert lint(tmp_path, clean, "REP004") == []

    def test_non_registry_receivers_ignored(self, tmp_path):
        clean = (
            "def work(numbers):\n"
            "    numbers.add('whatever')\n"
            "    total = sum(numbers)\n"
            "    return total\n"
        )
        assert lint(tmp_path, clean, "REP004") == []


VALID_SCENARIO = """\
[[scenario]]
name = "lint_fixture_analyze"
kind = "analyze"
description = "fixture"
device = "XR1"
mode = "local"
"""


class TestREP005SpecLint:
    def test_valid_scenario_passes(self, tmp_path):
        rel = "scenarios/good.toml"
        assert lint(tmp_path, VALID_SCENARIO, "REP005", rel=rel) == []

    def test_non_scenario_toml_skipped(self, tmp_path):
        rel = "scenarios/pyproject.toml"
        assert lint(tmp_path, "[project]\nname = 'x'\n", "REP005", rel=rel) == []

    def test_toml_parse_error_flagged(self, tmp_path):
        rel = "scenarios/broken.toml"
        found = lint(tmp_path, "[[scenario]\nname = ", "REP005", rel=rel)
        assert len(found) == 1 and "TOML parse error" in found[0].message

    def test_unknown_kind_flagged_with_line_anchor(self, tmp_path):
        source = VALID_SCENARIO.replace('kind = "analyze"', 'kind = "teleport"')
        found = lint(tmp_path, source, "REP005", rel="scenarios/bad_kind.toml")
        assert len(found) == 1
        assert "invalid scenario" in found[0].message
        assert found[0].line == 2  # anchored to the name = ... line

    def test_unknown_device_flagged(self, tmp_path):
        source = VALID_SCENARIO.replace('device = "XR1"', 'device = "XR99"')
        found = lint(tmp_path, source, "REP005", rel="scenarios/bad_device.toml")
        assert len(found) == 1 and "invalid scenario" in found[0].message

    def test_duplicate_names_flagged(self, tmp_path):
        source = VALID_SCENARIO + "\n" + VALID_SCENARIO
        found = lint(tmp_path, source, "REP005", rel="scenarios/dupes.toml")
        assert len(found) == 1 and "duplicate scenario name" in found[0].message

    def test_bundled_scenarios_are_clean(self, tmp_path):
        import repro.experiments as experiments
        from pathlib import Path

        scenarios = Path(experiments.__file__).parent / "scenarios"
        report = run_lint(
            [str(scenarios)], root=scenarios.parents[3], rules=["REP005"]
        )
        assert report.files_checked >= 5
        assert report.diagnostics == []


class TestREP006ExportConsistency:
    def test_consistent_init_passes(self, tmp_path):
        clean = (
            "from pathlib import Path\n"
            "\n"
            "from repro.mypkg.core import thing\n"
            "\n"
            "CONSTANT = 1\n"
            "\n"
            "__all__ = ['CONSTANT', 'thing']\n"
        )
        assert lint(tmp_path, clean, "REP006", rel="src/repro/mypkg/__init__.py") == []

    def test_phantom_export_flagged(self, tmp_path):
        source = "__all__ = ['ghost']\n"
        found = lint(tmp_path, source, "REP006", rel="src/repro/mypkg/__init__.py")
        assert len(found) == 1 and "never defines" in found[0].message

    def test_missing_reexport_flagged(self, tmp_path):
        source = (
            "from repro.mypkg.core import hidden, shown\n"
            "\n"
            "__all__ = ['shown']\n"
        )
        found = lint(tmp_path, source, "REP006", rel="src/repro/mypkg/__init__.py")
        assert len(found) == 1
        assert "hidden" in found[0].message and "missing from __all__" in found[0].message

    def test_relative_imports_count_as_internal(self, tmp_path):
        source = (
            "from .core import helper\n"
            "\n"
            "__all__ = []\n"
        )
        found = lint(tmp_path, source, "REP006", rel="src/repro/mypkg/__init__.py")
        assert len(found) == 1 and "helper" in found[0].message

    def test_stdlib_imports_are_exempt(self, tmp_path):
        clean = (
            "import json\n"
            "from pathlib import Path\n"
            "\n"
            "__all__ = []\n"
        )
        assert lint(tmp_path, clean, "REP006", rel="src/repro/mypkg/__init__.py") == []

    def test_modules_without_all_are_skipped(self, tmp_path):
        clean = "from repro.mypkg.core import anything\n"
        assert lint(tmp_path, clean, "REP006", rel="src/repro/mypkg/__init__.py") == []

    def test_non_init_files_are_skipped(self, tmp_path):
        clean = "__all__ = ['ghost']\n"
        assert lint(tmp_path, clean, "REP006", rel="src/repro/mypkg/mod.py") == []
