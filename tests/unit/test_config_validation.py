"""Unit tests for the configuration validation helpers."""

import pytest

from repro.config import validation
from repro.exceptions import ConfigurationError


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert validation.ensure_positive("x", 3.0) == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            validation.ensure_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validation.ensure_positive("x", -1.0)


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert validation.ensure_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validation.ensure_non_negative("x", -0.1)


class TestEnsureFraction:
    def test_accepts_bounds(self):
        assert validation.ensure_fraction("x", 0.0) == 0.0
        assert validation.ensure_fraction("x", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            validation.ensure_fraction("x", 1.01)


class TestEnsureInRange:
    def test_accepts_inside(self):
        assert validation.ensure_in_range("x", 5.0, 1.0, 10.0) == 5.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            validation.ensure_in_range("x", 11.0, 1.0, 10.0)


class TestEnsureChoice:
    def test_accepts_member(self):
        assert validation.ensure_choice("x", "b", ("a", "b")) == "b"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="must be one of"):
            validation.ensure_choice("x", "z", ("a", "b"))


class TestEnsureSequences:
    def test_non_empty_passes(self):
        assert validation.ensure_non_empty("x", [1]) == [1]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            validation.ensure_non_empty("x", [])

    def test_sorted_positive_passes(self):
        assert validation.ensure_sorted_positive("x", (1.0, 2.0, 2.0, 3.0))

    def test_sorted_positive_rejects_decreasing(self):
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            validation.ensure_sorted_positive("x", (3.0, 1.0))

    def test_sorted_positive_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            validation.ensure_sorted_positive("x", (0.0, 1.0))
