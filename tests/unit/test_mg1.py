"""Unit tests for the Pollaczek-Khinchine M/G/1 queue."""

import pytest

from repro.exceptions import UnstableQueueError
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue


class TestConstruction:
    def test_unstable_rejected(self):
        with pytest.raises(UnstableQueueError):
            MG1Queue(arrival_rate_per_ms=1.0, mean_service_time_ms=1.5)

    def test_negative_scv_rejected(self):
        with pytest.raises(UnstableQueueError):
            MG1Queue(arrival_rate_per_ms=0.1, mean_service_time_ms=1.0, service_scv=-0.5)

    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(UnstableQueueError):
            MG1Queue(arrival_rate_per_ms=-0.1, mean_service_time_ms=1.0)

    def test_idle_queue_is_a_valid_boundary_case(self):
        # A fleet with zero offloaders presents an empty queue, not an error.
        queue = MG1Queue(arrival_rate_per_ms=0.0, mean_service_time_ms=1.0)
        assert queue.utilization == 0.0
        assert queue.mean_waiting_time_ms == 0.0
        assert queue.mean_number_in_system == 0.0
        assert queue.mean_time_in_system_ms == pytest.approx(1.0)


class TestSpecialCases:
    def test_mm1_special_case_matches_mm1_queue(self):
        mg1 = MG1Queue.mm1(arrival_rate_per_ms=0.4, service_rate_per_ms=1.0)
        mm1 = MM1Queue(0.4, 1.0)
        assert mg1.mean_time_in_system_ms == pytest.approx(mm1.mean_time_in_system_ms)
        assert mg1.mean_number_in_system == pytest.approx(mm1.mean_number_in_system)

    def test_md1_waits_half_of_mm1(self):
        md1 = MG1Queue.md1(arrival_rate_per_ms=0.4, mean_service_time_ms=1.0)
        mm1 = MG1Queue.mm1(arrival_rate_per_ms=0.4, service_rate_per_ms=1.0)
        assert md1.mean_waiting_time_ms == pytest.approx(mm1.mean_waiting_time_ms / 2.0)

    def test_utilization(self):
        assert MG1Queue(0.25, 2.0).utilization == pytest.approx(0.5)

    def test_littles_law_consistency(self):
        queue = MG1Queue(0.3, 1.5, service_scv=0.7)
        assert queue.mean_number_in_system == pytest.approx(
            queue.arrival_rate_per_ms * queue.mean_time_in_system_ms
        )
        assert queue.mean_number_in_queue == pytest.approx(
            queue.arrival_rate_per_ms * queue.mean_waiting_time_ms
        )

    def test_higher_variability_means_longer_waits(self):
        low = MG1Queue(0.4, 1.0, service_scv=0.2)
        high = MG1Queue(0.4, 1.0, service_scv=2.0)
        assert high.mean_waiting_time_ms > low.mean_waiting_time_ms
