"""Unit tests for the event-driven single-server queue simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.queueing.littles_law import relative_gap
from repro.queueing.mm1 import MM1Queue
from repro.queueing.simulation import simulate_mm1, simulate_single_server_queue


class TestDeterministicScenarios:
    def test_no_waiting_when_arrivals_are_spread_out(self):
        result = simulate_single_server_queue([0.0, 10.0, 20.0], [1.0, 1.0, 1.0])
        assert np.all(result.waiting_times_ms == 0.0)
        assert list(result.departure_times_ms) == pytest.approx([1.0, 11.0, 21.0])

    def test_back_to_back_arrivals_queue_up(self):
        result = simulate_single_server_queue([0.0, 0.0, 0.0], [2.0, 2.0, 2.0])
        assert list(result.waiting_times_ms) == pytest.approx([0.0, 2.0, 4.0])
        assert list(result.sojourn_times_ms) == pytest.approx([2.0, 4.0, 6.0])

    def test_sojourn_is_wait_plus_service(self):
        result = simulate_single_server_queue([0.0, 1.0, 1.5], [1.0, 0.5, 2.0])
        services = result.departure_times_ms - result.start_service_times_ms
        assert np.allclose(result.sojourn_times_ms, result.waiting_times_ms + services)

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(SimulationError):
            simulate_single_server_queue([5.0, 1.0], [1.0, 1.0])

    def test_service_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            simulate_single_server_queue([0.0, 1.0], [1.0])

    def test_negative_service_rejected(self):
        with pytest.raises(SimulationError):
            simulate_single_server_queue([0.0], [-1.0])

    def test_callable_service_times(self, rng):
        result = simulate_single_server_queue(
            [0.0, 1.0, 2.0], lambda i, generator: 0.5 * (i + 1), rng=rng
        )
        assert result.n_packets == 3
        assert result.departure_times_ms[0] == pytest.approx(0.5)

    def test_empty_arrivals(self):
        result = simulate_single_server_queue([], [])
        assert result.n_packets == 0
        assert result.mean_sojourn_time_ms == 0.0


class TestAgainstTheory:
    def test_simulated_mm1_matches_closed_form(self, rng):
        arrival, service = 0.4, 1.0
        result = simulate_mm1(arrival, service, horizon_ms=200_000.0, rng=rng)
        theory = MM1Queue(arrival, service)
        assert relative_gap(result.mean_sojourn_time_ms, theory.mean_time_in_system_ms) < 0.05
        assert relative_gap(result.utilization, theory.utilization) < 0.05

    def test_littles_law_holds_in_simulation(self, rng):
        result = simulate_mm1(0.3, 0.8, horizon_ms=100_000.0, rng=rng)
        arrival_rate = result.n_packets / result.departure_times_ms[-1]
        expected_l = arrival_rate * result.mean_sojourn_time_ms
        assert relative_gap(result.mean_number_in_system(), expected_l) < 0.05
