"""Unit tests for the runtime edge server model."""

import pytest

from repro.devices.edge_server import EdgeServer
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_from_catalog_default_is_agx(self):
        server = EdgeServer.from_catalog()
        assert server.spec.name == "EDGE-AGX"

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            EdgeServer.from_catalog("EDGE-TX2", utilization=1.0)


class TestComputeAllocation:
    def test_allocated_compute_uses_scale_factor(self):
        server = EdgeServer.from_catalog("EDGE-AGX")
        assert server.allocated_compute(2.0) == pytest.approx(2.0 * 11.76)

    def test_background_utilization_reduces_allocation(self):
        idle = EdgeServer.from_catalog("EDGE-AGX")
        busy = EdgeServer.from_catalog("EDGE-AGX", utilization=0.5)
        assert busy.allocated_compute(1.0) == pytest.approx(idle.allocated_compute(1.0) * 0.5)

    def test_rejects_non_positive_client_compute(self):
        with pytest.raises(ValueError):
            EdgeServer.from_catalog().allocated_compute(0.0)

    def test_memory_latency_uses_spec_bandwidth(self):
        server = EdgeServer.from_catalog("EDGE-AGX")
        assert server.memory_access_latency_ms(137.0) == pytest.approx(1.0)


class TestTaskBookkeeping:
    def test_assign_and_release(self):
        server = EdgeServer.from_catalog()
        server.assign_task("client-a", 0.4)
        server.assign_task("client-b", 0.3)
        assert server.committed_share == pytest.approx(0.7)
        server.release_task("client-a")
        assert server.committed_share == pytest.approx(0.3)

    def test_overcommit_rejected(self):
        server = EdgeServer.from_catalog()
        server.assign_task("client-a", 0.8)
        with pytest.raises(ConfigurationError, match="over-committed"):
            server.assign_task("client-b", 0.4)

    def test_release_unknown_client_is_noop(self):
        EdgeServer.from_catalog().release_task("ghost")

    def test_power_scales_between_idle_and_max(self):
        server = EdgeServer.from_catalog("EDGE-AGX")
        assert server.power_w(0.0) == pytest.approx(server.spec.idle_power_w)
        assert server.power_w(1.0) == pytest.approx(server.spec.max_power_w)
        assert server.spec.idle_power_w < server.power_w(0.5) < server.spec.max_power_w

    def test_power_defaults_to_committed_share(self):
        server = EdgeServer.from_catalog()
        server.assign_task("client", 1.0)
        assert server.power_w() == pytest.approx(server.spec.max_power_w)

    def test_describe_mentions_hosted_cnn(self):
        assert "YOLOv3" in EdgeServer.from_catalog().describe()
