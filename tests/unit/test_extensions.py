"""Unit tests for the extension experiments."""


from repro.evaluation.extensions import (
    adaptation_extension,
    mobility_extension,
    multi_edge_extension,
    pathloss_extension,
    session_extension,
)


class TestMobilityExtension:
    def test_latency_grows_with_speed(self):
        result = mobility_extension()
        latencies = [float(row[2]) for row in result.rows]
        assert latencies[0] < latencies[-1]

    def test_stationary_device_pays_no_handoff(self):
        result = mobility_extension(speeds_m_per_s=(0.0, 10.0))
        assert float(result.rows[0][1]) == 0.0
        assert float(result.rows[1][1]) > 0.0

    def test_to_text_contains_headline(self):
        result = mobility_extension(speeds_m_per_s=(0.0, 5.0))
        assert "handoff" in result.to_text()


class TestPathlossExtension:
    def test_throughput_decreases_with_distance(self):
        result = pathloss_extension()
        throughputs = [float(row[1]) for row in result.rows]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_transmission_latency_increases_with_distance(self):
        result = pathloss_extension()
        transmissions = [float(row[2]) for row in result.rows]
        assert transmissions[-1] > transmissions[0]


class TestMultiEdgeExtension:
    def test_remote_inference_speeds_up_with_servers(self):
        result = multi_edge_extension(max_servers=4)
        remote = [float(row[1]) for row in result.rows]
        assert remote == sorted(remote, reverse=True)
        assert remote[-1] < remote[0]

    def test_end_to_end_gain_is_bounded(self):
        result = multi_edge_extension(max_servers=4)
        totals = [float(row[2]) for row in result.rows]
        # Encoding/transmission dominate, so the total shrinks by far less
        # than the per-segment speedup.
        assert (totals[0] - totals[-1]) / totals[0] < 0.5


class TestSessionExtension:
    def test_session_extension_reports_key_metrics(self):
        result = session_extension(n_frames=60, seed=5)
        text = result.to_text()
        assert "p99 latency" in text
        assert "battery life" in text
        assert len(result.rows) == 7


class TestAdaptationExtension:
    def test_adaptation_extension_compares_controllers(self):
        result = adaptation_extension(n_epochs=40, seed=5)
        text = result.to_text()
        assert "greedy-sweep" in text
        assert "static[" in text
        assert len(result.rows) == 4

    def test_headline_reports_quality_lift(self):
        result = adaptation_extension(n_epochs=40, seed=5)
        assert "quality" in result.headline
