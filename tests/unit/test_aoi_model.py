"""Unit tests for the AoI / RoI models (Eqs. 22-26)."""

import pytest

from repro.config.network import SensorConfig
from repro.core.aoi import AoIModel
from repro.exceptions import ModelDomainError


@pytest.fixture
def model():
    return AoIModel(buffer_service_rate_hz=2000.0)


class TestBufferTime:
    def test_eq22(self, model):
        # T = 1/(mu - lambda) with rates per ms
        assert model.average_buffer_time_ms(1000.0) == pytest.approx(1.0 / (2.0 - 1.0))

    def test_zero_arrival_rate_means_no_buffer_wait(self, model):
        assert model.average_buffer_time_ms(0.0) == 0.0

    def test_invalid_service_rate_rejected(self):
        with pytest.raises(ModelDomainError):
            AoIModel(buffer_service_rate_hz=0.0)


class TestUpdateAoI:
    def test_matched_sensor_has_constant_aoi(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=200.0, distance_m=0.0)
        values = [
            model.update_aoi_ms(sensor, n, required_update_period_ms=5.0, buffer_time_ms=0.0)
            for n in (1, 2, 3, 4)
        ]
        assert values == pytest.approx([5.0, 5.0, 5.0, 5.0])

    def test_slow_sensor_aoi_grows_linearly(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=100.0, distance_m=0.0)
        values = [
            model.update_aoi_ms(sensor, n, required_update_period_ms=5.0, buffer_time_ms=0.0)
            for n in (1, 2, 3)
        ]
        # The paper's Fig. 4(f) staircase: 10, 15, 20 ms.
        assert values == pytest.approx([10.0, 15.0, 20.0])

    def test_buffer_and_propagation_shift_aoi(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=100.0, distance_m=3e5)
        aoi = model.update_aoi_ms(sensor, 1, 5.0, buffer_time_ms=2.0)
        assert aoi == pytest.approx(10.0 + 1.0 + 2.0, abs=0.01)  # 300 km ~ 1 ms propagation

    def test_invalid_update_index_rejected(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=100.0)
        with pytest.raises(ModelDomainError):
            model.update_aoi_ms(sensor, 0, 5.0, 0.0)


class TestTimeline:
    def test_number_of_updates_matches_horizon(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=100.0)
        timeline = model.timeline(sensor, required_update_period_ms=5.0, horizon_ms=90.0)
        assert timeline.n_updates == 9
        assert timeline.times_ms[-1] == pytest.approx(90.0)

    def test_fig4f_roi_values(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=100.0, distance_m=0.0)
        fast_buffer = AoIModel(buffer_service_rate_hz=1e9)
        timeline = fast_buffer.timeline(sensor, 5.0, 40.0)
        assert timeline.aoi_ms[:3] == pytest.approx([10.0, 15.0, 20.0], abs=1e-4)
        assert timeline.roi[:3] == pytest.approx([0.5, 1.0 / 3.0, 0.25], abs=1e-4)

    def test_fast_sensor_is_fresh(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=400.0, distance_m=0.0)
        fast_buffer = AoIModel(buffer_service_rate_hz=1e9)
        timeline = fast_buffer.timeline(sensor, required_update_period_ms=5.0, horizon_ms=50.0)
        assert timeline.is_fresh

    def test_slow_sensor_goes_stale(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=66.67)
        timeline = model.timeline(sensor, 5.0, 90.0)
        assert not timeline.is_fresh
        assert timeline.final_aoi_ms > timeline.aoi_ms[0]

    def test_workload_timelines_one_per_sensor(self, model, aoi_workload):
        timelines = model.timelines_for_workload(aoi_workload)
        assert len(timelines) == len(aoi_workload.sensor_frequencies_hz)
        frequencies = {t.generation_frequency_hz for t in timelines}
        assert frequencies == set(aoi_workload.sensor_frequencies_hz)

    def test_invalid_horizon_rejected(self, model):
        sensor = SensorConfig(name="s", generation_frequency_hz=100.0)
        with pytest.raises(ModelDomainError):
            model.timeline(sensor, 5.0, 0.0)


class TestFrameAnalysis:
    def test_analyze_frame_reports_every_sensor(self, model, network):
        result = model.analyze_frame(network, updates_per_frame=3, frame_latency_ms=600.0)
        assert set(result.average_aoi_ms) == {s.name for s in network.sensors}
        assert set(result.roi) == set(result.average_aoi_ms)

    def test_required_frequency_derived_from_latency(self, model, network):
        result = model.analyze_frame(network, updates_per_frame=3, frame_latency_ms=600.0)
        assert result.required_frequency_hz == pytest.approx(3.0 / 0.6)

    def test_faster_sensors_have_lower_aoi(self, model, network):
        result = model.analyze_frame(network, updates_per_frame=3, frame_latency_ms=600.0)
        aoi_by_freq = {
            sensor.generation_frequency_hz: result.average_aoi_ms[sensor.name]
            for sensor in network.sensors
        }
        frequencies = sorted(aoi_by_freq)
        assert aoi_by_freq[frequencies[0]] > aoi_by_freq[frequencies[-1]]

    def test_fresh_and_stale_partition(self, model, network):
        result = model.analyze_frame(network, updates_per_frame=3, frame_latency_ms=600.0)
        assert set(result.fresh_sensors()) | set(result.stale_sensors()) == set(result.roi)
        assert not set(result.fresh_sensors()) & set(result.stale_sensors())

    def test_str_mentions_every_sensor(self, model, network):
        result = model.analyze_frame(network, updates_per_frame=3, frame_latency_ms=600.0)
        text = str(result)
        for sensor in network.sensors:
            assert sensor.name in text

    def test_invalid_inputs_rejected(self, model, network):
        with pytest.raises(ModelDomainError):
            model.analyze_frame(network, updates_per_frame=0, frame_latency_ms=100.0)
        with pytest.raises(ModelDomainError):
            model.analyze_frame(network, updates_per_frame=3, frame_latency_ms=0.0)
