"""Integration tests: telemetry instrumentation across the subsystems.

Pins the PR's two contracts:

* instrumented runs record the right counters/spans (cosim convergence
  accounting, fleet cache statistics, shard-snapshot merging), and
* enabling telemetry never perturbs the deterministic surfaces — manifests'
  ``metric_payload()`` and stripped snapshots are bit-identical with the
  layer on or off.
"""

import json

import pytest

from repro import telemetry
from repro.adaptive import AdaptiveRuntime, GreedyBatchSweep, HysteresisThreshold, burst_trace
from repro.cosim import run_cosim
from repro.experiments import ExperimentRunner, RunManifest, bundled_suite
from repro.fleet import FleetAnalyzer, GreedySLOAdmission, homogeneous


@pytest.fixture(autouse=True)
def _null_registry():
    telemetry.disable()
    yield
    telemetry.disable()


def _small_cosim(n_shards=1, users=8, epochs=12):
    return run_cosim(
        homogeneous(users, device="XR1"),
        HysteresisThreshold(),
        burst_trace(epochs, seed=3),
        n_shards=n_shards,
        n_edges=2,
        include_aoi=False,
    )


class TestCosimCounters:
    def test_convergence_accounting_adds_up(self):
        registry = telemetry.enable()
        report = _small_cosim()
        counters = registry.snapshot()["counters"]
        epochs = report.n_epochs
        assert counters["cosim.epochs"] == epochs
        assert (
            counters.get("cosim.epochs_converged", 0)
            + counters.get("cosim.epochs_unconverged", 0)
            == epochs
        )
        assert counters.get("cosim.epochs_oscillating", 0) <= counters.get(
            "cosim.epochs_unconverged", 0
        )
        assert counters.get("cosim.epochs_converged", 0) == sum(report.converged)
        assert counters["cosim.best_response_iterations"] == sum(report.iterations)

    def test_iterations_histogram_covers_every_epoch(self):
        registry = telemetry.enable()
        report = _small_cosim()
        histogram = registry.snapshot()["histograms"]["cosim.iterations_per_epoch"]
        assert histogram["count"] == report.n_epochs
        assert histogram["max"] == max(report.iterations)

    def test_run_span_carries_geometry(self):
        registry = telemetry.enable()
        _small_cosim(users=8, epochs=12)
        node = registry.snapshot()["spans"]["cosim.run"]
        assert node["count"] == 1
        assert node["counters"]["users"] == 8
        assert node["counters"]["epochs"] == 12

    def test_disabled_runs_record_nothing(self):
        _small_cosim()
        assert telemetry.get().snapshot()["counters"] == {}

    def test_convergence_rate_property_matches_flags(self):
        report = _small_cosim()
        assert report.convergence_rate == sum(report.converged) / report.n_epochs


class TestShardedSnapshotMerge:
    def test_shard_epochs_merge_into_the_parent_registry(self):
        registry = telemetry.enable()
        report = _small_cosim(n_shards=2, users=8, epochs=12)
        snapshot = registry.snapshot()
        # Two shards of 6 users each, 12 epochs per shard.
        assert snapshot["counters"]["cosim.epochs"] == 24
        assert snapshot["spans"]["cosim.run"]["count"] == 2
        sharded = snapshot["spans"]["cosim.run_sharded"]
        assert sharded["count"] == 1
        assert sharded["children"]["cosim.merge_shards"]["count"] == 1
        assert report.n_shards == 2

    def test_sharded_convergence_rate_spans_all_shards(self):
        report = _small_cosim(n_shards=2, users=8, epochs=12)
        flags = [flag for shard in report.shards for flag in shard.converged]
        assert report.convergence_rate == sum(flags) / len(flags)

    def test_sharded_counters_match_serial_counters(self):
        registry = telemetry.enable()
        _small_cosim(n_shards=2, users=8, epochs=12)
        sharded = registry.snapshot()["counters"]
        registry = telemetry.enable()
        for shard_users in (4, 4):
            run_cosim(
                homogeneous(shard_users, device="XR1"),
                HysteresisThreshold(),
                burst_trace(12, seed=3),
                n_edges=2,
                include_aoi=False,
            )
        serial = registry.snapshot()["counters"]
        # Shard populations are round-robin halves of the same homogeneous
        # fleet, so per-shard dynamics equal the 4-user serial runs.  The
        # sharded run additionally books its pool tasks under exec.*.
        assert sharded.pop("exec.tasks") == 2
        assert sharded == serial


class TestFleetCacheStats:
    def _analyzer(self, users=12):
        return FleetAnalyzer(
            homogeneous(users, device="XR1"),
            policy=GreedySLOAdmission(slo_ms=800.0),
            slo_ms=800.0,
            include_aoi=False,
        )

    def test_cache_stats_shape_and_determinism(self):
        analyzer = self._analyzer()
        analyzer.analyze()
        stats = analyzer.cache_stats()
        assert set(stats) == {"models", "reports", "service_times", "mode_variants"}
        for entry in stats.values():
            assert set(entry) == {"hits", "misses", "currsize"}
            assert entry["currsize"] >= 0
        # A homogeneous fleet shares one model and hits the memos hard.
        assert stats["models"]["currsize"] == 1
        assert stats["reports"]["hits"] > 0
        other = self._analyzer()
        other.analyze()
        assert other.cache_stats() == stats

    def test_analyze_publishes_gauges_when_enabled(self):
        registry = telemetry.enable()
        analyzer = self._analyzer()
        analyzer.analyze()
        gauges = registry.snapshot()["gauges"]
        stats = analyzer.cache_stats()
        assert gauges["fleet.cache.models.currsize"] == stats["models"]["currsize"]
        assert gauges["fleet.cache.reports.hits"] == stats["reports"]["hits"]
        assert registry.snapshot()["spans"]["fleet.analyze"]["count"] == 1

    def test_adaptive_counters_and_prewarm_span(self):
        registry = telemetry.enable()
        runtime = AdaptiveRuntime(trace=burst_trace(20, seed=0), device="XR1")
        report = runtime.run(GreedyBatchSweep())
        snapshot = registry.snapshot()
        assert snapshot["counters"]["adaptive.epochs"] == 20
        assert snapshot["counters"]["adaptive.switches"] == report.switch_count
        prewarm = snapshot["spans"]["adaptive.prewarm"]
        assert prewarm["count"] == 1
        assert prewarm["counters"]["distinct_keys"] > 0
        assert "batch.evaluate_points" in prewarm["children"]


def _suite_and_scenarios():
    suite = bundled_suite()
    names = [spec.name for spec in suite if spec.kind == "analyze"][:2]
    assert names, "bundled suite should carry analyze scenarios"
    return suite, names


class TestManifestTelemetry:
    def test_enabled_run_embeds_a_snapshot_and_round_trips(self, tmp_path):
        suite, names = _suite_and_scenarios()
        telemetry.enable()
        manifest = ExperimentRunner(suite, manifest_dir=None).run(
            select=names, write=False
        )
        assert manifest.telemetry is not None
        spans = manifest.telemetry["spans"]["experiments.run"]
        assert spans["counters"]["scenarios"] == len(names)
        for name in names:
            assert f"experiments.scenario.{name}" in spans["children"]
        path = manifest.save(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.telemetry == manifest.telemetry
        assert loaded.metric_payload() == manifest.metric_payload()

    def test_disabled_run_has_no_telemetry_section(self):
        suite, names = _suite_and_scenarios()
        manifest = ExperimentRunner(suite, manifest_dir=None).run(
            select=names, write=False
        )
        assert manifest.telemetry is None
        assert "telemetry" not in manifest.to_dict()

    def test_metric_payload_identical_with_and_without_telemetry(self):
        suite, names = _suite_and_scenarios()
        disabled = ExperimentRunner(suite, manifest_dir=None).run(
            select=names, write=False
        )
        telemetry.enable()
        enabled = ExperimentRunner(suite, manifest_dir=None).run(
            select=names, write=False
        )
        assert json.dumps(enabled.metric_payload(), sort_keys=True) == json.dumps(
            disabled.metric_payload(), sort_keys=True
        )

    def test_two_enabled_runs_agree_modulo_timing(self):
        suite, names = _suite_and_scenarios()
        snapshots = []
        for _ in range(2):
            registry = telemetry.enable()
            ExperimentRunner(suite, manifest_dir=None).run(select=names, write=False)
            snapshots.append(registry.snapshot())
            telemetry.disable()
        assert telemetry.strip_timing(snapshots[0]) == telemetry.strip_timing(
            snapshots[1]
        )

    def test_pooled_run_merges_worker_snapshots(self):
        suite, names = _suite_and_scenarios()
        registry = telemetry.enable()
        manifest = ExperimentRunner(suite, manifest_dir=None).run(
            select=names, processes=2, write=False
        )
        snapshot = registry.snapshot()
        run_node = snapshot["spans"]["experiments.run"]
        for name in names:
            # Worker spans merge to the registry root, beside experiments.run.
            assert (
                f"experiments.scenario.{name}" in snapshot["spans"]
                or f"experiments.scenario.{name}" in run_node["children"]
            )
        assert snapshot["counters"]["experiments.scenarios"] == len(names)
        assert manifest.telemetry is not None

    def test_cosim_scenarios_gate_convergence_rate(self):
        suite = bundled_suite()
        for name in ("cosim_burst_hysteresis", "cosim_step_sharded"):
            spec = next(spec for spec in suite if spec.name == name)
            assert "convergence_rate" in spec.expected
