"""Unit tests for the lint engine: diagnostics, suppressions, baseline."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Baseline,
    Diagnostic,
    LintEngine,
    is_suppressed,
    run_lint,
    save_report,
    suppressed_rules,
)
from repro.analysis.engine import SYNTAX_RULE
from repro.exceptions import ConfigurationError

#: A snippet with exactly one REP001 finding on line 4.
VIOLATING = """\
import time


def stamp():
    return time.time()
"""


def write(tmp_path, rel, content):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


class TestDiagnostic:
    def test_round_trips_through_dict(self):
        diagnostic = Diagnostic("REP001", "src/repro/a.py", 7, "boom")
        assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic

    def test_format_includes_location_rule_and_message(self):
        rendered = Diagnostic("REP004", "src/repro/a.py", 3, "bad name").format()
        assert rendered == "src/repro/a.py:3: REP004 bad name"

    def test_whole_file_findings_omit_the_line(self):
        rendered = Diagnostic("REP005", "scenarios/x.toml", 0, "broken").format()
        assert rendered.startswith("scenarios/x.toml: REP005")


class TestSuppressions:
    def test_bare_noqa_suppresses_every_rule(self):
        rules = suppressed_rules("x = 1  # repro: noqa\n")
        assert rules == {1: None}
        diagnostic = Diagnostic("REP001", "f.py", 1, "m")
        assert is_suppressed(diagnostic, rules)

    def test_scoped_noqa_suppresses_only_listed_rules(self):
        rules = suppressed_rules("x = 1  # repro: noqa[REP001,REP004]\n")
        assert rules[1] == frozenset({"REP001", "REP004"})
        assert is_suppressed(Diagnostic("REP001", "f.py", 1, "m"), rules)
        assert not is_suppressed(Diagnostic("REP002", "f.py", 1, "m"), rules)

    def test_other_lines_stay_unsuppressed(self):
        rules = suppressed_rules("x = 1  # repro: noqa\ny = 2\n")
        assert not is_suppressed(Diagnostic("REP001", "f.py", 2, "m"), rules)

    def test_plain_ruff_noqa_is_not_a_repro_suppression(self):
        assert suppressed_rules("x = 1  # noqa: F401\n") == {}

    def test_engine_honours_inline_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/repro/mod.py",
            "import time\n\n\ndef stamp():\n    return time.time()  # repro: noqa[REP001]\n",
        )
        report = LintEngine(root=tmp_path, rules=["REP001"]).run(["src"])
        assert report.diagnostics == []
        assert report.suppressed_count == 1
        assert report.exit_code == 0


class TestBaseline:
    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_contains_matches_without_line_numbers(self):
        baseline = Baseline(
            [{"rule": "REP001", "path": "src/repro/a.py", "message": "m"}]
        )
        assert baseline.contains(Diagnostic("REP001", "src/repro/a.py", 999, "m"))
        assert not baseline.contains(Diagnostic("REP002", "src/repro/a.py", 999, "m"))

    def test_malformed_baseline_is_refused(self, tmp_path):
        path = write(tmp_path, "baseline.json", json.dumps({"entries": [{"rule": "X"}]}))
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_version_mismatch_is_refused(self, tmp_path):
        path = write(tmp_path, "baseline.json", json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_engine_grandfathers_baselined_findings(self, tmp_path):
        write(tmp_path, "src/repro/mod.py", VIOLATING)
        baseline_path = tmp_path / "baseline.json"
        engine = LintEngine(root=tmp_path, rules=["REP001"], baseline_path=baseline_path)
        first = engine.run(["src"])
        assert first.exit_code == 1 and len(first.diagnostics) == 1

        engine.write_baseline(["src"])
        second = engine.run(["src"])
        assert second.exit_code == 0
        assert second.baselined_count == 1
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 1
        assert payload["entries"][0]["rule"] == "REP001"
        assert "justification" in payload["entries"][0]

    def test_stale_baseline_entries_are_reported(self, tmp_path):
        write(tmp_path, "src/repro/mod.py", "x = 1\n")
        baseline_path = write(
            tmp_path,
            "baseline.json",
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"rule": "REP001", "path": "src/repro/mod.py", "message": "gone"}
                    ],
                }
            ),
        )
        report = LintEngine(
            root=tmp_path, rules=["REP001"], baseline_path=baseline_path
        ).run(["src"])
        assert report.exit_code == 0
        assert len(report.stale_baseline) == 1
        assert "stale baseline entry" in report.to_text()


class TestEngine:
    def test_collect_skips_caches_and_results(self, tmp_path):
        write(tmp_path, "src/repro/good.py", "x = 1\n")
        write(tmp_path, "src/repro/__pycache__/junk.py", "x = 1\n")
        write(tmp_path, "results/figure.py", "x = 1\n")
        engine = LintEngine(root=tmp_path)
        files = engine.collect(["src", "results"])
        assert [engine._rel_path(path) for path in files] == ["src/repro/good.py"]

    def test_default_paths_only_include_existing_trees(self, tmp_path):
        write(tmp_path, "src/repro/good.py", "x = 1\n")
        report = LintEngine(root=tmp_path).run()
        assert report.files_checked == 1

    def test_unknown_path_is_refused(self, tmp_path):
        with pytest.raises(ConfigurationError):
            LintEngine(root=tmp_path).collect(["nope"])

    def test_unknown_rule_is_refused(self, tmp_path):
        with pytest.raises(ConfigurationError):
            LintEngine(root=tmp_path, rules=["REP999"]).run([])

    def test_syntax_errors_surface_as_rep000(self, tmp_path):
        write(tmp_path, "src/repro/broken.py", "def broken(:\n")
        report = LintEngine(root=tmp_path).run(["src"])
        assert report.exit_code == 1
        assert report.diagnostics[0].rule == SYNTAX_RULE

    def test_diagnostics_sorted_by_path_line_rule(self, tmp_path):
        write(tmp_path, "src/repro/b.py", VIOLATING)
        write(tmp_path, "src/repro/a.py", VIOLATING)
        report = run_lint(["src"], root=tmp_path, rules=["REP001"])
        assert [d.path for d in report.diagnostics] == [
            "src/repro/a.py",
            "src/repro/b.py",
        ]

    def test_json_report_shape(self, tmp_path):
        write(tmp_path, "src/repro/mod.py", VIOLATING)
        report = run_lint(["src"], root=tmp_path, rules=["REP001"])
        out = tmp_path / "report.json"
        save_report(report, out)
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["passed"] is False
        assert payload["rules"] == ["REP001"]
        assert payload["diagnostics"][0]["rule"] == "REP001"
        assert payload["files_checked"] == 1

    def test_clean_tree_passes(self, tmp_path):
        write(tmp_path, "src/repro/mod.py", "def f():\n    return 1\n")
        report = run_lint(["src"], root=tmp_path)
        assert report.exit_code == 0
        assert report.to_dict()["passed"] is True
