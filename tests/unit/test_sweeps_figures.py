"""Unit tests for the sweep comparison and figure generators (quick sweeps)."""

import pytest

from repro.config.application import ExecutionMode
from repro.evaluation.figures import (
    FigureContext,
    figure_4a,
    figure_4e,
    figure_4f,
    figure_5a,
)
from repro.evaluation.sweeps import run_sweep_comparison
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def context():
    return FigureContext(quick=True)


class TestSweepComparison:
    def test_invalid_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep_comparison(metric="throughput", mode=ExecutionMode.LOCAL)

    def test_comparison_structure(self, context):
        comparison = context.comparison("latency", ExecutionMode.LOCAL)
        sweep = context.sweep_config
        assert len(comparison.series) == len(sweep.cpu_freqs_ghz)
        for series in comparison.series:
            assert len(series.ground_truth) == len(sweep.frame_sides_px)
            assert len(series.model) == len(sweep.frame_sides_px)

    def test_rows_flatten_all_points(self, context):
        comparison = context.comparison("latency", ExecutionMode.LOCAL)
        assert len(comparison.rows()) == context.sweep_config.n_points

    def test_series_lookup(self, context):
        comparison = context.comparison("latency", ExecutionMode.LOCAL)
        cpu = context.sweep_config.cpu_freqs_ghz[0]
        assert comparison.series_for(cpu).cpu_freq_ghz == cpu
        with pytest.raises(KeyError):
            comparison.series_for(99.0)

    def test_ground_truth_increases_with_frame_size(self, context):
        comparison = context.comparison("latency", ExecutionMode.LOCAL)
        for series in comparison.series:
            assert series.ground_truth[0] < series.ground_truth[-1]

    def test_model_error_is_small(self, context):
        comparison = context.comparison("latency", ExecutionMode.LOCAL)
        assert comparison.mean_error_percent < 10.0

    def test_energy_comparison_reuses_ground_truth(self, context):
        energy = context.comparison("energy", ExecutionMode.LOCAL)
        assert energy.metric == "energy"
        assert energy.mean_error_percent < 12.0


class TestFigures:
    def test_figure_4a_structure(self, context):
        figure = figure_4a(context=context)
        assert figure.figure_id == "4a"
        assert figure.paper_mean_error_percent == pytest.approx(2.74)
        assert "mean error" in figure.to_text()

    def test_figure_4e_slow_sensor_ages_faster(self):
        figure = figure_4e()
        by_frequency = {t.generation_frequency_hz: t for t in figure.analytical}
        assert by_frequency[66.67].final_aoi_ms > by_frequency[200.0].final_aoi_ms
        assert figure.mean_error_percent() < 20.0

    def test_figure_4f_staircase_and_roi(self):
        figure = figure_4f()
        timeline = figure.analytical[0]
        assert list(timeline.aoi_ms[:3]) == pytest.approx([10.0, 15.0, 20.0], abs=1.5)
        assert list(timeline.roi[:3]) == pytest.approx([0.5, 0.33, 0.25], abs=0.05)

    def test_figure_5a_ranking(self, context):
        figure = figure_5a(context=context)
        assert figure.mean_accuracy("Proposed") > figure.mean_accuracy("LEAF")
        assert figure.mean_accuracy("Proposed") > figure.mean_accuracy("FACT")
        assert "Proposed" in figure.to_text()
