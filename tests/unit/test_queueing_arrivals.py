"""Unit tests for arrival/service process generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.queueing.arrivals import (
    DeterministicProcess,
    PoissonProcess,
    merge_arrival_times,
)


class TestPoissonProcess:
    def test_mean_interarrival(self):
        assert PoissonProcess(0.2).mean_interarrival_ms == pytest.approx(5.0)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0)

    def test_interarrival_sample_count(self, rng):
        gaps = PoissonProcess(0.1).sample_interarrival_times(100, rng)
        assert len(gaps) == 100
        assert np.all(gaps > 0.0)

    def test_sampled_rate_close_to_nominal(self, rng):
        process = PoissonProcess(0.5)
        times = process.sample_arrival_times(20_000.0, rng)
        empirical_rate = len(times) / 20_000.0
        assert empirical_rate == pytest.approx(0.5, rel=0.05)

    def test_arrival_times_sorted_and_within_horizon(self, rng):
        times = PoissonProcess(0.3).sample_arrival_times(1000.0, rng)
        assert np.all(np.diff(times) >= 0.0)
        assert times[-1] <= 1000.0

    def test_zero_horizon_rejected(self, rng):
        with pytest.raises(ValueError):
            PoissonProcess(0.3).sample_arrival_times(0.0, rng)


class TestDeterministicProcess:
    def test_rate_is_reciprocal_of_period(self):
        assert DeterministicProcess(period_ms=4.0).rate_per_ms == pytest.approx(0.25)

    def test_events_are_periodic(self):
        times = DeterministicProcess(period_ms=10.0).sample_arrival_times(35.0)
        assert list(times) == pytest.approx([10.0, 20.0, 30.0])

    def test_offset_shifts_first_event(self):
        times = DeterministicProcess(period_ms=10.0, offset_ms=3.0).sample_arrival_times(25.0)
        assert times[0] == pytest.approx(3.0)

    def test_rejects_zero_period(self):
        with pytest.raises(ConfigurationError):
            DeterministicProcess(period_ms=0.0)


class TestMerge:
    def test_merge_is_sorted(self, rng):
        a = PoissonProcess(0.2).sample_arrival_times(500.0, rng)
        b = DeterministicProcess(period_ms=7.0).sample_arrival_times(500.0)
        merged = merge_arrival_times([a, b])
        assert len(merged) == len(a) + len(b)
        assert np.all(np.diff(merged) >= 0.0)

    def test_merge_of_empty_streams(self):
        assert len(merge_arrival_times([np.array([]), np.array([])])) == 0

    def test_merge_ignores_empty_members(self):
        merged = merge_arrival_times([np.array([]), np.array([1.0, 2.0])])
        assert list(merged) == [1.0, 2.0]
