"""Unit tests for the network / sensor / handoff configuration."""

import pytest

from repro import units
from repro.config.network import HandoffConfig, NetworkConfig, SensorConfig
from repro.exceptions import ConfigurationError


class TestSensorConfig:
    def test_generation_period(self):
        sensor = SensorConfig(name="s", generation_frequency_hz=200.0)
        assert sensor.generation_period_ms == pytest.approx(5.0)

    def test_default_arrival_rate_equals_generation_rate(self):
        sensor = SensorConfig(name="s", generation_frequency_hz=120.0)
        assert sensor.effective_arrival_rate_hz == pytest.approx(120.0)

    def test_explicit_arrival_rate_wins(self):
        sensor = SensorConfig(
            name="s", generation_frequency_hz=120.0, arrival_rate_hz=60.0
        )
        assert sensor.effective_arrival_rate_hz == pytest.approx(60.0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            SensorConfig(name="s", generation_frequency_hz=0.0)


class TestHandoffConfig:
    def test_disabled_by_default(self):
        assert not HandoffConfig().enabled

    def test_probability_must_be_fraction(self):
        with pytest.raises(ConfigurationError):
            HandoffConfig(handoff_probability=1.5)

    def test_cell_radius_positive(self):
        with pytest.raises(ConfigurationError):
            HandoffConfig(cell_radius_m=0.0)


class TestNetworkConfig:
    def test_default_has_three_sensors(self, network):
        assert network.n_sensors == 3

    def test_sensor_names_must_be_unique(self):
        sensors = (
            SensorConfig(name="dup", generation_frequency_hz=10.0),
            SensorConfig(name="dup", generation_frequency_hz=20.0),
        )
        with pytest.raises(ConfigurationError, match="unique"):
            NetworkConfig(sensors=sensors)

    def test_total_sensor_arrival_rate(self, network):
        expected = sum(s.generation_frequency_hz for s in network.sensors)
        assert network.total_sensor_arrival_rate_hz == pytest.approx(expected)

    def test_edge_propagation_delay(self, network):
        assert network.edge_propagation_delay_ms == pytest.approx(
            units.propagation_delay_ms(network.edge_distance_m)
        )

    def test_with_throughput(self, network):
        assert network.with_throughput(50.0).throughput_mbps == pytest.approx(50.0)

    def test_with_sensors_replaces_population(self, network):
        single = (SensorConfig(name="only", generation_frequency_hz=10.0),)
        assert network.with_sensors(single).n_sensors == 1

    def test_rejects_zero_throughput(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(throughput_mbps=0.0)

    def test_empty_sensor_population_allowed(self):
        assert NetworkConfig(sensors=()).n_sensors == 0
        assert NetworkConfig(sensors=()).total_sensor_arrival_rate_hz == 0.0


class TestWorkloadAndSweep:
    def test_sweep_points_count(self, quick_sweep):
        assert quick_sweep.n_points == len(list(quick_sweep.points()))

    def test_paper_sweep_is_5_by_3(self):
        from repro.config.workload import SweepConfig

        sweep = SweepConfig.paper_default()
        assert sweep.n_points == 15

    def test_workload_required_frequency(self, aoi_workload):
        assert aoi_workload.required_update_frequency_hz == pytest.approx(200.0)

    def test_workload_distance_length_mismatch_rejected(self):
        from repro.config.workload import WorkloadConfig

        with pytest.raises(ConfigurationError):
            WorkloadConfig(sensor_frequencies_hz=(10.0, 20.0), sensor_distances_m=(1.0,))
