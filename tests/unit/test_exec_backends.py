"""Conformance suite for :mod:`repro.exec` execution backends.

One parametrized suite holds every backend — serial, thread, process — to
the same contract: results in payload order, identical telemetry counters
on a clean run (modulo wall time, which lives in spans), and salvage that
reproduces the all-serial result bit for bit when a worker dies, hangs, or
raises.  The call-site tests at the bottom pin the same property end to
end: a sharded co-simulation and a pooled experiment suite are
backend-invariant.
"""

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import telemetry
from repro.adaptive import HysteresisThreshold, burst_trace
from repro.cosim import run_cosim
from repro.exceptions import ConfigurationError
from repro.exec import (
    CHAOS_KILL_ENV,
    DEFAULT_BACKEND,
    EXEC_BACKEND_ENV,
    ChaosKilledTask,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    ThreadPoolBackend,
    backend_names,
    resolve_backend,
)
from repro.experiments import ExperimentRunner, ScenarioSpec, ScenarioSuite
from repro.fleet import homogeneous

BACKEND_NAMES = ("serial", "thread", "process")


@pytest.fixture(autouse=True)
def _null_registry():
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    return resolve_backend(request.param)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class _LazyFuture:
    """Resolved at ``result()`` time: a scripted exception wins, otherwise
    the task runs in-process."""

    def __init__(self, fn, args, error=None):
        self._fn = fn
        self._args = args
        self._error = error

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._fn(self._args)

    def done(self):
        return True

    def cancelled(self):
        return False


class _FakePool:
    """Executor double whose failures are scripted per task index."""

    def __init__(self, plan):
        self.plan = plan
        self.submitted = 0

    def __call__(self, max_workers):  # pool_factory signature
        return self

    def submit(self, fn, args):
        index = self.submitted
        self.submitted += 1
        return _LazyFuture(fn, args, error=self.plan.get(index))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestContract:
    """The shared semantics every backend must honour."""

    def test_results_in_payload_order(self, backend):
        payloads = [5, 1, 4, 2, 3]
        assert backend.map_tasks(_square, payloads, max_workers=3) == [
            _square(p) for p in payloads
        ]

    def test_empty_payloads(self, backend):
        assert backend.map_tasks(_square, [], max_workers=4) == []

    def test_single_task(self, backend):
        assert backend.map_tasks(_square, [7], max_workers=4) == [49]

    def test_submit_single_payload(self, backend):
        assert backend.submit(_square, 6) == 36

    def test_max_workers_below_one_rejected(self, backend):
        with pytest.raises(ConfigurationError):
            backend.map_tasks(_square, [1], max_workers=0)

    def test_non_positive_timeout_rejected(self, backend):
        with pytest.raises(ConfigurationError):
            backend.map_tasks(_square, [1, 2], max_workers=2, timeout_s=0.0)

    def test_clean_run_counters_identical_across_backends(self):
        # The counter names (and values) are part of the contract: a clean
        # run records exactly the same counters on every backend, so merged
        # telemetry is backend-invariant modulo wall time.
        snapshots = {}
        for name in BACKEND_NAMES:
            registry = telemetry.enable()
            resolve_backend(name).map_tasks(
                _square, [1, 2, 3, 4], max_workers=2, label="conf"
            )
            snapshots[name] = registry.snapshot()["counters"]
            telemetry.disable()
        assert snapshots["serial"] == {"conf.tasks": 4}
        assert snapshots["thread"] == snapshots["serial"]
        assert snapshots["process"] == snapshots["serial"]


class TestScriptedSalvage:
    """Worker death injected through a scripted executor (no real pools)."""

    @pytest.mark.parametrize(
        "backend_cls, error",
        [
            (ProcessPoolBackend, BrokenProcessPool("worker died")),
            (ThreadPoolBackend, concurrent.futures.BrokenExecutor("dead")),
        ],
        ids=["process", "thread"],
    )
    def test_broken_pool_reruns_only_failed_tasks(self, backend_cls, error):
        registry = telemetry.enable()
        pool = _FakePool({1: error})
        backend = backend_cls(pool_factory=pool)
        results = backend.map_tasks(
            _square, [1, 2, 3], max_workers=3, label="t"
        )
        assert results == [1, 4, 9]
        counters = registry.snapshot()["counters"]
        assert counters["t.retry.broken_pool"] == 1
        assert counters["t.serial_reruns"] == 1
        assert counters["t.tasks"] == 3

    @pytest.mark.parametrize(
        "backend_cls", [ProcessPoolBackend, ThreadPoolBackend],
        ids=["process", "thread"],
    )
    def test_cancelled_future_joins_serial_retry(self, backend_cls):
        pool = _FakePool({0: concurrent.futures.CancelledError()})
        backend = backend_cls(pool_factory=pool)
        assert backend.map_tasks(_square, [3, 4], max_workers=2) == [9, 16]

    def test_retry_disabled_raises_first_pool_error(self):
        pool = _FakePool({1: BrokenProcessPool("worker died")})
        backend = ProcessPoolBackend(pool_factory=pool)
        with pytest.raises(BrokenProcessPool):
            backend.map_tasks(
                _square,
                [1, 2, 3],
                max_workers=3,
                retry=RetryPolicy(serial_rerun=False),
            )

    def test_retry_disabled_still_returns_clean_runs(self):
        backend = ProcessPoolBackend(pool_factory=_FakePool({}))
        results = backend.map_tasks(
            _square,
            [1, 2],
            max_workers=2,
            retry=RetryPolicy(serial_rerun=False),
        )
        assert results == [1, 4]


class TestChaosSalvage:
    """Worker death injected through the real pools via ``REPRO_CHAOS_*``."""

    def test_process_worker_kill_recovers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "1")
        registry = telemetry.enable()
        results = resolve_backend("process").map_tasks(
            _square, [1, 2, 3], max_workers=2, label="t"
        )
        assert results == [1, 4, 9]
        counters = registry.snapshot()["counters"]
        assert counters.get("t.retry.broken_pool", 0) >= 1
        # Upper bound is all tasks: under load the pool can break before
        # any future is collected (the per-task pin is in the scripted
        # salvage tests, which are deterministic).
        assert 1 <= counters["t.serial_reruns"] <= 3

    def test_thread_worker_kill_recovers(self, monkeypatch):
        # A thread worker cannot os._exit without taking the interpreter
        # down; chaos "death" is a deliberate exception, salvaged the same
        # way a genuine task error is.
        monkeypatch.setenv(CHAOS_KILL_ENV, "1")
        registry = telemetry.enable()
        results = resolve_backend("thread").map_tasks(
            _square, [1, 2, 3], max_workers=2, label="t"
        )
        assert results == [1, 4, 9]
        counters = registry.snapshot()["counters"]
        assert counters["t.retry.error"] == 1
        assert counters["t.serial_reruns"] == 1

    def test_thread_chaos_kill_raises_chaos_killed_task(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "0,1")
        pool = _FakePool({})  # scripted pool still runs the worker entry
        backend = ThreadPoolBackend(pool_factory=pool)
        with pytest.raises(ChaosKilledTask):
            backend.map_tasks(
                _boom, [1, 2], max_workers=2,
                retry=RetryPolicy(serial_rerun=False),
            )

    def test_chaos_hooks_never_reach_serial_execution(self, monkeypatch):
        # Serial execution is the reference/recovery path: killing every
        # index must not perturb it, on any backend.
        monkeypatch.setenv(CHAOS_KILL_ENV, "0,1,2")
        for name in BACKEND_NAMES:
            results = resolve_backend(name).map_tasks(
                _square, [1, 2, 3], max_workers=2
            )
            assert results == [1, 4, 9]


class TestPicklability:
    def test_process_backend_falls_back_on_unpicklable_payloads(self):
        registry = telemetry.enable()
        payloads = [lambda: 1, lambda: 2]
        results = resolve_backend("process").map_tasks(
            lambda f: f(), payloads, max_workers=2, label="t"
        )
        assert results == [1, 2]
        counters = registry.snapshot()["counters"]
        assert counters["t.fallback.unpicklable"] == 1

    def test_thread_backend_runs_unpicklable_payloads_in_pool(self):
        # Nothing crosses a process boundary, so no probe and no fallback.
        registry = telemetry.enable()
        payloads = [lambda: 1, lambda: 2]
        results = resolve_backend("thread").map_tasks(
            lambda f: f(), payloads, max_workers=2, label="t"
        )
        assert results == [1, 2]
        assert "t.fallback.unpicklable" not in registry.snapshot()["counters"]


class TestResolveBackend:
    def test_default_is_the_process_pool(self, monkeypatch):
        monkeypatch.delenv(EXEC_BACKEND_ENV, raising=False)
        assert DEFAULT_BACKEND == "process"
        assert isinstance(resolve_backend(), ProcessPoolBackend)

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "thread")
        assert isinstance(resolve_backend(), ThreadPoolBackend)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "thread")
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_name_normalised(self):
        assert isinstance(resolve_backend("  Serial "), SerialBackend)

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="process"):
            resolve_backend("cluster")

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "cluster")
        with pytest.raises(ConfigurationError):
            resolve_backend()

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_backend_names_sorted(self):
        assert backend_names() == ("process", "serial", "thread")

    def test_every_registered_backend_is_an_execution_backend(self):
        for name in backend_names():
            assert isinstance(resolve_backend(name), ExecutionBackend)


def _sharded_cosim(backend):
    return run_cosim(
        homogeneous(8, device="XR1"),
        HysteresisThreshold(),
        burst_trace(12, seed=3),
        n_shards=2,
        n_edges=2,
        include_aoi=False,
        backend=backend,
    )


class TestCallSiteInvariance:
    """The rewired seams are backend-invariant, end to end."""

    def test_sharded_cosim_bit_identical_across_backends(self):
        reference = _sharded_cosim("serial").to_dict()
        assert _sharded_cosim("thread").to_dict() == reference
        assert _sharded_cosim("process").to_dict() == reference

    def test_sharded_cosim_counters_identical_across_backends(self):
        counters = {}
        for name in BACKEND_NAMES:
            registry = telemetry.enable()
            _sharded_cosim(name)
            counters[name] = registry.snapshot()["counters"]
            telemetry.disable()
        assert counters["thread"] == counters["serial"]
        assert counters["process"] == counters["serial"]
        assert counters["serial"]["exec.tasks"] == 2

    def test_experiment_suite_backend_invariant(self):
        suite = ScenarioSuite(
            name="tiny",
            specs=(
                ScenarioSpec(name="point", kind="analyze", mode="local"),
                ScenarioSpec(
                    name="grid",
                    kind="sweep",
                    params={
                        "frame_sides_px": [300.0, 500.0],
                        "cpu_freqs_ghz": [1.0, 2.0],
                    },
                ),
            ),
        )
        runner = ExperimentRunner(suite, manifest_dir=None)
        serial = runner.run(write=False).metric_payload()
        threaded = runner.run(
            processes=2, backend="thread", write=False
        ).metric_payload()
        assert threaded == serial
