"""Unit tests for the adaptive runtime, control context and report."""

from dataclasses import replace

import numpy as np
import pytest

from repro.adaptive.controllers import GreedyBatchSweep, StaticBaseline
from repro.adaptive.runtime import (
    AdaptiveRuntime,
    CandidateEvaluation,
    ControlContext,
    candidate_quality,
    default_candidates,
)
from repro.adaptive.traces import EpochConditions, burst_trace, drift_trace
from repro.config.application import ExecutionMode
from repro.core.framework import XRPerformanceModel
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_candidates():
    return default_candidates(cpu_freqs_ghz=(2.0,), frame_sides_px=(500.0,))


@pytest.fixture(scope="module")
def small_context(small_candidates):
    return ControlContext(candidates=small_candidates, deadline_ms=700.0)


class TestCandidateQuality:
    def test_remote_beats_local_at_equal_side(self, small_candidates):
        by_mode = {p.app.inference.mode: candidate_quality(p) for p in small_candidates}
        assert by_mode[ExecutionMode.REMOTE] > by_mode[ExecutionMode.SPLIT]
        assert by_mode[ExecutionMode.SPLIT] > by_mode[ExecutionMode.LOCAL]

    def test_larger_frames_score_higher(self):
        points = default_candidates(cpu_freqs_ghz=(2.0,), frame_sides_px=(300.0, 640.0))
        local = [p for p in points if p.app.inference.mode is ExecutionMode.LOCAL]
        assert candidate_quality(local[0]) < candidate_quality(local[1])

    def test_side_factor_saturates_at_cnn_input(self):
        points = default_candidates(cpu_freqs_ghz=(2.0,), frame_sides_px=(640.0, 700.0))
        remote = [p for p in points if p.app.inference.mode is ExecutionMode.REMOTE]
        assert candidate_quality(remote[0]) == candidate_quality(remote[1])


class TestControlContext:
    def test_validation(self, small_candidates):
        with pytest.raises(ConfigurationError):
            ControlContext(candidates=(), deadline_ms=100.0)
        with pytest.raises(ConfigurationError):
            ControlContext(candidates=small_candidates, deadline_ms=0.0)
        with pytest.raises(ConfigurationError):
            ControlContext(
                candidates=small_candidates, deadline_ms=100.0, objective="karma"
            )

    def test_sweep_is_memoized(self, small_context):
        conditions = EpochConditions(
            time_ms=0.0, throughput_mbps=42.0, handoff_probability=0.05
        )
        assert small_context.sweep(conditions) is small_context.sweep(conditions)

    def test_prewarm_covers_every_epoch(self, small_candidates):
        context = ControlContext(candidates=small_candidates, deadline_ms=700.0)
        trace = burst_trace(30, seed=3)
        fresh = context.prewarm(trace)
        assert 0 < fresh <= 30
        assert context.prewarm(trace) == 0  # everything cached now

    def test_prewarmed_sweep_matches_direct_evaluation(self, small_candidates):
        trace = drift_trace(20, seed=3)
        warmed = ControlContext(candidates=small_candidates, deadline_ms=700.0)
        warmed.prewarm(trace)
        cold = ControlContext(candidates=small_candidates, deadline_ms=700.0)
        for epoch in trace:
            np.testing.assert_array_equal(
                warmed.sweep(epoch).latency_ms, cold.sweep(epoch).latency_ms
            )
            np.testing.assert_array_equal(
                warmed.sweep(epoch).energy_mj, cold.sweep(epoch).energy_mj
            )

    def test_off_grid_handoff_falls_back_to_live_sweep(self, small_candidates):
        """Conditions off the 0.005 trace grid must be evaluated live.

        The bundled generators quantize handoff probabilities, but
        hand-built or co-sim-generated conditions need not be on that grid;
        they must neither raise nor silently reuse a neighbouring grid
        point's cached arrays.
        """
        trace = drift_trace(10, seed=3)
        context = ControlContext(candidates=small_candidates, deadline_ms=700.0)
        context.prewarm(trace)
        off_grid = EpochConditions(
            time_ms=0.0, throughput_mbps=42.0, handoff_probability=0.00314159
        )
        evaluation = context.sweep(off_grid)  # no KeyError
        fresh = ControlContext(candidates=small_candidates, deadline_ms=700.0)
        np.testing.assert_array_equal(
            evaluation.latency_ms, fresh.sweep(off_grid).latency_ms
        )
        np.testing.assert_array_equal(
            evaluation.energy_mj, fresh.sweep(off_grid).energy_mj
        )

    def test_off_grid_neighbours_do_not_alias(self, small_candidates):
        context = ControlContext(candidates=small_candidates, deadline_ms=700.0)
        on_grid = EpochConditions(
            time_ms=0.0, throughput_mbps=42.0, handoff_probability=0.005
        )
        off_grid = EpochConditions(
            time_ms=0.0, throughput_mbps=42.0, handoff_probability=0.0049
        )
        cached_on = context.sweep(on_grid)
        cached_off = context.sweep(off_grid)
        # Distinct conditions must own distinct cache entries, and a higher
        # handoff probability cannot make any candidate faster.
        assert cached_on is not cached_off
        assert context.sweep(off_grid) is cached_off
        assert (cached_on.latency_ms >= cached_off.latency_ms).all()

    def test_sweep_matches_scalar_model(self, small_context):
        """The adaptive evaluation path is the scalar model, bit-for-bit."""
        conditions = EpochConditions(
            time_ms=0.0, throughput_mbps=17.0, handoff_probability=0.2
        )
        evaluation = small_context.sweep(conditions)
        for i, point in enumerate(small_context.candidates):
            handoff = replace(
                point.network.handoff, enabled=True, handoff_probability=0.2
            )
            network = replace(
                point.network, throughput_mbps=17.0, handoff=handoff
            )
            report = XRPerformanceModel(
                device=point.device, edge=point.edge, app=point.app, network=network
            ).analyze()
            assert evaluation.latency_ms[i] == report.total_latency_ms
            assert evaluation.energy_mj[i] == report.total_energy_mj


class TestSelection:
    def _evaluation(self, latency, energy):
        return CandidateEvaluation(
            latency_ms=np.asarray(latency, dtype=float),
            energy_mj=np.asarray(energy, dtype=float),
        )

    def test_quality_objective_prefers_high_quality_feasible(self, small_context):
        # Candidates are (local, remote, split); remote has top quality.
        evaluation = self._evaluation([100.0, 200.0, 300.0], [1.0, 2.0, 3.0])
        assert small_context.select(evaluation, objective="quality") == 1

    def test_latency_objective_prefers_fastest(self, small_context):
        evaluation = self._evaluation([100.0, 90.0, 300.0], [1.0, 2.0, 3.0])
        assert small_context.select(evaluation, objective="latency") == 1

    def test_energy_objective_prefers_cheapest_feasible(self, small_context):
        evaluation = self._evaluation([100.0, 200.0, 800.0], [5.0, 2.0, 0.1])
        assert small_context.select(evaluation, objective="energy") == 1

    def test_infeasible_candidates_are_excluded(self, small_context):
        evaluation = self._evaluation([100.0, 800.0, 800.0], [9.0, 1.0, 1.0])
        for objective in ("quality", "latency", "energy"):
            assert small_context.select(evaluation, objective=objective) == 0

    def test_all_infeasible_falls_back_to_least_bad(self, small_context):
        evaluation = self._evaluation([900.0, 800.0, 950.0], [1.0, 2.0, 3.0])
        assert small_context.select(evaluation) == 1

    def test_unknown_objective_rejected(self, small_context):
        evaluation = self._evaluation([100.0, 200.0, 300.0], [1.0, 2.0, 3.0])
        with pytest.raises(ConfigurationError):
            small_context.select(evaluation, objective="vibes")


class TestRuntime:
    def test_report_geometry_and_aggregates(self):
        trace = burst_trace(40, seed=1)
        runtime = AdaptiveRuntime(trace=trace)
        report = runtime.run(GreedyBatchSweep())
        assert report.n_epochs == 40
        assert len(report.chosen_indices) == 40
        assert len(report.latency_ms) == 40
        assert report.p50_latency_ms <= report.p95_latency_ms <= report.p99_latency_ms
        assert report.deadline_miss_rate == pytest.approx(
            np.mean(np.asarray(report.latency_ms) > report.deadline_ms)
        )
        assert report.switch_count == int(
            np.count_nonzero(np.diff(report.chosen_indices))
        )
        assert report.trace_name == "burst"
        assert "miss rate" in report.summary()

    def test_aoi_disabled_drops_aoi_fields(self):
        runtime = AdaptiveRuntime(trace=burst_trace(10, seed=1), include_aoi=False)
        report = runtime.run(GreedyBatchSweep())
        assert report.min_roi is None
        assert report.aoi_violation_rate is None

    def test_total_energy_integrates_frames_per_epoch(self):
        trace = burst_trace(10, seed=1)
        runtime = AdaptiveRuntime(trace=trace)
        report = runtime.run(StaticBaseline(0))
        frames_per_epoch = trace.epoch_ms / runtime.candidates[0].app.frame_period_ms
        expected = sum(report.energy_mj) * frames_per_epoch / 1e3
        assert report.total_energy_j == pytest.approx(expected)

    def test_static_report_defaults_to_best_static(self):
        runtime = AdaptiveRuntime(trace=burst_trace(30, seed=1))
        best = runtime.static_report()
        rates = runtime.static_deadline_miss_rates()
        assert best.deadline_miss_rate == pytest.approx(rates.min())

    def test_out_of_range_controller_choice_rejected(self):
        runtime = AdaptiveRuntime(trace=burst_trace(5, seed=1))
        with pytest.raises(ConfigurationError):
            runtime.run(StaticBaseline(10_000))

    def test_to_dict_is_json_compatible(self):
        import json

        runtime = AdaptiveRuntime(trace=drift_trace(10, seed=1))
        report = runtime.run(GreedyBatchSweep())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_epochs"] == 10
        assert payload["controller"] == "greedy-sweep"
