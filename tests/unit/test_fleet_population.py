"""Unit tests for the fleet population generators."""

import pytest

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.exceptions import ConfigurationError, UnknownDeviceError
from repro.fleet.population import (
    FleetPopulation,
    PoissonSessionModel,
    UserProfile,
    homogeneous,
    mixed_devices,
    mixed_workloads,
    with_mode,
)


class TestUserProfile:
    def test_default_app_is_remote_object_detection(self):
        user = UserProfile(name="u1")
        assert user.app.inference.mode is ExecutionMode.REMOTE
        assert user.wants_offload

    def test_local_profile_does_not_want_offload(self):
        app = ApplicationConfig.object_detection_default()
        user = UserProfile(name="u1", app=app)
        assert not user.wants_offload

    def test_unknown_device_rejected(self):
        with pytest.raises(UnknownDeviceError):
            UserProfile(name="u1", device="PIXEL9")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            UserProfile(name="")


class TestHomogeneous:
    def test_size_and_unique_names(self):
        population = homogeneous(10, device="XR2")
        assert population.n_users == 10
        assert len({user.name for user in population}) == 10
        assert population.device_counts == {"XR2": 10}

    def test_all_users_share_the_app(self):
        population = homogeneous(5)
        apps = {user.app for user in population}
        assert len(apps) == 1

    def test_zero_users_rejected(self):
        with pytest.raises(ConfigurationError):
            homogeneous(0)

    def test_subset(self):
        population = homogeneous(8)
        assert population.subset(3).n_users == 3
        with pytest.raises(ConfigurationError):
            population.subset(9)


class TestMixedGenerators:
    def test_mixed_devices_round_robin(self):
        population = mixed_devices(7, devices=("XR1", "XR3"))
        assert population.device_counts == {"XR1": 4, "XR3": 3}

    def test_mixed_devices_needs_devices(self):
        with pytest.raises(ConfigurationError):
            mixed_devices(4, devices=())

    def test_mixed_workloads_cycles_apps(self):
        apps = (
            ApplicationConfig(frame_side_px=300.0),
            ApplicationConfig(frame_side_px=700.0),
        )
        population = mixed_workloads(4, apps=apps)
        sides = [user.app.frame_side_px for user in population]
        assert sides == [300.0, 700.0, 300.0, 700.0]

    def test_duplicate_names_rejected(self):
        user = UserProfile(name="dup")
        with pytest.raises(ConfigurationError):
            FleetPopulation(users=(user, user))


class TestWithMode:
    def test_replaces_every_users_mode(self):
        population = with_mode(homogeneous(3), ExecutionMode.LOCAL)
        assert all(
            user.app.inference.mode is ExecutionMode.LOCAL for user in population
        )


class TestPoissonSessions:
    def test_offered_load(self):
        model = PoissonSessionModel(arrival_rate_per_min=4.0, mean_session_min=5.0)
        assert model.offered_load == pytest.approx(20.0)

    def test_trace_is_deterministic_per_seed(self):
        model = PoissonSessionModel(arrival_rate_per_min=2.0, mean_session_min=3.0)
        first = model.concurrency_trace(60.0, seed=11)
        second = model.concurrency_trace(60.0, seed=11)
        assert (first[0] == second[0]).all()
        assert (first[1] == second[1]).all()

    def test_peak_concurrency_scales_with_load(self):
        light = PoissonSessionModel(arrival_rate_per_min=1.0, mean_session_min=1.0)
        heavy = PoissonSessionModel(arrival_rate_per_min=10.0, mean_session_min=5.0)
        assert heavy.peak_concurrency(120.0, seed=3) > light.peak_concurrency(
            120.0, seed=3
        )

    def test_population_is_at_least_one_user(self):
        model = PoissonSessionModel(arrival_rate_per_min=0.001, mean_session_min=0.001)
        population = model.population(1.0, seed=0)
        assert population.n_users >= 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonSessionModel(arrival_rate_per_min=0.0, mean_session_min=1.0)
        with pytest.raises(ConfigurationError):
            PoissonSessionModel(arrival_rate_per_min=1.0, mean_session_min=-2.0)
