"""Unit tests for the simulated testbed orchestration."""

import pytest

from repro.config.application import ExecutionMode
from repro.core.coefficients import CoefficientSet
from repro.core.segments import Segment
from repro.simulation.testbed import SimulatedTestbed, truth_coefficients


class TestTruthCoefficients:
    def test_exact_coefficients_reproduce_truth_surfaces(self, truth):
        coefficients = truth_coefficients(truth, "XR2")
        for fc in (1.0, 2.0, 3.0):
            expected = truth.compute_capability(fc, 0.8, 0.8, device_name="XR2")
            assert coefficients.resource.evaluate(fc, 0.8, 0.8) == pytest.approx(expected)
            expected_power = truth.mean_power_w(fc, 0.8, 0.8, device_name="XR2")
            assert coefficients.power.evaluate(fc, 0.8, 0.8) == pytest.approx(expected_power)

    def test_exact_coefficients_source_marked(self, truth):
        assert truth_coefficients(truth, "XR1").source == "truth"

    def test_no_device_uses_nominal_surface(self, truth):
        nominal = truth_coefficients(truth, None)
        assert nominal.resource.evaluate(2.0, 0.8, 1.0) == pytest.approx(
            truth.compute_capability(2.0, 0.8, 1.0)
        )

    def test_returns_coefficient_set(self, truth):
        assert isinstance(truth_coefficients(truth, "XR3"), CoefficientSet)


class TestRuns:
    def test_run_averages_repetitions(self, quick_testbed, app, network):
        run = quick_testbed.run(app, network=network, n_frames=5, repetitions=2)
        assert len(run.trace) == 10
        assert run.mean_latency_ms > 0.0
        assert run.device_name == "XR2"

    def test_run_rejects_zero_repetitions(self, quick_testbed, app):
        with pytest.raises(ValueError):
            quick_testbed.run(app, repetitions=0)

    def test_segment_latency_accessor(self, quick_testbed, app, network):
        run = quick_testbed.run(app, network=network, n_frames=5, repetitions=1)
        assert run.segment_latency_ms(Segment.RENDERING) > 0.0
        assert run.segment_latency_ms(Segment.ENCODING) == 0.0

    def test_sweep_covers_every_point(self, quick_testbed, quick_sweep, app, network):
        results = quick_testbed.sweep(sweep=quick_sweep, app=app, network=network)
        assert set(results) == set(quick_sweep.points())

    def test_sweep_latency_increases_with_frame_size(self, quick_testbed, quick_sweep, app, network):
        results = quick_testbed.sweep(sweep=quick_sweep, app=app, network=network)
        cpu = quick_sweep.cpu_freqs_ghz[0]
        sides = quick_sweep.frame_sides_px
        assert results[(cpu, sides[0])].mean_latency_ms < results[(cpu, sides[-1])].mean_latency_ms

    def test_remote_sweep_uses_remote_mode(self, quick_testbed, quick_sweep, app, network):
        results = quick_testbed.sweep(
            sweep=quick_sweep, app=app, network=network, mode=ExecutionMode.REMOTE
        )
        any_run = next(iter(results.values()))
        assert any_run.app.inference.mode is ExecutionMode.REMOTE

    def test_reference_run_is_remote_by_default(self, quick_testbed, app, network):
        reference = quick_testbed.reference_run(app=app, network=network, n_frames=5)
        assert reference.app.inference.mode is ExecutionMode.REMOTE

    def test_device_by_spec(self, device_spec):
        testbed = SimulatedTestbed(device=device_spec)
        assert testbed.device is device_spec

    def test_expected_breakdown_exposed(self, quick_testbed, app, network):
        breakdown = quick_testbed.expected_breakdown(app, network)
        assert breakdown.total_ms > 0.0
