"""Unit tests for report rendering helpers and the Table I/II reproduction."""

import pytest

from repro.evaluation.report import format_float, format_table, results_directory, save_text
from repro.evaluation.tables import table_1, table_2


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table([("a", "1"), ("longer", "2")], headers=("name", "value"))
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) >= len("longer") for line in lines[2:])

    def test_handles_numbers(self):
        text = format_table([(1, 2.5)], headers=("a", "b"))
        assert "2.5" in text

    def test_format_float(self):
        assert format_float(3.14159, digits=3) == "3.142"


class TestPersistence:
    def test_save_text_creates_file(self, tmp_path):
        path = save_text("hello.txt", "content", base=str(tmp_path / "results"))
        assert path.read_text() == "content\n"

    def test_results_directory_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "artefacts"))
        directory = results_directory()
        assert directory.exists()
        assert directory.name == "artefacts"

    def test_empty_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_text("", "x", base=str(tmp_path))


class TestTableReproductions:
    def test_table_one_has_nine_rows(self):
        table = table_1()
        assert table.n_rows == 9  # 7 XR devices + 2 edge servers
        assert table.table_id == "I"

    def test_table_one_mentions_every_device(self):
        text = table_1().to_text()
        for name in ("XR1", "XR7", "EDGE-AGX", "Huawei Mate 40 Pro", "Meta Quest 2"):
            assert name in text

    def test_table_two_has_eleven_rows(self):
        table = table_2()
        assert table.n_rows == 11
        assert table.table_id == "II"

    def test_table_two_mentions_yolo_and_mobilenet(self):
        text = table_2().to_text()
        assert "YOLOv3" in text
        assert "MobileNetv2_300 Float" in text
        assert "210" in text  # YOLOv3 storage size
