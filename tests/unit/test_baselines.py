"""Unit tests for the FACT and LEAF baseline models."""

import pytest

from repro.baselines.fact import FACTModel
from repro.baselines.leaf import LEAFModel
from repro.exceptions import ModelDomainError


@pytest.fixture(scope="module")
def reference_run(quick_testbed):
    return quick_testbed.reference_run(n_frames=10)


@pytest.fixture
def calibrated_fact(reference_run, network):
    model = FACTModel()
    model.calibrate(reference_run, network)
    return model


@pytest.fixture
def calibrated_leaf(reference_run, network):
    model = LEAFModel()
    model.calibrate(reference_run, network)
    return model


class TestCalibrationGate:
    def test_uncalibrated_fact_raises(self, remote_app):
        with pytest.raises(ModelDomainError):
            FACTModel().latency_ms(remote_app)

    def test_uncalibrated_leaf_raises(self, remote_app):
        with pytest.raises(ModelDomainError):
            LEAFModel().energy_mj(remote_app)

    def test_calibration_flag(self, calibrated_fact, calibrated_leaf):
        assert calibrated_fact.is_calibrated
        assert calibrated_leaf.is_calibrated


class TestFACT:
    def test_reproduces_reference_point(self, calibrated_fact, reference_run, network):
        app = reference_run.app
        assert calibrated_fact.latency_ms(app, network) == pytest.approx(
            reference_run.mean_latency_ms, rel=0.02
        )
        assert calibrated_fact.energy_mj(app, network) == pytest.approx(
            reference_run.mean_energy_mj, rel=0.02
        )

    def test_latency_scales_linearly_with_frame_size(self, calibrated_fact, reference_run, network):
        app = reference_run.app
        small = calibrated_fact.latency_ms(app.with_frame_side(250.0), network)
        large = calibrated_fact.latency_ms(app.with_frame_side(1000.0), network)
        assert large > small

    def test_latency_scales_inversely_with_cpu_clock(self, calibrated_fact, reference_run, network):
        app = reference_run.app
        slow = calibrated_fact.latency_ms(app.with_cpu_freq(1.0), network)
        fast = calibrated_fact.latency_ms(app.with_cpu_freq(3.0), network)
        assert slow > fast

    def test_energy_proportional_to_latency(self, calibrated_fact, reference_run, network):
        app = reference_run.app.with_frame_side(350.0)
        ratio = calibrated_fact.energy_mj(app, network) / calibrated_fact.latency_ms(app, network)
        reference_ratio = reference_run.mean_energy_mj / reference_run.mean_latency_ms
        assert ratio == pytest.approx(reference_ratio)


class TestLEAF:
    def test_reproduces_reference_point(self, calibrated_leaf, reference_run):
        app = reference_run.app
        assert calibrated_leaf.latency_ms(app) == pytest.approx(
            reference_run.mean_latency_ms, rel=0.02
        )

    def test_constant_segments_do_not_scale(self, calibrated_leaf, reference_run):
        app = reference_run.app
        # Transmission and sensor waiting are carried as constants, so the
        # latency gap between frame sizes is smaller than a full proportional
        # rescale of the reference latency.
        small = calibrated_leaf.latency_ms(app.with_frame_side(250.0))
        full_rescale = reference_run.mean_latency_ms * 250.0 / app.frame_side_px
        assert small > full_rescale

    def test_energy_positive_and_increasing_in_frame_size(self, calibrated_leaf, reference_run):
        app = reference_run.app
        small = calibrated_leaf.energy_mj(app.with_frame_side(300.0))
        large = calibrated_leaf.energy_mj(app.with_frame_side(700.0))
        assert 0.0 < small < large

    def test_leaf_closer_to_truth_than_fact_off_calibration_point(
        self, calibrated_leaf, calibrated_fact, reference_run, network, quick_testbed
    ):
        app = reference_run.app.with_frame_side(300.0)
        truth = quick_testbed.run(app, network=network, n_frames=10, repetitions=2)
        leaf_error = abs(calibrated_leaf.latency_ms(app) - truth.mean_latency_ms)
        fact_error = abs(calibrated_fact.latency_ms(app, network) - truth.mean_latency_ms)
        assert leaf_error < fact_error
