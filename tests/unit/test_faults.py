"""Unit tests for the declarative fault model (:mod:`repro.faults`).

Covers event validation, schedule composition, the bit-exact replay format,
fault-window/TTR accounting and the bundled schedule generators.
"""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FAULT_GENERATORS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultOutcome,
    FaultSchedule,
    build_schedule,
    fault_outcome,
    fault_schedule_names,
    make_schedule,
)


def _outage(start=4, duration=4, edge=0):
    return FaultEvent(
        kind="edge_outage", start_epoch=start, duration_epochs=duration, edge_index=edge
    )


class TestFaultEvent:
    def test_window_and_activity(self):
        event = _outage(start=3, duration=2)
        assert event.end_epoch == 5
        assert not event.active_at(2)
        assert event.active_at(3)
        assert event.active_at(4)
        assert not event.active_at(5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="meteor", start_epoch=0, duration_epochs=1)

    @pytest.mark.parametrize("start,duration", [(-1, 1), (0, 0), (2, -3)])
    def test_bad_window_rejected(self, start, duration):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="edge_outage", start_epoch=start, duration_epochs=duration)

    def test_brownout_capacity_must_be_fractional(self):
        for factor in (0.0, 1.0, 1.5, -0.5):
            with pytest.raises(ConfigurationError):
                FaultEvent(
                    kind="edge_brownout",
                    start_epoch=0,
                    duration_epochs=1,
                    capacity_factor=factor,
                )

    def test_straggler_needs_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(
                kind="straggler", start_epoch=0, duration_epochs=1, service_factor=1.0
            )

    def test_link_degradation_rejects_edge_target(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(
                kind="link_degradation",
                start_epoch=0,
                duration_epochs=1,
                edge_index=0,
                throughput_factor=0.5,
            )

    def test_cross_kind_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(
                kind="edge_outage",
                start_epoch=0,
                duration_epochs=1,
                throughput_factor=0.5,
            )

    def test_every_kind_has_a_describe_line(self):
        events = {
            "edge_outage": _outage(),
            "edge_brownout": FaultEvent(
                kind="edge_brownout", start_epoch=0, duration_epochs=1, capacity_factor=0.5
            ),
            "link_degradation": FaultEvent(
                kind="link_degradation",
                start_epoch=0,
                duration_epochs=1,
                throughput_factor=0.5,
            ),
            "straggler": FaultEvent(
                kind="straggler", start_epoch=0, duration_epochs=1, service_factor=2.0
            ),
        }
        assert set(events) == set(FAULT_KINDS)
        for event in events.values():
            assert "epochs [" in event.describe()


class TestFaultScheduleComposition:
    def test_outage_state(self):
        schedule = FaultSchedule(name="s", events=(_outage(start=2, duration=3, edge=0),))
        state = schedule.state_at(3, 2)
        assert state.edge_capacity == (0.0, 1.0)
        assert state.alive_edges == (1,)
        assert state.n_edges_alive == 1
        assert state.availability == 0.5
        assert math.isinf(state.service_scale(0))
        assert state.service_scale(1) == 1.0

    def test_overlapping_brownouts_multiply(self):
        events = (
            FaultEvent(
                kind="edge_brownout", start_epoch=0, duration_epochs=4, capacity_factor=0.5
            ),
            FaultEvent(
                kind="edge_brownout",
                start_epoch=2,
                duration_epochs=4,
                capacity_factor=0.5,
                edge_index=0,
            ),
        )
        state = FaultSchedule(name="s", events=events).state_at(3, 2)
        assert state.edge_capacity == (0.25, 0.5)
        assert state.service_scale(0) == 4.0
        assert state.service_scale(1) == 2.0

    def test_straggler_scales_service_without_killing_capacity(self):
        schedule = FaultSchedule(
            name="s",
            events=(
                FaultEvent(
                    kind="straggler",
                    start_epoch=0,
                    duration_epochs=2,
                    edge_index=0,
                    service_factor=3.0,
                ),
            ),
        )
        state = schedule.state_at(0, 2)
        assert state.availability == 1.0
        assert state.service_scale(0) == 3.0
        assert state.any_fault

    def test_clean_epoch_is_identity(self):
        schedule = FaultSchedule(name="s", events=(_outage(start=5, duration=1),))
        state = schedule.state_at(0, 2)
        assert not state.any_fault
        assert state.availability == 1.0
        conditions = object()
        assert state.apply_to_conditions(conditions) is conditions

    def test_target_out_of_range_rejected(self):
        schedule = FaultSchedule(name="s", events=(_outage(edge=3),))
        with pytest.raises(ConfigurationError):
            schedule.state_at(0, 2)
        with pytest.raises(ConfigurationError):
            FaultInjector(schedule, 2)

    def test_windows_merge_contiguous_events(self):
        events = (
            _outage(start=2, duration=2),
            FaultEvent(
                kind="edge_brownout", start_epoch=4, duration_epochs=2, capacity_factor=0.5
            ),
            _outage(start=9, duration=1),
        )
        schedule = FaultSchedule(name="s", events=events)
        assert schedule.windows(12) == ((2, 6), (9, 10))
        assert schedule.last_epoch == 10

    def test_windows_clamp_to_run_length(self):
        schedule = FaultSchedule(name="s", events=(_outage(start=3, duration=10),))
        assert schedule.windows(5) == ((3, 5),)

    def test_round_trip_is_bit_exact(self):
        schedule = make_schedule("random-outages", seed=7)
        payload = schedule.to_dict()
        assert FaultSchedule.from_dict(payload).to_dict() == payload

    def test_injector_memoizes_states(self):
        injector = FaultInjector(FaultSchedule(name="s", events=(_outage(),)), 2)
        assert injector.state(4) is injector.state(4)


class TestFaultOutcome:
    def _schedule(self, start=4, duration=4):
        return FaultSchedule(name="s", events=(_outage(start=start, duration=duration),))

    def test_none_schedule_yields_none(self):
        assert fault_outcome(None, 2, [0.0, 0.0]) is None

    def test_instant_recovery(self):
        schedule = self._schedule(start=2, duration=2)
        miss = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        outcome = fault_outcome(schedule, 2, miss)
        assert outcome.fault_miss_rate == 1.0
        assert outcome.clear_miss_rate == 0.0
        assert outcome.availability == pytest.approx(1.0 - 2 / 6 * 0.5)
        (window,) = outcome.windows
        assert (window.start_epoch, window.end_epoch) == (2, 4)
        assert window.time_to_recover_epochs == 0
        assert window.recovered
        assert outcome.all_recovered

    def test_slow_recovery_counts_epochs(self):
        schedule = self._schedule(start=2, duration=2)
        # Misses linger for three epochs after the fault clears.
        miss = [0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0]
        outcome = fault_outcome(schedule, 2, miss)
        (window,) = outcome.windows
        assert window.time_to_recover_epochs == 3
        assert window.recovered
        assert outcome.mean_time_to_recover_epochs == 3.0

    def test_never_recovering_window(self):
        schedule = self._schedule(start=2, duration=2)
        miss = [0.0, 0.0, 1.0, 1.0, 1.0, 1.0]
        outcome = fault_outcome(schedule, 2, miss)
        (window,) = outcome.windows
        assert not window.recovered
        assert window.time_to_recover_epochs == 2  # run ends 2 epochs after the fault
        assert not outcome.all_recovered

    def test_outcome_round_trips(self):
        schedule = self._schedule()
        outcome = fault_outcome(schedule, 2, [0.0] * 10)
        payload = outcome.to_dict()
        assert FaultOutcome.from_dict(payload).to_dict() == payload

    def test_empty_run_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_outcome(self._schedule(), 2, [])


class TestBundledSchedules:
    def test_every_generator_builds(self):
        for name in fault_schedule_names():
            schedule = make_schedule(name)
            assert schedule.events
            assert schedule.name == name

    def test_names_match_registry(self):
        assert set(fault_schedule_names()) == set(FAULT_GENERATORS)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_schedule("cosmic-rays")

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            make_schedule("edge-outage", blast_radius=3)

    def test_random_outages_are_seed_deterministic(self):
        a = make_schedule("random-outages", seed=3)
        b = make_schedule("random-outages", seed=3)
        c = make_schedule("random-outages", seed=4)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()

    def test_build_schedule_reference_form(self):
        schedule = build_schedule(
            {"schedule": "edge-outage", "start_epoch": 10, "duration_epochs": 6}
        )
        assert schedule.events[0].start_epoch == 10
        assert schedule.events[0].end_epoch == 16

    def test_build_schedule_inline_form(self):
        schedule = build_schedule(
            {
                "name": "inline",
                "events": [
                    {"kind": "edge_outage", "start_epoch": 1, "duration_epochs": 2}
                ],
            }
        )
        assert schedule.name == "inline"
        assert schedule.events[0].kind == "edge_outage"

    def test_build_schedule_rejects_mixed_form(self):
        with pytest.raises(ConfigurationError):
            build_schedule({"schedule": "edge-outage", "events": []})
        with pytest.raises(ConfigurationError):
            build_schedule({})
