"""Unit tests for the event-driven AoI emulation."""

import numpy as np
import pytest

from repro.config.workload import WorkloadConfig
from repro.core.aoi import AoIModel
from repro.exceptions import SimulationError
from repro.simulation.sensor_sim import emulate_aoi


class TestEmulation:
    def test_default_workload_has_three_sensors(self):
        emulation = emulate_aoi()
        assert len(emulation.timelines) == 3

    def test_timeline_lookup_by_frequency(self):
        emulation = emulate_aoi()
        timeline = emulation.timeline_for_frequency(100.0)
        assert timeline.generation_frequency_hz == pytest.approx(100.0)

    def test_unknown_frequency_rejected(self):
        with pytest.raises(SimulationError):
            emulate_aoi().timeline_for_frequency(123.0)

    def test_update_counts_match_horizon(self, aoi_workload):
        emulation = emulate_aoi(aoi_workload)
        for timeline in emulation.timelines:
            period = 1e3 / timeline.generation_frequency_hz
            expected = int(np.floor(aoi_workload.horizon_ms / period))
            assert timeline.n_updates == expected

    def test_slowest_sensor_has_highest_final_aoi(self):
        emulation = emulate_aoi()
        final = {
            timeline.generation_frequency_hz: timeline.final_aoi_ms
            for timeline in emulation.timelines
        }
        assert final[66.67] > final[100.0] > final[200.0]

    def test_fast_sensor_aoi_stays_flat(self):
        emulation = emulate_aoi()
        fast = emulation.timeline_for_frequency(200.0)
        assert np.max(fast.aoi_ms) - np.min(fast.aoi_ms) < 3.0

    def test_buffer_wait_recorded(self):
        emulation = emulate_aoi()
        assert emulation.mean_buffer_wait_ms > 0.0

    def test_emulation_close_to_analytical_model(self, aoi_workload):
        emulation = emulate_aoi(aoi_workload, seed=3)
        analytical = AoIModel(aoi_workload.buffer_service_rate_hz).timelines_for_workload(
            aoi_workload
        )
        for model_timeline, emulated in zip(analytical, emulation.timelines):
            n = min(model_timeline.n_updates, emulated.n_updates)
            gap = np.abs(model_timeline.aoi_ms[:n] - emulated.aoi_ms[:n])
            assert np.mean(gap / emulated.aoi_ms[:n]) < 0.15

    def test_single_sensor_workload(self):
        workload = WorkloadConfig(
            sensor_frequencies_hz=(100.0,), sensor_distances_m=(15.0,), horizon_ms=40.0
        )
        emulation = emulate_aoi(workload)
        assert len(emulation.timelines) == 1
        assert emulation.timelines[0].n_updates == 4
