"""Unit tests for the experiment runner and run manifests."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ExperimentRunner,
    RunManifest,
    ScenarioResult,
    ScenarioSpec,
    ScenarioSuite,
    bundled_suite,
    run_scenario,
    toml_available,
)

requires_toml = pytest.mark.skipif(
    not toml_available(), reason="needs tomllib (Python >= 3.11) or tomli"
)


def _tiny_suite() -> ScenarioSuite:
    return ScenarioSuite(
        name="tiny",
        specs=(
            ScenarioSpec(name="point", kind="analyze", mode="local"),
            ScenarioSpec(
                name="grid",
                kind="sweep",
                params={"frame_sides_px": [300.0, 500.0], "cpu_freqs_ghz": [1.0, 2.0]},
            ),
        ),
    )


class TestRunScenario:
    def test_analyze_metrics(self):
        result = run_scenario(
            ScenarioSpec(name="a", kind="analyze", mode="local", params={"include_aoi": True})
        )
        assert result.status == "ok"
        assert result.metrics["total_latency_ms"] > 0.0
        assert result.metrics["total_energy_mj"] > 0.0
        assert "min_roi" in result.metrics
        assert result.wall_time_s >= 0.0

    def test_sweep_metrics(self):
        result = run_scenario(
            ScenarioSpec(
                name="s",
                kind="sweep",
                params={"frame_sides_px": [300.0, 500.0], "cpu_freqs_ghz": [1.0, 2.0]},
            )
        )
        assert result.status == "ok"
        assert result.metrics["n_points"] == 4
        assert (
            result.metrics["min_latency_ms"]
            <= result.metrics["mean_latency_ms"]
            <= result.metrics["max_latency_ms"]
        )

    def test_fleet_metrics_with_capacity_plan(self):
        result = run_scenario(
            ScenarioSpec(
                name="f",
                kind="fleet",
                params={"users": 8, "policy": "greedy", "slo_ms": 800.0, "plan_capacity": True},
            )
        )
        assert result.status == "ok"
        assert result.metrics["n_users"] == 8
        assert result.metrics["slo_violations"] == 0
        assert "capacity_max_users" in result.metrics

    def test_adapt_metrics_include_static_reference(self):
        result = run_scenario(
            ScenarioSpec(
                name="r",
                kind="adapt",
                seed=2,
                params={"trace": "step", "epochs": 10, "controller": "greedy"},
            )
        )
        assert result.status == "ok"
        assert result.metrics["n_epochs"] == 10
        assert 0.0 <= result.metrics["deadline_miss_rate"] <= 1.0
        assert "static_deadline_miss_rate" in result.metrics

    def test_adapt_static_controller_matches_static_reference(self):
        spec = ScenarioSpec(
            name="r",
            kind="adapt",
            params={"trace": "drift", "epochs": 8, "controller": "static"},
        )
        metrics = run_scenario(spec).metrics
        assert metrics["deadline_miss_rate"] == metrics["static_deadline_miss_rate"]

    def test_cosim_metrics(self):
        result = run_scenario(
            ScenarioSpec(
                name="c",
                kind="cosim",
                params={"trace": "step", "epochs": 5, "users": 4, "controller": "greedy"},
            )
        )
        assert result.status == "ok"
        assert result.metrics["n_users"] == 4
        assert "n_unconverged_epochs" in result.metrics

    def test_expected_drift_flips_status_to_check_failed(self):
        spec = ScenarioSpec(
            name="a",
            kind="analyze",
            mode="local",
            expected={"total_latency_ms": 1.0},  # wildly wrong on purpose
        )
        result = run_scenario(spec)
        assert result.status == "check-failed"
        assert result.checks and "total_latency_ms" in result.checks[0]

    def test_expected_missing_metric_fails_the_check(self):
        spec = ScenarioSpec(name="a", kind="analyze", expected={"does_not_exist": 1.0})
        result = run_scenario(spec)
        assert result.status == "check-failed"
        assert "produced no value" in result.checks[0]

    def test_expected_within_tolerance_passes(self):
        reference = run_scenario(ScenarioSpec(name="a", kind="analyze", mode="local"))
        latency = reference.metrics["total_latency_ms"]
        spec = ScenarioSpec(
            name="a",
            kind="analyze",
            mode="local",
            expected={"total_latency_ms": latency * 1.004},
            tolerances={"total_latency_ms": 0.005},
        )
        assert run_scenario(spec).status == "ok"

    def test_subsystem_error_is_captured_not_raised(self):
        # The override key is legal; the value is rejected by
        # ApplicationConfig at run time, inside the scenario.
        spec = ScenarioSpec(name="bad", kind="analyze", app={"frame_rate_fps": -5.0})
        result = run_scenario(spec)
        assert result.status == "error"
        assert "ConfigurationError" in result.error
        assert result.metrics == {}


class TestRunnerAndManifest:
    def test_serial_run_produces_manifest(self, tmp_path):
        runner = ExperimentRunner(_tiny_suite(), manifest_dir=tmp_path)
        manifest = runner.run()
        assert manifest.passed
        assert manifest.suite == "tiny"
        assert [r.name for r in manifest.scenarios] == ["point", "grid"]
        assert (tmp_path / "tiny.json").exists()

    def test_manifest_save_load_round_trip(self, tmp_path):
        manifest = ExperimentRunner(_tiny_suite(), manifest_dir=None).run(write=False)
        path = manifest.save(tmp_path / "m.json")
        restored = RunManifest.load(path)
        assert restored.to_dict() == manifest.to_dict()

    def test_load_rejects_unknown_schema(self, tmp_path):
        manifest = ExperimentRunner(_tiny_suite(), manifest_dir=None).run(write=False)
        payload = manifest.to_dict()
        payload["schema_version"] = 999
        path = tmp_path / "bad.json"
        import json

        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="schema_version"):
            RunManifest.load(path)

    def test_metric_payload_drops_only_wall_times(self):
        manifest = ExperimentRunner(_tiny_suite(), manifest_dir=None).run(write=False)
        payload = manifest.metric_payload()
        assert "total_wall_time_s" not in payload
        assert all("wall_time_s" not in entry for entry in payload["scenarios"])
        assert payload["spec_hash"] == manifest.spec_hash
        assert payload["scenarios"][0]["metrics"] == dict(manifest.scenarios[0].metrics)

    def test_select_runs_subset_with_matching_hash(self):
        suite = _tiny_suite()
        manifest = ExperimentRunner(suite, manifest_dir=None).run(
            select=["grid"], write=False
        )
        assert [r.name for r in manifest.scenarios] == ["grid"]
        assert manifest.spec_hash == suite.select(["grid"]).spec_hash()

    def test_pool_run_matches_serial_payload(self):
        suite = _tiny_suite()
        runner = ExperimentRunner(suite, manifest_dir=None)
        serial = runner.run(write=False)
        pooled = runner.run(processes=2, write=False)
        assert pooled.metric_payload() == serial.metric_payload()

    def test_scenario_result_round_trip(self):
        result = ScenarioResult(
            name="n",
            kind="analyze",
            status="ok",
            metrics={"m": 1.5, "nan": math.nan},
            tolerances={"m": 0.1},
            checks=("c",),
            wall_time_s=0.5,
        )
        restored = ScenarioResult.from_dict(result.to_dict())
        assert restored.name == result.name
        assert restored.metrics["m"] == 1.5
        assert math.isnan(restored.metrics["nan"])
        assert restored.checks == ("c",)


@requires_toml
class TestBundledDeterminism:
    def test_two_serial_runs_identical_modulo_wall_time(self):
        runner = ExperimentRunner(bundled_suite(), manifest_dir=None)
        first = runner.run(write=False)
        second = runner.run(write=False)
        assert first.passed, [
            (r.name, r.status, r.error, r.checks)
            for r in first.scenarios
            if r.status != "ok"
        ]
        assert first.metric_payload() == second.metric_payload()
        # ... while the wall-time fields genuinely exist on both.
        assert first.total_wall_time_s > 0.0
        assert all(r.wall_time_s >= 0.0 for r in first.scenarios)

    def test_bundled_metrics_are_strict_json_finite(self):
        manifest = ExperimentRunner(bundled_suite(), manifest_dir=None).run(write=False)
        for result in manifest.scenarios:
            for metric, value in result.metrics.items():
                if isinstance(value, float):
                    assert math.isfinite(value), (result.name, metric, value)
