"""Unit tests for the multi-tenant edge GPU scheduler."""

import math

import pytest

from repro.exceptions import ConfigurationError, ModelDomainError
from repro.fleet.edge_scheduler import EdgeScheduler
from repro.queueing.mg1 import MG1Queue


class TestConstruction:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ConfigurationError):
            EdgeScheduler(discipline="lifo")

    def test_negative_scv_rejected(self):
        with pytest.raises(ModelDomainError):
            EdgeScheduler(service_scv=-1.0)


class TestStabilityBoundary:
    def test_utilization(self):
        assert EdgeScheduler.utilization(0.05, 10.0) == pytest.approx(0.5)

    def test_stable_below_saturation(self):
        scheduler = EdgeScheduler()
        assert scheduler.is_stable(0.099, 10.0)
        assert not scheduler.is_stable(0.1, 10.0)

    def test_max_stable_arrival_rate(self):
        assert EdgeScheduler.max_stable_arrival_rate_per_ms(12.5) == pytest.approx(0.08)

    def test_saturated_queue_waits_forever(self):
        scheduler = EdgeScheduler()
        assert scheduler.waiting_time_ms(0.2, 10.0) == math.inf
        assert scheduler.waiting_time_ms(0.1, 10.0) == math.inf

    def test_wait_diverges_towards_saturation(self):
        scheduler = EdgeScheduler()
        waits = [scheduler.waiting_time_ms(rho / 10.0, 10.0) for rho in (0.5, 0.9, 0.99)]
        assert waits[0] < waits[1] < waits[2]


class TestWaitingTime:
    def test_idle_queue_waits_zero(self):
        scheduler = EdgeScheduler()
        assert scheduler.waiting_time_ms(0.0, 10.0) == 0.0

    def test_fifo_matches_pollaczek_khinchine(self):
        scheduler = EdgeScheduler(discipline="fifo", service_scv=0.5)
        queue = MG1Queue(
            arrival_rate_per_ms=0.04, mean_service_time_ms=10.0, service_scv=0.5
        )
        assert scheduler.waiting_time_ms(0.04, 10.0) == pytest.approx(
            queue.mean_waiting_time_ms
        )

    def test_ps_extra_delay(self):
        # M/G/1-PS sojourn is E[S] / (1 - rho); extra delay is E[S] rho / (1 - rho).
        scheduler = EdgeScheduler(discipline="ps")
        assert scheduler.waiting_time_ms(0.05, 10.0) == pytest.approx(10.0)

    def test_ps_is_insensitive_to_scv(self):
        low = EdgeScheduler(discipline="ps", service_scv=0.0)
        high = EdgeScheduler(discipline="ps", service_scv=3.0)
        assert low.waiting_time_ms(0.03, 10.0) == high.waiting_time_ms(0.03, 10.0)


class TestTaggedTenant:
    def test_sole_tenant_waits_zero(self):
        scheduler = EdgeScheduler()
        assert scheduler.tagged_waiting_time_ms(10.0, 0.0) == 0.0

    def test_background_load_adds_wait(self):
        scheduler = EdgeScheduler()
        assert scheduler.tagged_waiting_time_ms(10.0, 0.05) > 0.0

    def test_negative_background_rejected(self):
        with pytest.raises(ModelDomainError):
            EdgeScheduler().tagged_waiting_time_ms(10.0, -0.01)

    def test_non_positive_service_rejected(self):
        with pytest.raises(ModelDomainError):
            EdgeScheduler().tagged_waiting_time_ms(0.0, 0.01)
