"""Unit tests for the condition-trace generators and the replay format."""

import json

import numpy as np
import pytest

from repro.adaptive.traces import (
    HANDOFF_PROBABILITY_STEP,
    MIN_THROUGHPUT_MBPS,
    ConditionTrace,
    EpochConditions,
    burst_trace,
    drift_trace,
    make_trace,
    mobility_fading_trace,
    quantize_probability,
    step_trace,
)
from repro.exceptions import ConfigurationError


class TestEpochConditions:
    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            EpochConditions(time_ms=-1.0, throughput_mbps=10.0, handoff_probability=0.0)
        with pytest.raises(ConfigurationError):
            EpochConditions(time_ms=0.0, throughput_mbps=0.0, handoff_probability=0.0)
        with pytest.raises(ConfigurationError):
            EpochConditions(time_ms=0.0, throughput_mbps=10.0, handoff_probability=1.5)
        with pytest.raises(ConfigurationError):
            EpochConditions(
                time_ms=0.0, throughput_mbps=10.0, handoff_probability=0.0, n_contenders=0
            )

    def test_quantize_probability_snaps_and_clamps(self):
        assert quantize_probability(-0.3) == 0.0
        assert quantize_probability(1.7) == 1.0
        value = quantize_probability(0.1234)
        assert value == pytest.approx(round(value / HANDOFF_PROBABILITY_STEP) * HANDOFF_PROBABILITY_STEP)


class TestTraceContainer:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            ConditionTrace(name="x", epoch_ms=100.0, epochs=())

    def test_bad_epoch_length_rejected(self):
        epoch = EpochConditions(time_ms=0.0, throughput_mbps=10.0, handoff_probability=0.0)
        with pytest.raises(ConfigurationError):
            ConditionTrace(name="x", epoch_ms=0.0, epochs=(epoch,))

    def test_length_iteration_and_duration(self):
        trace = drift_trace(25, epoch_ms=50.0, seed=1)
        assert len(trace) == trace.n_epochs == 25
        assert trace.duration_ms == pytest.approx(25 * 50.0)
        assert [epoch.time_ms for epoch in trace] == [i * 50.0 for i in range(25)]
        assert trace[3] is trace.epochs[3]


class TestGenerators:
    @pytest.mark.parametrize("name", ("drift", "step", "burst", "mobility"))
    def test_seeded_generation_is_deterministic(self, name):
        a = make_trace(name, 40, seed=9)
        b = make_trace(name, 40, seed=9)
        assert a == b

    @pytest.mark.parametrize("name", ("drift", "step", "burst", "mobility"))
    def test_different_seeds_differ(self, name):
        a = make_trace(name, 40, seed=1)
        b = make_trace(name, 40, seed=2)
        assert a != b

    @pytest.mark.parametrize("name", ("drift", "step", "burst", "mobility"))
    def test_throughput_floor_and_quantized_handoff(self, name):
        trace = make_trace(name, 60, seed=4)
        assert np.all(trace.throughput_mbps >= MIN_THROUGHPUT_MBPS)
        for value in trace.handoff_probability:
            assert value == pytest.approx(
                round(value / HANDOFF_PROBABILITY_STEP) * HANDOFF_PROBABILITY_STEP
            )

    def test_drift_is_monotone_on_average(self):
        trace = drift_trace(100, seed=0)
        first = trace.throughput_mbps[:20].mean()
        last = trace.throughput_mbps[-20:].mean()
        assert last < first / 5.0

    def test_step_changes_regime_at_fraction(self):
        trace = step_trace(100, seed=0, step_fraction=0.5)
        assert trace.throughput_mbps[:50].min() > trace.throughput_mbps[50:].max()
        assert trace.handoff_probability[49] < trace.handoff_probability[50]

    def test_burst_contains_both_regimes(self):
        trace = burst_trace(120, seed=0)
        in_burst = trace.throughput_mbps < 50.0
        assert 0 < in_burst.sum() < 120

    def test_burst_duration_must_fit_period(self):
        with pytest.raises(ConfigurationError):
            burst_trace(50, burst_every=10, burst_duration=10)

    def test_step_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            step_trace(50, step_fraction=1.0)

    def test_zero_epochs_rejected(self):
        with pytest.raises(ConfigurationError):
            drift_trace(0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace("tsunami", 10)


class TestMobilityComposition:
    def test_contenders_stay_in_bounds(self):
        trace = mobility_fading_trace(80, seed=5, mean_contenders=6)
        contenders = np.asarray([epoch.n_contenders for epoch in trace])
        assert contenders.min() >= 1
        assert contenders.max() <= 24

    def test_stationary_device_never_hands_off(self):
        trace = mobility_fading_trace(60, seed=5, speed_m_per_s=0.0)
        assert np.all(trace.handoff_probability == 0.0)

    def test_handoff_epochs_charge_per_frame_probability(self):
        trace = mobility_fading_trace(
            200, seed=5, speed_m_per_s=20.0, epoch_ms=100.0
        )
        levels = set(float(v) for v in trace.handoff_probability)
        expected = quantize_probability((1000.0 / 30.0) / 100.0)
        assert levels <= {0.0, expected}
        assert expected in levels

    def test_contention_reduces_throughput_below_single_user(self):
        trace = mobility_fading_trace(80, seed=5, mean_contenders=20, rician_k=1e9)
        # With fading suppressed (huge K factor) the per-user share alone
        # must sit well below the 200 Mbps single-user link.
        assert trace.throughput_mbps.max() < 100.0


class TestReplayFormat:
    def test_dict_round_trip_is_bit_exact(self):
        trace = burst_trace(50, seed=11)
        clone = ConditionTrace.from_dict(trace.to_dict())
        assert clone == trace

    def test_json_round_trip_is_bit_exact(self):
        trace = mobility_fading_trace(50, seed=11)
        payload = json.dumps(trace.to_dict())
        clone = ConditionTrace.from_dict(json.loads(payload))
        assert clone == trace

    def test_seed_is_recorded(self):
        assert drift_trace(10, seed=13).seed == 13
