"""Unit tests for the segment taxonomy and result containers."""

import pytest

from repro.config.application import ExecutionMode
from repro.core.results import EnergyBreakdown, LatencyBreakdown
from repro.core.segments import (
    COMMON_SEGMENTS,
    COMPUTE_SEGMENTS,
    LOCAL_ONLY_SEGMENTS,
    RADIO_SEGMENTS,
    REMOTE_ONLY_SEGMENTS,
    Segment,
    segments_for_mode,
)


class TestSegments:
    def test_eleven_segments(self):
        assert len(list(Segment)) == 11

    def test_local_and_remote_sets_disjoint(self):
        assert not LOCAL_ONLY_SEGMENTS & REMOTE_ONLY_SEGMENTS

    def test_common_segments_in_every_mode(self):
        local = segments_for_mode(local_inference=True, include_cooperation=False)
        remote = segments_for_mode(local_inference=False, include_cooperation=False)
        assert COMMON_SEGMENTS <= local
        assert COMMON_SEGMENTS <= remote

    def test_local_mode_excludes_encoding(self):
        local = segments_for_mode(local_inference=True, include_cooperation=False)
        assert Segment.ENCODING not in local
        assert Segment.LOCAL_INFERENCE in local

    def test_remote_mode_excludes_local_inference(self):
        remote = segments_for_mode(local_inference=False, include_cooperation=False)
        assert Segment.LOCAL_INFERENCE not in remote
        assert {Segment.ENCODING, Segment.TRANSMISSION} <= remote

    def test_cooperation_optional(self):
        with_coop = segments_for_mode(local_inference=True, include_cooperation=True)
        without = segments_for_mode(local_inference=True, include_cooperation=False)
        assert Segment.COOPERATION in with_coop
        assert Segment.COOPERATION not in without

    def test_radio_and_compute_sets_disjoint(self):
        assert not RADIO_SEGMENTS & COMPUTE_SEGMENTS

    def test_segment_string_value(self):
        assert str(Segment.FRAME_GENERATION) == "frame_generation"


class TestLatencyBreakdown:
    def _breakdown(self):
        per_segment = {
            Segment.FRAME_GENERATION: 100.0,
            Segment.RENDERING: 50.0,
            Segment.COOPERATION: 30.0,
        }
        return LatencyBreakdown(
            per_segment_ms=per_segment,
            included_segments=frozenset({Segment.FRAME_GENERATION, Segment.RENDERING}),
            mode=ExecutionMode.LOCAL,
            client_compute=3.0,
        )

    def test_total_only_counts_included(self):
        assert self._breakdown().total_ms == pytest.approx(150.0)

    def test_parallel_segments_still_reported(self):
        breakdown = self._breakdown()
        assert breakdown.segment_ms(Segment.COOPERATION) == pytest.approx(30.0)

    def test_missing_segment_reports_zero(self):
        assert self._breakdown().segment_ms(Segment.ENCODING) == 0.0

    def test_computation_plus_communication_is_total(self):
        breakdown = self._breakdown()
        assert breakdown.computation_ms + breakdown.communication_ms == pytest.approx(
            breakdown.total_ms
        )

    def test_as_dict_includes_total(self):
        data = self._breakdown().as_dict()
        assert data["total"] == pytest.approx(150.0)
        assert data["frame_generation"] == pytest.approx(100.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(
                per_segment_ms={Segment.RENDERING: -1.0},
                included_segments=frozenset({Segment.RENDERING}),
                mode=ExecutionMode.LOCAL,
                client_compute=1.0,
            )

    def test_summary_contains_rows(self):
        text = self._breakdown().summary()
        assert "frame_generation" in text
        assert "TOTAL" in text


class TestEnergyBreakdown:
    def _breakdown(self):
        per_segment = {Segment.FRAME_GENERATION: 200.0, Segment.RENDERING: 100.0}
        return EnergyBreakdown(
            per_segment_mj=per_segment,
            included_segments=frozenset(per_segment),
            thermal_mj=18.0,
            base_mj=50.0,
            mode=ExecutionMode.LOCAL,
            mean_power_w=2.0,
        )

    def test_total_includes_thermal_and_base(self):
        breakdown = self._breakdown()
        assert breakdown.total_mj == pytest.approx(200.0 + 100.0 + 18.0 + 50.0)
        assert breakdown.segment_total_mj == pytest.approx(300.0)

    def test_as_dict_has_thermal_and_base(self):
        data = self._breakdown().as_dict()
        assert data["thermal"] == pytest.approx(18.0)
        assert data["base"] == pytest.approx(50.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(
                per_segment_mj={Segment.RENDERING: -5.0},
                included_segments=frozenset({Segment.RENDERING}),
                thermal_mj=0.0,
                base_mj=0.0,
                mode=ExecutionMode.LOCAL,
                mean_power_w=1.0,
            )

    def test_summary_mentions_base_energy(self):
        assert "E_base" in self._breakdown().summary()
