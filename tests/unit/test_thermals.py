"""Unit tests for the thermal model."""

import pytest

from repro.devices.catalog import get_device
from repro.devices.thermals import ThermalModel


class TestThermalEnergy:
    def test_fraction_of_consumed_energy(self):
        model = ThermalModel(thermal_fraction=0.1)
        assert model.thermal_energy_mj(200.0) == pytest.approx(20.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            ThermalModel().thermal_energy_mj(-1.0)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel(thermal_fraction=1.5)

    def test_from_spec_uses_device_fraction(self):
        spec = get_device("XR6")
        assert ThermalModel.from_spec(spec).thermal_fraction == pytest.approx(
            spec.thermal_fraction
        )


class TestTemperatureDynamics:
    def test_starts_at_ambient(self):
        model = ThermalModel(ambient_c=25.0)
        assert model.temperature_c == pytest.approx(25.0)

    def test_heating_raises_temperature(self):
        model = ThermalModel()
        before = model.temperature_c
        model.step(consumed_energy_mj=5000.0, duration_ms=1000.0)
        assert model.temperature_c > before

    def test_no_load_keeps_ambient(self):
        model = ThermalModel()
        model.step(consumed_energy_mj=0.0, duration_ms=1000.0)
        assert model.temperature_c == pytest.approx(model.ambient_c, abs=1e-6)

    def test_cooling_towards_ambient_after_load(self):
        model = ThermalModel()
        for _ in range(50):
            model.step(consumed_energy_mj=8000.0, duration_ms=1000.0)
        hot = model.temperature_c
        for _ in range(50):
            model.step(consumed_energy_mj=0.0, duration_ms=1000.0)
        assert model.temperature_c < hot

    def test_history_records_each_step(self):
        model = ThermalModel()
        for _ in range(5):
            model.step(1000.0, 500.0)
        assert len(model.history) == 5

    def test_throttling_flag_on_sustained_load(self):
        model = ThermalModel(
            thermal_fraction=0.3,
            thermal_resistance_c_per_w=30.0,
            thermal_capacitance_j_per_c=5.0,
        )
        for _ in range(500):
            model.step(consumed_energy_mj=10_000.0, duration_ms=1000.0)
        assert model.is_throttling

    def test_reset_restores_ambient_and_clears_history(self):
        model = ThermalModel()
        model.step(5000.0, 1000.0)
        model.reset()
        assert model.temperature_c == pytest.approx(model.ambient_c)
        assert model.history == []

    def test_step_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            ThermalModel().step(10.0, 0.0)
