"""Fixture tests for the model-invariant rules: REP001, REP002, REP003.

Each rule gets at least one clean snippet and two violating ones, plus its
scoping behavior (rules only fire inside the ``src/repro`` tree, and
REP001 exempts the ``telemetry`` subpackage).
"""

from __future__ import annotations

from repro.analysis import run_lint


def lint(tmp_path, source, rule, rel="src/repro/mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([rel], root=tmp_path, rules=[rule]).diagnostics


class TestREP001Determinism:
    def test_clean_seeded_code_passes(self, tmp_path):
        clean = (
            "import time\n"
            "import numpy as np\n"
            "import random\n"
            "\n"
            "\n"
            "def simulate(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    local = random.Random(seed)\n"
            "    t0 = time.perf_counter()  # duration clock: allowed\n"
            "    deadline = time.monotonic() + 1.0\n"
            "    return rng.normal(), local.random(), t0, deadline\n"
        )
        assert lint(tmp_path, clean, "REP001") == []

    def test_wall_clock_time_time_flagged(self, tmp_path):
        found = lint(tmp_path, "import time\nstamp = time.time()\n", "REP001")
        assert len(found) == 1 and "time.time()" in found[0].message

    def test_datetime_now_flagged_for_module_and_class_imports(self, tmp_path):
        source = (
            "import datetime\n"
            "from datetime import datetime as dt\n"
            "a = datetime.datetime.now()\n"
            "b = dt.utcnow()\n"
            "c = datetime.date.today()\n"
        )
        found = lint(tmp_path, source, "REP001")
        assert [d.line for d in found] == [3, 4, 5]

    def test_global_random_module_calls_flagged(self, tmp_path):
        source = "import random\nx = random.random()\ny = random.randint(0, 5)\n"
        found = lint(tmp_path, source, "REP001")
        assert len(found) == 2
        assert all("random.Random(seed)" in d.message for d in found)

    def test_unseeded_constructors_flagged_but_seeded_pass(self, tmp_path):
        source = (
            "import random\n"
            "import numpy as np\n"
            "bad_rng = np.random.default_rng()\n"
            "bad_local = random.Random()\n"
            "ok_rng = np.random.default_rng(0)\n"
            "ok_local = random.Random(7)\n"
        )
        found = lint(tmp_path, source, "REP001")
        assert [d.line for d in found] == [3, 4]
        assert all("unseeded" in d.message for d in found)

    def test_legacy_numpy_global_rng_flagged_under_any_alias(self, tmp_path):
        source = (
            "import numpy as np\n"
            "from numpy import random as nprandom\n"
            "a = np.random.rand(3)\n"
            "b = nprandom.shuffle([1, 2])\n"
        )
        found = lint(tmp_path, source, "REP001")
        assert [d.line for d in found] == [3, 4]

    def test_telemetry_subpackage_is_exempt(self, tmp_path):
        source = "import time\nstamp = time.time()\n"
        assert lint(tmp_path, source, "REP001", rel="src/repro/telemetry/clock.py") == []

    def test_tests_tree_is_out_of_scope(self, tmp_path):
        source = "import time\nstamp = time.time()\n"
        assert lint(tmp_path, source, "REP001", rel="tests/unit/test_x.py") == []


class TestREP002RoundTrip:
    def test_complete_round_trip_passes(self, tmp_path):
        clean = (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Point:\n"
            "    x: float\n"
            "    y: float\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {'x': self.x, 'y': self.y}\n"
            "\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(x=payload['x'], y=payload['y'])\n"
        )
        assert lint(tmp_path, clean, "REP002") == []

    def test_asdict_counts_as_total_serialization(self, tmp_path):
        clean = (
            "from dataclasses import asdict, dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Blob:\n"
            "    a: int\n"
            "    b: int\n"
            "\n"
            "    def to_dict(self):\n"
            "        return asdict(self)\n"
            "\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(**payload)\n"
        )
        assert lint(tmp_path, clean, "REP002") == []

    def test_dropped_field_in_to_dict_flagged(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Partial:\n"
            "    kept: int\n"
            "    dropped: int = 0\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {'kept': self.kept}\n"
        )
        found = lint(tmp_path, source, "REP002")
        assert len(found) == 1
        assert "dropped" in found[0].message and "to_dict" in found[0].message

    def test_dropped_field_in_from_dict_flagged(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Partial:\n"
            "    kept: int\n"
            "    lost: int = 0\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {'kept': self.kept, 'lost': self.lost}\n"
            "\n"
            "    @classmethod\n"
            "    def from_dict(cls, payload):\n"
            "        return cls(kept=payload['kept'])\n"
        )
        found = lint(tmp_path, source, "REP002")
        assert len(found) == 1
        assert "from_dict" in found[0].message and "lost" in found[0].message

    def test_classvars_underscores_and_plain_classes_ignored(self, tmp_path):
        clean = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Meta:\n"
            "    value: int\n"
            "    registry: ClassVar[dict] = {}\n"
            "    _cache: int = 0\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {'value': self.value}\n"
            "\n"
            "\n"
            "class NotADataclass:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        assert lint(tmp_path, clean, "REP002") == []


class TestREP003PoolSafety:
    def test_module_level_function_passes(self, tmp_path):
        clean = (
            "def task(payload):\n"
            "    return payload\n"
            "\n"
            "\n"
            "def fan_out(pool, items):\n"
            "    return [pool.submit(task, item) for item in items]\n"
        )
        assert lint(tmp_path, clean, "REP003") == []

    def test_lambda_flagged(self, tmp_path):
        source = "def fan_out(pool):\n    return pool.submit(lambda: 1)\n"
        found = lint(tmp_path, source, "REP003")
        assert len(found) == 1 and "lambda" in found[0].message

    def test_closure_flagged_for_run_hardened(self, tmp_path):
        source = (
            "from repro.faults.execution import run_hardened\n"
            "\n"
            "\n"
            "def fan_out(items):\n"
            "    def task(payload):\n"
            "        return payload\n"
            "\n"
            "    return run_hardened(task, items)\n"
        )
        found = lint(tmp_path, source, "REP003")
        assert len(found) == 1 and "closure" in found[0].message

    def test_bound_method_flagged(self, tmp_path):
        source = (
            "class Runner:\n"
            "    def task(self, payload):\n"
            "        return payload\n"
            "\n"
            "    def fan_out(self, pool, items):\n"
            "        return [pool.submit(self.task, item) for item in items]\n"
        )
        found = lint(tmp_path, source, "REP003")
        assert len(found) == 1 and "bound method" in found[0].message

    def test_unrelated_submit_like_calls_pass(self, tmp_path):
        clean = (
            "def enqueue(form):\n"
            "    return form.submit()\n"
        )
        assert lint(tmp_path, clean, "REP003") == []
