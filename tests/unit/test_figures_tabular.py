"""Unit tests for repro.figures.tabular: Table, loaders, RunHistory."""

import math
import warnings

import pytest

from repro.experiments.runner import RunManifest, ScenarioResult
from repro.figures.tabular import (
    HistoryPoint,
    RunHistory,
    Table,
    bench_table,
    manifest_table,
    nan_safe_equal,
    scenario_table,
    telemetry_table,
)
from repro.telemetry import Telemetry


def _manifest(name="suite", scenarios=(), git_sha="a" * 40, spec_hash="b" * 64):
    return RunManifest(
        suite=name, spec_hash=spec_hash, scenarios=tuple(scenarios), git_sha=git_sha
    )


def _scenario(name, metrics, status="ok", kind="analyze", tolerances=None):
    return ScenarioResult(
        name=name,
        kind=kind,
        status=status,
        metrics=dict(metrics),
        tolerances=dict(tolerances or {}),
    )


class TestTable:
    def test_columns_and_missing_keys_read_as_none(self):
        table = Table(("a", "b"), [{"a": 1}, {"b": 2.5}])
        assert table.column("a") == [1, None]
        assert table.column("b") == [None, 2.5]
        assert len(table) == 2 and bool(table)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(("a", "a"))

    def test_from_records_infers_first_seen_column_order(self):
        table = Table.from_records([{"x": 1}, {"y": 2, "x": 3}])
        assert table.columns == ("x", "y")

    def test_column_types_promote_int_float_and_degrade_mixed(self):
        table = Table.from_records(
            [
                {"n": 1, "m": "a", "f": 1.5, "b": True, "empty": None},
                {"n": 2.0, "m": 3, "f": 2.5, "b": False, "empty": None},
            ]
        )
        types = table.column_types()
        assert types == {"n": "float", "m": "str", "f": "float", "b": "bool", "empty": None}

    def test_select_where_sort(self):
        table = Table.from_records(
            [{"k": "b", "v": 2}, {"k": "a", "v": 3}, {"k": "c", "v": 1}]
        )
        assert table.select("v").columns == ("v",)
        with pytest.raises(KeyError):
            table.select("nope")
        assert len(table.where(lambda row: row["v"] > 1)) == 2
        assert table.sort_by("k").column("k") == ["a", "b", "c"]
        assert table.sort_by("v", reverse=True).column("v") == [3, 2, 1]

    def test_sort_by_handles_none_and_mixed_types(self):
        table = Table.from_records([{"v": "z"}, {"v": None}, {"v": 1}])
        assert table.sort_by("v").column("v") == [None, 1, "z"]

    def test_group_by_preserves_insertion_order(self):
        table = Table.from_records(
            [{"g": "x", "v": 1}, {"g": "y", "v": 2}, {"g": "x", "v": 3}]
        )
        groups = table.group_by("g")
        assert [key for key, _ in groups.items()] == [("x",), ("y",)]
        assert groups[("x",)].column("v") == [1, 3]

    def test_pivot_wide_with_missing_cells(self):
        table = Table.from_records(
            [
                {"scn": "s1", "metric": "lat", "value": 1.0},
                {"scn": "s1", "metric": "nrg", "value": 2.0},
                {"scn": "s2", "metric": "lat", "value": 3.0},
            ]
        )
        wide = table.pivot("scn", "metric", "value")
        assert wide.columns == ("scn", "lat", "nrg")
        assert wide.rows[1]["nrg"] is None

    def test_csv_round_trip_preserves_types(self):
        table = Table.from_records(
            [{"i": 7, "f": 0.1, "s": "x,y", "b": True, "n": None}]
        )
        back = Table.from_csv(table.to_csv())
        assert back.rows == table.rows
        assert back.column_types() == table.column_types()

    def test_csv_round_trip_survives_nan_and_inf(self):
        table = Table.from_records(
            [{"v": float("nan")}, {"v": float("inf")}, {"v": float("-inf")}, {"v": 0.1}]
        )
        back = Table.from_csv(table.to_csv())
        values = back.column("v")
        assert math.isnan(values[0])
        assert values[1] == math.inf and values[2] == -math.inf
        assert values[3] == 0.1
        assert nan_safe_equal(values[0], float("nan"))
        assert not nan_safe_equal(values[0], 0.0)

    def test_from_csv_empty_text(self):
        assert len(Table.from_csv("")) == 0


class TestManifestLoaders:
    def test_manifest_table_long_form(self):
        manifest = _manifest(
            scenarios=[
                _scenario("s1", {"lat": 1.5, "nrg": 2.0}, tolerances={"lat": 0.1})
            ]
        )
        table = manifest_table(manifest)
        assert table.columns == ("scenario", "kind", "status", "metric", "value", "tolerance")
        assert [row["metric"] for row in table.rows] == ["lat", "nrg"]
        assert table.rows[0]["tolerance"] == 0.1

    def test_manifest_table_keeps_error_scenarios_visible(self):
        manifest = _manifest(
            scenarios=[
                _scenario("ok", {"lat": 1.0}),
                _scenario("boom", {}, status="error"),
            ]
        )
        table = manifest_table(manifest)
        error_rows = table.where(lambda row: row["status"] == "error")
        assert len(error_rows) == 1
        assert error_rows.rows[0]["metric"] is None

    def test_scenario_table_wide_union_of_metrics(self):
        manifest = _manifest(
            scenarios=[
                _scenario("s1", {"lat": 1.0}),
                _scenario("s2", {"nrg": 2.0, "lat": 3.0}),
            ]
        )
        table = scenario_table(manifest)
        assert table.columns == ("scenario", "kind", "status", "lat", "nrg")
        assert table.rows[0]["nrg"] is None
        assert table.rows[1]["lat"] == 3.0


class TestTelemetryAndBenchLoaders:
    def test_telemetry_table_sections(self):
        registry = Telemetry()
        registry.add("frames", 3)
        registry.gauge("depth", 2.0)
        registry.record("lat_ms", 5.0)
        with registry.span("run", points=12):
            pass
        table = telemetry_table(registry.snapshot())
        sections = set(table.column("section"))
        assert sections == {"counter", "gauge", "histogram", "span"}
        span_rows = table.where(lambda row: row["section"] == "span")
        assert span_rows.rows[0]["counter"] == "points"
        assert span_rows.rows[0]["counter_value"] == 12

    def test_bench_table_flattens_numeric_case_metrics(self):
        payload = {
            "git_sha": "c" * 40,
            "grids": [{"name": "g1", "points": 10, "speedup": 2.0}],
            "fleet": {"name": "fleet_10", "users": 10, "users_per_s": 100.0},
        }
        table = bench_table(payload, source="BENCH_x")
        cases = set(table.column("case"))
        assert cases == {"g1", "fleet_10"}
        assert all(row["git_sha"] == "c" * 12 for row in table.rows)
        assert all(isinstance(row["value"], (int, float)) for row in table.rows)


class TestRunHistory:
    def test_empty_and_missing_directory(self, tmp_path):
        assert RunHistory.load(tmp_path).n_runs == 0
        assert RunHistory.load(tmp_path / "absent").n_runs == 0
        empty = RunHistory.load(tmp_path)
        assert empty.metrics() == []
        assert empty.series("s", "m") == []
        assert len(empty.table()) == 0

    def test_unparseable_files_are_skipped_with_warning(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "other.json").write_text('{"no": "schema"}')
        _manifest(scenarios=[_scenario("s", {"m": 1.0})]).save(tmp_path / "run.json")
        with pytest.warns(UserWarning, match="skipping"):
            history = RunHistory.load(tmp_path)
        assert history.n_runs == 1

    def test_single_run_history_has_no_deltas(self, tmp_path):
        _manifest(scenarios=[_scenario("s", {"m": 1.0})]).save(tmp_path / "run.json")
        history = RunHistory.load(tmp_path)
        series = history.series("s", "m")
        assert series == [
            HistoryPoint(run="run", git_sha="a" * 40, spec_hash="b" * 64, status="ok", value=1.0)
        ]
        assert history.deltas("s", "m") == []

    def test_series_across_runs_and_error_status(self, tmp_path):
        _manifest(scenarios=[_scenario("s", {"m": 1.0})]).save(tmp_path / "a_run.json")
        _manifest(scenarios=[_scenario("s", {}, status="error")]).save(tmp_path / "b_run.json")
        _manifest(scenarios=[_scenario("s", {"m": 4.0})]).save(tmp_path / "c_run.json")
        history = RunHistory.load(tmp_path)
        series = history.series("s", "m")
        assert [point.value for point in series] == [1.0, None, 4.0]
        assert [point.status for point in series] == ["ok", "error", "ok"]
        # The None gap is skipped, not treated as zero.
        assert history.deltas("s", "m") == [3.0]
        assert history.metrics() == [("s", "m")]

    def test_table_flattens_runs_long(self, tmp_path):
        _manifest(scenarios=[_scenario("s", {"m": 1.0, "k": 2.0})]).save(
            tmp_path / "run.json"
        )
        table = RunHistory.load(tmp_path).table()
        assert table.columns == (
            "run",
            "git_sha",
            "spec_hash",
            "scenario",
            "status",
            "metric",
            "value",
        )
        assert len(table) == 2
        assert table.rows[0]["spec_hash"] == "b" * 12
