"""Tests for :mod:`repro.docs`: deterministic rendering, the env-var
registry sweep, and the build/check drift gate.

The acceptance pin of the docs subsystem lives here: a doctored
``docs/CLI.md`` makes ``repro docs check`` exit non-zero.
"""

from pathlib import Path

import pytest

from repro import cli, telemetry
from repro.docs import (
    ENV_VARS,
    GENERATED_DOCS,
    GENERATED_MARKER,
    build_docs,
    check_docs,
    env_var_names,
    iter_commands,
    render_cli_markdown,
    render_env_table,
    stale_names,
    undocumented_names,
)


@pytest.fixture(autouse=True)
def _null_registry():
    telemetry.disable()
    yield
    telemetry.disable()


class TestCliRendering:
    def test_two_renders_are_byte_identical(self):
        assert render_cli_markdown() == render_cli_markdown()

    def test_render_is_env_independent(self, monkeypatch):
        reference = render_cli_markdown()
        # Parser-build-time defaults must be scrubbed, not inherited.
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.05")
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        assert render_cli_markdown() == reference

    def test_marker_and_trailing_newline_present(self):
        text = render_cli_markdown()
        assert GENERATED_MARKER in text
        assert text.endswith("\n")

    def test_every_subcommand_gets_a_section(self):
        text = render_cli_markdown()
        for heading in (
            "## `repro`",
            "## `repro analyze`",
            "## `repro experiments run`",
            "## `repro docs check`",
            "## `repro lint`",
            "## Environment variables",
        ):
            assert heading in text, heading

    def test_backend_flag_documented_with_choices(self):
        text = render_cli_markdown()
        assert "`--backend`" in text
        assert "`process`" in text and "`serial`" in text and "`thread`" in text

    def test_iter_commands_walks_the_whole_tree(self):
        paths = [
            " ".join(path)
            for path, _, _ in iter_commands(cli.build_parser())
        ]
        assert paths[0] == "repro"
        assert "repro experiments run" in paths
        assert "repro docs build" in paths
        assert len(paths) == len(set(paths))  # aliases deduplicated


class TestEnvVarRegistry:
    def test_registry_sorted_and_complete(self):
        names = [var.name for var in ENV_VARS]
        assert names == sorted(names)
        assert "REPRO_EXEC_BACKEND" in names
        assert "REPRO_EXEC_TIMEOUT_S" in names

    def test_every_entry_fully_described(self):
        for var in ENV_VARS:
            assert var.name.startswith("REPRO_")
            assert var.default
            assert var.consumer
            assert var.description

    def test_rendered_table_covers_every_entry(self):
        table = render_env_table()
        for name in env_var_names():
            assert f"`{name}`" in table

    def test_sweep_is_clean_against_this_repository(self):
        root = Path(__file__).resolve().parents[2]
        assert undocumented_names(root) == []
        assert stale_names(root) == []

    def test_sweep_flags_undocumented_and_stale(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            'import os\nos.environ.get("REPRO_MYSTERY_KNOB")\n',
            encoding="utf-8",
        )
        assert undocumented_names(tmp_path) == ["REPRO_MYSTERY_KNOB"]
        # None of the registered names appear in this synthetic tree.
        assert stale_names(tmp_path) == sorted(env_var_names())

    def test_sweep_ignores_wildcard_family_prose(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "# the REPRO_CHAOS_* hooks live elsewhere\n", encoding="utf-8"
        )
        assert undocumented_names(tmp_path) == []


class TestBuildCheckRoundTrip:
    def test_build_then_check_is_clean(self, tmp_path):
        docs_dir = tmp_path / "docs"
        written = build_docs(docs_dir)
        assert sorted(p.name for p in written) == sorted(GENERATED_DOCS)
        root = Path(__file__).resolve().parents[2]
        outcomes = check_docs(docs_dir, root=root)
        assert all(outcome.ok for outcome in outcomes)

    def test_missing_page_reported(self, tmp_path):
        outcomes = check_docs(tmp_path / "docs", root=tmp_path)
        statuses = {o.name: o.status for o in outcomes}
        assert statuses["CLI.md"] == "missing"

    def test_doctored_page_reported_as_drift(self, tmp_path):
        docs_dir = tmp_path / "docs"
        build_docs(docs_dir)
        page = docs_dir / "CLI.md"
        page.write_text(
            page.read_text(encoding="utf-8") + "\nhand edit\n",
            encoding="utf-8",
        )
        root = Path(__file__).resolve().parents[2]
        outcomes = check_docs(docs_dir, root=root)
        assert [o.status for o in outcomes if o.name == "CLI.md"] == ["drift"]


class TestCliGate:
    """``repro docs check`` exit codes — the acceptance criterion."""

    def test_check_exits_zero_on_fresh_build(self, tmp_path, capsys):
        docs_dir = tmp_path / "docs"
        assert cli.main(["docs", "build", "--dir", str(docs_dir)]) == 0
        root = Path(__file__).resolve().parents[2]
        exit_code = cli.main(
            ["docs", "check", "--dir", str(docs_dir), "--root", str(root)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out
        assert "are current" in captured.out

    def test_check_exits_nonzero_on_doctored_cli_md(self, tmp_path, capsys):
        docs_dir = tmp_path / "docs"
        cli.main(["docs", "build", "--dir", str(docs_dir)])
        page = docs_dir / "CLI.md"
        text = page.read_text(encoding="utf-8")
        page.write_text(
            text.replace("# `repro` CLI reference", "# doctored"),
            encoding="utf-8",
        )
        root = Path(__file__).resolve().parents[2]
        exit_code = cli.main(
            ["docs", "check", "--dir", str(docs_dir), "--root", str(root)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1, captured.out
        assert "drift" in captured.out
