"""Unit tests for the evaluation metrics."""

import pytest

from repro.evaluation.metrics import (
    mean_absolute_percentage_error,
    mean_error_percent,
    normalized_accuracy,
    relative_error,
    series_accuracy,
)


class TestMAPE:
    def test_exact_predictions_have_zero_error(self):
        assert mean_absolute_percentage_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # errors: 10% and 20% -> mean 15%
        assert mean_absolute_percentage_error([110.0, 80.0], [100.0, 100.0]) == pytest.approx(15.0)

    def test_symmetric_in_sign_of_error(self):
        assert mean_absolute_percentage_error([90.0], [100.0]) == pytest.approx(
            mean_absolute_percentage_error([110.0], [100.0])
        )

    def test_alias(self):
        assert mean_error_percent([110.0], [100.0]) == pytest.approx(10.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])


class TestNormalizedAccuracy:
    def test_ground_truth_scores_100(self):
        assert normalized_accuracy(50.0, 50.0) == pytest.approx(100.0)

    def test_ten_percent_error_scores_90(self):
        assert normalized_accuracy(110.0, 100.0) == pytest.approx(90.0)

    def test_floored_at_zero(self):
        assert normalized_accuracy(500.0, 100.0) == 0.0

    def test_series_accuracy_is_mean(self):
        assert series_accuracy([110.0, 100.0], [100.0, 100.0]) == pytest.approx(95.0)

    def test_relative_error(self):
        assert relative_error(120.0, 100.0) == pytest.approx(0.2)

    def test_invalid_truth_rejected(self):
        with pytest.raises(ValueError):
            normalized_accuracy(1.0, 0.0)
