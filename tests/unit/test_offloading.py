"""Unit tests for the offloading planner."""

import pytest

from repro.config.application import ExecutionMode
from repro.core.energy import XREnergyModel
from repro.core.latency import XRLatencyModel
from repro.core.offloading import OffloadingPlanner, placement_candidates
from repro.core.power import PowerModel
from repro.exceptions import ConfigurationError


@pytest.fixture
def planner(device_spec, edge_spec):
    latency = XRLatencyModel(device=device_spec, edge=edge_spec)
    power = PowerModel(coefficients=latency.coefficients, device=device_spec)
    energy = XREnergyModel(latency_model=latency, power_model=power)
    return OffloadingPlanner(latency_model=latency, energy_model=energy)


class TestCandidates:
    def test_three_candidates_by_default(self, planner, app):
        candidates = planner.candidate_placements(app)
        modes = [candidate.inference.mode for candidate in candidates]
        assert modes == [ExecutionMode.LOCAL, ExecutionMode.REMOTE, ExecutionMode.SPLIT]

    def test_multi_edge_candidates_split_evenly(self, planner, app):
        remote = planner.candidate_placements(app, n_edge_servers=2)[1]
        assert remote.inference.edge_shares == (0.5, 0.5)

    def test_invalid_edge_count_rejected(self, planner, app):
        with pytest.raises(ConfigurationError):
            planner.candidate_placements(app, n_edge_servers=0)

    def test_candidates_accessor_is_memoized(self, planner, app):
        first = planner.candidates(app)
        assert planner.candidates(app) is first
        assert planner.candidates(app, n_edge_servers=2) is not first

    def test_candidates_accessor_matches_module_level_derivation(self, planner, app):
        assert planner.candidates(app, n_edge_servers=2) == placement_candidates(
            app, n_edge_servers=2
        )

    def test_candidates_accessor_does_not_change_ranking(self, planner, app, network):
        """rank() through the accessor is identical to per-candidate evaluation."""
        ranked = planner.rank(app, network)
        rescored = sorted(
            (planner.evaluate(candidate, network) for candidate in planner.candidates(app)),
            key=lambda decision: decision.score,
        )
        assert [d.mode for d in ranked] == [d.mode for d in rescored]
        assert [d.score for d in ranked] == [d.score for d in rescored]


class TestRanking:
    def test_rank_returns_sorted_decisions(self, planner, app, network):
        decisions = planner.rank(app, network)
        scores = [decision.score for decision in decisions]
        assert scores == sorted(scores)
        assert len(decisions) == 3

    def test_best_is_first_of_rank(self, planner, app, network):
        assert planner.best(app, network).mode is planner.rank(app, network)[0].mode

    def test_latency_objective_scores_with_latency(self, planner, app, network):
        decision = planner.evaluate(app, network)
        assert decision.score == pytest.approx(decision.total_latency_ms)

    def test_energy_objective(self, device_spec, edge_spec, app, network):
        latency = XRLatencyModel(device=device_spec, edge=edge_spec)
        power = PowerModel(coefficients=latency.coefficients, device=device_spec)
        energy = XREnergyModel(latency_model=latency, power_model=power)
        planner = OffloadingPlanner(latency, energy, objective="energy")
        decision = planner.evaluate(app, network)
        assert decision.score == pytest.approx(decision.total_energy_mj)

    def test_weighted_objective_between_the_two(self, device_spec, edge_spec, app, network):
        latency = XRLatencyModel(device=device_spec, edge=edge_spec)
        power = PowerModel(coefficients=latency.coefficients, device=device_spec)
        energy = XREnergyModel(latency_model=latency, power_model=power)
        planner = OffloadingPlanner(latency, energy, objective="weighted", latency_weight=0.5)
        decision = planner.evaluate(app, network)
        assert min(decision.total_latency_ms, decision.total_energy_mj) <= decision.score
        assert decision.score <= max(decision.total_latency_ms, decision.total_energy_mj)

    def test_invalid_objective_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            OffloadingPlanner(planner.latency_model, planner.energy_model, objective="speed")

    def test_describe_mentions_mode(self, planner, app, network):
        decision = planner.evaluate(app, network)
        assert decision.mode.value in decision.describe()
