"""Unit tests for the ablation studies."""

import pytest

from repro.evaluation.ablations import (
    ablation_buffer_model,
    ablation_complexity_mode,
    ablation_coefficient_source,
    ablation_memory_term,
)


class TestComplexityAblation:
    def test_reports_one_row_per_lightweight_cnn(self):
        from repro.cnn.zoo import list_cnns

        result = ablation_complexity_mode()
        assert len(result.rows) == len(list_cnns(tier="lightweight"))
        assert "CNN complexity" in result.to_text()


class TestMemoryAblation:
    def test_memory_term_increases_latency(self):
        result = ablation_memory_term()
        for row in result.rows:
            assert float(row[1]) >= float(row[2])


class TestCoefficientAblation:
    def test_calibrated_beats_paper_constants_on_simulated_testbed(self):
        result = ablation_coefficient_source(quick=True)
        assert "calibrated" in result.headline
        # Extract the two error percentages from the headline sentence.
        paper_error = float(result.headline.split("paper constants ")[1].split("%")[0])
        calibrated_error = float(result.headline.split("calibrated constants ")[1].split("%")[0])
        assert calibrated_error < paper_error


class TestBufferAblation:
    def test_md1_always_faster_than_mm1(self):
        result = ablation_buffer_model()
        for row in result.rows:
            assert float(row[2]) < float(row[1])

    def test_simulation_close_to_mm1(self):
        result = ablation_buffer_model()
        for row in result.rows:
            mm1 = float(row[1])
            simulated = float(row[3])
            assert simulated == pytest.approx(mm1, rel=0.15)
