"""CLI tests for ``repro lint``."""

from __future__ import annotations

import json

from repro.cli import main

VIOLATING = """\
import time


def stamp():
    return time.time()
"""


def write(root, rel, content):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


class TestLintCommand:
    def test_list_prints_every_rule(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "src/repro/mod.py", "x = 1\n")
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violations_exit_one_and_print_location(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "src/repro/mod.py", VIOLATING)
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/mod.py:5: REP001" in out

    def test_rule_filter_restricts_the_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "src/repro/mod.py", VIOLATING)
        assert main(["lint", "--rule", "REP006"]) == 0
        assert "[REP006]" in capsys.readouterr().out

    def test_json_report_is_written(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "src/repro/mod.py", VIOLATING)
        assert main(["lint", "--json", "report.json"]) == 1
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["passed"] is False
        assert payload["diagnostics"][0]["rule"] == "REP001"
        assert "wrote report.json" in capsys.readouterr().out

    def test_write_baseline_then_pass(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "src/repro/mod.py", VIOLATING)
        assert main(["lint", "--write-baseline"]) == 0
        assert "grandfathering 1 finding(s)" in capsys.readouterr().out
        assert main(["lint"]) == 0
        assert "1 grandfathered by baseline" in capsys.readouterr().out

    def test_explicit_paths_are_respected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "src/repro/bad.py", VIOLATING)
        write(tmp_path, "src/repro/good.py", "x = 1\n")
        assert main(["lint", "src/repro/good.py"]) == 0
        assert "1 file(s)" in capsys.readouterr().out
