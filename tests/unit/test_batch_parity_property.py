"""Property-based parity tests: scalar ``analyze()`` vs batch ``evaluate_*``.

Hypothesis draws random devices, execution modes, frame sizes, clock
frequencies and encoder bitrates inside the regression domain and asserts
the batch engine agrees with the scalar path to 1e-9 relative error — on
the end-to-end totals, every segment, and the AoI quantities.  The
queueing ports are additionally exercised at the rho -> 0 and rho -> 1
stability boundaries.
"""

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import OperatingPoint, evaluate_points
from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.core.framework import XRPerformanceModel
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue
from repro.queueing.vectorized import (
    mg1_waiting_ms,
    mm1_sojourn_ms,
    mm1_waiting_ms,
    ps_waiting_ms,
)

RELATIVE_TOLERANCE = 1e-9


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=RELATIVE_TOLERANCE, abs_tol=1e-12)


devices = st.sampled_from(["XR1", "XR2", "XR3", "XR4", "XR6"])
modes = st.sampled_from([ExecutionMode.LOCAL, ExecutionMode.REMOTE, ExecutionMode.SPLIT])
frame_sides = st.floats(min_value=300.0, max_value=700.0, allow_nan=False)
cpu_freqs = st.floats(min_value=0.6, max_value=3.2, allow_nan=False)
gpu_freqs = st.floats(min_value=0.3, max_value=1.3, allow_nan=False)
bitrates = st.floats(min_value=2.0, max_value=40.0, allow_nan=False)
throughputs = st.floats(min_value=20.0, max_value=500.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(
    device=devices,
    mode=modes,
    frame_side=frame_sides,
    cpu_freq=cpu_freqs,
    gpu_freq=gpu_freqs,
    bitrate=bitrates,
    throughput=throughputs,
)
def test_scalar_and_batch_agree(
    device, mode, frame_side, cpu_freq, gpu_freq, bitrate, throughput
):
    base = ApplicationConfig.object_detection_default().with_mode(mode)
    app = replace(
        base,
        frame_side_px=frame_side,
        cpu_freq_ghz=cpu_freq,
        gpu_freq_ghz=gpu_freq,
        encoder=replace(base.encoder, bitrate_mbps=bitrate),
    )
    network = NetworkConfig(throughput_mbps=throughput)
    model = XRPerformanceModel(device=device, edge="EDGE-AGX", app=app, network=network)
    scalar = model.analyze(app, network, include_aoi=True)
    batch = evaluate_points(
        [OperatingPoint(app=app, network=network, device=device, edge="EDGE-AGX")],
        include_aoi=True,
    ).report_at(0)

    assert _close(batch.total_latency_ms, scalar.total_latency_ms)
    assert _close(batch.total_energy_mj, scalar.total_energy_mj)
    assert batch.latency.per_segment_ms.keys() == dict(scalar.latency.per_segment_ms).keys()
    for segment, value in scalar.latency.per_segment_ms.items():
        assert _close(batch.latency.per_segment_ms[segment], value)
    for segment, value in scalar.energy.per_segment_mj.items():
        assert _close(batch.energy.per_segment_mj[segment], value)
    assert _close(batch.energy.thermal_mj, scalar.energy.thermal_mj)
    assert _close(batch.energy.base_mj, scalar.energy.base_mj)
    for name, value in scalar.aoi.average_aoi_ms.items():
        assert _close(batch.aoi.average_aoi_ms[name], value)
    for name, value in scalar.aoi.roi.items():
        assert _close(batch.aoi.roi[name], value)
    assert _close(batch.aoi.required_frequency_hz, scalar.aoi.required_frequency_hz)


# ---------------------------------------------------------------------------
# Queueing boundaries (rho -> 0 and rho -> 1)
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    rho=st.one_of(
        st.floats(min_value=1e-12, max_value=1.0 - 1e-9, exclude_max=False),
        st.just(0.0),
        st.just(1.0 - 1e-12),
    ),
    service_rate=st.floats(min_value=1e-3, max_value=1e3),
)
def test_mm1_vectorized_matches_scalar(rho, service_rate):
    arrival = rho * service_rate
    scalar = MM1Queue(arrival_rate_per_ms=arrival, service_rate_per_ms=service_rate)
    assert _close(float(mm1_sojourn_ms(arrival, service_rate)), scalar.mean_time_in_system_ms)
    assert _close(float(mm1_waiting_ms(arrival, service_rate)), scalar.mean_waiting_time_ms)


@settings(max_examples=100, deadline=None)
@given(
    rho=st.one_of(
        st.floats(min_value=1e-12, max_value=1.0 - 1e-9, exclude_max=False),
        st.just(0.0),
        st.just(1.0 - 1e-12),
    ),
    service_time=st.floats(min_value=1e-3, max_value=1e3),
    scv=st.floats(min_value=0.0, max_value=4.0),
)
def test_mg1_vectorized_matches_scalar(rho, service_time, scv):
    arrival = rho / service_time
    scalar = MG1Queue(
        arrival_rate_per_ms=arrival, mean_service_time_ms=service_time, service_scv=scv
    )
    assert _close(
        float(mg1_waiting_ms(arrival, service_time, scv)), scalar.mean_waiting_time_ms
    )


def test_vectorized_queueing_over_arrays():
    service = 1.0
    arrivals = np.linspace(0.0, 0.999999, 1000)
    sojourn = mm1_sojourn_ms(arrivals, service)
    expected = np.array(
        [MM1Queue(a, service).mean_time_in_system_ms for a in arrivals]
    )
    np.testing.assert_allclose(sojourn, expected, rtol=RELATIVE_TOLERANCE)
    waits = mg1_waiting_ms(arrivals, service, 0.5)
    expected = np.array(
        [MG1Queue(a, service, 0.5).mean_waiting_time_ms for a in arrivals]
    )
    np.testing.assert_allclose(waits, expected, rtol=RELATIVE_TOLERANCE)


def test_ps_waiting_matches_edge_scheduler():
    from repro.fleet.edge_scheduler import EdgeScheduler

    scheduler = EdgeScheduler(discipline="ps")
    service = 12.0
    for rho in (0.0, 0.25, 0.75, 0.999):
        arrival = rho / service
        assert _close(
            float(ps_waiting_ms(service, rho)),
            scheduler.waiting_time_ms(arrival, service),
        )


def test_tagged_waiting_times_vectorized_matches_scalar():
    from repro.fleet.edge_scheduler import EdgeScheduler

    service = 11.0
    rates = [0.0, 0.01, 0.05, 0.2]  # the last load saturates (rho > 1)
    services = [11.0, 11.0, 9.0, 11.0]
    for discipline in ("fifo", "ps"):
        scheduler = EdgeScheduler(discipline=discipline)
        vectorized = scheduler.tagged_waiting_times_ms(service, rates, services)
        for rate, background_service, wait in zip(rates, services, vectorized):
            assert wait == scheduler.tagged_waiting_time_ms(
                service, rate, background_service
            )
    assert math.isinf(vectorized[-1])


def test_unstable_inputs_rejected():
    from repro.exceptions import UnstableQueueError

    with pytest.raises(UnstableQueueError):
        mm1_sojourn_ms(np.array([0.5, 1.0]), 1.0)
    with pytest.raises(UnstableQueueError):
        mg1_waiting_ms(np.array([0.5, 2.0]), 1.0)
    with pytest.raises(UnstableQueueError):
        ps_waiting_ms(1.0, np.array([0.5, 1.0]))
