"""Unit tests for the noise model and run traces."""

import numpy as np
import pytest

from repro.core.segments import Segment
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.noise import NoiseModel
from repro.simulation.trace import FrameTrace, RunTrace


class TestNoiseModel:
    def test_none_is_deterministic(self, rng):
        noise = NoiseModel.none()
        assert noise.latency_ms(123.0, rng) == pytest.approx(123.0)
        assert noise.power_w(2.5, rng) == pytest.approx(2.5)

    def test_zero_expected_latency_stays_zero(self, rng):
        assert NoiseModel().latency_ms(0.0, rng) == 0.0

    def test_noisy_latency_unbiased_within_tolerance(self, rng):
        noise = NoiseModel(relative_sigma=0.05, jitter_mean_ms=0.0)
        samples = [noise.latency_ms(100.0, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.02)

    def test_jitter_adds_positive_bias(self, rng):
        noise = NoiseModel(relative_sigma=0.0, jitter_mean_ms=2.0)
        samples = [noise.latency_ms(100.0, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(102.0, rel=0.03)
        assert min(samples) >= 100.0

    def test_latency_never_negative(self, rng):
        noise = NoiseModel(relative_sigma=0.5, jitter_mean_ms=0.0)
        assert all(noise.latency_ms(1.0, rng) > 0.0 for _ in range(1000))

    def test_power_never_negative(self, rng):
        noise = NoiseModel(power_sigma=1.0)
        assert all(noise.power_w(0.2, rng) >= 0.0 for _ in range(1000))

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(relative_sigma=-0.1)

    def test_negative_expected_latency_rejected(self, rng):
        with pytest.raises(ValueError):
            NoiseModel().latency_ms(-1.0, rng)


class TestTraces:
    def _frame(self, index=0, latency=100.0, energy=200.0, handoff=False):
        return FrameTrace(
            frame_index=index,
            segment_latency_ms={Segment.FRAME_GENERATION: latency, Segment.RENDERING: 50.0},
            segment_energy_mj={Segment.FRAME_GENERATION: energy, Segment.RENDERING: 80.0},
            thermal_mj=10.0,
            base_mj=20.0,
            handoff_occurred=handoff,
        )

    def test_frame_totals(self):
        frame = self._frame()
        assert frame.total_latency_ms == pytest.approx(150.0)
        assert frame.total_energy_mj == pytest.approx(200.0 + 80.0 + 10.0 + 20.0)

    def test_run_trace_means(self):
        trace = RunTrace([self._frame(0, 100.0), self._frame(1, 200.0)])
        assert trace.mean_latency_ms == pytest.approx((150.0 + 250.0) / 2.0)
        assert len(trace) == 2

    def test_percentile(self):
        trace = RunTrace([self._frame(i, latency=100.0 + i) for i in range(100)])
        assert trace.latency_percentile_ms(50.0) == pytest.approx(
            np.median(trace.latencies_ms)
        )

    def test_percentile_range_checked(self):
        trace = RunTrace([self._frame()])
        with pytest.raises(ValueError):
            trace.latency_percentile_ms(150.0)

    def test_segment_means(self):
        trace = RunTrace([self._frame(0, 100.0), self._frame(1, 300.0)])
        means = trace.mean_segment_latency_ms()
        assert means[Segment.FRAME_GENERATION] == pytest.approx(200.0)
        assert means[Segment.RENDERING] == pytest.approx(50.0)

    def test_handoff_rate(self):
        trace = RunTrace([self._frame(0, handoff=True), self._frame(1), self._frame(2)])
        assert trace.handoff_rate == pytest.approx(1.0 / 3.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            RunTrace([])
