"""Unit tests for the runtime XR device model."""

import pytest

from repro.devices.catalog import get_device
from repro.devices.device import XRDevice
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_defaults_to_max_clocks(self):
        device = XRDevice(spec=get_device("XR1"))
        assert device.cpu_freq_ghz == pytest.approx(3.13)
        assert device.gpu_freq_ghz == pytest.approx(get_device("XR1").gpu_max_freq_ghz)

    def test_from_catalog(self):
        device = XRDevice.from_catalog("XR2", cpu_freq_ghz=2.0)
        assert device.spec.name == "XR2"
        assert device.cpu_freq_ghz == pytest.approx(2.0)

    def test_overclocking_rejected(self):
        with pytest.raises(ConfigurationError):
            XRDevice(spec=get_device("XR3"), cpu_freq_ghz=5.0)

    def test_battery_and_thermal_created_from_spec(self):
        device = XRDevice(spec=get_device("XR1"))
        assert device.battery.capacity_mj > 0
        assert device.thermal.thermal_fraction == pytest.approx(
            get_device("XR1").thermal_fraction
        )

    def test_power_rail_optional(self):
        assert XRDevice(spec=get_device("XR1")).power_rail is None
        assert XRDevice.from_catalog("XR1", with_power_rail=True).power_rail is not None


class TestDVFS:
    def test_set_clocks(self):
        device = XRDevice(spec=get_device("XR1"))
        device.set_clocks(cpu_freq_ghz=1.5)
        assert device.cpu_freq_ghz == pytest.approx(1.5)

    def test_set_clocks_validates(self):
        device = XRDevice(spec=get_device("XR1"))
        with pytest.raises(ConfigurationError):
            device.set_clocks(gpu_freq_ghz=10.0)


class TestConsumption:
    def test_consume_returns_energy(self):
        device = XRDevice(spec=get_device("XR1"))
        energy = device.consume("inference", latency_ms=100.0, power_w=2.0)
        assert energy == pytest.approx(200.0)

    def test_consume_drains_battery(self):
        device = XRDevice(spec=get_device("XR1"))
        start = device.battery.remaining_mj
        device.consume("inference", 100.0, 2.0)
        assert device.battery.remaining_mj == pytest.approx(start - 200.0)

    def test_consume_advances_thermal_state(self):
        device = XRDevice(spec=get_device("XR1"))
        device.consume("inference", 1000.0, 4.0)
        assert device.thermal.temperature_c > device.thermal.ambient_c

    def test_consume_with_rail_records_trace(self):
        device = XRDevice.from_catalog("XR1", with_power_rail=True)
        device.consume("encoding", 10.0, 1.0)
        assert device.power_rail.segment_energy_mj("encoding") > 0.0

    def test_consume_rejects_negative_power(self):
        device = XRDevice(spec=get_device("XR1"))
        with pytest.raises(ValueError):
            device.consume("x", 10.0, -1.0)

    def test_memory_access_latency_uses_spec_bandwidth(self):
        device = XRDevice(spec=get_device("XR1"))
        assert device.memory_access_latency_ms(44.0) == pytest.approx(1.0)

    def test_reset_restores_initial_state(self):
        device = XRDevice.from_catalog("XR1", with_power_rail=True)
        device.consume("inference", 500.0, 3.0)
        device.reset()
        assert device.battery.state_of_charge == pytest.approx(1.0)
        assert device.power_rail.samples == []

    def test_describe_mentions_clocks(self):
        assert "GHz" in XRDevice(spec=get_device("XR1")).describe()
