"""Unit tests for Monsoon-style power trace rendering."""

import pytest

from repro.measurement.power_traces import PowerTrace, SegmentDraw, render_power_trace


class TestRenderPowerTrace:
    def test_total_energy_matches_sum(self):
        draws = [
            SegmentDraw(segment="frame_generation", latency_ms=50.0, power_w=1.0),
            SegmentDraw(segment="local_inference", latency_ms=20.0, power_w=3.0),
        ]
        trace = render_power_trace(draws)
        assert trace.total_energy_mj == pytest.approx(50.0 + 60.0, rel=0.02)

    def test_segment_energy_attribution(self):
        draws = [
            SegmentDraw(segment="a", latency_ms=10.0, power_w=2.0),
            SegmentDraw(segment="b", latency_ms=10.0, power_w=4.0),
        ]
        trace = render_power_trace(draws)
        assert trace.segment_energy_mj["a"] == pytest.approx(20.0, rel=1e-3)
        assert trace.segment_energy_mj["b"] == pytest.approx(40.0, rel=1e-3)

    def test_base_power_added_everywhere(self):
        draws = [SegmentDraw(segment="a", latency_ms=100.0, power_w=1.0)]
        with_base = render_power_trace(draws, base_power_w=0.5)
        without_base = render_power_trace(draws)
        assert with_base.total_energy_mj == pytest.approx(
            without_base.total_energy_mj + 50.0, rel=0.02
        )

    def test_duration_is_sum_of_segments(self):
        draws = [
            SegmentDraw(segment="a", latency_ms=30.0, power_w=1.0),
            SegmentDraw(segment="b", latency_ms=70.0, power_w=1.0),
        ]
        trace = render_power_trace(draws)
        assert trace.duration_ms == pytest.approx(100.0, rel=0.01)

    def test_mean_power_between_segment_powers(self):
        draws = [
            SegmentDraw(segment="a", latency_ms=50.0, power_w=1.0),
            SegmentDraw(segment="b", latency_ms=50.0, power_w=3.0),
        ]
        trace = render_power_trace(draws)
        assert 1.0 < trace.mean_power_w < 3.0

    def test_noise_does_not_bias_energy_much(self, rng):
        draws = [SegmentDraw(segment="a", latency_ms=200.0, power_w=2.0)]
        noisy = render_power_trace(draws, noise_std_w=0.2, rng=rng)
        assert noisy.total_energy_mj == pytest.approx(400.0, rel=0.05)

    def test_empty_draws_give_empty_trace(self):
        trace = render_power_trace([])
        assert isinstance(trace, PowerTrace)
        assert trace.total_energy_mj == 0.0
        assert trace.duration_ms == 0.0
