"""Unit tests for coefficient sets (Eqs. 3, 10, 12, 21 constants)."""

import pytest

from repro.core.coefficients import (
    PAPER_ENCODING,
    PAPER_POWER_BLEND,
    PAPER_RESOURCE_BLEND,
    CoefficientSet,
    EncodingCoefficients,
    QuadraticBlend,
    calibrated_coefficients,
)
from repro.exceptions import ModelDomainError


class TestQuadraticBlend:
    def test_paper_eq3_value_at_2ghz_cpu_only(self):
        # 18.24 + 1.84*4 - 6.02*2 = 13.56
        assert PAPER_RESOURCE_BLEND.evaluate(2.0, 1.0, 1.0) == pytest.approx(13.56)

    def test_blend_interpolates_between_cpu_and_gpu(self):
        cpu = PAPER_RESOURCE_BLEND.evaluate(2.0, 1.0, 1.0)
        gpu = PAPER_RESOURCE_BLEND.evaluate(2.0, 1.0, 0.0)
        half = PAPER_RESOURCE_BLEND.evaluate(2.0, 1.0, 0.5)
        assert half == pytest.approx(0.5 * (cpu + gpu))

    def test_invalid_share_rejected(self):
        with pytest.raises(ModelDomainError):
            PAPER_RESOURCE_BLEND.evaluate(2.0, 1.0, -0.1)

    def test_from_flat_roundtrip(self):
        blend = QuadraticBlend.from_flat([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert blend.cpu == (1.0, 2.0, 3.0)
        assert blend.gpu == (4.0, 5.0, 6.0)

    def test_from_flat_wrong_length(self):
        with pytest.raises(ModelDomainError):
            QuadraticBlend.from_flat([1.0, 2.0])


class TestEncodingCoefficients:
    def test_paper_eq10_numerator_positive_at_defaults(self):
        value = PAPER_ENCODING.numerator(30, 2, 10.0, 500.0, 30.0, 28)
        assert value > 0.0

    def test_numerator_increases_with_frame_size(self):
        small = PAPER_ENCODING.numerator(30, 2, 10.0, 300.0, 30.0, 28)
        large = PAPER_ENCODING.numerator(30, 2, 10.0, 700.0, 30.0, 28)
        assert large > small

    def test_out_of_domain_configuration_rejected(self):
        # A tiny frame at a tiny frame rate drives the paper regression negative.
        with pytest.raises(ModelDomainError):
            PAPER_ENCODING.numerator(60, 0, 0.1, 10.0, 1.0, 0)

    def test_from_flat_requires_seven(self):
        with pytest.raises(ModelDomainError):
            EncodingCoefficients.from_flat([1.0] * 6)


class TestCoefficientSet:
    def test_paper_set_has_published_r_squared(self, paper_coefficients):
        assert paper_coefficients.source == "paper"
        assert paper_coefficients.r_squared["compute_resource"] == pytest.approx(0.87)
        assert paper_coefficients.r_squared["cnn_complexity"] == pytest.approx(0.844)

    def test_decode_discount_is_one_third(self, paper_coefficients):
        assert paper_coefficients.decode_discount == pytest.approx(1.0 / 3.0)

    def test_edge_scale_matches_paper(self, paper_coefficients):
        assert paper_coefficients.edge_compute_scale == pytest.approx(11.76)

    def test_power_blend_is_eq21(self):
        assert PAPER_POWER_BLEND.cpu == (-20.74, 18.85, -3.64)

    def test_invalid_decode_discount_rejected(self):
        with pytest.raises(ModelDomainError):
            CoefficientSet(decode_discount=0.0)

    def test_with_complexity_replaces_model(self, paper_coefficients):
        from repro.cnn.complexity import CNNComplexityModel

        other = paper_coefficients.with_complexity(
            CNNComplexityModel.from_coefficients([1.0, 0.0, 0.0, 0.0])
        )
        assert other.cnn_complexity.intercept == pytest.approx(1.0)


class TestCalibration:
    def test_calibrated_set_is_cached(self):
        first = calibrated_coefficients(n_samples=800, seed=3)
        second = calibrated_coefficients(n_samples=800, seed=3)
        assert first is second

    def test_force_refit_builds_new_object(self):
        first = calibrated_coefficients(n_samples=800, seed=3)
        second = calibrated_coefficients(n_samples=800, seed=3, force_refit=True)
        assert first is not second
        assert second.source == "calibrated"

    def test_calibrated_resource_monotone_in_cpu_clock(self, session_calibrated_coefficients):
        blend = session_calibrated_coefficients.resource
        values = [blend.evaluate(freq, 0.8, 0.8) for freq in (1.0, 2.0, 3.0)]
        assert values[0] < values[1] < values[2]

    def test_calibrated_r_squared_close_to_paper(self, session_calibrated_coefficients):
        r2 = session_calibrated_coefficients.r_squared
        assert r2["compute_resource"] == pytest.approx(0.87, abs=0.12)
        assert r2["mean_power"] == pytest.approx(0.863, abs=0.12)
        assert r2["encoding_latency"] == pytest.approx(0.79, abs=0.15)
        assert r2["cnn_complexity"] == pytest.approx(0.844, abs=0.15)
