"""Forward-compatibility pins for the persisted JSON document schemas.

Run manifests and telemetry snapshots are long-lived artifacts (committed
baselines, CI archives); these tests pin the loading contract of
:mod:`repro.schema`: legacy bare-int versions load, older/newer minors of
the same major load (newer warns once), unknown top-level keys are ignored
with a single warning, and a different major is refused.
"""

import json
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    ScenarioResult,
)
from repro.schema import check_schema, parse_version
from repro.telemetry import Telemetry, load_snapshot, merge_snapshots, save_snapshot
from repro.telemetry.registry import TELEMETRY_SCHEMA_VERSION


class TestParseVersion:
    def test_legacy_bare_int_is_major_dot_zero(self):
        assert parse_version(1) == (1, 0)
        assert parse_version(3) == (3, 0)

    def test_major_and_major_minor_strings(self):
        assert parse_version("1") == (1, 0)
        assert parse_version("1.4") == (1, 4)

    @pytest.mark.parametrize("bad", ["", "a", "1.a", "1.2.3", "-1", True, None, 1.5])
    def test_invalid_versions_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_version(bad)


class TestCheckSchema:
    def test_same_major_older_minor_loads_silently(self, recwarn):
        check_schema(
            {"schema_version": "1.0", "a": 1}, current="1.3", known_keys=("a",), consumer="doc"
        )
        assert len(recwarn) == 0

    def test_newer_minor_warns_once_and_loads(self):
        with pytest.warns(UserWarning, match="newer than this reader"):
            major, minor = check_schema(
                {"schema_version": "1.9"}, current="1.1", known_keys=(), consumer="doc"
            )
        assert (major, minor) == (1, 9)

    def test_unknown_keys_warn_once_listing_every_key(self):
        with pytest.warns(UserWarning, match="zeta.*zulu") as record:
            check_schema(
                {"schema_version": "1.0", "a": 1, "zulu": 2, "zeta": 3},
                current="1.1",
                known_keys=("a",),
                consumer="doc",
            )
        assert len(record) == 1

    def test_major_mismatch_raises_requested_error_type(self):
        with pytest.raises(ConfigurationError, match="unsupported"):
            check_schema(
                {"schema_version": "2.0"},
                current="1.1",
                known_keys=(),
                consumer="doc",
                error=ConfigurationError,
            )

    def test_missing_version_raises(self):
        with pytest.raises(ValueError, match="no schema_version"):
            check_schema({}, current="1.1", known_keys=(), consumer="doc")


def _manifest_payload(**overrides):
    payload = RunManifest(
        suite="s",
        spec_hash="a" * 64,
        scenarios=(ScenarioResult(name="x", kind="analyze", status="ok", metrics={"m": 1.0}),),
    ).to_dict()
    payload.update(overrides)
    return payload


class TestManifestCompat:
    def test_current_version_is_major_minor_string(self):
        assert parse_version(MANIFEST_SCHEMA_VERSION)[0] == 1

    def test_legacy_int_manifest_still_loads(self):
        manifest = RunManifest.from_dict(_manifest_payload(schema_version=1))
        assert manifest.result_for("x").metrics["m"] == 1.0

    def test_committed_baseline_loads(self):
        # The committed baseline intentionally stays on the legacy spelling
        # so this path is exercised by every CI gate run.
        repo_root = Path(__file__).resolve().parents[2]
        manifest = RunManifest.load(repo_root / "results" / "manifests" / "baseline.json")
        assert manifest.scenarios

    def test_unknown_top_level_key_ignored_with_warning(self):
        with pytest.warns(UserWarning, match="future_field"):
            manifest = RunManifest.from_dict(_manifest_payload(future_field={"x": 1}))
        assert manifest.suite == "s"

    def test_newer_minor_loads_with_warning(self):
        with pytest.warns(UserWarning, match="newer than this reader"):
            RunManifest.from_dict(_manifest_payload(schema_version="1.99"))

    def test_different_major_refused(self):
        with pytest.raises(ConfigurationError, match="unsupported"):
            RunManifest.from_dict(_manifest_payload(schema_version="2.0"))

    def test_round_trip_preserves_version(self, tmp_path):
        path = tmp_path / "m.json"
        RunManifest(suite="s", spec_hash="a" * 64, scenarios=()).save(path)
        assert json.loads(path.read_text())["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert RunManifest.load(path).schema_version == MANIFEST_SCHEMA_VERSION


def _snapshot_file(tmp_path, **overrides):
    registry = Telemetry()
    registry.add("frames", 2)
    path = tmp_path / "snap.json"
    save_snapshot(registry.snapshot(), path)
    if overrides:
        payload = json.loads(path.read_text())
        payload.update(overrides)
        path.write_text(json.dumps(payload))
    return path


class TestTelemetrySnapshotCompat:
    def test_load_snapshot_round_trip(self, tmp_path):
        snapshot = load_snapshot(_snapshot_file(tmp_path))
        assert snapshot["counters"]["frames"] == 2

    def test_legacy_int_snapshot_loads(self, tmp_path):
        path = _snapshot_file(tmp_path, schema_version=1)
        assert load_snapshot(path)["counters"]["frames"] == 2

    def test_unknown_key_warns_and_loads(self, tmp_path):
        path = _snapshot_file(tmp_path, future_section={"a": 1})
        with pytest.warns(UserWarning, match="future_section"):
            snapshot = load_snapshot(path)
        assert "future_section" not in snapshot

    def test_newer_minor_warns(self, tmp_path):
        path = _snapshot_file(tmp_path, schema_version="1.99")
        with pytest.warns(UserWarning, match="newer than this reader"):
            load_snapshot(path)

    def test_major_mismatch_raises_on_load_and_merge(self, tmp_path):
        path = _snapshot_file(tmp_path, schema_version="9.0")
        with pytest.raises(ValueError):
            load_snapshot(path)
        with pytest.raises(ValueError):
            merge_snapshots([json.loads(path.read_text())])

    def test_current_version_is_major_minor_string(self):
        assert parse_version(TELEMETRY_SCHEMA_VERSION)[0] == 1
