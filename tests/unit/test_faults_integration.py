"""Integration tests: fault schedules threaded through the stack.

Pins the PR's contracts:

* a fault-free run with the fault machinery loaded is bit-identical to the
  pre-fault engine (the no-fault scale factors are exactly 1.0);
* cosim, fleet and adaptive runs visibly react to outages/brownouts and
  report availability + time-to-recover;
* a sharded run whose worker is chaos-killed recovers per-shard and merges
  to a report bit-identical to the all-serial run;
* the experiments layer loads ``[scenario.faults]`` sections, surfaces the
  recovery metrics, and the hardened scenario pool survives worker crashes;
* the ``repro faults`` CLI lists, describes and replays schedules.
"""

import json

import pytest

from repro import telemetry
from repro.adaptive import (
    AdaptiveRuntime,
    GreedyBatchSweep,
    HysteresisThreshold,
    StaticBaseline,
    step_trace,
)
from repro.cli import main
from repro.cosim import CoSimulation, run_cosim
from repro.exceptions import ConfigurationError
from repro.experiments import ExperimentRunner, bundled_suite
from repro.experiments.spec import ScenarioSpec
from repro.faults import FaultSchedule, make_schedule
from repro.faults.execution import CHAOS_KILL_ENV
from repro.fleet import FleetAnalyzer, GreedySLOAdmission, homogeneous


@pytest.fixture(autouse=True)
def _null_registry():
    telemetry.disable()
    yield
    telemetry.disable()


def _outage(start=10, duration=6, edge=0):
    return make_schedule(
        "edge-outage", start_epoch=start, duration_epochs=duration, edge_index=edge
    )


def _cosim(faults=None, controller=None, users=4, epochs=40, n_shards=1):
    return run_cosim(
        homogeneous(users, device="XR1"),
        controller if controller is not None else HysteresisThreshold(),
        step_trace(epochs, seed=11),
        n_shards=n_shards,
        n_edges=2,
        include_aoi=False,
        faults=faults,
    )


class TestCosimFaults:
    def test_no_fault_run_is_bit_identical_to_pre_fault_engine(self):
        assert _cosim().to_dict() == _cosim(faults=None).to_dict()

    def test_outage_misses_exactly_inside_the_window(self):
        report = _cosim(faults=_outage())
        miss = report.miss_fraction
        assert all(miss[e] == 1.0 for e in range(10, 16))
        assert all(miss[e] == 0.0 for e in list(range(0, 10)) + list(range(16, 40)))
        assert report.faults is not None
        assert report.faults.fault_miss_rate == 1.0
        assert report.faults.clear_miss_rate == 0.0
        assert report.availability == pytest.approx(1.0 - 6 / 40 * 0.5)
        assert report.mean_time_to_recover_epochs == 0.0
        assert report.faults.all_recovered

    def test_epoch_availability_series_tracks_the_schedule(self):
        report = _cosim(faults=_outage())
        assert len(report.epoch_availability) == 40
        assert report.epoch_availability[12] == 0.5
        assert report.epoch_availability[0] == 1.0

    def test_predictive_controller_dodges_the_fault(self):
        # EwmaPredictive steers to on-device points and never misses, while
        # hysteresis (above) misses every fault epoch: controllers visibly
        # react to the same schedule differently.
        from repro.adaptive import EwmaPredictive

        report = _cosim(faults=_outage(), controller=EwmaPredictive())
        assert report.deadline_miss_rate == 0.0
        assert report.faults.fault_miss_rate == 0.0

    def test_all_edges_dead_saturates_offloaders(self):
        schedule = FaultSchedule(
            name="blackout",
            events=(
                make_schedule("edge-outage", start_epoch=5, duration_epochs=2, edge_index=0).events[0],
                make_schedule("edge-outage", start_epoch=5, duration_epochs=2, edge_index=1).events[0],
            ),
        )
        report = _cosim(faults=schedule)
        assert all(report.miss_fraction[e] == 1.0 for e in (5, 6))

    def test_fault_summary_line_present(self):
        report = _cosim(faults=_outage())
        assert "faults[edge-outage]" in report.summary()

    def test_report_round_trips_with_faults(self):
        report = _cosim(faults=_outage())
        payload = report.to_dict()
        assert payload["faults"]["schedule_name"] == "edge-outage"
        assert json.loads(json.dumps(payload)) == payload

    def test_schedule_must_fit_the_edge_pool(self):
        with pytest.raises(ConfigurationError):
            CoSimulation(
                homogeneous(4, device="XR1"),
                HysteresisThreshold(),
                step_trace(10, seed=0),
                n_edges=1,
                include_aoi=False,
                faults=_outage(edge=1),
            )


class TestShardedFaultRecovery:
    def test_sharded_report_matches_serial_shards(self):
        sharded = _cosim(faults=_outage(), users=8, n_shards=2)
        assert sharded.availability == pytest.approx(1.0 - 6 / 40 * 0.5)
        assert sharded.fault_miss_rate == 1.0
        assert sharded.mean_time_to_recover_epochs == 0.0

    def test_killed_worker_recovers_bit_identically(self, monkeypatch):
        # The acceptance pin: kill one shard's worker mid-run; the hardened
        # pool re-runs that shard serially and the merged report is
        # bit-identical to the undisturbed run.
        clean = _cosim(faults=_outage(), users=8, n_shards=2)
        monkeypatch.setenv(CHAOS_KILL_ENV, "0")
        registry = telemetry.enable()
        chaos = _cosim(faults=_outage(), users=8, n_shards=2)
        counters = registry.snapshot()["counters"]
        assert counters.get("exec.retry.broken_pool", 0) >= 1
        assert counters["exec.serial_reruns"] >= 1
        telemetry.disable()
        assert chaos.to_dict() == clean.to_dict()

    def test_n_shards_validated_at_the_boundary(self):
        with pytest.raises(ConfigurationError):
            _cosim(n_shards=0)
        with pytest.raises(ConfigurationError):
            _cosim(n_shards=-1)


class TestFleetFaults:
    def _analyze(self, fault_state, users=12, n_edges=2):
        return FleetAnalyzer(
            homogeneous(users, device="XR1"),
            n_edges=n_edges,
            policy=GreedySLOAdmission(slo_ms=800.0),
            slo_ms=800.0,
            include_aoi=False,
            fault_state=fault_state,
        ).analyze()

    def test_outage_reroutes_to_surviving_edge(self):
        state = _outage(start=0).state_at(0, 2)
        report = self._analyze(state)
        assert report.n_edges_alive == 1
        assert report.availability == 0.5
        assert report.edge_utilizations[0] == 0.0
        offloaded = [o for o in report.outcomes if o.offloaded]
        assert offloaded and all(o.edge_index == 1 for o in offloaded)

    def test_all_dead_forces_local(self):
        schedule = FaultSchedule(
            name="blackout",
            events=(
                _outage(start=0, edge=0).events[0],
                _outage(start=0, edge=1).events[0],
            ),
        )
        report = self._analyze(schedule.state_at(0, 2))
        assert report.n_edges_alive == 0
        assert all(not o.offloaded for o in report.outcomes)
        assert report.fault_forced_local > 0
        assert "forced local" in report.summary()

    def test_no_fault_state_matches_pre_fault_analyzer(self):
        base = self._analyze(None)
        assert base.availability == 1.0
        assert base.n_edges_alive is None
        assert "Faults:" not in base.summary()

    def test_fault_state_pool_size_must_match(self):
        state = _outage(start=0).state_at(0, 2)
        with pytest.raises(ConfigurationError):
            self._analyze(state, n_edges=3)


class TestAdaptiveFaults:
    def _runtime(self, faults=None, epochs=30):
        return AdaptiveRuntime(
            trace=step_trace(epochs, seed=7), include_aoi=False, faults=faults
        )

    def test_no_fault_run_is_bit_identical(self):
        base = self._runtime().run(GreedyBatchSweep())
        again = self._runtime(faults=None).run(GreedyBatchSweep())
        assert base.to_dict() == again.to_dict()

    def test_greedy_steers_on_device_during_outage(self):
        schedule = make_schedule("edge-outage", start_epoch=8, duration_epochs=6)
        runtime = self._runtime(faults=schedule)
        report = runtime.run(GreedyBatchSweep())
        assert report.deadline_miss_rate == 0.0
        outcome = runtime.fault_report(report)
        assert outcome.availability == pytest.approx(1.0 - 6 / 30)
        assert outcome.fault_miss_rate == 0.0
        assert outcome.all_recovered

    def test_pinned_offloader_misses_during_outage(self):
        schedule = make_schedule("edge-outage", start_epoch=8, duration_epochs=6)
        runtime = self._runtime(faults=schedule)
        offload_index = next(
            i for i, f in enumerate(runtime._offload_fraction) if f > 0
        )
        report = runtime.run(StaticBaseline(offload_index))
        missed = [latency > report.deadline_ms for latency in report.latency_ms]
        assert all(missed[8:14])

    def test_fault_report_none_without_schedule(self):
        runtime = self._runtime()
        assert runtime.fault_report(runtime.run(GreedyBatchSweep())) is None

    def test_schedule_must_target_the_single_edge(self):
        with pytest.raises(ConfigurationError):
            self._runtime(faults=_outage(edge=1))


def _fault_spec(**overrides):
    payload = {
        "name": "t_cosim_outage",
        "kind": "cosim",
        "seed": 11,
        "params": {
            "trace": "step",
            "epochs": 40,
            "users": 4,
            "controller": "hysteresis",
            "n_edges": 2,
            "include_aoi": False,
        },
        "faults": {
            "schedule": "edge-outage",
            "start_epoch": 10,
            "duration_epochs": 6,
            "edge_index": 0,
        },
    }
    payload.update(overrides)
    return payload


class TestExperimentsFaults:
    def test_bundled_suite_carries_fault_scenarios(self):
        names = {spec.name for spec in bundled_suite()}
        for name in (
            "faults_cosim_outage",
            "faults_cosim_brownout",
            "faults_adapt_outage",
            "faults_fleet_outage",
        ):
            assert name in names

    def test_bundled_fault_scenarios_pass_their_pins(self):
        suite = bundled_suite()
        names = [s.name for s in suite if s.name.startswith("faults_")]
        manifest = ExperimentRunner(suite, manifest_dir=None).run(
            select=names, write=False
        )
        assert manifest.passed
        outage = manifest.result_for("faults_cosim_outage")
        assert outage.metrics["availability"] == 0.925
        assert outage.metrics["fault_miss_rate"] == 0.0
        assert outage.metrics["mean_time_to_recover_epochs"] == 0.0

    def test_spec_round_trips_with_faults(self):
        spec = ScenarioSpec.from_dict(_fault_spec())
        assert ScenarioSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
        assert spec.build_faults().name == "edge-outage"

    def test_faults_rejected_for_static_kinds(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(
                _fault_spec(kind="analyze", params={}, name="t_bad")
            )

    def test_bad_schedule_reference_fails_at_load_time(self):
        payload = _fault_spec()
        payload["faults"] = {"schedule": "cosmic-rays"}
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(payload)

    def test_negative_processes_rejected(self):
        runner = ExperimentRunner(bundled_suite(), manifest_dir=None)
        with pytest.raises(ConfigurationError):
            runner.run(processes=-1, write=False)

    def test_pooled_run_survives_killed_worker(self, monkeypatch):
        suite = bundled_suite()
        names = [s.name for s in suite if s.kind == "analyze"][:2]
        runner = ExperimentRunner(suite, manifest_dir=None)
        serial = runner.run(select=names, write=False)
        monkeypatch.setenv(CHAOS_KILL_ENV, "0")
        registry = telemetry.enable()
        pooled = runner.run(select=names, processes=2, write=False)
        counters = registry.snapshot()["counters"]
        assert counters["exec.serial_reruns"] >= 1
        telemetry.disable()
        assert pooled.metric_payload() == serial.metric_payload()


class TestFaultsCli:
    def test_list_prints_every_bundled_schedule(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("edge-outage", "brownout", "link-flap", "straggler"):
            assert name in out

    def test_describe_renders_timeline(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "describe",
                    "--schedule",
                    "edge-outage",
                    "--start-epoch",
                    "2",
                    "--duration-epochs",
                    "3",
                    "--epochs",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "..XXX..." in out

    def test_run_cosim_writes_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "faults",
                    "run",
                    "--schedule",
                    "edge-outage",
                    "--start-epoch",
                    "10",
                    "--duration-epochs",
                    "6",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        assert "faults[edge-outage]" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["workload"] == "cosim"
        assert payload["schedule"]["name"] == "edge-outage"
        assert payload["report"]["faults"]["fault_miss_rate"] == 1.0

    def test_run_fleet_workload(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "run",
                    "--workload",
                    "fleet",
                    "--schedule",
                    "edge-outage",
                    "--users",
                    "12",
                ]
            )
            == 0
        )
        assert "1/2 edges alive" in capsys.readouterr().out
