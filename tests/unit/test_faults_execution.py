"""Tests for the hardened execution seam (:func:`repro.faults.execution
.run_hardened`): per-task recovery, timeouts, chaos hooks and telemetry.

The crash/hang tests inject faults two ways — a fake executor whose futures
fail deterministically (fast, no subprocesses) and the ``REPRO_CHAOS_*``
environment hooks against a real :class:`ProcessPoolExecutor` (end-to-end,
exactly what the CI chaos job runs).
"""

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.faults.execution import (
    CHAOS_HANG_ENV,
    CHAOS_HANG_TASK_ENV,
    CHAOS_KILL_ENV,
    EXEC_TIMEOUT_ENV,
    default_timeout_s,
    run_hardened,
)


@pytest.fixture(autouse=True)
def _null_registry():
    telemetry.disable()
    yield
    telemetry.disable()


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _flaky(x):
    if x == 2:
        raise ValueError("flaky payload")
    return x * x


class _LazyFuture:
    """A future resolved at ``result()`` time: a scripted exception wins,
    otherwise the task runs in-process."""

    def __init__(self, fn, args, error=None):
        self._fn = fn
        self._args = args
        self._error = error

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._fn(self._args)

    def done(self):
        return True

    def cancelled(self):
        return False


class _FakePool:
    """Executor double whose behaviour is scripted per task index.

    ``plan[index]`` may be an exception instance (raised by that future) or
    absent (the task runs in-process and succeeds when resolved).
    """

    def __init__(self, plan):
        self.plan = plan
        self.submitted = 0

    def __call__(self, max_workers):  # pool_factory signature
        return self

    def submit(self, fn, args):
        index = self.submitted
        self.submitted += 1
        return _LazyFuture(fn, args, error=self.plan.get(index))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestValidation:
    def test_max_workers_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            run_hardened(_square, [1], max_workers=0)
        with pytest.raises(ConfigurationError):
            run_hardened(_square, [1], max_workers=-2)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_hardened(_square, [1, 2], max_workers=2, timeout_s=0.0)

    def test_env_timeout_parsing(self, monkeypatch):
        monkeypatch.delenv(EXEC_TIMEOUT_ENV, raising=False)
        assert default_timeout_s() is None
        monkeypatch.setenv(EXEC_TIMEOUT_ENV, "2.5")
        assert default_timeout_s() == 2.5
        monkeypatch.setenv(EXEC_TIMEOUT_ENV, "zero")
        with pytest.raises(ConfigurationError):
            default_timeout_s()
        monkeypatch.setenv(EXEC_TIMEOUT_ENV, "-1")
        with pytest.raises(ConfigurationError):
            default_timeout_s()


class TestSerialPaths:
    def test_empty_payloads(self):
        assert run_hardened(_square, [], max_workers=4) == []

    def test_single_worker_runs_serially(self):
        assert run_hardened(_square, [1, 2, 3], max_workers=1) == [1, 4, 9]

    def test_single_task_runs_serially(self):
        assert run_hardened(_square, [5], max_workers=4) == [25]

    def test_unpicklable_payload_falls_back(self):
        registry = telemetry.enable()
        payloads = [lambda: 1, lambda: 2]  # lambdas cannot cross a pool
        results = run_hardened(lambda f: f(), payloads, max_workers=2, label="t")
        assert results == [1, 2]
        assert registry.snapshot()["counters"]["t.fallback.unpicklable"] == 1


class TestFakePoolRecovery:
    def test_all_tasks_succeed(self):
        results = run_hardened(
            _square, [1, 2, 3], max_workers=3, pool_factory=_FakePool({})
        )
        assert results == [1, 4, 9]

    def test_broken_pool_reruns_only_failed_tasks(self):
        registry = telemetry.enable()
        pool = _FakePool({1: BrokenProcessPool("worker died")})
        results = run_hardened(
            _square, [1, 2, 3], max_workers=3, label="t", pool_factory=pool
        )
        assert results == [1, 4, 9]
        counters = registry.snapshot()["counters"]
        assert counters["t.retry.broken_pool"] == 1
        assert counters["t.serial_reruns"] == 1
        assert counters["t.tasks"] == 3

    def test_task_exception_retried_serially_and_raises_directly(self):
        registry = telemetry.enable()
        pool = _FakePool({0: ValueError("worker-side failure")})
        # The serial retry re-raises the deterministic error with a direct
        # traceback instead of a pickled pool traceback.
        with pytest.raises(ValueError, match="boom"):
            run_hardened(_boom, [7, 8], max_workers=2, label="t", pool_factory=pool)
        # Both tasks error (one scripted, one genuine) before the serial
        # retry surfaces the deterministic failure.
        assert registry.snapshot()["counters"]["t.retry.error"] == 2

    def test_flaky_error_recovers_when_serial_path_succeeds(self):
        # _FakePool raises from the future while the serial path computes
        # the true value: recovery is per-task, not all-or-nothing.
        pool = _FakePool({2: ValueError("transient")})
        results = run_hardened(
            _square, [1, 2, 3, 4], max_workers=4, label="t", pool_factory=pool
        )
        assert results == [1, 4, 9, 16]

    def test_cancelled_future_joins_serial_retry(self):
        pool = _FakePool({0: concurrent.futures.CancelledError()})
        results = run_hardened(
            _square, [3, 4], max_workers=2, label="t", pool_factory=pool
        )
        assert results == [9, 16]


class TestRealPoolChaos:
    def test_plain_pooled_run_matches_serial(self):
        pooled = run_hardened(_square, [1, 2, 3, 4], max_workers=2)
        assert pooled == [_square(p) for p in [1, 2, 3, 4]]

    def test_killed_worker_recovers_per_task(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "1")
        registry = telemetry.enable()
        results = run_hardened(_square, [1, 2, 3], max_workers=2, label="t")
        assert results == [1, 4, 9]
        counters = registry.snapshot()["counters"]
        # At least the killed task was retried.  Under heavy load the pool
        # can break before any future is collected, so every task may join
        # the serial retry — the deterministic "completed tasks never
        # re-run" pin lives in the scripted _FakePool tests above.
        assert counters.get("t.retry.broken_pool", 0) >= 1
        assert 1 <= counters["t.serial_reruns"] <= 3

    def test_hung_worker_times_out_and_recovers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_HANG_TASK_ENV, "0")
        monkeypatch.setenv(CHAOS_HANG_ENV, "30")
        registry = telemetry.enable()
        results = run_hardened(
            _square, [1, 2, 3], max_workers=2, timeout_s=1.0, label="t"
        )
        assert results == [1, 4, 9]
        counters = registry.snapshot()["counters"]
        assert counters["t.retry.timeout"] == 1
        assert counters["t.serial_reruns"] >= 1

    def test_chaos_hooks_do_not_reach_serial_retries(self, monkeypatch):
        # Killing every task index still converges: the serial retry calls
        # fn directly, bypassing the worker-side chaos wrapper.
        monkeypatch.setenv(CHAOS_KILL_ENV, "0,1,2")
        results = run_hardened(_square, [1, 2, 3], max_workers=2)
        assert results == [1, 4, 9]

    def test_genuine_error_propagates_from_real_pool(self):
        with pytest.raises(ValueError, match="flaky payload"):
            run_hardened(_flaky, [1, 2, 3], max_workers=2)
