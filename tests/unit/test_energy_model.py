"""Unit tests for the energy consumption model (Eqs. 19-21)."""

import pytest

from repro.config.application import ExecutionMode
from repro.core.energy import XREnergyModel
from repro.core.latency import XRLatencyModel
from repro.core.power import PowerModel
from repro.core.segments import COMPUTE_SEGMENTS, Segment


@pytest.fixture
def energy_model(device_spec, edge_spec):
    latency = XRLatencyModel(device=device_spec, edge=edge_spec)
    power = PowerModel(coefficients=latency.coefficients, device=device_spec)
    return XREnergyModel(latency_model=latency, power_model=power)


class TestSegmentEnergy:
    def test_energy_is_power_times_latency(self, energy_model, app, network):
        power = energy_model.power_model.segment_power_w(Segment.RENDERING, app, network)
        assert energy_model.segment_energy_mj(
            Segment.RENDERING, 100.0, app, network
        ) == pytest.approx(100.0 * power)

    def test_transmission_uses_radio_power(self, energy_model, remote_app, network):
        energy = energy_model.segment_energy_mj(Segment.TRANSMISSION, 10.0, remote_app, network)
        assert energy == pytest.approx(10.0 * network.radio_tx_power_w)


class TestEndToEnd:
    def test_total_includes_thermal_and_base(self, energy_model, app, network):
        breakdown = energy_model.end_to_end(app, network)
        assert breakdown.total_mj == pytest.approx(
            breakdown.segment_total_mj + breakdown.thermal_mj + breakdown.base_mj
        )
        assert breakdown.thermal_mj > 0.0
        assert breakdown.base_mj > 0.0

    def test_base_energy_consistent_with_latency(self, energy_model, app, network):
        latency = energy_model.latency_model.end_to_end(app, network)
        energy = energy_model.from_latency_breakdown(latency, app, network)
        assert energy.base_mj == pytest.approx(
            energy_model.power_model.base_power_w * latency.total_ms
        )

    def test_thermal_energy_matches_compute_fraction(self, energy_model, app, network):
        latency = energy_model.latency_model.end_to_end(app, network)
        energy = energy_model.from_latency_breakdown(latency, app, network)
        compute = sum(
            energy.per_segment_mj[segment]
            for segment in energy.included_segments
            if segment in COMPUTE_SEGMENTS
        )
        device = energy_model.power_model.device
        assert energy.thermal_mj == pytest.approx(device.thermal_fraction * compute)

    def test_same_segments_as_latency_breakdown(self, energy_model, remote_app, network):
        latency = energy_model.latency_model.end_to_end(remote_app, network)
        energy = energy_model.from_latency_breakdown(latency, remote_app, network)
        assert set(energy.per_segment_mj) == set(latency.per_segment_ms)
        assert energy.included_segments == latency.included_segments

    def test_energy_monotone_in_frame_size(self, energy_model, app, network):
        values = [
            energy_model.end_to_end(app.with_frame_side(side), network).total_mj
            for side in (300.0, 500.0, 700.0)
        ]
        assert values[0] < values[1] < values[2]

    def test_energy_positive_in_both_modes(self, energy_model, app, remote_app, network):
        assert energy_model.end_to_end(app, network).total_mj > 0.0
        assert energy_model.end_to_end(remote_app, network).total_mj > 0.0

    def test_default_network_used_when_omitted(self, energy_model, app):
        assert energy_model.end_to_end(app).total_mj > 0.0

    def test_mode_recorded(self, energy_model, remote_app, network):
        assert energy_model.end_to_end(remote_app, network).mode is ExecutionMode.REMOTE

    def test_remote_inference_energy_cheaper_than_local_inference(
        self, energy_model, app, remote_app, network
    ):
        # Waiting for the edge server draws far less power than running the CNN locally.
        local = energy_model.end_to_end(app, network)
        remote = energy_model.end_to_end(remote_app, network)
        local_inference_power = local.segment_mj(Segment.LOCAL_INFERENCE) / max(
            energy_model.latency_model.local_inference_ms(app), 1e-9
        )
        remote_inference_power = remote.segment_mj(Segment.REMOTE_INFERENCE) / max(
            energy_model.latency_model.remote_inference_ms(remote_app), 1e-9
        )
        assert remote_inference_power < local_inference_power
