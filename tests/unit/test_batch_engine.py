"""Unit tests for the vectorized batch evaluation engine (repro.batch)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.batch import (
    OperatingPoint,
    ParameterGrid,
    evaluate_grid,
    evaluate_points,
)
from repro.config.application import ApplicationConfig, CooperationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.core.framework import XRPerformanceModel
from repro.core.segments import Segment
from repro.exceptions import ConfigurationError, ModelDomainError


@pytest.fixture()
def app():
    return ApplicationConfig.object_detection_default()


@pytest.fixture()
def network():
    return NetworkConfig()


# ---------------------------------------------------------------------------
# ParameterGrid
# ---------------------------------------------------------------------------


class TestParameterGrid:
    def test_point_counts(self, app, network):
        grid = ParameterGrid(
            frame_sides_px=(300.0, 500.0),
            cpu_freqs_ghz=(1.0, 2.0, 3.0),
            devices=("XR1", "XR2"),
            modes=(ExecutionMode.LOCAL, ExecutionMode.REMOTE),
            app=app,
            network=network,
        )
        assert grid.points_per_group == 6
        assert grid.n_points == 24

    def test_unswept_axes_pin_to_base(self, app, network):
        grid = ParameterGrid(frame_sides_px=(400.0,), app=app, network=network)
        assert grid.axis_values("cpu_freq_ghz") == (app.cpu_freq_ghz,)
        assert grid.axis_values("throughput_mbps") == (network.throughput_mbps,)

    def test_point_order_matches_sweep_loop(self, app, network):
        grid = ParameterGrid(
            frame_sides_px=(300.0, 500.0), cpu_freqs_ghz=(1.0, 2.0),
            app=app, network=network,
        )
        numeric = grid.numeric_arrays()
        expected = [(1.0, 300.0), (1.0, 500.0), (2.0, 300.0), (2.0, 500.0)]
        observed = list(zip(numeric["cpu_freq_ghz"], numeric["frame_side_px"]))
        assert observed == expected

    def test_points_materialisation_round_trips(self, app, network):
        grid = ParameterGrid(
            frame_sides_px=(300.0, 700.0), cpu_freqs_ghz=(2.0,),
            app=app, network=network,
        )
        points = grid.points()
        assert [p.app.frame_side_px for p in points] == [300.0, 700.0]
        assert all(p.app.cpu_freq_ghz == 2.0 for p in points)

    def test_empty_axis_rejected(self, app):
        with pytest.raises(ConfigurationError):
            ParameterGrid(frame_sides_px=(), app=app).axis_values("frame_side_px")

    def test_negative_axis_rejected(self, app):
        with pytest.raises(ConfigurationError):
            ParameterGrid(frame_sides_px=(-1.0,), app=app).axis_values("frame_side_px")

    def test_unknown_axis_rejected(self, app):
        with pytest.raises(ConfigurationError):
            ParameterGrid(app=app).axis_values("bogus")


# ---------------------------------------------------------------------------
# Scalar parity
# ---------------------------------------------------------------------------


def _scalar_report(device, mode, app, network, frame_side, cpu_freq):
    model = XRPerformanceModel(
        device=device, edge="EDGE-AGX", app=app.with_mode(mode), network=network
    )
    point = replace(app.with_mode(mode), frame_side_px=frame_side, cpu_freq_ghz=cpu_freq)
    return model.analyze(point, network, include_aoi=True)


class TestScalarParity:
    @pytest.mark.parametrize(
        "mode", [ExecutionMode.LOCAL, ExecutionMode.REMOTE, ExecutionMode.SPLIT]
    )
    def test_reports_bit_identical(self, mode, app, network):
        grid = ParameterGrid(
            frame_sides_px=(300.0, 700.0),
            cpu_freqs_ghz=(1.0, 3.0),
            devices=("XR2",),
            modes=(mode,),
            app=app,
            network=network,
        )
        result = evaluate_grid(grid, include_aoi=True)
        index = 0
        for cpu_freq in (1.0, 3.0):
            for frame_side in (300.0, 700.0):
                scalar = _scalar_report("XR2", mode, app, network, frame_side, cpu_freq)
                batch = result.report_at(index)
                assert batch.total_latency_ms == scalar.total_latency_ms
                assert batch.total_energy_mj == scalar.total_energy_mj
                assert batch.latency.per_segment_ms == dict(scalar.latency.per_segment_ms)
                assert batch.energy.per_segment_mj == dict(scalar.energy.per_segment_mj)
                assert batch.latency.included_segments == scalar.latency.included_segments
                assert batch.latency.client_compute == scalar.latency.client_compute
                assert batch.latency.edge_compute == scalar.latency.edge_compute
                assert batch.energy.mean_power_w == scalar.energy.mean_power_w
                assert batch.aoi.average_aoi_ms == scalar.aoi.average_aoi_ms
                assert batch.aoi.roi == scalar.aoi.roi
                assert batch.device_name == scalar.device_name
                assert batch.edge_name == scalar.edge_name
                index += 1

    def test_empty_sweep_axes_return_empty_dict(self, app, network):
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX", app=app, network=network)
        assert model.sweep(frame_sides_px=(), cpu_freqs_ghz=(2.0,)) == {}
        assert model.sweep(frame_sides_px=(300.0,), cpu_freqs_ghz=()) == {}

    def test_framework_sweep_routes_through_batch(self, app, network):
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX", app=app, network=network)
        results = model.sweep(frame_sides_px=(300.0, 500.0), cpu_freqs_ghz=(1.0, 2.0))
        assert set(results) == {(1.0, 300.0), (1.0, 500.0), (2.0, 300.0), (2.0, 500.0)}
        direct = model.analyze(
            replace(app, cpu_freq_ghz=2.0, frame_side_px=500.0), network, include_aoi=False
        )
        assert results[(2.0, 500.0)].total_latency_ms == direct.total_latency_ms

    def test_cooperation_segment(self, network):
        app = replace(
            ApplicationConfig.object_detection_default(),
            cooperation=CooperationConfig(enabled=True, include_in_totals=True),
        )
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX", app=app, network=network)
        scalar = model.analyze(app, network, include_aoi=False)
        batch = evaluate_points(
            [OperatingPoint(app=app, network=network, device="XR1", edge="EDGE-AGX")],
            include_aoi=False,
        )
        assert Segment.COOPERATION in batch.report_at(0).latency.included_segments
        assert batch.report_at(0).total_latency_ms == scalar.total_latency_ms

    def test_path_loss_network(self, app):
        network = NetworkConfig(enable_path_loss=True)
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX",
                                   app=app.with_mode(ExecutionMode.REMOTE), network=network)
        scalar = model.analyze(include_aoi=False)
        batch = evaluate_points(
            [
                OperatingPoint(
                    app=app.with_mode(ExecutionMode.REMOTE),
                    network=network,
                    device="XR1",
                    edge="EDGE-AGX",
                )
            ],
            include_aoi=False,
        )
        assert batch.report_at(0).total_latency_ms == scalar.total_latency_ms

    def test_throughput_axis(self, app, network):
        mode_app = app.with_mode(ExecutionMode.REMOTE)
        grid = ParameterGrid(
            throughputs_mbps=(50.0, 200.0),
            devices=("XR1",),
            app=mode_app,
            network=network,
        )
        result = evaluate_grid(grid)
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX", app=mode_app, network=network)
        for index, throughput in enumerate((50.0, 200.0)):
            scalar = model.analyze(
                mode_app, network.with_throughput(throughput), include_aoi=False
            )
            assert result.total_latency_ms[index] == scalar.total_latency_ms
        # Less throughput means slower transmission.
        assert result.total_latency_ms[0] > result.total_latency_ms[1]


# ---------------------------------------------------------------------------
# evaluate_points
# ---------------------------------------------------------------------------


class TestEvaluatePoints:
    def test_preserves_input_order_across_groups(self, app, network):
        points = [
            OperatingPoint(app=app.with_mode(ExecutionMode.REMOTE), network=network,
                           device="XR2", edge="EDGE-AGX"),
            OperatingPoint(app=app, network=network, device="XR1", edge="EDGE-AGX"),
            OperatingPoint(app=replace(app, frame_side_px=650.0), network=network,
                           device="XR1", edge="EDGE-AGX"),
        ]
        result = evaluate_points(points, include_aoi=False)
        assert len(result) == 3
        for index, point in enumerate(points):
            model = XRPerformanceModel(device=point.device, edge=point.edge,
                                       app=point.app, network=point.network)
            scalar = model.analyze(point.app, point.network, include_aoi=False)
            assert result.total_latency_ms[index] == scalar.total_latency_ms
        # Points 2 and 3 share a structure group; point 1 does not.
        assert len(result.groups) == 2

    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_points([])

    def test_remote_without_edge_rejected(self, app, network):
        with pytest.raises(ModelDomainError):
            evaluate_points(
                [
                    OperatingPoint(
                        app=app.with_mode(ExecutionMode.REMOTE),
                        network=network,
                        device="XR1",
                        edge=None,
                    )
                ]
            )

    def test_local_without_edge_allowed(self, app, network):
        result = evaluate_points(
            [OperatingPoint(app=app, network=network, device="XR1", edge=None)],
            include_aoi=False,
        )
        assert result.report_at(0).edge_name is None
        assert result.report_at(0).latency.edge_compute is None


# ---------------------------------------------------------------------------
# BatchResult accessors
# ---------------------------------------------------------------------------


class TestBatchResult:
    def test_metric_and_segment_accessors(self, app, network):
        grid = ParameterGrid(frame_sides_px=(300.0, 500.0), app=app, network=network)
        result = evaluate_grid(grid)
        assert np.array_equal(result.metric("latency"), result.total_latency_ms)
        assert np.array_equal(result.metric("energy"), result.total_energy_mj)
        with pytest.raises(KeyError):
            result.metric("bogus")
        # Local-mode grid has no transmission segment: accessor yields zeros.
        assert np.all(result.segment_latency_ms(Segment.TRANSMISSION) == 0.0)
        assert np.all(result.segment_latency_ms(Segment.RENDERING) > 0.0)

    def test_index_bounds(self, app, network):
        grid = ParameterGrid(frame_sides_px=(300.0,), app=app, network=network)
        result = evaluate_grid(grid)
        assert result.report_at(-1).total_latency_ms == result.report_at(0).total_latency_ms
        with pytest.raises(IndexError):
            result.report_at(1)

    def test_reports_helper(self, app, network):
        grid = ParameterGrid(frame_sides_px=(300.0, 500.0), app=app, network=network)
        result = evaluate_grid(grid)
        reports = result.reports()
        assert len(reports) == 2
        assert reports[1].total_latency_ms == result.total_latency_ms[1]

    def test_coords_recorded(self, app, network):
        grid = ParameterGrid(
            frame_sides_px=(300.0, 500.0), cpu_freqs_ghz=(1.0, 2.0),
            app=app, network=network,
        )
        result = evaluate_grid(grid)
        assert list(result.coords["cpu_freq_ghz"]) == [1.0, 1.0, 2.0, 2.0]
        assert list(result.coords["frame_side_px"]) == [300.0, 500.0, 300.0, 500.0]


# ---------------------------------------------------------------------------
# Consumers stay consistent
# ---------------------------------------------------------------------------


class TestConsumers:
    def test_offloading_rank_matches_per_candidate_evaluate(self, app, network):
        model = XRPerformanceModel(device="XR6", edge="EDGE-AGX", app=app, network=network)
        planner = model.offloading_planner(objective="latency")
        ranked = planner.rank(app, network, n_edge_servers=2)
        assert len(ranked) == 3
        for decision in ranked:
            direct = planner.evaluate(
                planner._with_placement(app, decision.mode, decision.edge_shares), network
            )
            assert decision.total_latency_ms == direct.total_latency_ms
            assert decision.total_energy_mj == direct.total_energy_mj
        assert ranked[0].score <= ranked[-1].score

    def test_sweep_maintains_power_clamp_count(self, app, network):
        # Low clocks drive Eq. (21) negative, so the mean power clamps; the
        # batch-routed sweep must record the same diagnostic count as the
        # per-point scalar loop.
        sides = (300.0, 500.0)
        freqs = (0.7, 1.0)
        reference = XRPerformanceModel(device="XR1", edge="EDGE-AGX", app=app, network=network)
        for cpu_freq in freqs:
            for frame_side in sides:
                reference.analyze(
                    replace(app, cpu_freq_ghz=cpu_freq, frame_side_px=frame_side),
                    network,
                    include_aoi=False,
                )
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX", app=app, network=network)
        model.sweep(frame_sides_px=sides, cpu_freqs_ghz=freqs)
        assert model.power_model.clamp_count == reference.power_model.clamp_count
        assert model.power_model.clamp_count > 0

    def test_offloading_rank_honours_custom_energy_model(self, app, network):
        from repro.core.energy import XREnergyModel
        from repro.core.offloading import OffloadingPlanner
        from repro.core.power import PowerModel
        from repro.measurement.truth import SEGMENT_POWER_FACTORS

        base = XRPerformanceModel(device="XR6", edge="EDGE-AGX", app=app, network=network)
        doubled = PowerModel(
            coefficients=base.coefficients,
            device=base.device,
            segment_factors={key: 2 * value for key, value in SEGMENT_POWER_FACTORS.items()},
        )
        planner = OffloadingPlanner(
            base.latency_model,
            XREnergyModel(latency_model=base.latency_model, power_model=doubled),
            objective="energy",
        )
        for decision in planner.rank(app, network):
            direct = planner.evaluate(
                planner._with_placement(app, decision.mode, decision.edge_shares), network
            )
            assert decision.total_energy_mj == direct.total_energy_mj

    def test_capacity_probe_inherits_population_default_app(self):
        from repro.core.coefficients import CoefficientSet
        from repro.fleet.capacity import _HomogeneousRoundRobinProbe
        from repro.fleet.population import homogeneous

        probe = _HomogeneousRoundRobinProbe(
            device="XR1", edge="EDGE-AGX", n_edges=1, app=None, network=None,
            coefficients=CoefficientSet.paper(), contention=None, scheduler=None,
        )
        assert probe.remote_app == homogeneous(1, device="XR1").users[0].app

    def test_fleet_analyzer_batch_priming_matches_scalar(self, network):
        from repro.fleet import FleetAnalyzer, homogeneous

        analyzer = FleetAnalyzer(homogeneous(4, device="XR1"), edge="EDGE-AGX")
        report = analyzer.analyze()
        # The single-user scalar model evaluated under the same contended
        # network must agree bit-for-bit with the primed batch reports.
        outcome = report.outcomes[0]
        model = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
        contended = analyzer.contention.network_for(4)
        scalar = model.analyze(
            homogeneous(4, device="XR1").users[0].app, contended, include_aoi=True
        )
        assert outcome.report.total_latency_ms == scalar.total_latency_ms

    def test_plan_capacity_fast_path_equals_exhaustive_fallback(self):
        # A RoundRobinAdmission *subclass* forces the exhaustive FleetAnalyzer
        # fallback; the default policy takes the vectorized probe.  The two
        # paths must plan identical capacities.
        from repro.fleet import plan_capacity
        from repro.fleet.admission import RoundRobinAdmission

        class ExhaustiveRoundRobin(RoundRobinAdmission):
            pass

        fast = plan_capacity(device="XR1", edge="EDGE-AGX", slo_ms=800.0, max_users=64)
        slow = plan_capacity(
            device="XR1", edge="EDGE-AGX", slo_ms=800.0, max_users=64,
            policy=ExhaustiveRoundRobin(),
        )
        assert fast.max_users == slow.max_users
        assert fast.p95_at_capacity_ms == slow.p95_at_capacity_ms
        assert fast.evaluations == slow.evaluations
        assert fast.ceiling_reached == slow.ceiling_reached

    def test_capacity_probe_matches_full_analyzer(self):
        from repro.core.coefficients import CoefficientSet
        from repro.fleet import FleetAnalyzer, homogeneous
        from repro.fleet.admission import RoundRobinAdmission
        from repro.fleet.capacity import _HomogeneousRoundRobinProbe

        probe = _HomogeneousRoundRobinProbe(
            device="XR1", edge="EDGE-AGX", n_edges=2, app=None, network=None,
            coefficients=CoefficientSet.paper(), contention=None, scheduler=None,
        )
        for n_users in (1, 2, 5, 9):
            analyzer = FleetAnalyzer(
                homogeneous(n_users, device="XR1"),
                edge="EDGE-AGX",
                n_edges=2,
                policy=RoundRobinAdmission(),
                include_aoi=False,
            )
            assert probe.p95_latency_ms(n_users) == analyzer.analyze().p95_latency_ms
