"""Unit tests for the Table I device catalog."""

import pytest

from repro.config.device import DeviceSpec, EdgeServerSpec
from repro.devices.catalog import (
    DEVICE_CATALOG,
    EDGE_CATALOG,
    TEST_DEVICES,
    TRAIN_DEVICES,
    get_device,
    get_edge_server,
    list_devices,
    list_edge_servers,
)
from repro.exceptions import UnknownDeviceError


class TestCatalogContents:
    def test_seven_xr_devices(self):
        assert len(DEVICE_CATALOG) == 7
        assert set(DEVICE_CATALOG) == {f"XR{i}" for i in range(1, 8)}

    def test_two_edge_servers(self):
        assert len(EDGE_CATALOG) == 2

    def test_xr1_matches_table_one(self):
        xr1 = get_device("XR1")
        assert xr1.model == "Huawei Mate 40 Pro"
        assert xr1.soc == "Kirin 9000"
        assert xr1.cpu_max_freq_ghz == pytest.approx(3.13)
        assert xr1.ram_gb == pytest.approx(8.0)
        assert "ax" in xr1.wifi_standards

    def test_xr6_is_quest_2(self):
        assert get_device("XR6").model == "Meta Quest 2"
        assert get_device("XR6").os_name == "Oculus OS"

    def test_xr7_is_external_jetson(self):
        xr7 = get_device("XR7")
        assert xr7.role == "external"
        assert xr7.battery_capacity_mah == 0.0

    def test_edge_agx_has_512_cuda_cores(self):
        assert get_edge_server("EDGE-AGX").gpu_cuda_cores == 512

    def test_agx_uses_paper_compute_scale(self):
        assert get_edge_server("EDGE-AGX").compute_scale_vs_client == pytest.approx(11.76)


class TestTrainTestSplit:
    def test_split_matches_paper(self):
        assert TRAIN_DEVICES == ("XR1", "XR3", "XR5", "XR6")
        assert TEST_DEVICES == ("XR2", "XR4", "XR7")

    def test_split_is_disjoint_and_complete(self):
        assert not set(TRAIN_DEVICES) & set(TEST_DEVICES)
        assert set(TRAIN_DEVICES) | set(TEST_DEVICES) == set(DEVICE_CATALOG)


class TestLookups:
    def test_unknown_device_raises(self):
        with pytest.raises(UnknownDeviceError, match="XR99"):
            get_device("XR99")

    def test_unknown_edge_raises(self):
        with pytest.raises(UnknownDeviceError):
            get_edge_server("EDGE-NONE")

    def test_list_devices_sorted(self):
        names = [device.name for device in list_devices()]
        assert names == sorted(names)

    def test_list_edge_servers_returns_specs(self):
        assert all(isinstance(edge, EdgeServerSpec) for edge in list_edge_servers())

    def test_devices_are_specs(self):
        assert all(isinstance(device, DeviceSpec) for device in list_devices())


class TestDerivedSpecProperties:
    def test_battery_capacity_mj(self):
        xr1 = get_device("XR1")
        expected = 4400.0 * xr1.battery_voltage_v * 3600.0
        assert xr1.battery_capacity_mj == pytest.approx(expected)

    def test_5ghz_support_detection(self):
        assert get_device("XR1").supports_5ghz_wifi
        assert not get_device("XR3").supports_5ghz_wifi

    def test_with_memory_bandwidth_copy(self):
        xr1 = get_device("XR1")
        modified = xr1.with_memory_bandwidth(10.0)
        assert modified.memory_bandwidth_gb_s == pytest.approx(10.0)
        assert xr1.memory_bandwidth_gb_s != 10.0

    def test_describe_mentions_model(self):
        assert "Huawei" in get_device("XR1").describe()
        assert "Xavier" in get_edge_server("EDGE-AGX").describe()
