"""Unit tests for the compute-resource model (Eq. 3) and power model (Eq. 21)."""

import pytest

from repro.core.coefficients import CoefficientSet
from repro.core.power import PowerModel
from repro.core.resources import ComputeResourceModel
from repro.core.segments import Segment
from repro.devices.catalog import get_device, get_edge_server
from repro.exceptions import ModelDomainError


class TestComputeResourceModel:
    def test_matches_eq3_for_cpu_only(self, paper_coefficients):
        model = ComputeResourceModel(paper_coefficients)
        assert model.client_compute(2.0, 1.0, 1.0) == pytest.approx(13.56)

    def test_floor_clamps_pathological_points(self, paper_coefficients):
        model = ComputeResourceModel(paper_coefficients, floor=0.5)
        # The paper's GPU polynomial dips near 0.7 GHz; the floor keeps it positive.
        assert model.client_compute(2.0, 0.7, 0.0) >= 0.5

    def test_clamp_can_be_turned_into_an_error(self, paper_coefficients):
        model = ComputeResourceModel(paper_coefficients, floor=0.5, clamp_is_error=True)
        with pytest.raises(ModelDomainError):
            model.client_compute(2.0, 0.7, 0.0)

    def test_client_compute_for_app(self, paper_coefficients, app):
        model = ComputeResourceModel(paper_coefficients)
        expected = model.client_compute(app.cpu_freq_ghz, app.gpu_freq_ghz, app.cpu_share)
        assert model.client_compute_for(app) == pytest.approx(expected)

    def test_edge_compute_uses_global_scale(self, paper_coefficients):
        model = ComputeResourceModel(paper_coefficients)
        assert model.edge_compute(2.0) == pytest.approx(2.0 * 11.76)

    def test_edge_compute_prefers_edge_spec_scale(self, paper_coefficients):
        model = ComputeResourceModel(paper_coefficients)
        tx2 = get_edge_server("EDGE-TX2")
        assert model.edge_compute(2.0, edge=tx2) == pytest.approx(2.0 * tx2.compute_scale_vs_client)

    def test_edge_compute_rejects_non_positive_client(self, paper_coefficients):
        with pytest.raises(ModelDomainError):
            ComputeResourceModel(paper_coefficients).edge_compute(0.0)

    def test_invalid_floor_rejected(self, paper_coefficients):
        with pytest.raises(ModelDomainError):
            ComputeResourceModel(paper_coefficients, floor=0.0)


class TestPowerModel:
    def _model(self, coefficients=None):
        return PowerModel(
            coefficients=coefficients or CoefficientSet.paper(), device=get_device("XR1")
        )

    def test_eq21_value_at_3ghz_cpu_only(self):
        model = self._model()
        # -20.74 + 18.85*3 - 3.64*9 = 3.05 W
        assert model.mean_power_w(3.0, 1.0, 1.0) == pytest.approx(3.05, abs=0.01)

    def test_clamped_at_base_power_below_domain(self):
        model = self._model()
        # At 1 GHz the paper's polynomial is negative; the model clamps.
        assert model.mean_power_w(1.0, 1.0, 1.0) == pytest.approx(
            get_device("XR1").base_power_w
        )
        assert model.clamp_count == 1

    def test_segment_power_scales_mean_power(self, app):
        model = self._model()
        mean = model.mean_power_for(app)
        rendering = model.segment_power_w(Segment.RENDERING, app)
        encoding = model.segment_power_w(Segment.ENCODING, app)
        assert rendering > encoding
        assert rendering == pytest.approx(model.segment_factors["rendering"] * mean)

    def test_radio_segments_use_network_power(self, app, network):
        model = self._model()
        assert model.segment_power_w(Segment.TRANSMISSION, app, network) == pytest.approx(
            network.radio_tx_power_w
        )
        assert model.segment_power_w(Segment.HANDOFF, app, network) == pytest.approx(
            network.handoff.power_w
        )

    def test_base_energy_scales_with_latency(self):
        model = self._model()
        assert model.base_energy_mj(1000.0) == pytest.approx(
            get_device("XR1").base_power_w * 1000.0
        )

    def test_thermal_energy_fraction(self):
        model = self._model()
        assert model.thermal_energy_mj(100.0) == pytest.approx(
            get_device("XR1").thermal_fraction * 100.0
        )

    def test_negative_inputs_rejected(self):
        model = self._model()
        with pytest.raises(ModelDomainError):
            model.base_energy_mj(-1.0)
        with pytest.raises(ModelDomainError):
            model.thermal_energy_mj(-1.0)
