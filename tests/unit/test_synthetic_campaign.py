"""Unit tests for the synthetic measurement campaign and dataset containers."""

import numpy as np
import pytest

from repro.devices.catalog import TEST_DEVICES, TRAIN_DEVICES
from repro.exceptions import ConfigurationError, RegressionError
from repro.measurement.datasets import MeasurementDataset, split_by_device
from repro.measurement.synthetic import CampaignConfig, SyntheticCampaign


@pytest.fixture(scope="module")
def campaign_dataset():
    campaign = SyntheticCampaign(CampaignConfig(n_samples=1500, seed=5))
    return campaign, campaign.generate()


class TestCampaignConfig:
    def test_defaults_valid(self):
        config = CampaignConfig()
        assert config.n_samples > 0
        assert set(config.devices) == {f"XR{i}" for i in range(1, 8)}

    def test_paper_scale_sample_count(self):
        assert CampaignConfig.paper_scale().n_samples == 119_465 + 36_083

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(devices=("XR1", "PIXEL9"))

    def test_invalid_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(compute_noise=1.5)


class TestDatasetGeneration:
    def test_sample_count(self, campaign_dataset):
        _, dataset = campaign_dataset
        assert len(dataset) == 1500

    def test_all_devices_present(self, campaign_dataset):
        _, dataset = campaign_dataset
        assert set(dataset.devices) == {f"XR{i}" for i in range(1, 8)}

    def test_measurements_positive(self, campaign_dataset):
        _, dataset = campaign_dataset
        for sample in dataset:
            assert sample.measured_compute > 0.0
            assert sample.measured_power_w > 0.0
            assert sample.measured_encoding_numerator > 0.0
            assert sample.measured_cnn_complexity > 0.0

    def test_generation_is_deterministic_per_seed(self):
        first = SyntheticCampaign(CampaignConfig(n_samples=50, seed=9)).generate()
        second = SyntheticCampaign(CampaignConfig(n_samples=50, seed=9)).generate()
        assert [s.measured_compute for s in first] == [s.measured_compute for s in second]

    def test_design_matrix_shapes(self, campaign_dataset):
        _, dataset = campaign_dataset
        assert dataset.resource_design_matrix().shape == (len(dataset), 6)
        assert dataset.encoding_design_matrix().shape == (len(dataset), 7)
        assert dataset.complexity_design_matrix().shape == (len(dataset), 4)

    def test_split_by_device_partitions(self, campaign_dataset):
        _, dataset = campaign_dataset
        train, test = split_by_device(dataset)
        assert set(train.devices) == set(TRAIN_DEVICES)
        assert set(test.devices) == set(TEST_DEVICES)
        assert len(train) + len(test) == len(dataset)

    def test_filter_unknown_device_rejected(self, campaign_dataset):
        _, dataset = campaign_dataset
        with pytest.raises(RegressionError):
            dataset.filter_devices(["nonexistent"])

    def test_empty_dataset_rejected(self):
        with pytest.raises(RegressionError):
            MeasurementDataset([])


class TestCampaignFits:
    def test_fits_have_reasonable_r_squared(self, campaign_dataset):
        campaign, dataset = campaign_dataset
        fits = campaign.fit(dataset)
        summary = fits.r_squared_summary()
        # The campaign is tuned so the fits land near the paper's reported
        # R^2 values (0.87 / 0.863 / 0.79 / 0.844); allow generous margins.
        assert 0.7 < summary["compute_resource"] <= 1.0
        assert 0.7 < summary["mean_power"] <= 1.0
        assert 0.6 < summary["encoding_latency"] <= 1.0
        assert 0.6 < summary["cnn_complexity"] <= 1.0

    def test_held_out_devices_score_similarly(self, campaign_dataset):
        campaign, dataset = campaign_dataset
        fits = campaign.fit(dataset)
        assert fits.resource.r_squared_test == pytest.approx(
            fits.resource.r_squared_train, abs=0.15
        )

    def test_fitted_resource_coefficients_are_finite(self, campaign_dataset):
        campaign, dataset = campaign_dataset
        fits = campaign.fit(dataset)
        assert np.all(np.isfinite(fits.resource.coefficients))
        assert len(fits.encoding.coefficients) == 7
