"""Unit tests for the admission-control and placement policies."""

import pytest

from repro.exceptions import ConfigurationError
from repro.fleet.admission import (
    EnergyAwareAdmission,
    GreedySLOAdmission,
    RoundRobinAdmission,
    UserCandidate,
)


def make_candidate(
    name: str,
    wants_offload: bool = True,
    service_time_ms: float = 10.0,
    remote_latency_ms: float = 700.0,
    local_energy_mj: float = 1000.0,
    remote_energy_mj: float = 600.0,
) -> UserCandidate:
    return UserCandidate(
        name=name,
        wants_offload=wants_offload,
        frame_rate_fps=30.0,
        service_time_ms=service_time_ms,
        local_latency_ms=300.0,
        remote_latency_ms=remote_latency_ms,
        local_energy_mj=local_energy_mj,
        remote_energy_mj=remote_energy_mj,
    )


class TestRoundRobin:
    def test_cycles_edges(self):
        candidates = [make_candidate(f"u{i}") for i in range(5)]
        decisions = RoundRobinAdmission().assign(candidates, n_edges=2)
        assert [d.edge_index for d in decisions] == [0, 1, 0, 1, 0]
        assert all(d.offload for d in decisions)

    def test_respects_local_preference(self):
        candidates = [
            make_candidate("remote"),
            make_candidate("local", wants_offload=False),
        ]
        decisions = RoundRobinAdmission().assign(candidates, n_edges=1)
        assert decisions[0].offload
        assert not decisions[1].offload
        assert decisions[1].edge_index is None

    def test_zero_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinAdmission().assign([make_candidate("u")], n_edges=0)


class TestGreedySLO:
    def test_admits_until_stability_cap(self):
        # Each user offers rho = 0.03 * 10 = 0.3; the cap of 0.95 fits three.
        candidates = [make_candidate(f"u{i}") for i in range(6)]
        policy = GreedySLOAdmission(slo_ms=10_000.0)
        decisions = policy.assign(candidates, n_edges=1)
        assert [d.offload for d in decisions] == [True, True, True, False, False, False]

    def test_rejects_when_predicted_latency_misses_slo(self):
        candidates = [make_candidate(f"u{i}") for i in range(4)]
        # Uncontended remote latency already eats most of the budget; the
        # first tenant fits, queueing pushes the rest over.
        policy = GreedySLOAdmission(slo_ms=705.0)
        decisions = policy.assign(candidates, n_edges=1)
        assert decisions[0].offload
        assert not all(d.offload for d in decisions[1:])

    def test_slo_too_tight_for_anyone(self):
        decisions = GreedySLOAdmission(slo_ms=100.0).assign(
            [make_candidate("u0")], n_edges=1
        )
        assert not decisions[0].offload

    def test_spreads_across_edges(self):
        candidates = [make_candidate(f"u{i}") for i in range(4)]
        decisions = GreedySLOAdmission(slo_ms=10_000.0).assign(candidates, n_edges=2)
        edges = [d.edge_index for d in decisions if d.offload]
        assert set(edges) == {0, 1}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedySLOAdmission(slo_ms=0.0)
        with pytest.raises(ConfigurationError):
            GreedySLOAdmission(slo_ms=100.0, utilization_cap=1.5)


class TestEnergyAware:
    def test_biggest_savers_admitted_first(self):
        # Per-user rho is 0.3; a cap of 0.65 only fits two of the three.
        candidates = [
            make_candidate("small", remote_energy_mj=950.0),
            make_candidate("medium", remote_energy_mj=700.0),
            make_candidate("large", remote_energy_mj=100.0),
        ]
        policy = EnergyAwareAdmission(utilization_cap=0.65)
        decisions = {d.name: d for d in policy.assign(candidates, n_edges=1)}
        assert decisions["large"].offload
        assert decisions["medium"].offload
        assert not decisions["small"].offload

    def test_energy_losers_stay_local(self):
        candidates = [make_candidate("loser", remote_energy_mj=2000.0)]
        decisions = EnergyAwareAdmission().assign(candidates, n_edges=1)
        assert not decisions[0].offload
        assert "cost" in decisions[0].reason

    def test_preserves_candidate_order(self):
        candidates = [
            make_candidate("b", remote_energy_mj=100.0),
            make_candidate("a", remote_energy_mj=900.0),
        ]
        decisions = EnergyAwareAdmission().assign(candidates, n_edges=1)
        assert [d.name for d in decisions] == ["b", "a"]

    def test_local_preference_respected(self):
        candidates = [make_candidate("local", wants_offload=False)]
        decisions = EnergyAwareAdmission().assign(candidates, n_edges=1)
        assert not decisions[0].offload


class TestCandidateDerivedQuantities:
    def test_arrival_rate(self):
        assert make_candidate("u").arrival_rate_per_ms == pytest.approx(0.03)

    def test_energy_saving(self):
        candidate = make_candidate("u", local_energy_mj=900.0, remote_energy_mj=650.0)
        assert candidate.energy_saving_mj == pytest.approx(250.0)
