"""Unit tests for the battery model."""

import pytest

from repro.devices.battery import Battery
from repro.devices.catalog import get_device
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_full_by_default(self):
        battery = Battery(capacity_mj=1000.0)
        assert battery.remaining_mj == pytest.approx(1000.0)
        assert battery.state_of_charge == pytest.approx(1.0)

    def test_from_spec(self):
        battery = Battery.from_spec(get_device("XR1"))
        assert battery.capacity_mj == pytest.approx(get_device("XR1").battery_capacity_mj)

    def test_remaining_cannot_exceed_capacity(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity_mj=100.0, remaining_mj=200.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity_mj=-1.0)


class TestDrain:
    def test_drain_reduces_charge(self):
        battery = Battery(capacity_mj=1000.0)
        drawn = battery.drain(300.0)
        assert drawn == pytest.approx(300.0)
        assert battery.remaining_mj == pytest.approx(700.0)
        assert battery.state_of_charge == pytest.approx(0.7)

    def test_drain_is_capped_at_remaining(self):
        battery = Battery(capacity_mj=100.0)
        assert battery.drain(250.0) == pytest.approx(100.0)
        assert battery.is_depleted

    def test_drain_rejects_negative(self):
        with pytest.raises(ValueError):
            Battery(capacity_mj=10.0).drain(-1.0)

    def test_tethered_device_never_depletes(self):
        battery = Battery.from_spec(get_device("XR7"))
        assert battery.is_tethered
        assert battery.drain(1e9) == pytest.approx(1e9)
        assert not battery.is_depleted
        assert battery.state_of_charge == pytest.approx(1.0)


class TestRechargeAndRuntime:
    def test_recharge_to_full(self):
        battery = Battery(capacity_mj=100.0)
        battery.drain(60.0)
        battery.recharge()
        assert battery.remaining_mj == pytest.approx(100.0)

    def test_partial_recharge_does_not_overflow(self):
        battery = Battery(capacity_mj=100.0)
        battery.drain(10.0)
        battery.recharge(50.0)
        assert battery.remaining_mj == pytest.approx(100.0)

    def test_frames_remaining(self):
        battery = Battery(capacity_mj=1000.0)
        assert battery.frames_remaining(10.0) == pytest.approx(100.0)

    def test_frames_remaining_rejects_zero_cost(self):
        with pytest.raises(ValueError):
            Battery(capacity_mj=10.0).frames_remaining(0.0)

    def test_runtime_remaining_seconds(self):
        battery = Battery(capacity_mj=1000.0)
        # 10 mJ per 100 ms frame -> 100 frames -> 10 seconds
        assert battery.runtime_remaining_s(10.0, 100.0) == pytest.approx(10.0)

    def test_tethered_runtime_is_infinite(self):
        battery = Battery(capacity_mj=0.0)
        assert battery.runtime_remaining_s(10.0, 100.0) == float("inf")
