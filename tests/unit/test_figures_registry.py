"""Unit tests for the figure registry and the manifest-backed dashboards.

Generator-backed figures re-run the (slow) evaluation pipeline; the
byte-identity gate over them lives in the integration suite
(``tests/integration/test_figures_check.py``).  These tests cover the
registry mechanics and the cheap data-backed builders against synthetic
inputs.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import RunManifest, ScenarioResult
from repro.figures import (
    FIGURES,
    FigureInputs,
    Table,
    build_all,
    build_figure,
    check_figures,
)
from repro.figures.registry import register


def _write_manifest(path, scenarios):
    RunManifest(
        suite="synthetic",
        spec_hash="d" * 64,
        scenarios=tuple(scenarios),
        git_sha="e" * 40,
    ).save(path)


def _scenario(name, kind, metrics, status="ok"):
    return ScenarioResult(name=name, kind=kind, status=status, metrics=dict(metrics))


@pytest.fixture
def inputs(tmp_path):
    manifest = tmp_path / "baseline.json"
    _write_manifest(
        manifest,
        [
            _scenario(
                "fleet_a",
                "fleet",
                {"n_users": 64, "p95_latency_ms": 700.0, "slo_violations": 0},
            ),
            _scenario(
                "adapt_a",
                "adapt",
                {"deadline_miss_rate": 0.1, "mean_quality": 0.9, "switch_count": 3},
            ),
            _scenario(
                "cosim_a",
                "cosim",
                {"convergence_rate": 0.5, "n_users": 16, "deadline_miss_rate": 0.0},
            ),
            _scenario(
                "faults_a",
                "cosim",
                {"availability": 0.9, "fault_epoch_fraction": 0.2, "convergence_rate": 0.8},
            ),
        ],
    )
    bench = tmp_path / "BENCH_x.json"
    bench.write_text(
        json.dumps(
            {
                "git_sha": "f" * 40,
                "grids": [{"name": "g", "points": 10, "speedup": 3.0}],
            }
        )
    )
    return FigureInputs(
        quick=True,
        manifest_path=manifest,
        history_dir=tmp_path,
        bench_paths=[bench],
    )


class TestRegistry:
    def test_expected_builders_registered(self):
        for name in (
            "table_I",
            "table_II",
            "regression_quality",
            "figure_4a",
            "figure_4f",
            "figure_5b",
            "ablation_buffer_model",
            "extension_adaptation",
            "fleet_dashboard",
            "adaptive_dashboard",
            "cosim_dashboard",
            "faults_dashboard",
            "bench_trajectory",
            "run_history",
            "telemetry_diff",
        ):
            assert name in FIGURES, name

    def test_every_committed_artifact_has_a_registry_entry(self):
        artifacts = {spec.artifact for spec in FIGURES.values() if spec.artifact}
        # Every figure/table/ablation/extension text file the repo commits.
        for expected in (
            "figure_4a.txt",
            "figure_4b.txt",
            "figure_4c.txt",
            "figure_4d.txt",
            "figure_4e.txt",
            "figure_4f.txt",
            "figure_5a.txt",
            "figure_5b.txt",
            "table_I.txt",
            "table_II.txt",
            "regression_quality.txt",
            "ablation_complexity_mode.txt",
            "ablation_memory_term.txt",
            "ablation_coefficient_source.txt",
            "ablation_buffer_model.txt",
            "extension_mobility.txt",
            "extension_pathloss.txt",
            "extension_multi_edge.txt",
            "extension_session.txt",
            "extension_adaptation.txt",
        ):
            assert expected in artifacts, expected

    def test_unknown_figure_raises(self, inputs):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            build_figure("nope", inputs)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register("fleet_dashboard", title="x", source="manifest")(lambda inputs: None)

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError, match="unknown figure source"):
            register("x_bad_source", title="x", source="nope")(lambda inputs: None)


class TestDashboards:
    def test_fleet_dashboard(self, inputs):
        built = build_figure("fleet_dashboard", inputs)
        assert built.table.column("scenario") == ["fleet_a"]
        assert "fleet_a" in built.text
        assert built.spec["$schema"].startswith("https://vega.github.io/schema/vega-lite")

    def test_faults_dashboard_selects_only_fault_scenarios(self, inputs):
        built = build_figure("faults_dashboard", inputs)
        assert built.table.column("scenario") == ["faults_a"]
        assert built.table.rows[0]["availability"] == 0.9

    def test_cosim_dashboard_includes_all_cosim_kinds(self, inputs):
        built = build_figure("cosim_dashboard", inputs)
        assert set(built.table.column("scenario")) == {"cosim_a", "faults_a"}

    def test_bench_trajectory(self, inputs):
        built = build_figure("bench_trajectory", inputs)
        assert set(built.table.column("case")) == {"g"}
        assert built.table.rows[0]["source"] == "BENCH_x"

    def test_run_history_figure_single_run(self, inputs):
        built = build_figure("run_history", inputs)
        assert "1 run(s) indexed" in built.text
        deltas = built.table.column("delta")
        assert deltas and all(delta == 0.0 for delta in deltas)

    def test_snapshot_figure_requires_snapshots(self, inputs):
        with pytest.raises(ConfigurationError, match="two telemetry snapshots"):
            build_figure("telemetry_diff", inputs)

    def test_build_all_skips_snapshot_figures_without_paths(self, inputs):
        names = [name for name, spec in FIGURES.items() if spec.source in ("manifest", "bench", "history")]
        built = build_all(inputs, names=names)
        assert [figure.name for figure in built] == names


class TestSaveAndCheck:
    def test_save_writes_text_csv_and_vega_lite(self, inputs, tmp_path):
        built = build_figure("fleet_dashboard", inputs)
        out = tmp_path / "out"
        paths = built.save(out)
        assert [path.name for path in paths] == [
            "fleet_dashboard.txt",
            "fleet_dashboard.csv",
            "fleet_dashboard.vl.json",
        ]
        assert paths[0].read_text().endswith("\n")
        round_trip = Table.from_csv(paths[1].read_text())
        assert round_trip.column("scenario") == ["fleet_a"]
        spec = json.loads(paths[2].read_text())
        assert spec["data"]["url"] == "fleet_dashboard.csv"

    def test_save_is_byte_stable(self, inputs, tmp_path):
        built = build_figure("fleet_dashboard", inputs)
        first = [path.read_bytes() for path in built.save(tmp_path / "a")]
        second = [path.read_bytes() for path in built.save(tmp_path / "b")]
        assert first == second

    def test_check_reports_missing_artifacts(self, inputs, tmp_path):
        outcomes = check_figures(inputs, results_dir=tmp_path)
        assert outcomes and all(outcome.status == "missing" for outcome in outcomes)
        assert not any(outcome.ok for outcome in outcomes)
