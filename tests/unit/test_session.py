"""Unit tests for the session-level analyzer."""

import pytest

from repro.core.framework import XRPerformanceModel
from repro.core.session import SessionAnalyzer
from repro.exceptions import ConfigurationError


@pytest.fixture
def quest_model():
    return XRPerformanceModel(device="XR6", edge="EDGE-AGX")


class TestAnalyticalSessions:
    def test_report_fields_consistent(self, quest_model):
        report = SessionAnalyzer(quest_model).analyze_session(n_frames=50)
        assert report.n_frames == 50
        assert report.p99_latency_ms >= report.p95_latency_ms >= report.mean_latency_ms
        assert report.achievable_fps == pytest.approx(1e3 / report.mean_latency_ms)
        assert report.session_energy_j == pytest.approx(
            report.mean_energy_mj * 50 / 1e3, rel=1e-6
        )

    def test_analytical_session_has_no_latency_spread(self, quest_model):
        report = SessionAnalyzer(quest_model).analyze_session(n_frames=20)
        assert report.p99_latency_ms == pytest.approx(report.mean_latency_ms)

    def test_battery_drains_with_more_frames(self, quest_model):
        short = SessionAnalyzer(quest_model).analyze_session(n_frames=10)
        long = SessionAnalyzer(quest_model).analyze_session(n_frames=500)
        assert long.battery_drain_fraction > short.battery_drain_fraction

    def test_tethered_device_has_infinite_battery_life(self):
        model = XRPerformanceModel(device="XR7", edge="EDGE-AGX")
        report = SessionAnalyzer(model).analyze_session(n_frames=10)
        assert report.battery_life_s == float("inf")
        assert "tethered" in report.summary()

    def test_invalid_frame_count_rejected(self, quest_model):
        with pytest.raises(ConfigurationError):
            SessionAnalyzer(quest_model).analyze_session(n_frames=0)

    def test_summary_mentions_fps_and_battery(self, quest_model):
        text = SessionAnalyzer(quest_model).analyze_session(n_frames=5).summary()
        assert "frame rate" in text
        assert "battery" in text


class TestSimulatedSessions:
    def test_simulated_session_has_latency_tails(self, quest_model):
        report = SessionAnalyzer(quest_model, use_simulation=True, seed=2).analyze_session(
            n_frames=200
        )
        assert report.p99_latency_ms > report.mean_latency_ms

    def test_simulated_mean_close_to_calibrated_analytical_mean(
        self, session_calibrated_coefficients
    ):
        # With testbed-calibrated coefficients the analytical session mean and
        # the simulated session mean agree (paper constants would not, because
        # they describe the authors' physical devices, not the simulated ones).
        model = XRPerformanceModel(
            device="XR6", edge="EDGE-AGX", coefficients=session_calibrated_coefficients
        )
        analytical = SessionAnalyzer(model).analyze_session(n_frames=50)
        simulated = SessionAnalyzer(model, use_simulation=True, seed=3).analyze_session(
            n_frames=200
        )
        assert simulated.mean_latency_ms == pytest.approx(
            analytical.mean_latency_ms, rel=0.15
        )

    def test_temperature_rises_during_session(self, quest_model):
        report = SessionAnalyzer(quest_model, use_simulation=True).analyze_session(n_frames=100)
        assert report.final_temperature_c > 24.0
