"""Unit tests for the declarative scenario specs (repro.experiments.spec)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ScenarioSpec,
    ScenarioSuite,
    bundled_suite,
    load_specs,
    load_suite,
    toml_available,
)

requires_toml = pytest.mark.skipif(
    not toml_available(), reason="needs tomllib (Python >= 3.11) or tomli"
)


def _rich_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="cosim_rich",
        kind="cosim",
        description="every optional field populated",
        device="XR2",
        edge="EDGE-AGX",
        mode="remote",
        seed=11,
        app={"frame_side_px": 400.0, "cpu_freq_ghz": 1.5},
        network={"throughput_mbps": 120.0},
        params={
            "trace": "step",
            "epochs": 12,
            "users": 8,
            "controller": "greedy",
            "n_edges": 2,
            "shards": 2,
            "deadline_ms": 650.0,
            "damping": 0.25,
        },
        expected={"deadline_miss_rate": 0.0},
        tolerances={"deadline_miss_rate": 1e-9, "total_energy_j": 0.01},
    )


class TestRoundTrip:
    def test_dict_round_trip_is_bit_equal(self):
        spec = _rich_spec()
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.to_dict() == spec.to_dict()

    def test_defaults_round_trip(self):
        spec = ScenarioSpec(name="plain", kind="analyze")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = _rich_spec()
        path = tmp_path / "suite.json"
        path.write_text(json.dumps({"scenarios": [spec.to_dict()]}))
        (loaded,) = load_specs(path)
        assert loaded == spec
        assert loaded.to_dict() == spec.to_dict()

    def test_json_bare_list_and_single_object(self, tmp_path):
        spec = ScenarioSpec(name="one", kind="sweep")
        as_list = tmp_path / "list.json"
        as_list.write_text(json.dumps([spec.to_dict()]))
        as_object = tmp_path / "object.json"
        as_object.write_text(json.dumps(spec.to_dict()))
        assert load_specs(as_list) == [spec]
        assert load_specs(as_object) == [spec]

    @requires_toml
    def test_toml_file_round_trip(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text(
            "\n".join(
                [
                    "[[scenario]]",
                    'name = "adapt_toml"',
                    'kind = "adapt"',
                    'device = "XR1"',
                    "seed = 3",
                    "[scenario.params]",
                    'trace = "drift"',
                    "epochs = 20",
                    'controller = "ewma"',
                    "[scenario.expected]",
                    "deadline_miss_rate = 0.0",
                    "[scenario.tolerances]",
                    "deadline_miss_rate = 1e-9",
                ]
            )
        )
        (spec,) = load_specs(path)
        assert spec.name == "adapt_toml"
        assert spec.params["trace"] == "drift"
        assert spec.tolerances == {"deadline_miss_rate": 1e-9}
        # TOML -> spec -> dict -> spec is bit-equal.
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @requires_toml
    def test_toml_and_json_forms_load_identically(self, tmp_path):
        spec = _rich_spec()
        json_path = tmp_path / "suite.json"
        json_path.write_text(json.dumps([spec.to_dict()]))
        lines = ["[[scenario]]"]
        for key in ("name", "kind", "description", "device", "edge", "mode"):
            lines.append(f'{key} = "{getattr(spec, key)}"')
        lines.append(f"seed = {spec.seed}")
        for table in ("app", "network", "params", "expected", "tolerances"):
            lines.append(f"[scenario.{table}]")
            for key, value in getattr(spec, table).items():
                rendered = f'"{value}"' if isinstance(value, str) else repr(value)
                lines.append(f"{key} = {rendered}")
        toml_path = tmp_path / "suite.toml"
        toml_path.write_text("\n".join(lines))
        assert load_specs(toml_path) == load_specs(json_path)


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "kind": "analyze", "speed": 9000})

    def test_missing_name_and_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            ScenarioSpec.from_dict({"kind": "analyze"})
        with pytest.raises(ConfigurationError, match="missing"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_bad_kind_device_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ScenarioSpec(name="x", kind="simulate")
        with pytest.raises(ConfigurationError, match="device"):
            ScenarioSpec(name="x", kind="analyze", device="PIXEL9")
        with pytest.raises(ConfigurationError, match="mode"):
            ScenarioSpec(name="x", kind="analyze", mode="quantum")

    def test_param_allowlist_is_per_kind(self):
        ScenarioSpec(name="ok", kind="fleet", params={"users": 4})
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            ScenarioSpec(name="x", kind="analyze", params={"users": 4})
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            ScenarioSpec(name="x", kind="sweep", params={"trace": "burst"})

    def test_param_values_validated(self):
        with pytest.raises(ConfigurationError, match="trace"):
            ScenarioSpec(name="x", kind="adapt", params={"trace": "tsunami"})
        with pytest.raises(ConfigurationError, match="users"):
            ScenarioSpec(name="x", kind="fleet", params={"users": 0})
        with pytest.raises(ConfigurationError, match="epoch_ms"):
            ScenarioSpec(name="x", kind="adapt", params={"epoch_ms": -1.0})
        with pytest.raises(ConfigurationError, match="frame_sides_px"):
            ScenarioSpec(name="x", kind="sweep", params={"frame_sides_px": []})
        with pytest.raises(ConfigurationError, match="mixed_devices"):
            ScenarioSpec(name="x", kind="fleet", params={"mixed_devices": ["PIXEL9"]})
        with pytest.raises(ConfigurationError, match="controller"):
            ScenarioSpec(name="x", kind="adapt", params={"controller": "oracle"})

    def test_app_and_network_overrides_checked_against_config_fields(self):
        ScenarioSpec(name="ok", kind="analyze", app={"cpu_freq_ghz": 2.5})
        with pytest.raises(ConfigurationError, match="app override"):
            ScenarioSpec(name="x", kind="analyze", app={"cpu_frequency": 2.5})
        with pytest.raises(ConfigurationError, match="network override"):
            ScenarioSpec(name="x", kind="analyze", network={"bandwidth": 80.0})
        # Nested sub-configs are deliberately not declarative.
        with pytest.raises(ConfigurationError, match="app override"):
            ScenarioSpec(name="x", kind="analyze", app={"encoder": {}})

    def test_seed_and_tolerances_validated(self):
        with pytest.raises(ConfigurationError, match="seed"):
            ScenarioSpec(name="x", kind="analyze", seed=-1)
        with pytest.raises(ConfigurationError, match="seed"):
            ScenarioSpec(name="x", kind="analyze", seed=1.5)
        with pytest.raises(ConfigurationError, match="tolerance"):
            ScenarioSpec(name="x", kind="analyze", tolerances={"m": -0.1})
        with pytest.raises(ConfigurationError, match="must be a number"):
            ScenarioSpec(name="x", kind="analyze", expected={"m": "fast"})

    def test_unsupported_suffix_and_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            load_specs(tmp_path / "nope.json")
        path = tmp_path / "suite.yaml"
        path.write_text("scenario: {}")
        with pytest.raises(ConfigurationError, match="suffix"):
            load_specs(path)


class TestSuite:
    def test_duplicate_names_rejected(self):
        spec = ScenarioSpec(name="twin", kind="analyze")
        with pytest.raises(ConfigurationError, match="twin"):
            ScenarioSuite(name="s", specs=(spec, spec))

    def test_select_preserves_suite_order(self):
        suite = ScenarioSuite(
            name="s",
            specs=tuple(
                ScenarioSpec(name=f"s{i}", kind="analyze") for i in range(4)
            ),
        )
        selected = suite.select(["s3", "s0"])
        assert [spec.name for spec in selected] == ["s0", "s3"]

    def test_select_unknown_scenario_raises(self):
        suite = ScenarioSuite(name="s", specs=(ScenarioSpec(name="a", kind="analyze"),))
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            suite.select(["b"])

    def test_spec_hash_tracks_content(self):
        a = ScenarioSuite(name="s", specs=(ScenarioSpec(name="a", kind="analyze"),))
        same = ScenarioSuite(name="other", specs=(ScenarioSpec(name="a", kind="analyze"),))
        different = ScenarioSuite(
            name="s", specs=(ScenarioSpec(name="a", kind="analyze", seed=1),)
        )
        assert a.spec_hash() == same.spec_hash()  # name is metadata, not content
        assert a.spec_hash() != different.spec_hash()

    def test_load_suite_directory_sorted(self, tmp_path):
        (tmp_path / "20_b.json").write_text(
            json.dumps([ScenarioSpec(name="b", kind="analyze").to_dict()])
        )
        (tmp_path / "10_a.json").write_text(
            json.dumps([ScenarioSpec(name="a", kind="analyze").to_dict()])
        )
        suite = load_suite(tmp_path)
        assert [spec.name for spec in suite] == ["a", "b"]
        assert suite.name == tmp_path.name

    def test_load_suite_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no .toml/.json"):
            load_suite(tmp_path)


@requires_toml
class TestBundledSuite:
    def test_loads_and_covers_every_kind(self):
        suite = bundled_suite()
        assert len(suite) >= 12
        kinds = {spec.kind for spec in suite}
        assert kinds == {"analyze", "sweep", "fleet", "adapt", "cosim"}

    def test_names_unique_and_hash_stable(self):
        assert bundled_suite().spec_hash() == bundled_suite().spec_hash()

    def test_round_trips(self):
        for spec in bundled_suite():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
