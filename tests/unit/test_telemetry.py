"""Unit tests for the repro.telemetry core: histograms, registry, spans."""

import json
import time

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_TELEMETRY,
    SPAN_TIMING_FIELDS,
    TELEMETRY_SCHEMA_VERSION,
    StreamingHistogram,
    Telemetry,
    cache_report,
    format_profile,
    merge_snapshots,
    strip_timing,
)


@pytest.fixture(autouse=True)
def _null_registry():
    """Every test starts and ends on the no-op singleton."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestStreamingHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = StreamingHistogram()
        for value in (3.0, 8.0, 1.5, 20.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(32.5)
        assert histogram.min == 1.5
        assert histogram.max == 20.0
        assert histogram.mean == pytest.approx(32.5 / 4)

    def test_quantiles_within_sketch_error(self):
        histogram = StreamingHistogram()
        values = [float(v) for v in range(1, 1001)]
        for value in values:
            histogram.record(value)
        # Log-bucketed sketch: ~4.4% relative error per bucket.
        assert histogram.quantile(0.50) == pytest.approx(500.0, rel=0.05)
        assert histogram.quantile(0.95) == pytest.approx(950.0, rel=0.05)
        assert histogram.quantile(0.99) == pytest.approx(990.0, rel=0.05)

    def test_quantile_clamped_to_exact_extremes(self):
        histogram = StreamingHistogram()
        histogram.record(7.0)
        assert histogram.quantile(0.0) == 7.0
        assert histogram.quantile(1.0) == 7.0

    def test_zero_and_negative_values_use_zero_bucket(self):
        histogram = StreamingHistogram()
        histogram.record(0.0)
        histogram.record(-1.0)
        histogram.record(4.0)
        assert histogram.zero_count == 2
        assert histogram.count == 3
        assert histogram.min == -1.0

    def test_merge_equals_recording_everything(self):
        left, right, reference = (
            StreamingHistogram(),
            StreamingHistogram(),
            StreamingHistogram(),
        )
        a = [1.0, 5.0, 9.0, 100.0]
        b = [2.0, 5.0, 0.0, 33.3]
        for value in a:
            left.record(value)
            reference.record(value)
        for value in b:
            right.record(value)
            reference.record(value)
        left.merge(right)
        assert left.to_dict() == reference.to_dict()

    def test_merge_is_associative(self):
        def build(values):
            histogram = StreamingHistogram()
            for value in values:
                histogram.record(value)
            return histogram

        chunks = ([1.0, 2.0], [4.0, 8.0, 16.0], [0.5, 64.0])
        ab_then_c = build(chunks[0])
        ab_then_c.merge(build(chunks[1]))
        ab_then_c.merge(build(chunks[2]))
        bc = build(chunks[1])
        bc.merge(build(chunks[2]))
        a_then_bc = build(chunks[0])
        a_then_bc.merge(bc)
        assert ab_then_c.to_dict() == a_then_bc.to_dict()

    def test_dict_round_trip(self):
        histogram = StreamingHistogram()
        for value in (0.25, 3.0, 3.0, 700.0):
            histogram.record(value)
        clone = StreamingHistogram.from_dict(
            json.loads(json.dumps(histogram.to_dict()))
        )
        assert clone.to_dict() == histogram.to_dict()


class TestRegistry:
    def test_counters_gauges_histograms(self):
        registry = Telemetry()
        registry.add("hits")
        registry.add("hits", 4)
        registry.gauge("depth", 3.0)
        registry.gauge("depth", 7.0)
        registry.record("latency", 3.0)
        registry.record("latency", 8.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 5
        assert snapshot["gauges"]["depth"] == 7.0
        assert snapshot["histograms"]["latency"]["count"] == 2
        assert snapshot["schema_version"] == TELEMETRY_SCHEMA_VERSION

    def test_span_nesting_builds_a_tree(self):
        registry = Telemetry()
        with registry.span("outer", items=3):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        spans = registry.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer"]["counters"] == {"items": 3}
        assert spans["outer"]["children"]["inner"]["count"] == 2

    def test_span_annotate_folds_numeric_attrs(self):
        registry = Telemetry()
        with registry.span("work") as sp:
            sp.annotate(groups=4)
        with registry.span("work") as sp:
            sp.annotate(groups=2, label="ignored-not-numeric")
        node = registry.snapshot()["spans"]["work"]
        assert node["counters"] == {"groups": 6}

    def test_span_pops_on_exception(self):
        registry = Telemetry()
        with pytest.raises(ValueError):
            with registry.span("fails"):
                raise ValueError("boom")
        with registry.span("after"):
            pass
        spans = registry.snapshot()["spans"]
        # The failed span exited cleanly: "after" is a sibling, not a child.
        assert set(spans) == {"fails", "after"}

    def test_null_span_still_measures_elapsed(self):
        with NULL_TELEMETRY.span("anything") as sp:
            time.sleep(0.001)
        assert sp.elapsed_s > 0.0
        assert NULL_TELEMETRY.snapshot()["spans"] == {}

    def test_enable_disable_swap_the_active_registry(self):
        assert telemetry.get() is NULL_TELEMETRY
        registry = telemetry.enable()
        assert telemetry.get() is registry
        telemetry.get().add("seen")
        telemetry.disable()
        assert telemetry.get() is NULL_TELEMETRY
        assert registry.snapshot()["counters"]["seen"] == 1

    def test_snapshot_is_json_serializable(self):
        registry = Telemetry()
        with registry.span("s", n=1):
            registry.add("c")
            registry.record("h", 2.5)
        registry.gauge("g", 1.0)
        encoded = json.dumps(registry.snapshot())
        assert json.loads(encoded)["counters"]["c"] == 1

    def test_numpy_scalars_coerce_to_builtin_numbers(self):
        # Model code hands the registry np.int64 switch counts and
        # np.float64 sums; the snapshot must stay json.dumps-able.
        import numpy as np

        registry = Telemetry()
        registry.add("switches", np.int64(3))
        registry.gauge("level", np.float64(2.5))
        registry.record("latency", np.float64(7.0))
        with registry.span("work", items=np.int64(4)) as sp:
            sp.annotate(extra=np.float64(1.5))
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert snapshot["counters"]["switches"] == 3
        assert type(snapshot["counters"]["switches"]) is int
        assert snapshot["spans"]["work"]["counters"] == {"items": 4, "extra": 1.5}

    def test_noop_overhead_stays_negligible(self):
        # 10k no-op records must be effectively free (generous cap: the
        # point is catching an accidentally-recording default, not a
        # micro-benchmark).
        start = time.perf_counter()
        for _ in range(10_000):
            NULL_TELEMETRY.add("counter")
            NULL_TELEMETRY.record("histogram", 1.0)
        assert time.perf_counter() - start < 0.5


class TestSnapshotMergeAndStrip:
    def _snapshot(self):
        registry = Telemetry()
        with registry.span("run", users=2):
            with registry.span("epoch"):
                registry.add("epochs")
                registry.record("iterations", 3.0)
        return registry.snapshot()

    def test_strip_timing_removes_exactly_the_wall_fields(self):
        stripped = strip_timing(self._snapshot())
        node = stripped["spans"]["run"]
        for field in SPAN_TIMING_FIELDS:
            assert field not in node
            assert field not in node["children"]["epoch"]
        assert node["count"] == 1
        assert node["counters"] == {"users": 2}
        assert stripped["histograms"]["iterations"]["count"] == 1

    def test_two_runs_agree_modulo_timing(self):
        assert strip_timing(self._snapshot()) == strip_timing(self._snapshot())

    def test_merge_snapshot_doubles_counters_and_span_counts(self):
        snapshot = self._snapshot()
        registry = Telemetry()
        registry.merge_snapshot(snapshot)
        registry.merge_snapshot(snapshot)
        merged = registry.snapshot()
        assert merged["counters"]["epochs"] == 2
        assert merged["histograms"]["iterations"]["count"] == 2
        assert merged["spans"]["run"]["count"] == 2
        assert merged["spans"]["run"]["children"]["epoch"]["count"] == 2
        assert merged["spans"]["run"]["counters"] == {"users": 4}

    def test_merge_snapshots_is_associative_modulo_timing(self):
        parts = [self._snapshot() for _ in range(3)]
        left = merge_snapshots([merge_snapshots(parts[:2]), parts[2]])
        right = merge_snapshots([parts[0], merge_snapshots(parts[1:])])
        assert strip_timing(left) == strip_timing(right)

    def test_merge_rejects_unknown_schema(self):
        registry = Telemetry()
        with pytest.raises(ValueError, match="schema_version"):
            registry.merge_snapshot({"schema_version": 999})


class TestCacheReport:
    def test_reports_the_module_level_lru_surfaces(self):
        from repro.devices.catalog import get_device

        get_device("XR1")
        report = cache_report()
        assert set(report) == {
            "devices.catalog.get_device",
            "devices.catalog.get_edge_server",
            "cnn.zoo.get_cnn",
            "cnn.complexity.evaluate",
        }
        for entry in report.values():
            assert set(entry) == {"hits", "misses", "currsize", "maxsize"}
        assert report["devices.catalog.get_device"]["currsize"] >= 1


class TestFormatProfile:
    def test_renders_span_tree_counters_and_caches(self):
        registry = Telemetry()
        with registry.span("outer", n=2):
            with registry.span("inner"):
                pass
        registry.add("events", 3)
        registry.record("sizes", 10.0)
        text = format_profile(registry.snapshot(), cache_report())
        assert "span tree" in text
        assert "outer" in text and "  inner" in text
        assert "events" in text
        assert "sizes" in text
        assert "devices.catalog.get_device" in text

    def test_empty_snapshot_renders_a_hint(self):
        assert "empty" in format_profile(NULL_TELEMETRY.snapshot())
