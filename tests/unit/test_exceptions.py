"""Unit tests for the exception hierarchy."""

import pytest

from repro import exceptions


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "ModelDomainError",
        "UnknownDeviceError",
        "UnknownCNNError",
        "UnstableQueueError",
        "SimulationError",
        "RegressionError",
    ):
        error_type = getattr(exceptions, name)
        assert issubclass(error_type, exceptions.ReproError)


def test_unknown_device_is_a_configuration_error():
    assert issubclass(exceptions.UnknownDeviceError, exceptions.ConfigurationError)


def test_unstable_queue_is_a_model_domain_error():
    assert issubclass(exceptions.UnstableQueueError, exceptions.ModelDomainError)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(exceptions.ReproError):
        raise exceptions.UnknownCNNError("nope")
