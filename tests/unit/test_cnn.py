"""Unit tests for the CNN descriptor, zoo (Table II) and complexity model (Eq. 12)."""

import pytest

from repro.cnn.complexity import CNNComplexityModel, PAPER_COMPLEXITY_COEFFICIENTS
from repro.cnn.model import CNNModel
from repro.cnn.zoo import CNN_ZOO, get_cnn, list_cnns
from repro.exceptions import ModelDomainError, UnknownCNNError


class TestCNNModel:
    def test_valid_descriptor(self):
        model = CNNModel(name="tiny", depth=10, size_mb=1.5)
        assert model.is_lightweight

    def test_invalid_tier_rejected(self):
        with pytest.raises(ValueError):
            CNNModel(name="x", depth=10, size_mb=1.0, tier="gpu")

    def test_non_positive_depth_rejected(self):
        with pytest.raises(Exception):
            CNNModel(name="x", depth=0, size_mb=1.0)

    def test_describe_mentions_quantization(self):
        quantized = CNNModel(name="q", depth=10, size_mb=1.0, quantized=True)
        assert "quantized" in quantized.describe()


class TestZoo:
    def test_contains_eleven_models(self):
        assert len(CNN_ZOO) == 11

    def test_table_two_values(self):
        mobilenet = get_cnn("MobileNetv2_300 Float")
        assert mobilenet.depth == 99
        assert mobilenet.size_mb == pytest.approx(24.2)
        yolov3 = get_cnn("YOLOv3")
        assert yolov3.depth == 106
        assert yolov3.size_mb == pytest.approx(210.0)
        assert yolov3.tier == "server"

    def test_yolov7_has_depth_scaling(self):
        assert get_cnn("YOLOv7").depth_scale == pytest.approx(1.5)

    def test_quantized_models_have_no_gpu_support(self):
        assert not get_cnn("MobileNetv1_240 Quant").gpu_support

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownCNNError):
            get_cnn("ResNet-152")

    def test_list_filter_by_tier(self):
        lightweight = list_cnns(tier="lightweight")
        server = list_cnns(tier="server")
        assert len(lightweight) + len(server) == len(CNN_ZOO)
        assert {model.name for model in server} == {"YOLOv3", "YOLOv7"}


class TestComplexityModel:
    def test_paper_coefficients(self):
        model = CNNComplexityModel.paper()
        assert model.as_coefficients() == PAPER_COMPLEXITY_COEFFICIENTS
        assert model.r_squared == pytest.approx(0.844)

    def test_eq12_evaluation(self):
        model = CNNComplexityModel.paper()
        # C = 2.45 + 0.0025*99 + 0.03*24.2 + 0.0029*1.0
        expected = 2.45 + 0.0025 * 99 + 0.03 * 24.2 + 0.0029
        assert model.complexity(get_cnn("MobileNetv2_300 Float")) == pytest.approx(expected)

    def test_larger_models_are_more_complex(self):
        model = CNNComplexityModel.paper()
        assert model.complexity(get_cnn("YOLOv3")) > model.complexity(
            get_cnn("MobileNetv1_240 Quant")
        )

    def test_complexity_vector_order(self):
        model = CNNComplexityModel.paper()
        models = list_cnns()
        vector = model.complexity_vector(models)
        assert len(vector) == len(models)
        assert vector[0] == pytest.approx(model.complexity(models[0]))

    def test_negative_parameters_rejected(self):
        with pytest.raises(ModelDomainError):
            CNNComplexityModel.paper().complexity_from_parameters(-1, 10.0)

    def test_from_coefficients_requires_four(self):
        with pytest.raises(ModelDomainError):
            CNNComplexityModel.from_coefficients([1.0, 2.0])

    def test_non_positive_complexity_detected(self):
        model = CNNComplexityModel.from_coefficients([-100.0, 0.0, 0.0, 0.0])
        with pytest.raises(ModelDomainError):
            model.complexity_from_parameters(10, 10.0)
