"""Unit tests for mobility (random walk) and handoff models (Eq. 17)."""

import pytest

from repro.config.network import HandoffConfig
from repro.exceptions import ConfigurationError, ModelDomainError
from repro.network.handoff import HandoffLatencyBreakdown, HandoffModel
from repro.network.mobility import CoverageLayout, RandomWalkMobility


class TestCoverageLayout:
    def test_grid_size(self):
        layout = CoverageLayout(rows=3, cols=4)
        assert layout.n_zones == 12
        assert len(layout.graph.nodes) == 12

    def test_technology_assignment_cycles(self):
        layout = CoverageLayout(technologies=("a", "b"))
        technologies = {layout.technology_of(zone) for zone in layout.graph.nodes}
        assert technologies == {"a", "b"}

    def test_vertical_transition_detection(self):
        layout = CoverageLayout(rows=1, cols=2, technologies=("a", "b"))
        assert layout.is_vertical_transition((0, 0), (0, 1))

    def test_single_technology_has_no_vertical_handoffs(self):
        layout = CoverageLayout(technologies=("wifi",))
        for zone in layout.graph.nodes:
            assert layout.vertical_neighbor_fraction(zone) == 0.0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageLayout(rows=0, cols=3)


class TestRandomWalk:
    def test_handoff_probability_in_unit_interval(self):
        mobility = RandomWalkMobility(layout=CoverageLayout(), speed_m_per_s=1.4)
        probability = mobility.handoff_probability(33.3)
        assert 0.0 <= probability <= 1.0

    def test_stationary_device_never_hands_off(self):
        mobility = RandomWalkMobility(layout=CoverageLayout(), speed_m_per_s=0.0)
        assert mobility.handoff_probability(1000.0) == 0.0

    def test_faster_devices_hand_off_more(self):
        layout = CoverageLayout()
        slow = RandomWalkMobility(layout=layout, speed_m_per_s=1.0)
        fast = RandomWalkMobility(layout=layout, speed_m_per_s=10.0)
        assert fast.handoff_probability(100.0) > slow.handoff_probability(100.0)

    def test_expected_handoffs_scale_with_duration(self):
        mobility = RandomWalkMobility(layout=CoverageLayout(), speed_m_per_s=1.4)
        assert mobility.expected_handoffs(2000.0, 20.0) == pytest.approx(
            2.0 * mobility.expected_handoffs(1000.0, 20.0)
        )

    def test_walk_statistics_match_analytics(self, rng):
        mobility = RandomWalkMobility(
            layout=CoverageLayout(rows=9, cols=9), speed_m_per_s=8.0, pause_probability=0.0
        )
        trace = mobility.walk(n_steps=8000, step_interval_ms=100.0, rng=rng)
        analytical = mobility.handoff_probability(100.0)
        assert trace.empirical_handoff_probability == pytest.approx(analytical, rel=0.15)

    def test_walk_records_occupancy(self, rng):
        mobility = RandomWalkMobility(layout=CoverageLayout(), speed_m_per_s=1.4)
        trace = mobility.walk(n_steps=100, step_interval_ms=33.0, rng=rng)
        assert sum(trace.zone_occupancy().values()) == len(trace.zones)

    def test_start_zone_must_exist(self):
        with pytest.raises(ConfigurationError):
            RandomWalkMobility(layout=CoverageLayout(rows=2, cols=2), start_zone=(9, 9))


class TestZeroVelocityWalks:
    def test_zero_velocity_walk_never_moves(self, rng):
        mobility = RandomWalkMobility(layout=CoverageLayout(), speed_m_per_s=0.0)
        trace = mobility.walk(n_steps=500, step_interval_ms=33.0, rng=rng)
        assert trace.n_handoffs == 0
        assert trace.n_vertical_handoffs == 0
        assert set(trace.zones) == {mobility.start_zone}
        assert trace.empirical_handoff_probability == 0.0

    def test_zero_velocity_expected_handoffs_are_zero(self):
        mobility = RandomWalkMobility(layout=CoverageLayout(), speed_m_per_s=0.0)
        assert mobility.expected_handoffs(10_000.0, 33.0) == 0.0

    def test_always_paused_walk_never_moves(self, rng):
        mobility = RandomWalkMobility(
            layout=CoverageLayout(), speed_m_per_s=10.0, pause_probability=1.0
        )
        assert mobility.handoff_probability(100.0) == 0.0
        trace = mobility.walk(n_steps=200, step_interval_ms=100.0, rng=rng)
        assert trace.n_handoffs == 0


class TestSingleZoneLayouts:
    def test_single_zone_has_no_neighbors(self):
        layout = CoverageLayout(rows=1, cols=1)
        assert layout.n_zones == 1
        assert layout.neighbors((0, 0)) == []
        assert layout.vertical_neighbor_fraction((0, 0)) == 0.0

    def test_walk_on_single_zone_stays_put(self, rng):
        layout = CoverageLayout(rows=1, cols=1)
        mobility = RandomWalkMobility(
            layout=layout, speed_m_per_s=50.0, pause_probability=0.0
        )
        trace = mobility.walk(n_steps=300, step_interval_ms=100.0, rng=rng)
        assert trace.n_handoffs == 0
        assert trace.zone_occupancy() == {(0, 0): len(trace.zones)}

    def test_single_zone_analytical_probability_is_still_defined(self):
        # The fluid-flow boundary-crossing rate does not know the graph has
        # nowhere to go; it only depends on speed and cell radius.
        layout = CoverageLayout(rows=1, cols=1, cell_radius_m=25.0)
        mobility = RandomWalkMobility(layout=layout, speed_m_per_s=1.4)
        assert 0.0 < mobility.handoff_probability(100.0) < 1.0

    def test_handoff_model_on_single_zone_layout(self):
        layout = CoverageLayout(rows=1, cols=1)
        mobility = RandomWalkMobility(layout=layout, speed_m_per_s=0.0)
        model = HandoffModel(HandoffConfig(enabled=True), mobility=mobility)
        assert model.mean_handoff_latency_ms(33.3) == 0.0


class TestDegenerateGraphClassification:
    def test_single_row_alternating_technologies_all_vertical(self):
        layout = CoverageLayout(rows=1, cols=5, technologies=("a", "b"))
        for col in range(4):
            assert layout.is_vertical_transition((0, col), (0, col + 1))
        assert layout.vertical_neighbor_fraction((0, 2)) == 1.0

    def test_single_row_single_technology_all_horizontal(self):
        layout = CoverageLayout(rows=1, cols=5, technologies=("wifi",))
        for col in range(4):
            assert not layout.is_vertical_transition((0, col), (0, col + 1))
        assert layout.vertical_neighbor_fraction((0, 2)) == 0.0

    def test_more_technologies_than_zones(self):
        layout = CoverageLayout(rows=1, cols=2, technologies=("a", "b", "c", "d"))
        assert layout.technology_of((0, 0)) == "a"
        assert layout.technology_of((0, 1)) == "b"
        assert layout.is_vertical_transition((0, 0), (0, 1))

    def test_column_graph_classifies_like_row_graph(self):
        row = CoverageLayout(rows=1, cols=4, technologies=("a", "b"))
        col = CoverageLayout(rows=4, cols=1, technologies=("a", "b"))
        assert row.vertical_neighbor_fraction((0, 1)) == col.vertical_neighbor_fraction((1, 0))

    def test_walk_classifies_vertical_handoffs(self, rng):
        layout = CoverageLayout(rows=1, cols=6, technologies=("a", "b"))
        mobility = RandomWalkMobility(
            layout=layout, speed_m_per_s=50.0, pause_probability=0.0
        )
        trace = mobility.walk(n_steps=400, step_interval_ms=200.0, rng=rng)
        # Every move in an alternating 1xN corridor crosses technologies.
        assert trace.n_handoffs > 0
        assert trace.n_vertical_handoffs == trace.n_handoffs


class TestHandoffLatency:
    def test_vertical_slower_than_horizontal(self):
        breakdown = HandoffLatencyBreakdown()
        assert breakdown.vertical_latency_ms > breakdown.horizontal_latency_ms

    def test_mean_latency_interpolates(self):
        breakdown = HandoffLatencyBreakdown()
        mixed = breakdown.mean_latency_ms(0.5)
        assert breakdown.horizontal_latency_ms < mixed < breakdown.vertical_latency_ms

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ModelDomainError):
            HandoffLatencyBreakdown().mean_latency_ms(1.5)


class TestHandoffModel:
    def test_disabled_handoff_costs_nothing(self):
        model = HandoffModel(HandoffConfig(enabled=False))
        assert model.mean_handoff_latency_ms(33.3) == 0.0
        assert model.mean_handoff_energy_mj(33.3) == 0.0

    def test_explicit_probability_used(self):
        config = HandoffConfig(enabled=True, handoff_probability=0.1, handoff_latency_ms=200.0)
        model = HandoffModel(config)
        assert model.mean_handoff_latency_ms(33.3) == pytest.approx(20.0)

    def test_eq17_is_product_of_latency_and_probability(self):
        config = HandoffConfig(enabled=True)
        model = HandoffModel(config)
        period = 33.3
        expected = model.single_handoff_latency_ms() * model.handoff_probability(period)
        assert model.mean_handoff_latency_ms(period) == pytest.approx(expected)

    def test_breakdown_overrides_config_latency(self):
        config = HandoffConfig(enabled=True, handoff_latency_ms=1.0, vertical_fraction=1.0)
        model = HandoffModel(config, breakdown=HandoffLatencyBreakdown())
        assert model.single_handoff_latency_ms() == pytest.approx(
            HandoffLatencyBreakdown().vertical_latency_ms
        )

    def test_energy_uses_configured_radio_power(self):
        config = HandoffConfig(enabled=True, handoff_probability=0.5, handoff_latency_ms=100.0, power_w=2.0)
        model = HandoffModel(config)
        assert model.mean_handoff_energy_mj(33.3) == pytest.approx(2.0 * 50.0)
