"""Unit tests for the simulated (Monsoon-style) power rail."""

import numpy as np
import pytest

from repro import units
from repro.devices.power_rail import PowerRail


class TestRecording:
    def test_constant_power_energy(self):
        rail = PowerRail()
        energy = rail.record_segment("inference", duration_ms=100.0, power_w=2.0)
        assert energy == pytest.approx(200.0, rel=1e-6)

    def test_clock_advances_by_duration(self):
        rail = PowerRail()
        rail.record_segment("a", 10.0, 1.0)
        rail.record_segment("b", 5.0, 1.0)
        assert rail.clock_ms == pytest.approx(15.0)

    def test_zero_duration_records_nothing(self):
        rail = PowerRail()
        assert rail.record_segment("noop", 0.0, 5.0) == 0.0
        assert rail.samples == []

    def test_sampling_rate_matches_monsoon(self):
        rail = PowerRail()
        rail.record_segment("a", 2.0, 1.0)
        # 2 ms at 0.2 ms sampling -> at least 11 samples
        assert len(rail.samples) >= 11
        assert rail.sampling_period_ms == units.POWER_MONITOR_SAMPLING_PERIOD_MS

    def test_time_varying_power(self):
        rail = PowerRail()
        energy = rail.record_segment("ramp", 10.0, lambda t: t / 10.0)
        # integral of t/10 from 0..10 = 5 mJ
        assert energy == pytest.approx(5.0, rel=1e-3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PowerRail().record_segment("a", -1.0, 1.0)


class TestAnalysis:
    def test_total_energy_matches_sum_of_segments(self):
        rail = PowerRail()
        e1 = rail.record_segment("a", 50.0, 1.0)
        e2 = rail.record_segment("b", 25.0, 2.0)
        assert rail.total_energy_mj() == pytest.approx(e1 + e2, rel=0.02)

    def test_segment_energy_isolated(self):
        rail = PowerRail()
        rail.record_segment("a", 50.0, 1.0)
        rail.record_segment("b", 50.0, 3.0)
        assert rail.segment_energy_mj("b") == pytest.approx(150.0, rel=1e-3)

    def test_mean_and_peak_power(self):
        rail = PowerRail()
        rail.record_segment("a", 10.0, 1.0)
        rail.record_segment("b", 10.0, 3.0)
        assert 1.0 < rail.mean_power_w() < 3.0
        assert rail.peak_power_w() == pytest.approx(3.0)

    def test_empty_rail_reports_zero(self):
        rail = PowerRail()
        assert rail.total_energy_mj() == 0.0
        assert rail.mean_power_w() == 0.0
        assert rail.peak_power_w() == 0.0

    def test_reset_clears_everything(self):
        rail = PowerRail()
        rail.record_segment("a", 10.0, 1.0)
        rail.reset()
        assert rail.samples == []
        assert rail.clock_ms == 0.0

    def test_noise_never_produces_negative_power(self):
        rail = PowerRail(rng=np.random.default_rng(0), noise_std_w=2.0)
        rail.record_segment("a", 10.0, 0.5)
        assert all(sample.power_w >= 0.0 for sample in rail.samples)
