"""Unit tests for path loss and small-scale fading models."""

import numpy as np
import pytest

from repro.exceptions import ModelDomainError
from repro.network.fading import RayleighFading, RicianFading
from repro.network.pathloss import LogDistancePathLoss, free_space_path_loss_db


class TestFreeSpacePathLoss:
    def test_known_value_at_1km_2_4ghz(self):
        # FSPL(1 km, 2.4 GHz) ~ 100.1 dB
        assert free_space_path_loss_db(1000.0, 2.4) == pytest.approx(100.1, abs=0.3)

    def test_loss_increases_with_distance(self):
        assert free_space_path_loss_db(200.0, 5.0) > free_space_path_loss_db(100.0, 5.0)

    def test_loss_increases_with_frequency(self):
        assert free_space_path_loss_db(100.0, 5.0) > free_space_path_loss_db(100.0, 2.4)

    def test_doubling_distance_adds_6db(self):
        delta = free_space_path_loss_db(200.0, 5.0) - free_space_path_loss_db(100.0, 5.0)
        assert delta == pytest.approx(6.02, abs=0.05)

    def test_rejects_zero_distance(self):
        with pytest.raises(ModelDomainError):
            free_space_path_loss_db(0.0, 5.0)


class TestLogDistance:
    def test_exponent_controls_slope(self):
        gentle = LogDistancePathLoss(exponent=2.0)
        steep = LogDistancePathLoss(exponent=4.0)
        assert steep.path_loss_db(100.0) > gentle.path_loss_db(100.0)

    def test_loss_at_reference_distance_is_free_space(self):
        model = LogDistancePathLoss(exponent=3.0, reference_distance_m=1.0, carrier_frequency_ghz=5.0)
        assert model.path_loss_db(1.0) == pytest.approx(free_space_path_loss_db(1.0, 5.0))

    def test_shadowing_requires_rng(self, rng):
        model = LogDistancePathLoss(shadowing_sigma_db=6.0)
        deterministic = model.path_loss_db(50.0)
        shadowed = [model.path_loss_db(50.0, rng=rng) for _ in range(200)]
        assert np.std(shadowed) > 1.0
        assert np.mean(shadowed) == pytest.approx(deterministic, abs=1.5)

    def test_received_power(self):
        model = LogDistancePathLoss(exponent=3.0)
        rx = model.received_power_dbm(tx_power_dbm=20.0, distance_m=30.0)
        assert rx == pytest.approx(20.0 - model.path_loss_db(30.0))

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ModelDomainError):
            LogDistancePathLoss(exponent=0.0)


class TestFading:
    def test_rayleigh_mean_power_gain(self, rng):
        gains = RayleighFading(mean_power_gain=1.0).sample(rng, size=50_000)
        assert np.mean(gains) == pytest.approx(1.0, rel=0.05)
        assert np.all(gains >= 0.0)

    def test_rician_mean_power_gain(self, rng):
        gains = RicianFading(k_factor=6.0).sample(rng, size=50_000)
        assert np.mean(gains) == pytest.approx(1.0, rel=0.05)

    def test_rician_is_steadier_than_rayleigh(self, rng):
        rayleigh = RayleighFading().sample(rng, size=50_000)
        rician = RicianFading(k_factor=10.0).sample(rng, size=50_000)
        assert np.var(rician) < np.var(rayleigh)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelDomainError):
            RayleighFading(mean_power_gain=0.0)
        with pytest.raises(ModelDomainError):
            RicianFading(k_factor=-1.0)

    def test_sample_size_must_be_positive(self, rng):
        with pytest.raises(ValueError):
            RayleighFading().sample(rng, size=0)
