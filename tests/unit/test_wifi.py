"""Unit tests for the Wi-Fi link model."""

import pytest

from repro import units
from repro.config.network import NetworkConfig
from repro.exceptions import ModelDomainError
from repro.network.propagation import round_trip_propagation_ms
from repro.network.wifi import WifiLink, shannon_capacity_mbps


class TestShannonCapacity:
    def test_capacity_grows_with_snr(self):
        assert shannon_capacity_mbps(80.0, 30.0) > shannon_capacity_mbps(80.0, 10.0)

    def test_capacity_scales_with_bandwidth(self):
        assert shannon_capacity_mbps(160.0, 20.0) == pytest.approx(
            2.0 * shannon_capacity_mbps(80.0, 20.0)
        )

    def test_zero_snr_gives_one_bit_per_symbol(self):
        # log2(1 + 1) = 1 bit/s/Hz at 0 dB
        assert shannon_capacity_mbps(10.0, 0.0, mac_efficiency=1.0) == pytest.approx(10.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ModelDomainError):
            shannon_capacity_mbps(10.0, 10.0, mac_efficiency=0.0)


class TestWifiLinkWithoutPathLoss:
    def test_throughput_is_configured_value(self, network):
        link = WifiLink(config=network)
        assert link.throughput_mbps() == pytest.approx(network.throughput_mbps)

    def test_transmission_latency_matches_eq16(self, network):
        link = WifiLink(config=network)
        data_mb = 0.5
        expected = units.transmission_latency_ms(data_mb, network.throughput_mbps)
        expected += network.edge_propagation_delay_ms
        assert link.transmission_latency_ms(data_mb) == pytest.approx(expected)

    def test_snr_requires_path_loss(self, network):
        with pytest.raises(ModelDomainError):
            WifiLink(config=network).snr_db()


class TestWifiLinkWithPathLoss:
    def test_link_budget_throughput_decreases_with_distance(self):
        config = NetworkConfig(enable_path_loss=True)
        link = WifiLink(config=config)
        assert link.throughput_mbps(distance_m=10.0) > link.throughput_mbps(distance_m=80.0)

    def test_path_loss_model_built_automatically(self):
        config = NetworkConfig(enable_path_loss=True, path_loss_exponent=3.5)
        link = WifiLink(config=config)
        assert link.path_loss is not None
        assert link.path_loss.exponent == pytest.approx(3.5)

    def test_noise_floor_reasonable(self):
        config = NetworkConfig(enable_path_loss=True, bandwidth_mhz=80.0, noise_figure_db=7.0)
        noise_dbm = WifiLink(config=config).noise_power_dbm()
        assert -100.0 < noise_dbm < -80.0


class TestPropagationHelpers:
    def test_round_trip_is_twice_one_way(self):
        assert round_trip_propagation_ms(150.0) == pytest.approx(
            2.0 * units.propagation_delay_ms(150.0)
        )
