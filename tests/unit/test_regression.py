"""Unit tests for the multiple linear regression machinery."""

import numpy as np
import pytest

from repro.exceptions import RegressionError
from repro.measurement.regression import LinearRegression, RegressionResult, r_squared


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        predictions = np.full(3, 2.0)
        assert r_squared(y, predictions) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RegressionError):
            r_squared(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(RegressionError):
            r_squared(np.array([]), np.array([]))


class TestLinearRegression:
    def _make_data(self, rng, noise=0.0, n=500):
        X = np.column_stack([np.ones(n), rng.uniform(0, 10, n), rng.uniform(-5, 5, n)])
        beta = np.array([2.0, 1.5, -0.7])
        y = X @ beta + rng.normal(0.0, noise, n)
        return X, y, beta

    def test_recovers_exact_coefficients(self, rng):
        X, y, beta = self._make_data(rng)
        result = LinearRegression(("b0", "b1", "b2")).fit(X, y)
        assert np.allclose(result.coefficients, beta)
        assert result.r_squared_train == pytest.approx(1.0)

    def test_noisy_fit_reports_sensible_r_squared(self, rng):
        X, y, _ = self._make_data(rng, noise=1.0)
        result = LinearRegression().fit(X, y)
        assert 0.8 < result.r_squared_train < 1.0

    def test_test_set_r_squared(self, rng):
        X, y, _ = self._make_data(rng, noise=0.5)
        X_test, y_test, _ = self._make_data(rng, noise=0.5, n=200)
        result = LinearRegression().fit(X, y, X_test, y_test)
        assert not np.isnan(result.r_squared_test)
        assert result.n_test == 200

    def test_predict_uses_fitted_coefficients(self, rng):
        X, y, _ = self._make_data(rng)
        model = LinearRegression()
        model.fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RegressionError):
            LinearRegression().predict(np.ones((3, 2)))

    def test_confidence_intervals_shrink_with_more_data(self, rng):
        X_small, y_small, _ = self._make_data(rng, noise=1.0, n=60)
        X_large, y_large, _ = self._make_data(rng, noise=1.0, n=6000)
        small = LinearRegression().fit(X_small, y_small)
        large = LinearRegression().fit(X_large, y_large)
        assert np.all(large.confidence_intervals < small.confidence_intervals)

    def test_underdetermined_rejected(self):
        with pytest.raises(RegressionError):
            LinearRegression().fit(np.ones((2, 3)), np.ones(2))

    def test_rank_deficient_rejected(self, rng):
        x = rng.uniform(0, 1, 100)
        X = np.column_stack([x, 2.0 * x])
        with pytest.raises(RegressionError, match="rank deficient"):
            LinearRegression().fit(X, x)

    def test_summary_mentions_feature_names(self, rng):
        X, y, _ = self._make_data(rng, noise=0.1)
        result = LinearRegression(("intercept", "slope", "other")).fit(X, y)
        assert "intercept" in result.summary()
        assert isinstance(result, RegressionResult)
