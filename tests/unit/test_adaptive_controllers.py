"""Unit tests for the adaptive controllers and the headline QoE guarantees:

* on the bundled drift and burst traces, every adaptive controller achieves
  a deadline-miss rate no worse than the best *static* operating point,
* seeded replays are bit-deterministic: the same trace seed and controller
  produce an identical :class:`AdaptationReport`.
"""

import numpy as np
import pytest

from repro.adaptive.controllers import (
    Controller,
    EwmaPredictive,
    GreedyBatchSweep,
    HysteresisThreshold,
    StaticBaseline,
)
from repro.adaptive.runtime import AdaptiveRuntime
from repro.adaptive.traces import (
    ConditionTrace,
    EpochConditions,
    burst_trace,
    make_trace,
)
from repro.exceptions import ConfigurationError


def _adaptive_controllers():
    return (HysteresisThreshold(), GreedyBatchSweep(), EwmaPredictive())


@pytest.fixture(scope="module")
def burst_runtime():
    return AdaptiveRuntime(trace=burst_trace(150, seed=3))


class TestAcceptance:
    @pytest.mark.parametrize("scenario", ("drift", "burst"))
    def test_adaptive_never_worse_than_best_static(self, scenario):
        runtime = AdaptiveRuntime(trace=make_trace(scenario, 150, seed=3))
        best_static = float(runtime.static_deadline_miss_rates().min())
        for controller in _adaptive_controllers():
            report = runtime.run(controller)
            assert report.deadline_miss_rate <= best_static, controller.name

    def test_scenarios_are_nontrivial_for_static_offload(self, burst_runtime):
        """The pinned top-quality (offloaded) point must actually miss."""
        rates = burst_runtime.static_deadline_miss_rates()
        top_quality = int(np.argmax(burst_runtime.context.quality))
        assert rates[top_quality] > 0.0

    def test_adaptation_beats_best_static_on_quality(self, burst_runtime):
        static = burst_runtime.static_report()
        greedy = burst_runtime.run(GreedyBatchSweep())
        assert greedy.deadline_miss_rate <= static.deadline_miss_rate
        assert greedy.mean_quality > static.mean_quality

    @pytest.mark.parametrize(
        "controller_factory",
        (
            lambda: HysteresisThreshold(),
            lambda: GreedyBatchSweep(),
            lambda: EwmaPredictive(),
            lambda: StaticBaseline(3),
        ),
    )
    def test_seeded_replays_are_bit_deterministic(self, controller_factory):
        reports = []
        for _ in range(2):
            runtime = AdaptiveRuntime(trace=burst_trace(60, seed=9))
            reports.append(runtime.run(controller_factory()))
        assert reports[0] == reports[1]
        assert reports[0].to_dict() == reports[1].to_dict()


class TestStaticBaseline:
    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticBaseline(-1)

    def test_pins_its_candidate(self, burst_runtime):
        report = burst_runtime.run(StaticBaseline(5))
        assert set(report.chosen_indices) == {5}
        assert report.switch_count == 0
        assert report.controller == "static[5]"


class TestHysteresisThreshold:
    def _manual_trace(self, pattern, epoch_ms=100.0):
        good = dict(throughput_mbps=200.0, handoff_probability=0.0)
        bad = dict(throughput_mbps=2.0, handoff_probability=0.35)
        epochs = tuple(
            EpochConditions(time_ms=i * epoch_ms, **(good if flag else bad))
            for i, flag in enumerate(pattern)
        )
        return ConditionTrace(name="manual", epoch_ms=epoch_ms, epochs=epochs)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            HysteresisThreshold(low_mbps=50.0, high_mbps=40.0)
        with pytest.raises(ConfigurationError):
            HysteresisThreshold(handoff_cap=1.5)
        with pytest.raises(ConfigurationError):
            HysteresisThreshold(min_dwell_epochs=-1)

    def test_downgrade_is_immediate_upgrade_waits_for_dwell(self):
        # good x3, bad x1, good x6: the downgrade happens in the bad epoch,
        # the upgrade is deferred by the dwell.
        trace = self._manual_trace([1, 1, 1, 0, 1, 1, 1, 1, 1, 1])
        runtime = AdaptiveRuntime(trace=trace)
        controller = HysteresisThreshold(min_dwell_epochs=3)
        report = runtime.run(controller)
        chosen = report.chosen_indices
        offload, fallback = controller.offload_index, controller.fallback_index
        assert chosen[:3] == (offload,) * 3
        assert chosen[3] == fallback
        assert chosen[4:6] == (fallback,) * 2  # dwell holds the downgrade
        assert chosen[6:] == (offload,) * 4

    def test_derived_rungs_differ_and_offload_carries_more_quality(self, burst_runtime):
        controller = HysteresisThreshold()
        controller.reset(burst_runtime.context)
        quality = burst_runtime.context.quality
        assert controller.offload_index != controller.fallback_index
        assert quality[controller.offload_index] > quality[controller.fallback_index]

    def test_explicit_rungs_are_respected(self, burst_runtime):
        report = burst_runtime.run(
            HysteresisThreshold(offload_index=4, fallback_index=0)
        )
        assert set(report.chosen_indices) <= {0, 4}

    def test_zero_misses_on_bundled_traces(self):
        for scenario in ("drift", "step", "burst"):
            runtime = AdaptiveRuntime(trace=make_trace(scenario, 120, seed=5))
            assert runtime.run(HysteresisThreshold()).deadline_miss_rate == 0.0


class TestGreedyBatchSweep:
    def test_satisfies_controller_protocol(self):
        assert isinstance(GreedyBatchSweep(), Controller)

    def test_per_epoch_regret_free(self, burst_runtime):
        """Wherever any candidate is feasible, greedy's choice is feasible."""
        report = burst_runtime.run(GreedyBatchSweep())
        matrix = burst_runtime.static_latency_matrix()
        deadline = burst_runtime.context.deadline_ms
        some_feasible = matrix.min(axis=1) <= deadline
        chosen = np.asarray(report.latency_ms)
        assert np.all(chosen[some_feasible] <= deadline)

    def test_objective_override(self, burst_runtime):
        latency_run = burst_runtime.run(GreedyBatchSweep(objective="latency"))
        quality_run = burst_runtime.run(GreedyBatchSweep(objective="quality"))
        assert latency_run.p95_latency_ms <= quality_run.p95_latency_ms


class TestEwmaPredictive:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaPredictive(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaPredictive(epsilon=-0.1)

    def test_conservative_prediction_never_misses_with_feasible_local(self):
        for scenario in ("drift", "step", "burst"):
            runtime = AdaptiveRuntime(trace=make_trace(scenario, 120, seed=5))
            report = runtime.run(EwmaPredictive())
            assert report.deadline_miss_rate == 0.0, scenario

    def test_exploration_is_seeded(self, burst_runtime):
        a = burst_runtime.run(EwmaPredictive(epsilon=0.5, seed=1))
        b = burst_runtime.run(EwmaPredictive(epsilon=0.5, seed=1))
        c = burst_runtime.run(EwmaPredictive(epsilon=0.5, seed=2))
        assert a == b
        assert a.chosen_indices != c.chosen_indices

    def test_zero_epsilon_disables_exploration_noise(self, burst_runtime):
        a = burst_runtime.run(EwmaPredictive(epsilon=0.0, seed=1))
        b = burst_runtime.run(EwmaPredictive(epsilon=0.0, seed=99))
        assert a.chosen_indices == b.chosen_indices
