"""Unit tests for the per-segment and end-to-end latency model (Eqs. 1-18)."""

import pytest

from repro import units
from repro.config.application import ExecutionMode
from repro.config.network import HandoffConfig, NetworkConfig
from repro.core.latency import INFERENCE_RESULT_SIZE_MB, XRLatencyModel
from repro.core.segments import Segment
from repro.exceptions import ConfigurationError, ModelDomainError


@pytest.fixture
def model(device_spec, edge_spec):
    return XRLatencyModel(device=device_spec, edge=edge_spec)


class TestSegmentModels:
    def test_frame_generation_eq2(self, model, app):
        compute = model.client_compute(app)
        expected = (
            app.frame_period_ms
            + app.frame_side_px / compute
            + app.raw_frame_size_mb / model.device.memory_bandwidth_gb_s
        )
        assert model.frame_generation_ms(app) == pytest.approx(expected)

    def test_volumetric_eq4(self, model, app):
        compute = model.client_compute(app)
        expected = app.virtual_scene_side_px / compute + units.memory_access_latency_ms(
            app.virtual_scene_data_mb, model.device.memory_bandwidth_gb_s
        )
        assert model.volumetric_ms(app) == pytest.approx(expected)

    def test_external_is_slowest_sensor_times_updates(self, model, app, network):
        slowest_period = max(sensor.generation_period_ms for sensor in network.sensors)
        value = model.external_information_ms(app, network)
        assert value >= app.sensor_updates_per_frame * slowest_period

    def test_external_zero_without_sensors(self, model, app):
        assert model.external_information_ms(app, NetworkConfig(sensors=())) == 0.0

    def test_conversion_smaller_than_encoding(self, model, app):
        assert model.conversion_ms(app) < model.encoding_ms(app)

    def test_encoding_increases_with_frame_size(self, model, app):
        assert model.encoding_ms(app.with_frame_side(700.0)) > model.encoding_ms(
            app.with_frame_side(300.0)
        )

    def test_local_inference_zero_when_no_client_share(self, model, remote_app):
        assert model.local_inference_ms(remote_app) == 0.0

    def test_local_inference_positive_in_local_mode(self, model, app):
        assert model.local_inference_ms(app) > 0.0

    def test_decoding_is_fraction_of_encoding(self, model, remote_app):
        encoding_compute = model.encoding_ms(remote_app) - units.memory_access_latency_ms(
            remote_app.raw_frame_size_mb, model.device.memory_bandwidth_gb_s
        )
        decoding = model.decoding_ms(remote_app)
        assert decoding < encoding_compute
        assert decoding == pytest.approx(
            encoding_compute * model.coefficients.decode_discount / 11.76, rel=1e-6
        )

    def test_remote_inference_zero_in_local_mode(self, model, app):
        assert model.remote_inference_ms(app) == 0.0

    def test_remote_inference_requires_edge(self, device_spec, remote_app):
        model = XRLatencyModel(device=device_spec, edge=None)
        with pytest.raises(ModelDomainError):
            model.remote_inference_ms(remote_app)

    def test_multi_edge_split_is_max_of_shares(self, model, app):
        import dataclasses

        split = dataclasses.replace(
            app,
            inference=dataclasses.replace(
                app.inference,
                mode=ExecutionMode.SPLIT,
                omega_client=0.2,
                edge_shares=(0.5, 0.3),
            ),
        )
        single_remote = app.with_mode(ExecutionMode.REMOTE)
        assert model.remote_inference_ms(split) < model.remote_inference_ms(single_remote)

    def test_transmission_eq16(self, model, remote_app, network):
        expected = units.transmission_latency_ms(
            remote_app.encoded_frame_size_mb, network.throughput_mbps
        ) + network.edge_propagation_delay_ms
        assert model.transmission_ms(remote_app, network) == pytest.approx(expected)

    def test_handoff_zero_when_disabled(self, model, remote_app, network):
        assert model.handoff_ms(remote_app, network) == 0.0

    def test_handoff_positive_when_enabled(self, model, remote_app):
        network = NetworkConfig(handoff=HandoffConfig(enabled=True, handoff_probability=0.2))
        assert model.handoff_ms(remote_app, network) == pytest.approx(0.2 * 150.0)

    def test_rendering_includes_buffering(self, model, app, network):
        rendering = model.rendering_ms(app, network)
        assert rendering > model.buffering_ms(app, network)

    def test_result_transfer_local_vs_remote(self, model, app, network):
        local = model.result_transfer_ms(app, network, local=True)
        remote = model.result_transfer_ms(app, network, local=False)
        assert local < remote
        assert remote == pytest.approx(
            units.transmission_latency_ms(INFERENCE_RESULT_SIZE_MB, network.throughput_mbps)
            + network.edge_propagation_delay_ms
        )

    def test_cooperation_disabled_by_default(self, model, app, network):
        assert model.cooperation_ms(app, network) == 0.0


class TestEndToEnd:
    def test_total_is_sum_of_included_segments(self, model, app, network):
        breakdown = model.end_to_end(app, network)
        manual = sum(
            breakdown.per_segment_ms[segment] for segment in breakdown.included_segments
        )
        assert breakdown.total_ms == pytest.approx(manual)

    def test_local_mode_has_no_remote_segments(self, model, app, network):
        breakdown = model.end_to_end(app, network)
        assert Segment.ENCODING not in breakdown.per_segment_ms
        assert Segment.LOCAL_INFERENCE in breakdown.per_segment_ms
        assert breakdown.edge_compute is None

    def test_remote_mode_has_no_local_segments(self, model, remote_app, network):
        breakdown = model.end_to_end(remote_app, network)
        assert Segment.LOCAL_INFERENCE not in breakdown.per_segment_ms
        assert Segment.ENCODING in breakdown.per_segment_ms
        assert breakdown.edge_compute is not None

    def test_split_mode_contains_both_paths(self, model, app, network):
        import dataclasses

        split = dataclasses.replace(
            app,
            inference=dataclasses.replace(
                app.inference,
                mode=ExecutionMode.SPLIT,
                omega_client=0.5,
                edge_shares=(0.5,),
            ),
        )
        breakdown = model.end_to_end(split, network)
        assert Segment.LOCAL_INFERENCE in breakdown.included_segments
        assert Segment.REMOTE_INFERENCE in breakdown.included_segments

    def test_latency_monotone_in_frame_size(self, model, app, network):
        totals = [
            model.end_to_end(app.with_frame_side(side), network).total_ms
            for side in (300.0, 500.0, 700.0)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_cooperation_reported_but_not_totalled(self, model, app, network):
        import dataclasses

        from repro.config.application import CooperationConfig

        coop_app = dataclasses.replace(app, cooperation=CooperationConfig(enabled=True))
        breakdown = model.end_to_end(coop_app, network)
        assert Segment.COOPERATION in breakdown.per_segment_ms
        assert Segment.COOPERATION not in breakdown.included_segments

    def test_cooperation_in_totals_when_requested(self, model, app, network):
        import dataclasses

        from repro.config.application import CooperationConfig

        coop_app = dataclasses.replace(
            app, cooperation=CooperationConfig(enabled=True, include_in_totals=True)
        )
        breakdown = model.end_to_end(coop_app, network)
        assert Segment.COOPERATION in breakdown.included_segments

    def test_default_network_used_when_omitted(self, model, app):
        assert model.end_to_end(app).total_ms > 0.0

    def test_invalid_complexity_mode_rejected(self, device_spec, edge_spec):
        with pytest.raises(ConfigurationError):
            XRLatencyModel(device=device_spec, edge=edge_spec, complexity_mode="banana")

    def test_proportional_mode_penalises_complex_cnns(self, device_spec, edge_spec, app):
        import dataclasses

        paper_model = XRLatencyModel(device=device_spec, edge=edge_spec, complexity_mode="paper")
        proportional = XRLatencyModel(
            device=device_spec, edge=edge_spec, complexity_mode="proportional"
        )
        small = dataclasses.replace(
            app, inference=dataclasses.replace(app.inference, local_cnn="MobileNetv1_240 Quant")
        )
        big = dataclasses.replace(
            app, inference=dataclasses.replace(app.inference, local_cnn="NasNet Float")
        )
        # Paper mode: bigger CNN -> *smaller* latency (complexity in denominator).
        assert paper_model.local_inference_ms(big) < paper_model.local_inference_ms(small)
        # Proportional mode: bigger CNN -> larger latency.
        assert proportional.local_inference_ms(big) > proportional.local_inference_ms(small)
