"""Unit tests for the Little's-law helpers."""

import pytest

from repro.queueing.littles_law import littles_law_l, littles_law_w, relative_gap


def test_l_equals_lambda_w():
    assert littles_law_l(0.5, 4.0) == pytest.approx(2.0)


def test_w_equals_l_over_lambda():
    assert littles_law_w(2.0, 0.5) == pytest.approx(4.0)


def test_roundtrip():
    arrival, wait = 0.7, 3.3
    assert littles_law_w(littles_law_l(arrival, wait), arrival) == pytest.approx(wait)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        littles_law_l(-1.0, 1.0)
    with pytest.raises(ValueError):
        littles_law_w(1.0, 0.0)


def test_relative_gap():
    assert relative_gap(11.0, 10.0) == pytest.approx(0.1)
    assert relative_gap(10.0, 10.0) == 0.0


def test_relative_gap_handles_zero_expected():
    assert relative_gap(1.0, 0.0) > 1e6
