"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.des import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(5.0, lambda s: order.append("b"))
        scheduler.schedule_at(1.0, lambda s: order.append("a"))
        scheduler.schedule_at(9.0, lambda s: order.append("c"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(3.0, lambda s: seen.append(s.now_ms))
        scheduler.schedule_at(7.5, lambda s: seen.append(s.now_ms))
        scheduler.run()
        assert seen == [3.0, 7.5]
        assert scheduler.now_ms == 7.5

    def test_schedule_in_is_relative(self):
        scheduler = EventScheduler()
        times = []

        def first(s):
            times.append(s.now_ms)
            s.schedule_in(2.0, lambda inner: times.append(inner.now_ms))

        scheduler.schedule_at(4.0, first)
        scheduler.run()
        assert times == [4.0, 6.0]

    def test_same_time_events_fifo_by_priority_then_sequence(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(1.0, lambda s: order.append("second"), priority=1)
        scheduler.schedule_at(1.0, lambda s: order.append("first"), priority=0)
        scheduler.run()
        assert order == ["first", "second"]

    def test_scheduling_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(5.0, lambda s: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(1.0, lambda s: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_in(-1.0, lambda s: None)


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(2.0, lambda s: fired.append(2.0))
        scheduler.schedule_at(10.0, lambda s: fired.append(10.0))
        scheduler.run(until_ms=5.0)
        assert fired == [2.0]
        assert scheduler.now_ms == 5.0
        assert scheduler.pending_events == 1

    def test_cancelled_events_do_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(1.0, lambda s: fired.append("x"))
        scheduler.cancel(event)
        scheduler.run()
        assert fired == []

    def test_processed_event_counter(self):
        scheduler = EventScheduler()
        for time in (1.0, 2.0, 3.0):
            scheduler.schedule_at(time, lambda s: None)
        scheduler.run()
        assert scheduler.processed_events == 3

    def test_runaway_schedule_detected(self):
        scheduler = EventScheduler()

        def reschedule(s):
            s.schedule_in(0.1, reschedule)

        scheduler.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            scheduler.run(max_events=100)

    def test_reset(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda s: None)
        scheduler.run()
        scheduler.reset()
        assert scheduler.now_ms == 0.0
        assert scheduler.pending_events == 0
