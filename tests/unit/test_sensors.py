"""Unit tests for external sensors, request/generation alignment, and the input buffer."""

import numpy as np
import pytest

from repro import units
from repro.config.network import NetworkConfig, SensorConfig
from repro.exceptions import UnstableQueueError
from repro.queueing.mm1 import MM1Queue
from repro.sensors.buffer import InputBuffer
from repro.sensors.generators import generation_times_for_requests
from repro.sensors.sensor import ExternalSensor


class TestExternalSensor:
    def test_update_latency_is_eq6(self):
        sensor = ExternalSensor(SensorConfig(name="s", generation_frequency_hz=100.0, distance_m=30.0))
        expected = 10.0 + units.propagation_delay_ms(30.0)
        assert sensor.update_latency_ms() == pytest.approx(expected)

    def test_total_latency_scales_with_updates(self):
        sensor = ExternalSensor(SensorConfig(name="s", generation_frequency_hz=50.0))
        assert sensor.total_latency_ms(3) == pytest.approx(3.0 * sensor.update_latency_ms())

    def test_total_latency_rejects_negative_updates(self):
        sensor = ExternalSensor(SensorConfig(name="s", generation_frequency_hz=50.0))
        with pytest.raises(ValueError):
            sensor.total_latency_ms(-1)

    def test_generation_times_are_periodic(self):
        sensor = ExternalSensor(SensorConfig(name="s", generation_frequency_hz=100.0))
        times = sensor.generation_times_ms(45.0)
        assert list(times) == pytest.approx([10.0, 20.0, 30.0, 40.0])

    def test_arrival_times_shift_by_propagation(self):
        config = SensorConfig(name="s", generation_frequency_hz=100.0, distance_m=3000.0)
        sensor = ExternalSensor(config)
        arrivals = sensor.arrival_times_ms(50.0)
        generations = sensor.generation_times_ms(50.0)
        assert np.allclose(arrivals - generations, sensor.propagation_delay_ms)

    def test_poisson_arrivals_have_roughly_right_rate(self, rng):
        config = SensorConfig(name="s", generation_frequency_hz=200.0)
        sensor = ExternalSensor(config)
        arrivals = sensor.arrival_times_ms(100_000.0, rng=rng, poisson=True)
        assert len(arrivals) / 100.0 == pytest.approx(200.0, rel=0.1)

    def test_distance_override(self):
        sensor = ExternalSensor(SensorConfig(name="s", generation_frequency_hz=100.0, distance_m=10.0))
        near = sensor.update_latency_ms(distance_m=1.0)
        far = sensor.update_latency_ms(distance_m=10_000.0)
        assert far > near


class TestUpdateSchedule:
    def test_fast_sensor_serves_every_request(self):
        schedule = generation_times_for_requests(
            request_times_ms=[5.0, 10.0, 15.0],
            sensor_generation_times_ms=[5.0, 10.0, 15.0, 20.0],
        )
        assert list(schedule.generation_times_ms) == pytest.approx([5.0, 10.0, 15.0])
        assert np.all(schedule.staleness_ms == 0.0)

    def test_slow_sensor_reuses_samples(self):
        schedule = generation_times_for_requests(
            request_times_ms=[5.0, 10.0, 15.0, 20.0],
            sensor_generation_times_ms=[10.0, 20.0],
        )
        # Requests at 10 and 15 are served by the sample generated at 10.
        assert list(schedule.generation_times_ms) == pytest.approx([10.0, 10.0, 10.0, 20.0])
        assert max(schedule.requests_per_sample()) >= 2

    def test_early_request_waits_for_first_sample(self):
        schedule = generation_times_for_requests([2.0], [10.0])
        assert schedule.generation_times_ms[0] == pytest.approx(10.0)
        assert schedule.served_by_sample[0] == -1
        assert schedule.staleness_ms[0] < 0.0

    def test_requires_at_least_one_generation(self):
        with pytest.raises(ValueError):
            generation_times_for_requests([1.0], [])

    def test_unsorted_requests_rejected(self):
        with pytest.raises(ValueError):
            generation_times_for_requests([5.0, 1.0], [1.0])


class TestInputBuffer:
    def test_stream_delay_matches_mm1(self):
        buffer = InputBuffer(service_rate_hz=600.0)
        expected = MM1Queue.from_rates_hz(30.0, 600.0).mean_time_in_system_ms
        assert buffer.stream_delay_ms(30.0) == pytest.approx(expected)

    def test_analytical_delays_sum(self, app, network):
        buffer = InputBuffer(app.buffer_service_rate_hz)
        delays = buffer.analytical_delays(app, network)
        assert delays.total_ms == pytest.approx(
            delays.frame_ms + delays.volumetric_ms + delays.external_ms
        )
        assert delays.external_ms > 0.0

    def test_no_sensors_means_no_external_delay(self, app):
        buffer = InputBuffer(app.buffer_service_rate_hz)
        delays = buffer.analytical_delays(app, NetworkConfig(sensors=()))
        assert delays.external_ms == 0.0

    def test_unstable_buffer_rejected(self):
        buffer = InputBuffer(service_rate_hz=100.0)
        with pytest.raises(UnstableQueueError):
            buffer.stream_delay_ms(200.0)

    def test_zero_service_rate_rejected(self):
        with pytest.raises(UnstableQueueError):
            InputBuffer(service_rate_hz=0.0)

    def test_stability_check(self):
        buffer = InputBuffer(service_rate_hz=500.0)
        assert buffer.is_stable([100.0, 200.0])
        assert not buffer.is_stable([300.0, 300.0])

    def test_simulated_delays_capture_cross_stream_interference(self, app, network, rng):
        buffer = InputBuffer(app.buffer_service_rate_hz)
        analytical = buffer.analytical_delays(app, network)
        simulated = buffer.simulate_delays(app, network, horizon_ms=200_000.0, rng=rng)
        # The analytical model treats each stream as its own M/M/1 queue, so the
        # simulated shared buffer (where streams interfere) is never faster.
        assert simulated.total_ms >= analytical.total_ms * 0.9
        # Every packet of the shared FIFO buffer sees an M/M/1 system loaded with
        # the aggregate arrival rate; the per-frame total is three such sojourns.
        total_rate_hz = 2.0 * app.frame_rate_fps + network.total_sensor_arrival_rate_hz
        shared = MM1Queue.from_rates_hz(total_rate_hz, app.buffer_service_rate_hz)
        assert simulated.total_ms == pytest.approx(3.0 * shared.mean_time_in_system_ms, rel=0.2)

    def test_aoi_service_time_matches_eq22(self, network):
        buffer = InputBuffer(service_rate_hz=2000.0)
        arrival = network.total_sensor_arrival_rate_hz
        expected = 1.0 / (2.0 - arrival / 1e3)
        assert buffer.aoi_service_time_ms(arrival) == pytest.approx(expected)
