"""Unit tests for repro.figures.diffs: snapshot alignment and deltas."""

import pytest

from repro.figures.diffs import diff_snapshot_files, diff_snapshots
from repro.telemetry import Telemetry, save_snapshot


def _workload(extra_frames=0, extra_span=False):
    registry = Telemetry()
    registry.add("frames", 10 + extra_frames)
    registry.gauge("depth", 3.0)
    registry.record("lat_ms", 4.0)
    registry.record("lat_ms", 8.0)
    with registry.span("pipeline", points=5):
        with registry.span("encode"):
            pass
    if extra_span:
        with registry.span("extra"):
            pass
    return registry.snapshot()


class TestIdenticalSnapshots:
    def test_zero_work_delta_and_verdict(self):
        snapshot = _workload()
        diff = diff_snapshots(snapshot, snapshot)
        assert diff.max_counter_delta == 0.0
        text = diff.to_text()
        assert "verdict: identical work" in text
        assert "0 changed" in text

    def test_to_table_has_zero_deltas_everywhere(self):
        snapshot = _workload()
        table = diff_snapshots(snapshot, snapshot).to_table()
        deltas = [row["delta"] for row in table.rows if row["delta"] is not None]
        assert deltas and all(delta == 0 for delta in deltas)


class TestDivergedSnapshots:
    def test_counter_divergence_is_flagged(self):
        diff = diff_snapshots(_workload(), _workload(extra_frames=5))
        assert diff.max_counter_delta == 5.0
        assert "WORK DIVERGED" in diff.to_text()

    def test_span_present_on_one_side_counts_as_work_delta(self):
        diff = diff_snapshots(_workload(), _workload(extra_span=True))
        paths = [span.path for span in diff.spans]
        assert "extra" in paths
        assert diff.max_counter_delta >= 1.0

    def test_nested_spans_align_by_path(self):
        diff = diff_snapshots(_workload(), _workload())
        paths = {span.path for span in diff.spans}
        assert "pipeline" in paths and "pipeline/encode" in paths

    def test_span_counters_align_by_name(self):
        diff = diff_snapshots(_workload(), _workload())
        pipeline = next(span for span in diff.spans if span.path == "pipeline")
        assert [entry.name for entry in pipeline.counters] == ["points"]
        assert pipeline.counters[0].delta == 0.0

    def test_histogram_count_and_percentile_shifts(self):
        snapshot_a = _workload()
        registry = Telemetry()
        registry.add("frames", 10)
        registry.gauge("depth", 3.0)
        registry.record("lat_ms", 4.0)
        with registry.span("pipeline", points=5):
            with registry.span("encode"):
                pass
        snapshot_b = registry.snapshot()
        diff = diff_snapshots(snapshot_a, snapshot_b)
        histogram = diff.histograms[0]
        assert histogram.name == "lat_ms"
        assert histogram.count_delta == -1
        # Histograms are timing, not work: they never trip the verdict.
        assert diff.max_counter_delta == 0.0

    def test_missing_counter_counts_full_magnitude(self):
        diff = diff_snapshots({"counters": {"only_a": 3.0}}, {"counters": {}})
        assert diff.max_counter_delta == 3.0
        diff = diff_snapshots({"counters": {}}, {"counters": {"only_b": 2.0}})
        assert diff.max_counter_delta == 2.0


class TestSnapshotFiles:
    def test_diff_snapshot_files_labels_and_result(self, tmp_path):
        snapshot = _workload()
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_snapshot(snapshot, path_a)
        save_snapshot(snapshot, path_b)
        diff = diff_snapshot_files(path_a, path_b)
        assert diff.label_a == "a.json" and diff.label_b == "b.json"
        assert diff.max_counter_delta == 0.0

    def test_diff_rejects_wrong_schema_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": "99.0", "counters": {}}')
        good = tmp_path / "good.json"
        save_snapshot(_workload(), good)
        with pytest.raises(ValueError):
            diff_snapshot_files(path, good)
