"""Unit tests for the :class:`XRPerformanceModel` facade."""

import pytest

from repro.config.application import ExecutionMode
from repro.config.network import NetworkConfig
from repro.config.workload import WorkloadConfig
from repro.core.framework import XRPerformanceModel
from repro.devices.catalog import get_device
from repro.devices.device import XRDevice
from repro.devices.edge_server import EdgeServer
from repro.exceptions import ConfigurationError, UnknownDeviceError


class TestConstruction:
    def test_device_and_edge_by_name(self):
        model = XRPerformanceModel(device="XR3", edge="EDGE-TX2")
        assert model.device.name == "XR3"
        assert model.edge.name == "EDGE-TX2"

    def test_device_by_spec_and_runtime_object(self):
        spec = get_device("XR4")
        assert XRPerformanceModel(device=spec).device is spec
        runtime = XRDevice(spec=spec)
        assert XRPerformanceModel(device=runtime).device is spec

    def test_edge_by_runtime_object(self):
        server = EdgeServer.from_catalog("EDGE-AGX")
        assert XRPerformanceModel(edge=server).edge is server.spec

    def test_edge_none_is_allowed(self):
        model = XRPerformanceModel(device="XR1", edge=None)
        assert model.edge is None

    def test_unknown_device_raises(self):
        with pytest.raises(UnknownDeviceError):
            XRPerformanceModel(device="XR42")

    def test_garbage_device_raises(self):
        with pytest.raises(ConfigurationError):
            XRPerformanceModel(device=123)

    def test_default_coefficients_are_paper(self, performance_model):
        assert performance_model.coefficients.source == "paper"


class TestAnalyses:
    def test_analyze_latency_uses_default_app(self, performance_model):
        assert performance_model.analyze_latency().total_ms > 0.0

    def test_analyze_energy(self, performance_model):
        assert performance_model.analyze_energy().total_mj > 0.0

    def test_analyze_report_combines_everything(self, performance_model):
        report = performance_model.analyze()
        assert report.total_latency_ms == pytest.approx(report.latency.total_ms)
        assert report.total_energy_mj == pytest.approx(report.energy.total_mj)
        assert report.aoi is not None
        assert report.device_name == "XR1"
        assert report.edge_name == "EDGE-AGX"

    def test_report_without_aoi(self, performance_model):
        report = performance_model.analyze(include_aoi=False)
        assert report.aoi is None

    def test_summary_text(self, performance_model):
        text = performance_model.analyze().summary()
        assert "Latency (ms):" in text
        assert "Energy (mJ):" in text

    def test_aoi_requires_sensors(self, performance_model):
        with pytest.raises(ConfigurationError):
            performance_model.analyze_aoi(network=NetworkConfig(sensors=()))

    def test_aoi_reuses_given_latency(self, performance_model):
        direct = performance_model.analyze_aoi(frame_latency_ms=500.0)
        assert direct.required_frequency_hz == pytest.approx(3.0 / 0.5)

    def test_with_app_replaces_fields(self, performance_model):
        faster = performance_model.with_app(frame_rate_fps=60.0)
        assert faster.app.frame_rate_fps == pytest.approx(60.0)
        assert performance_model.app.frame_rate_fps == pytest.approx(30.0)

    def test_aoi_timelines_default_workload(self, performance_model):
        timelines = performance_model.aoi_timelines()
        assert len(timelines) == 3

    def test_aoi_timelines_custom_workload(self, performance_model):
        workload = WorkloadConfig(
            sensor_frequencies_hz=(50.0,), sensor_distances_m=(5.0,), horizon_ms=60.0
        )
        timelines = performance_model.aoi_timelines(workload)
        assert len(timelines) == 1


class TestSweepsAndPlacement:
    def test_sweep_covers_all_points(self, performance_model):
        results = performance_model.sweep(
            frame_sides_px=(300.0, 500.0), cpu_freqs_ghz=(2.0, 3.0)
        )
        assert set(results) == {(2.0, 300.0), (2.0, 500.0), (3.0, 300.0), (3.0, 500.0)}

    def test_sweep_respects_mode(self, performance_model):
        results = performance_model.sweep(
            frame_sides_px=(300.0,), cpu_freqs_ghz=(2.0,), mode=ExecutionMode.REMOTE
        )
        report = results[(2.0, 300.0)]
        assert report.latency.mode is ExecutionMode.REMOTE

    def test_best_placement_returns_decision(self, performance_model):
        decision = performance_model.best_placement(objective="latency")
        assert decision.total_latency_ms > 0.0

    def test_best_placement_energy_objective(self, performance_model):
        decision = performance_model.best_placement(objective="energy")
        assert decision.total_energy_mj > 0.0
