"""Unit tests for the closed-loop fleet x adaptive co-simulation."""

import json
import math

import pytest

from repro.adaptive import (
    AdaptiveRuntime,
    ConditionTrace,
    EpochConditions,
    EwmaPredictive,
    GreedyBatchSweep,
    HysteresisThreshold,
    StaticBaseline,
    burst_trace,
    step_trace,
)
from repro.batch import OperatingPoint
from repro.config.network import NetworkConfig
from repro.cosim import CoSimulation, CosimReport, ShardedCosimReport, run_cosim
from repro.exceptions import ConfigurationError
from repro.fleet import FleetAnalyzer, homogeneous, mixed_devices

DEADLINE_MS = 700.0


def constant_trace(n_epochs: int, throughput_mbps: float = 200.0) -> ConditionTrace:
    return ConditionTrace(
        name="constant",
        epoch_ms=100.0,
        epochs=tuple(
            EpochConditions(
                time_ms=i * 100.0,
                throughput_mbps=throughput_mbps,
                handoff_probability=0.0,
            )
            for i in range(n_epochs)
        ),
    )


class TestSingleUserDegeneracy:
    """At N == 1 the co-sim is the single-user adaptive runtime, bit for bit."""

    @pytest.mark.parametrize(
        "make_controller",
        [
            lambda: GreedyBatchSweep(),
            lambda: EwmaPredictive(seed=3),
            lambda: HysteresisThreshold(),
            lambda: StaticBaseline(0),
        ],
        ids=["greedy", "ewma", "hysteresis", "static"],
    )
    def test_class_report_equals_adaptation_report(self, make_controller):
        trace = burst_trace(30, seed=7)
        population = homogeneous(1, device="XR1")
        app = population.users[0].app
        cosim = CoSimulation(population, make_controller(), trace)
        report = cosim.run()
        runtime = AdaptiveRuntime(trace=trace, device="XR1", edge="EDGE-AGX", app=app)
        reference = runtime.run(make_controller())
        # Field-for-field equality of the frozen dataclasses, including
        # every per-epoch tuple.
        assert report.class_reports[0] == reference

    def test_toplines_match_single_user_report(self):
        trace = burst_trace(25, seed=2)
        population = homogeneous(1, device="XR1")
        report = CoSimulation(population, GreedyBatchSweep(), trace).run()
        reference = report.class_reports[0]
        assert report.deadline_miss_rate == reference.deadline_miss_rate
        assert report.fleet_p50_latency_ms == reference.p50_latency_ms
        assert report.fleet_p95_latency_ms == reference.p95_latency_ms
        assert report.fleet_p99_latency_ms == reference.p99_latency_ms
        assert report.switch_count == reference.switch_count
        assert report.total_energy_j == pytest.approx(reference.total_energy_j)
        assert report.all_converged


class TestStaticFleetDegeneracy:
    """All-static controllers reproduce FleetAnalyzer.analyze bit for bit."""

    @pytest.fixture()
    def static_setup(self):
        network = NetworkConfig()
        population = homogeneous(5, device="XR1")  # default app offloads
        app = population.users[0].app
        trace = constant_trace(3, throughput_mbps=network.throughput_mbps)
        candidates = (
            OperatingPoint(app=app, network=network, device="XR1", edge="EDGE-AGX"),
        )
        return network, population, trace, candidates

    @pytest.mark.parametrize("n_edges", [1, 2])
    def test_epoch_aggregates_equal_fleet_report(self, static_setup, n_edges):
        network, population, trace, candidates = static_setup
        report = CoSimulation(
            population,
            StaticBaseline(0),
            trace,
            n_edges=n_edges,
            candidates=candidates,
            network=network,
        ).run()
        fleet = FleetAnalyzer(
            population, edge="EDGE-AGX", n_edges=n_edges, network=network
        ).analyze()
        for epoch in range(trace.n_epochs):
            assert report.p50_latency_ms[epoch] == fleet.p50_latency_ms
            assert report.p95_latency_ms[epoch] == fleet.p95_latency_ms
            assert report.p99_latency_ms[epoch] == fleet.p99_latency_ms
            assert report.mean_latency_ms[epoch] == fleet.mean_latency_ms
            assert report.total_energy_mj[epoch] == fleet.total_energy_mj
            assert report.mean_energy_mj[epoch] == fleet.mean_energy_mj
            assert report.offload_fraction[epoch] == fleet.n_offloaded / fleet.n_users
        assert report.all_converged
        assert report.switch_count == 0

    def test_per_user_latency_matches_outcomes(self, static_setup):
        network, population, trace, candidates = static_setup
        report = CoSimulation(
            population,
            StaticBaseline(0),
            trace,
            n_edges=2,
            candidates=candidates,
            network=network,
        ).run()
        fleet = FleetAnalyzer(
            population, edge="EDGE-AGX", n_edges=2, network=network
        ).analyze()
        for mean_latency, outcome in zip(report.user_mean_latency_ms, fleet.outcomes):
            assert mean_latency == outcome.latency_ms


class TestClosedLoopDynamics:
    def test_contention_feeds_back_into_conditions(self):
        # With many offloaders the charged throughput must be the contended
        # share, far below the exogenous 200 Mbps.
        network = NetworkConfig()
        population = homogeneous(6, device="XR1")
        app = population.users[0].app
        candidates = (
            OperatingPoint(app=app, network=network, device="XR1", edge="EDGE-AGX"),
        )
        report = CoSimulation(
            population,
            StaticBaseline(0),
            constant_trace(2),
            n_edges=3,
            candidates=candidates,
            network=network,
        ).run()
        single = CoSimulation(
            homogeneous(1, device="XR1"),
            StaticBaseline(0),
            constant_trace(2),
            candidates=candidates,
            network=network,
        ).run()
        assert report.mean_latency_ms[0] > single.mean_latency_ms[0]

    def test_oscillating_fleet_reports_nonconvergence(self):
        # A homogeneous greedy fleet beyond the edge/channel capacity has no
        # symmetric pure fixed point: everyone-offloads saturates the edge
        # (infeasible), everyone-local frees it (offload looks best again).
        report = CoSimulation(
            homogeneous(16, device="XR1"),
            GreedyBatchSweep(),
            constant_trace(6),
            n_edges=1,
            include_aoi=False,
            max_iterations=6,
        ).run()
        assert not report.all_converged
        assert report.n_unconverged_epochs > 0
        unconverged = report.converged.index(False)
        assert report.iterations[unconverged] == 6
        # The report stays well-formed: metrics are charged from the final
        # iterate's realised regime.
        assert len(report.miss_fraction) == 6
        assert all(0.0 <= fraction <= 1.0 for fraction in report.miss_fraction)

    def test_small_fleet_converges_and_adapts(self):
        report = CoSimulation(
            homogeneous(4, device="XR1"),
            GreedyBatchSweep(),
            step_trace(20, seed=3, jitter=0.0),
            n_edges=2,
            include_aoi=False,
        ).run()
        assert report.all_converged
        assert report.class_reports[0].deadline_miss_rate == 0.0
        # The step trace forces at least one operating-point change.
        assert report.switch_count > 0

    def test_bit_deterministic_replay(self):
        def build():
            return CoSimulation(
                mixed_devices(10, devices=("XR1", "XR2")),
                EwmaPredictive(seed=5),
                burst_trace(15, seed=9),
                n_edges=2,
                include_aoi=False,
            )

        first = build().run()
        second = build().run()
        assert first.to_dict() == second.to_dict()

    def test_rerun_of_same_simulation_is_identical(self):
        simulation = CoSimulation(
            homogeneous(6, device="XR1"),
            HysteresisThreshold(),
            burst_trace(12, seed=4),
            include_aoi=False,
        )
        assert simulation.run().to_dict() == simulation.run().to_dict()


class TestEquivalenceClasses:
    def test_mixed_devices_form_one_class_per_device(self):
        report = CoSimulation(
            mixed_devices(8, devices=("XR1", "XR2")),
            GreedyBatchSweep(),
            burst_trace(5, seed=1),
            include_aoi=False,
        ).run()
        assert len(report.class_reports) == 2
        assert report.class_sizes == (4, 4)

    def test_per_user_controller_mapping_splits_classes(self):
        population = homogeneous(4, device="XR1")
        controllers = {
            user.name: GreedyBatchSweep() if index < 2 else StaticBaseline(0)
            for index, user in enumerate(population)
        }
        # Distinct controller instances -> distinct classes even though two
        # users share each controller *type*.
        report = CoSimulation(
            population, controllers, burst_trace(4, seed=1), include_aoi=False
        ).run()
        assert len(report.class_reports) == 4

    def test_missing_mapping_entry_rejected(self):
        population = homogeneous(2, device="XR1")
        with pytest.raises(ConfigurationError):
            CoSimulation(
                population,
                {population.users[0].name: GreedyBatchSweep()},
                burst_trace(3, seed=1),
            )

    def test_mismatched_traces_rejected(self):
        population = mixed_devices(2, devices=("XR1", "XR2"))
        traces = {
            population.users[0].name: burst_trace(5, seed=1),
            population.users[1].name: burst_trace(6, seed=1),
        }
        with pytest.raises(ConfigurationError):
            CoSimulation(population, GreedyBatchSweep(), traces)


class TestValidationAndReport:
    def test_invalid_parameters_rejected(self):
        population = homogeneous(2, device="XR1")
        trace = burst_trace(3, seed=0)
        with pytest.raises(ConfigurationError):
            CoSimulation(population, GreedyBatchSweep(), trace, n_edges=0)
        with pytest.raises(ConfigurationError):
            CoSimulation(population, GreedyBatchSweep(), trace, max_iterations=1)
        with pytest.raises(ConfigurationError):
            CoSimulation(population, GreedyBatchSweep(), trace, damping=0.0)
        with pytest.raises(ConfigurationError):
            CoSimulation(population, GreedyBatchSweep(), "not-a-trace")

    def test_summary_and_json_roundtrip(self):
        report = CoSimulation(
            homogeneous(3, device="XR1"),
            GreedyBatchSweep(),
            burst_trace(6, seed=2),
            include_aoi=False,
        ).run()
        assert isinstance(report, CosimReport)
        text = report.summary()
        for token in ("Co-simulation report", "fixed point", "offload fraction"):
            assert token in text
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_users"] == 3
        assert len(payload["class_reports"]) == 1

    def test_report_geometry(self):
        report = CoSimulation(
            homogeneous(3, device="XR1"),
            GreedyBatchSweep(),
            burst_trace(7, seed=2),
            include_aoi=False,
        ).run()
        assert report.n_epochs == 7
        for series in (
            report.converged,
            report.iterations,
            report.offload_fraction,
            report.p95_latency_ms,
            report.mean_quality,
            report.max_edge_utilization,
        ):
            assert len(series) == 7
        for per_user in (
            report.user_names,
            report.user_miss_rate,
            report.user_mean_latency_ms,
            report.user_energy_j,
            report.user_switch_count,
        ):
            assert len(per_user) == 3
        assert not math.isnan(report.fleet_p95_latency_ms)


class TestSharding:
    def test_sharded_run_merges_deterministically(self):
        population = homogeneous(12, device="XR1")
        trace = burst_trace(8, seed=3)
        merged = run_cosim(
            population,
            GreedyBatchSweep(),
            trace,
            n_shards=3,
            include_aoi=False,
        )
        assert isinstance(merged, ShardedCosimReport)
        assert merged.n_shards == 3
        assert merged.n_users == 12
        assert sum(shard.n_users for shard in merged.shards) == 12
        again = run_cosim(
            population, GreedyBatchSweep(), trace, n_shards=3, include_aoi=False
        )
        assert merged.to_dict() == again.to_dict()
        assert "independent cells" in merged.summary()

    def test_single_shard_is_plain_report(self):
        report = run_cosim(
            homogeneous(2, device="XR1"),
            GreedyBatchSweep(),
            burst_trace(4, seed=1),
            include_aoi=False,
        )
        assert isinstance(report, CosimReport)

    def test_too_many_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cosim(
                homogeneous(2, device="XR1"),
                GreedyBatchSweep(),
                burst_trace(3, seed=1),
                n_shards=5,
            )

    def test_sharding_reduces_contention(self):
        # Two cells of 8 users each see less channel contention than one
        # 16-user cell, so the sharded fleet cannot be slower on average.
        population = homogeneous(16, device="XR1")
        network = NetworkConfig()
        app = population.users[0].app
        candidates = (
            OperatingPoint(app=app, network=network, device="XR1", edge="EDGE-AGX"),
        )
        one_cell = run_cosim(
            population,
            StaticBaseline(0),
            constant_trace(2),
            candidates=candidates,
            n_edges=4,
            include_aoi=False,
        )
        two_cells = run_cosim(
            population,
            StaticBaseline(0),
            constant_trace(2),
            candidates=candidates,
            n_edges=4,
            n_shards=2,
            include_aoi=False,
        )
        # The single cell's edges saturate (4 tenants each) while each
        # two-cell shard stays stable, so the sharded p95 must not be worse.
        assert two_cells.fleet_p95_latency_ms <= one_cell.fleet_p95_latency_ms
        assert two_cells.deadline_miss_rate <= one_cell.deadline_miss_rate
