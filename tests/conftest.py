"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.config.workload import SweepConfig, WorkloadConfig
from repro.core.coefficients import CoefficientSet, calibrated_coefficients
from repro.core.framework import XRPerformanceModel
from repro.devices.catalog import get_device, get_edge_server
from repro.measurement.truth import TestbedTruth
from repro.simulation.testbed import SimulatedTestbed


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture
def app() -> ApplicationConfig:
    """The default object-detection application configuration."""
    return ApplicationConfig.object_detection_default()


@pytest.fixture
def remote_app(app: ApplicationConfig) -> ApplicationConfig:
    """The default application configured for remote inference."""
    return app.with_mode(ExecutionMode.REMOTE)


@pytest.fixture
def network() -> NetworkConfig:
    """The default network topology (three sensors, one edge server)."""
    return NetworkConfig()


@pytest.fixture
def device_spec():
    """The XR1 device specification."""
    return get_device("XR1")


@pytest.fixture
def test_device_spec():
    """The XR2 device specification (one of the paper's held-out test devices)."""
    return get_device("XR2")


@pytest.fixture
def edge_spec():
    """The AGX Xavier edge server specification."""
    return get_edge_server("EDGE-AGX")


@pytest.fixture
def truth() -> TestbedTruth:
    """The default hidden testbed truth."""
    return TestbedTruth()


@pytest.fixture
def paper_coefficients() -> CoefficientSet:
    """The paper's published coefficient set."""
    return CoefficientSet.paper()


@pytest.fixture(scope="session")
def session_calibrated_coefficients() -> CoefficientSet:
    """Calibrated coefficients shared across the whole test session (cached)."""
    return calibrated_coefficients(n_samples=2000, seed=7)


@pytest.fixture
def performance_model() -> XRPerformanceModel:
    """A default performance model (XR1 + AGX edge, paper coefficients)."""
    return XRPerformanceModel(device="XR1", edge="EDGE-AGX")


@pytest.fixture(scope="session")
def quick_testbed() -> SimulatedTestbed:
    """A simulated testbed shared by the slower integration tests."""
    return SimulatedTestbed(device="XR2", edge="EDGE-AGX", seed=3)


@pytest.fixture
def quick_sweep() -> SweepConfig:
    """The reduced evaluation sweep."""
    return SweepConfig.quick()


@pytest.fixture
def aoi_workload() -> WorkloadConfig:
    """The paper's AoI emulation workload."""
    return WorkloadConfig.paper_default()
