"""Property-based tests of the analytical latency/energy models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.core.energy import XREnergyModel
from repro.core.latency import XRLatencyModel
from repro.core.power import PowerModel
from repro.core.coefficients import CoefficientSet
from repro.core.segments import Segment
from repro.devices.catalog import DEVICE_CATALOG, get_device, get_edge_server

# Operating-point strategies covering the paper's sweep domain.
frame_sides = st.floats(min_value=250.0, max_value=750.0)
cpu_freqs = st.floats(min_value=1.0, max_value=3.2)
cpu_shares = st.floats(min_value=0.0, max_value=1.0)
device_names = st.sampled_from(sorted(DEVICE_CATALOG))
modes = st.sampled_from([ExecutionMode.LOCAL, ExecutionMode.REMOTE])

_NETWORK = NetworkConfig()
_COEFFICIENTS = CoefficientSet.paper()


def _models(device_name: str):
    device = get_device(device_name)
    latency = XRLatencyModel(device=device, edge=get_edge_server("EDGE-AGX"), coefficients=_COEFFICIENTS)
    power = PowerModel(coefficients=_COEFFICIENTS, device=device)
    return latency, XREnergyModel(latency_model=latency, power_model=power)


def _app(frame_side, cpu_freq, cpu_share, mode):
    app = ApplicationConfig(
        frame_side_px=frame_side, cpu_freq_ghz=cpu_freq, cpu_share=cpu_share
    )
    return app.with_mode(mode)


class TestLatencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(frame_side=frame_sides, cpu_freq=cpu_freqs, cpu_share=cpu_shares,
           device_name=device_names, mode=modes)
    def test_all_segments_non_negative_and_total_consistent(
        self, frame_side, cpu_freq, cpu_share, device_name, mode
    ):
        latency_model, _ = _models(device_name)
        breakdown = latency_model.end_to_end(_app(frame_side, cpu_freq, cpu_share, mode), _NETWORK)
        assert all(value >= 0.0 for value in breakdown.per_segment_ms.values())
        assert breakdown.total_ms == pytest.approx(
            sum(breakdown.per_segment_ms[s] for s in breakdown.included_segments)
        )
        assert breakdown.total_ms > 0.0

    @settings(max_examples=30, deadline=None)
    @given(cpu_freq=cpu_freqs, cpu_share=cpu_shares, device_name=device_names, mode=modes)
    def test_latency_monotone_in_frame_size(self, cpu_freq, cpu_share, device_name, mode):
        latency_model, _ = _models(device_name)
        small = latency_model.end_to_end(_app(300.0, cpu_freq, cpu_share, mode), _NETWORK)
        large = latency_model.end_to_end(_app(700.0, cpu_freq, cpu_share, mode), _NETWORK)
        assert large.total_ms > small.total_ms

    @settings(max_examples=30, deadline=None)
    @given(frame_side=frame_sides, cpu_freq=cpu_freqs, cpu_share=cpu_shares,
           device_name=device_names)
    def test_mode_segment_partition(self, frame_side, cpu_freq, cpu_share, device_name):
        latency_model, _ = _models(device_name)
        local = latency_model.end_to_end(
            _app(frame_side, cpu_freq, cpu_share, ExecutionMode.LOCAL), _NETWORK
        )
        remote = latency_model.end_to_end(
            _app(frame_side, cpu_freq, cpu_share, ExecutionMode.REMOTE), _NETWORK
        )
        assert Segment.ENCODING not in local.per_segment_ms
        assert Segment.LOCAL_INFERENCE not in remote.per_segment_ms


class TestEnergyProperties:
    @settings(max_examples=40, deadline=None)
    @given(frame_side=frame_sides, cpu_freq=cpu_freqs, cpu_share=cpu_shares,
           device_name=device_names, mode=modes)
    def test_energy_non_negative_and_consistent_with_latency(
        self, frame_side, cpu_freq, cpu_share, device_name, mode
    ):
        latency_model, energy_model = _models(device_name)
        app = _app(frame_side, cpu_freq, cpu_share, mode)
        latency = latency_model.end_to_end(app, _NETWORK)
        energy = energy_model.from_latency_breakdown(latency, app, _NETWORK)
        assert energy.total_mj > 0.0
        assert set(energy.per_segment_mj) == set(latency.per_segment_ms)
        # Energy of any segment never exceeds (max plausible power) x latency.
        max_power = 25.0
        for segment, value in energy.per_segment_mj.items():
            assert value <= max_power * latency.per_segment_ms[segment] + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(frame_side=frame_sides, cpu_freq=cpu_freqs, device_name=device_names)
    def test_base_energy_proportional_to_total_latency(self, frame_side, cpu_freq, device_name):
        latency_model, energy_model = _models(device_name)
        app = _app(frame_side, cpu_freq, 0.8, ExecutionMode.LOCAL)
        latency = latency_model.end_to_end(app, _NETWORK)
        energy = energy_model.from_latency_breakdown(latency, app, _NETWORK)
        device = get_device(device_name)
        assert energy.base_mj == pytest.approx(device.base_power_w * latency.total_ms)
