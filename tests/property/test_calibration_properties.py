"""Property-based tests of the calibration chain (truth -> campaign -> fit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import CoefficientSet
from repro.measurement.datasets import MeasurementDataset
from repro.measurement.regression import LinearRegression
from repro.measurement.synthetic import CampaignConfig, SyntheticCampaign
from repro.measurement.truth import TestbedTruth
from repro.simulation.testbed import truth_coefficients


class TestNoiseFreeRecovery:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_noise_free_campaign_recovers_truth_exactly_for_one_device(self, seed):
        """With zero noise and a single device, the regression forms are exact."""
        config = CampaignConfig(
            n_samples=400,
            devices=("XR2",),
            seed=seed,
            compute_noise=0.0,
            power_noise=0.0,
            encoding_noise=0.0,
            complexity_noise=0.0,
        )
        campaign = SyntheticCampaign(config)
        dataset = campaign.generate()
        truth = campaign.truth
        exact = truth_coefficients(truth, "XR2")

        fit = LinearRegression(MeasurementDataset.RESOURCE_FEATURES).fit(
            dataset.resource_design_matrix(), dataset.resource_targets()
        )
        fitted = CoefficientSet(
            resource=exact.resource, power=exact.power, encoding=exact.encoding
        )
        del fitted
        # The fitted blend evaluates identically to the truth surface everywhere
        # on the sampled domain (the affine truth lies inside the quadratic form).
        predictions = fit.coefficients
        for fc in (1.0, 2.0, 3.0):
            for fg in (0.4, 0.8, 1.2):
                for share in (0.0, 0.5, 1.0):
                    features = np.array(
                        [share, share * fc, share * fc**2, 1 - share, (1 - share) * fg, (1 - share) * fg**2]
                    )
                    assert features @ predictions == pytest.approx(
                        truth.compute_capability(fc, fg, share, device_name="XR2"), rel=1e-6
                    )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_r_squared_close_to_one_without_noise(self, seed):
        config = CampaignConfig(
            n_samples=600,
            devices=("XR1",),
            seed=seed,
            compute_noise=0.0,
            power_noise=0.0,
            encoding_noise=0.0,
            complexity_noise=0.0,
        )
        fits = SyntheticCampaign(config).fit(
            train_devices=("XR1",), test_devices=("XR1",)
        )
        summary = fits.r_squared_summary()
        for value in summary.values():
            assert value == pytest.approx(1.0, abs=1e-6)


class TestNoiseDegradesFitGracefully:
    @settings(max_examples=6, deadline=None)
    @given(noise=st.floats(min_value=0.02, max_value=0.3))
    def test_more_noise_never_improves_r_squared_much(self, noise):
        quiet = SyntheticCampaign(
            CampaignConfig(n_samples=1200, seed=11, compute_noise=0.01)
        ).fit()
        loud = SyntheticCampaign(
            CampaignConfig(n_samples=1200, seed=11, compute_noise=noise)
        ).fit()
        assert (
            loud.resource.r_squared_train
            <= quiet.resource.r_squared_train + 0.02
        )


class TestExactCoefficientSets:
    @settings(max_examples=20, deadline=None)
    @given(
        fc=st.floats(min_value=0.9, max_value=3.2),
        fg=st.floats(min_value=0.3, max_value=1.3),
        share=st.floats(min_value=0.0, max_value=1.0),
        device=st.sampled_from(["XR1", "XR2", "XR3", "XR4", "XR5", "XR6", "XR7"]),
    )
    def test_truth_coefficients_match_truth_surfaces_everywhere(self, fc, fg, share, device):
        truth = TestbedTruth()
        exact = truth_coefficients(truth, device)
        assert exact.resource.evaluate(fc, fg, share) == pytest.approx(
            truth.compute_capability(fc, fg, share, device_name=device), rel=1e-9
        )
        assert exact.power.evaluate(fc, fg, share) == pytest.approx(
            truth.mean_power_w(fc, fg, share, device_name=device), rel=1e-9
        )
