"""Property-based tests of the fleet layer (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.core.framework import XRPerformanceModel
from repro.fleet import ContentionModel, EdgeScheduler, FleetAnalyzer, homogeneous

station_counts = st.integers(min_value=1, max_value=512)


class TestContentionProperties:
    @given(
        n=station_counts,
        overhead=st.floats(min_value=0.0, max_value=0.5),
        throughput=st.floats(min_value=10.0, max_value=1000.0),
    )
    def test_per_user_rate_non_increasing_in_n(self, n, overhead, throughput):
        model = ContentionModel(
            network=NetworkConfig(throughput_mbps=throughput),
            collision_overhead=overhead,
        )
        assert model.per_user_throughput_mbps(n) >= model.per_user_throughput_mbps(n + 1)

    @given(n=station_counts, overhead=st.floats(min_value=0.0, max_value=0.5))
    def test_per_user_rate_bounded_by_fair_share(self, n, overhead):
        model = ContentionModel(
            network=NetworkConfig(), collision_overhead=overhead
        )
        fair_share = model.network.throughput_mbps / n
        assert 0.0 < model.per_user_throughput_mbps(n) <= fair_share


class TestSchedulerProperties:
    @given(
        rho=st.floats(min_value=0.0, max_value=0.98),
        service=st.floats(min_value=0.5, max_value=50.0),
        scv=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_waiting_time_non_negative_and_monotone_in_load(self, rho, service, scv):
        scheduler = EdgeScheduler(service_scv=scv)
        wait = scheduler.waiting_time_ms(rho / service, service)
        heavier = scheduler.waiting_time_ms(min(rho + 0.01, 0.999) / service, service)
        assert wait >= 0.0
        assert heavier >= wait


class TestSingleUserEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        device=st.sampled_from(("XR1", "XR2", "XR3", "XR6")),
        mode=st.sampled_from((ExecutionMode.LOCAL, ExecutionMode.REMOTE)),
        cpu_freq=st.sampled_from((1.0, 2.0, 3.0)),
        frame_side=st.sampled_from((300.0, 500.0, 700.0)),
    )
    def test_fleet_of_one_equals_single_user_model(
        self, device, mode, cpu_freq, frame_side
    ):
        app = ApplicationConfig(
            cpu_freq_ghz=cpu_freq, frame_side_px=frame_side
        ).with_mode(mode)
        single = XRPerformanceModel(device=device, edge="EDGE-AGX").analyze(app)
        fleet = FleetAnalyzer(homogeneous(1, device=device, app=app)).analyze()
        assert fleet.p50_latency_ms == single.total_latency_ms
        assert fleet.outcomes[0].energy_mj == single.total_energy_mj


class TestFleetMonotonicityProperty:
    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=1, max_value=8))
    def test_adding_a_user_never_improves_p95(self, n):
        app = ApplicationConfig.object_detection_default().with_mode(
            ExecutionMode.REMOTE
        )

        def p95(size):
            return FleetAnalyzer(
                homogeneous(size, device="XR1", app=app)
            ).analyze().p95_latency_ms

        assert p95(n) <= p95(n + 1) or p95(n + 1) == pytest.approx(p95(n))
