"""Property-based tests of the queueing substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.littles_law import littles_law_l
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue
from repro.queueing.simulation import simulate_single_server_queue

# Stable (arrival, service) rate pairs in packets/ms.
stable_rates = st.tuples(
    st.floats(min_value=0.01, max_value=0.95),
    st.floats(min_value=1.0, max_value=5.0),
).map(lambda pair: (pair[0] * pair[1], pair[1]))


class TestMM1Properties:
    @given(rates=stable_rates)
    def test_utilization_strictly_below_one(self, rates):
        queue = MM1Queue(*rates)
        assert 0.0 < queue.utilization < 1.0

    @given(rates=stable_rates)
    def test_sojourn_exceeds_service_time(self, rates):
        queue = MM1Queue(*rates)
        assert queue.mean_time_in_system_ms >= queue.mean_service_time_ms

    @given(rates=stable_rates)
    def test_littles_law_consistency(self, rates):
        queue = MM1Queue(*rates)
        assert queue.mean_number_in_system == pytest.approx(
            littles_law_l(queue.arrival_rate_per_ms, queue.mean_time_in_system_ms)
        )

    @given(rates=stable_rates)
    def test_waiting_decomposition(self, rates):
        queue = MM1Queue(*rates)
        assert queue.mean_time_in_system_ms == pytest.approx(
            queue.mean_waiting_time_ms + queue.mean_service_time_ms
        )

    @given(rates=stable_rates, n=st.integers(min_value=0, max_value=50))
    def test_state_probabilities_are_probabilities(self, rates, n):
        queue = MM1Queue(*rates)
        probability = queue.prob_n_in_system(n)
        assert 0.0 <= probability <= 1.0

    @given(rates=stable_rates)
    def test_more_load_means_longer_sojourn(self, rates):
        arrival, service = rates
        queue = MM1Queue(arrival, service)
        busier = MM1Queue(min(arrival * 1.02, service * 0.999), service)
        assert busier.mean_time_in_system_ms >= queue.mean_time_in_system_ms


class TestMG1Properties:
    @given(rates=stable_rates, scv=st.floats(min_value=0.0, max_value=4.0))
    def test_pk_waiting_time_non_negative(self, rates, scv):
        arrival, service = rates
        queue = MG1Queue(arrival, 1.0 / service, service_scv=scv)
        assert queue.mean_waiting_time_ms >= 0.0

    @given(rates=stable_rates)
    def test_mm1_equivalence(self, rates):
        arrival, service = rates
        assert MG1Queue.mm1(arrival, service).mean_time_in_system_ms == pytest.approx(
            MM1Queue(arrival, service).mean_time_in_system_ms
        )

    @given(rates=stable_rates, scv=st.floats(min_value=0.0, max_value=4.0))
    def test_waiting_monotone_in_variability(self, rates, scv):
        arrival, service = rates
        low = MG1Queue(arrival, 1.0 / service, service_scv=scv)
        high = MG1Queue(arrival, 1.0 / service, service_scv=scv + 0.5)
        assert high.mean_waiting_time_ms >= low.mean_waiting_time_ms


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_packets=st.integers(min_value=1, max_value=200),
    )
    def test_fifo_conservation_laws(self, seed, n_packets):
        rng = np.random.default_rng(seed)
        arrivals = np.sort(rng.uniform(0.0, 100.0, n_packets))
        services = rng.exponential(1.0, n_packets)
        result = simulate_single_server_queue(arrivals, services, rng=rng)
        # Departures are ordered (FIFO), nothing departs before arriving, and
        # waiting times are non-negative.
        assert np.all(np.diff(result.departure_times_ms) >= -1e-12)
        assert np.all(result.departure_times_ms >= result.arrival_times_ms)
        assert np.all(result.waiting_times_ms >= -1e-12)
        # Work conservation: total busy time equals the sum of service times.
        busy = np.sum(result.departure_times_ms - result.start_service_times_ms)
        assert busy == pytest.approx(np.sum(services))
