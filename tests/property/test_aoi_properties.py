"""Property-based tests of the AoI / RoI model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.network import SensorConfig
from repro.core.aoi import AoIModel

frequencies = st.floats(min_value=20.0, max_value=1000.0)
required_periods = st.floats(min_value=1.0, max_value=50.0)
distances = st.floats(min_value=0.0, max_value=1000.0)


class TestAoIProperties:
    @settings(max_examples=60, deadline=None)
    @given(frequency=frequencies, period=required_periods, distance=distances,
           index=st.integers(min_value=1, max_value=50))
    def test_aoi_positive_and_bounded_for_adequate_sensors(
        self, frequency, period, distance, index
    ):
        model = AoIModel(buffer_service_rate_hz=1e6)
        sensor = SensorConfig(name="s", generation_frequency_hz=frequency, distance_m=distance)
        aoi = model.update_aoi_ms(sensor, index, period, buffer_time_ms=0.0)
        # A sensor at least as fast as the requirement never serves information
        # older than two generation periods (plus delivery overheads).
        if sensor.generation_period_ms <= period:
            assert aoi >= 0.0
            assert aoi <= 2.0 * sensor.generation_period_ms + 1.0

    @settings(max_examples=60, deadline=None)
    @given(frequency=frequencies, period=required_periods)
    def test_slow_sensors_age_and_fast_sensors_stay_bounded(self, frequency, period):
        model = AoIModel(buffer_service_rate_hz=1e6)
        sensor = SensorConfig(name="s", generation_frequency_hz=frequency, distance_m=0.0)
        first = model.update_aoi_ms(sensor, 1, period, 0.0)
        tenth = model.update_aoi_ms(sensor, 10, period, 0.0)
        if sensor.generation_period_ms <= period:
            assert tenth <= 2.0 * sensor.generation_period_ms + 1e-9
        else:
            assert tenth > first

    @settings(max_examples=60, deadline=None)
    @given(frequency=frequencies, period=required_periods, distance=distances)
    def test_aoi_increases_with_distance_and_buffer_time(self, frequency, period, distance):
        model = AoIModel(buffer_service_rate_hz=1e6)
        near = SensorConfig(name="s", generation_frequency_hz=frequency, distance_m=0.0)
        far = SensorConfig(name="s", generation_frequency_hz=frequency, distance_m=distance)
        assert model.update_aoi_ms(far, 3, period, 0.0) >= model.update_aoi_ms(near, 3, period, 0.0)
        assert model.update_aoi_ms(near, 3, period, 5.0) > model.update_aoi_ms(near, 3, period, 0.0)

    @settings(max_examples=40, deadline=None)
    @given(frequency=st.floats(min_value=40.0, max_value=400.0),
           period=st.floats(min_value=2.0, max_value=20.0))
    def test_roi_at_least_one_means_fresh(self, frequency, period):
        model = AoIModel(buffer_service_rate_hz=1e9)
        sensor = SensorConfig(name="s", generation_frequency_hz=frequency, distance_m=0.0)
        timeline = model.timeline(sensor, period, horizon_ms=200.0)
        if timeline.n_updates == 0:
            return
        # RoI >= 1 for every update if and only if the timeline is fresh.
        assert timeline.is_fresh == bool((timeline.roi >= 1.0).all())

    @settings(max_examples=40, deadline=None)
    @given(arrival=st.floats(min_value=1.0, max_value=900.0))
    def test_buffer_time_positive_and_decreasing_in_service_rate(self, arrival):
        slow = AoIModel(buffer_service_rate_hz=1000.0)
        fast = AoIModel(buffer_service_rate_hz=5000.0)
        assert slow.average_buffer_time_ms(arrival) > fast.average_buffer_time_ms(arrival) > 0.0
