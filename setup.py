"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in fully offline environments where the
``wheel`` package (needed for PEP 660 editable wheels) may be unavailable —
pip then falls back to the legacy ``setup.py develop`` editable install.
"""

from setuptools import setup

setup()
