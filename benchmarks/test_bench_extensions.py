"""Benchmarks for the extension experiments (beyond the paper's evaluation).

These back the paper's "can be incorporated according to system requirements"
claims with runnable numbers: mobility/handoff, path loss, multi-edge
splitting, and session-level analysis.
"""

from repro.evaluation.extensions import (
    adaptation_extension,
    mobility_extension,
    multi_edge_extension,
    pathloss_extension,
    session_extension,
)
from repro.evaluation.report import save_text


def test_bench_extension_mobility(benchmark):
    result = benchmark.pedantic(mobility_extension, iterations=1, rounds=2)
    save_text("extension_mobility.txt", result.to_text())
    print()
    print(result.to_text())
    latencies = [float(row[2]) for row in result.rows]
    assert latencies[-1] > latencies[0]


def test_bench_extension_pathloss(benchmark):
    result = benchmark.pedantic(pathloss_extension, iterations=1, rounds=2)
    save_text("extension_pathloss.txt", result.to_text())
    print()
    print(result.to_text())
    throughputs = [float(row[1]) for row in result.rows]
    assert throughputs[0] > throughputs[-1]


def test_bench_extension_multi_edge(benchmark):
    result = benchmark.pedantic(multi_edge_extension, iterations=1, rounds=2)
    save_text("extension_multi_edge.txt", result.to_text())
    print()
    print(result.to_text())
    remote = [float(row[1]) for row in result.rows]
    assert remote[-1] < remote[0]


def test_bench_extension_adaptation(benchmark):
    result = benchmark.pedantic(
        adaptation_extension, kwargs={"n_epochs": 150, "seed": 3}, iterations=1, rounds=1
    )
    save_text("extension_adaptation.txt", result.to_text())
    print()
    print(result.to_text())
    # Rows: best static, hysteresis, greedy, ewma — all deadline-safe, and
    # the greedy sweep carries more inference quality than the static point.
    assert len(result.rows) == 4
    qualities = [float(row[3]) for row in result.rows]
    assert qualities[2] > qualities[0]


def test_bench_extension_session(benchmark):
    result = benchmark.pedantic(
        session_extension, kwargs={"n_frames": 200, "seed": 3}, iterations=1, rounds=1
    )
    save_text("extension_session.txt", result.to_text())
    print()
    print(result.to_text())
    assert len(result.rows) == 7
