"""Benchmarks: vectorized batch grid evaluation vs the scalar per-point loop.

The acceptance bar for the batch engine: evaluating a 1,000-point
(CPU frequency x frame size) grid through :mod:`repro.batch` must be at
least 20x faster than looping ``XRPerformanceModel.analyze`` over the same
points — while agreeing with the scalar results to 1e-9 relative tolerance
(in practice the agreement is bit-exact).
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.batch import ParameterGrid, evaluate_grid
from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.core.framework import XRPerformanceModel

CPU_FREQS = np.linspace(1.0, 3.0, 25)
FRAME_SIDES = np.linspace(300.0, 700.0, 40)
N_POINTS = len(CPU_FREQS) * len(FRAME_SIDES)

#: Wall-clock floor for the headline speedup assertion.  Measured ~60-160x
#: on development machines; set REPRO_BENCH_MIN_SPEEDUP to loosen (or, with
#: a value <= 0, skip) the floor on heavily-throttled shared runners where
#: any wall-clock assertion is unreliable.  Parity is always asserted.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "20"))


def _scalar_totals(model, app, network):
    latencies = []
    energies = []
    for cpu_freq in CPU_FREQS:
        for frame_side in FRAME_SIDES:
            report = model.analyze(
                replace(app, cpu_freq_ghz=cpu_freq, frame_side_px=frame_side),
                network,
                include_aoi=False,
            )
            latencies.append(report.total_latency_ms)
            energies.append(report.total_energy_mj)
    return np.asarray(latencies), np.asarray(energies)


def _grid(app, network):
    return ParameterGrid(
        frame_sides_px=FRAME_SIDES,
        cpu_freqs_ghz=CPU_FREQS,
        devices=("XR2",),
        edge="EDGE-AGX",
        app=app,
        network=network,
    )


def test_bench_batch_grid_speedup_and_parity(default_network):
    """Headline requirement: >= 20x on a 1,000-point grid, matching to 1e-9."""
    app = ApplicationConfig.object_detection_default()
    model = XRPerformanceModel(device="XR2", edge="EDGE-AGX", app=app, network=default_network)
    grid = _grid(app, default_network)
    evaluate_grid(grid)  # warm-up: imports and memoized lookups

    start = time.perf_counter()
    scalar_latency, scalar_energy = _scalar_totals(model, app, default_network)
    scalar_seconds = time.perf_counter() - start

    # Best of three for the sub-millisecond batch call: a GC pause or noisy
    # shared CI runner must not flip the wall-clock assertion.
    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = evaluate_grid(grid)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert len(result) == N_POINTS
    np.testing.assert_allclose(result.total_latency_ms, scalar_latency, rtol=1e-9)
    np.testing.assert_allclose(result.total_energy_mj, scalar_energy, rtol=1e-9)
    speedup = scalar_seconds / batch_seconds
    print(
        f"\n1,000-point grid: scalar {N_POINTS / scalar_seconds:,.0f} pts/s, "
        f"batch {N_POINTS / batch_seconds:,.0f} pts/s ({speedup:.0f}x)"
    )
    if MIN_SPEEDUP > 0.0:
        assert speedup >= MIN_SPEEDUP, (
            f"batch grid evaluation only {speedup:.1f}x faster than the scalar loop "
            f"(scalar {scalar_seconds:.3f} s, batch {batch_seconds:.3f} s)"
        )


def test_bench_batch_grid_evaluation(benchmark, default_network):
    """Raw batch-engine throughput on the 1,000-point grid."""
    app = ApplicationConfig.object_detection_default()
    grid = _grid(app, default_network)
    result = benchmark(evaluate_grid, grid)
    assert len(result) == N_POINTS
    assert np.all(result.total_latency_ms > 0.0)


def test_bench_batch_remote_grid(benchmark, default_network):
    """Batch throughput on the remote-inference path (more segments active)."""
    app = ApplicationConfig.object_detection_default().with_mode(ExecutionMode.REMOTE)
    grid = _grid(app, default_network)
    result = benchmark(evaluate_grid, grid)
    assert len(result) == N_POINTS
    assert np.all(np.isfinite(result.total_energy_mj))


def test_bench_multi_device_mode_grid(benchmark):
    """A (device x mode x freq x frame-size) grid evaluates group-by-group."""
    app = ApplicationConfig.object_detection_default()
    grid = ParameterGrid(
        frame_sides_px=FRAME_SIDES,
        cpu_freqs_ghz=(1.0, 2.0, 3.0),
        devices=("XR1", "XR2", "XR6"),
        modes=(ExecutionMode.LOCAL, ExecutionMode.REMOTE),
        app=app,
        network=NetworkConfig(),
    )
    result = benchmark(evaluate_grid, grid)
    assert len(result) == 3 * 2 * 3 * len(FRAME_SIDES)
