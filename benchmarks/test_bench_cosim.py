"""Benchmarks: the closed-loop co-simulation at fleet scale.

The acceptance bar for the co-simulation layer: a seeded 10,000-user x
500-epoch closed-loop run — contention and edge queueing recomputed from
the fleet's own decisions every epoch, best-response iteration included —
must finish within the wall-clock budget, and must reproduce bit-identically
from the same seed.  Equivalence-class batching is what makes the budget
reachable: the controller work is done once per class, and the remaining
per-epoch cost is NumPy arithmetic over the user arrays.
"""

import os
import time

from repro.adaptive import AdaptiveRuntime, GreedyBatchSweep, burst_trace, step_trace
from repro.cosim import CoSimulation
from repro.fleet import homogeneous

N_USERS = 10_000
N_EPOCHS = 500

#: Wall-clock budget for the 10k-user x 500-epoch closed-loop run.
#: Measured ~2-4 s on development machines; set REPRO_BENCH_MAX_COSIM_SECONDS
#: to loosen (or, with a value <= 0, skip) the assertion on throttled runners.
MAX_SECONDS = float(os.environ.get("REPRO_BENCH_MAX_COSIM_SECONDS", "10"))


def _build(n_users: int = N_USERS, n_epochs: int = N_EPOCHS) -> CoSimulation:
    return CoSimulation(
        homogeneous(n_users, device="XR1"),
        GreedyBatchSweep(),
        step_trace(n_epochs, seed=11),
        n_edges=8,
        include_aoi=False,
    )


def test_bench_cosim_10k_users_500_epochs_budget():
    """Headline requirement: 10k users x 500 closed-loop epochs in budget."""
    start = time.perf_counter()
    report = _build().run()
    elapsed = time.perf_counter() - start

    assert report.n_users == N_USERS
    assert report.n_epochs == N_EPOCHS
    user_epochs = N_USERS * N_EPOCHS
    print(
        f"\n{N_USERS} users x {N_EPOCHS} epochs (closed loop) in "
        f"{elapsed:.2f} s ({user_epochs / elapsed:,.0f} user-epochs/s, "
        f"{report.n_unconverged_epochs} unconverged epochs)"
    )
    if MAX_SECONDS > 0.0:
        assert elapsed <= MAX_SECONDS, (
            f"10k-user x 500-epoch co-sim took {elapsed:.2f} s "
            f"(budget {MAX_SECONDS:.0f} s)"
        )


def test_bench_cosim_reproduces_bit_identically():
    """The same seed must reproduce the full report, tuple for tuple."""
    first = _build(n_users=2_000, n_epochs=120).run()
    second = _build(n_users=2_000, n_epochs=120).run()
    assert first.to_dict() == second.to_dict()


def test_bench_cosim_single_user_equals_adaptive_runtime():
    """At N == 1 the co-sim report is the single-user AdaptationReport."""
    trace = burst_trace(200, seed=3)
    population = homogeneous(1, device="XR1")
    report = CoSimulation(population, GreedyBatchSweep(), trace).run()
    runtime = AdaptiveRuntime(
        trace=trace, device="XR1", edge="EDGE-AGX", app=population.users[0].app
    )
    assert report.class_reports[0] == runtime.run(GreedyBatchSweep())
