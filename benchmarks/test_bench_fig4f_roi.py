"""Fig. 4(f) benchmark: AoI staircase and RoI for a 100 Hz sensor.

The paper shows the 100 Hz sensor, polled every 5 ms, accumulating AoI in
steps of 5 ms (10, 15, 20 ms) with the corresponding RoI values 0.5, 0.33 and
0.25.
"""

import numpy as np
import pytest

from repro.config.workload import WorkloadConfig
from repro.evaluation.figures import figure_4f
from repro.evaluation.report import save_text
from repro.simulation.sensor_sim import emulate_aoi


def test_bench_fig4f_roi(benchmark):
    workload = WorkloadConfig(
        sensor_frequencies_hz=(100.0,), sensor_distances_m=(15.0,), horizon_ms=40.0
    )

    # Benchmark the event-driven AoI emulation (the ground-truth generator).
    benchmark(emulate_aoi, workload)

    figure = figure_4f(workload=workload)
    save_text("figure_4f.txt", figure.to_text())
    print()
    print(figure.to_text())

    timeline = figure.analytical[0]
    # Paper values: AoI 10 / 15 / 20 ms, RoI 0.5 / 0.33 / 0.25 (our values
    # include the small buffering + propagation overhead).
    assert timeline.aoi_ms[:3] == pytest.approx([10.0, 15.0, 20.0], abs=1.5)
    assert timeline.roi[:3] == pytest.approx([0.5, 0.333, 0.25], abs=0.05)
    # The staircase increments by exactly (1/f_t - 1/f_req) = 5 ms per cycle.
    assert np.allclose(np.diff(timeline.aoi_ms), 5.0, atol=1e-6)
    # RoI degrades monotonically as the information goes stale.
    assert np.all(np.diff(timeline.roi) < 0.0)
