"""Fig. 4(c) benchmark: end-to-end energy validation, local inference.

Paper headline: 3.52 % mean error.
"""

from repro.core.framework import XRPerformanceModel
from repro.evaluation.figures import figure_4c
from repro.evaluation.report import save_text


def test_bench_fig4c_energy_local(benchmark, figure_context):
    model = XRPerformanceModel(
        device=figure_context.testbed.device,
        edge=figure_context.testbed.edge,
        coefficients=figure_context.coefficients,
    )

    # Benchmark a single-frame energy analysis (Eq. 19/20 evaluation).
    benchmark(model.analyze_energy)

    figure = figure_4c(context=figure_context)
    save_text("figure_4c.txt", figure.to_text())
    print()
    print(figure.to_text())

    assert figure.mean_error_percent < 10.0
    # Energy grows with frame size for every CPU frequency curve.
    for series in figure.comparison.series:
        assert series.ground_truth[0] < series.ground_truth[-1]
        assert series.model[0] < series.model[-1]
