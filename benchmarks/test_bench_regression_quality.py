"""Regression-quality benchmark: re-fitting Eqs. (3), (10), (12), (21).

The paper reports R^2 values of 0.87 (compute resource), 0.863 (mean power),
0.79 (encoding latency) and 0.844 (CNN complexity), training on devices
XR1/XR3/XR5/XR6 and testing on XR2/XR4/XR7.  The benchmark times one full
campaign fit and checks that the synthetic-campaign reproduction lands in the
same quality band with held-out devices scoring similarly to the training
devices.
"""

from repro.evaluation.report import format_table, save_text
from repro.measurement.synthetic import CampaignConfig, SyntheticCampaign

PAPER_R2 = {
    "compute_resource": 0.87,
    "mean_power": 0.863,
    "encoding_latency": 0.79,
    "cnn_complexity": 0.844,
}


def _fit_campaign():
    campaign = SyntheticCampaign(CampaignConfig(n_samples=6000, seed=2024))
    return campaign.fit()


def test_bench_regression_quality(benchmark):
    fits = benchmark.pedantic(_fit_campaign, iterations=1, rounds=3)
    summary = fits.r_squared_summary()

    rows = []
    for key, paper_value in PAPER_R2.items():
        rows.append((key, f"{paper_value:.3f}", f"{summary[key]:.3f}"))
    text = "Regression fit quality (train R^2)\n" + format_table(
        rows, headers=("regression", "paper", "reproduction")
    )
    save_text("regression_quality.txt", text)
    print()
    print(text)

    # Each regression lands within a reasonable band of the paper's value.
    assert abs(summary["compute_resource"] - PAPER_R2["compute_resource"]) < 0.15
    assert abs(summary["mean_power"] - PAPER_R2["mean_power"]) < 0.15
    assert abs(summary["encoding_latency"] - PAPER_R2["encoding_latency"]) < 0.18
    assert abs(summary["cnn_complexity"] - PAPER_R2["cnn_complexity"]) < 0.18

    # Held-out devices (the paper's test split) generalise.
    assert abs(fits.resource.r_squared_test - fits.resource.r_squared_train) < 0.15
    assert abs(fits.power.r_squared_test - fits.power.r_squared_train) < 0.15
