"""Fig. 4(b) benchmark: end-to-end latency validation, remote inference.

Paper headline: 3.23 % mean error (device mobility disabled).
"""

from repro.config.application import ExecutionMode
from repro.core.framework import XRPerformanceModel
from repro.evaluation.figures import figure_4b
from repro.evaluation.report import save_text


def test_bench_fig4b_latency_remote(benchmark, figure_context):
    sweep = figure_context.sweep_config
    model = XRPerformanceModel(
        device=figure_context.testbed.device,
        edge=figure_context.testbed.edge,
        coefficients=figure_context.coefficients,
    )

    benchmark(
        model.sweep,
        frame_sides_px=sweep.frame_sides_px,
        cpu_freqs_ghz=sweep.cpu_freqs_ghz,
        mode=ExecutionMode.REMOTE,
    )

    figure = figure_4b(context=figure_context)
    save_text("figure_4b.txt", figure.to_text())
    print()
    print(figure.to_text())

    assert figure.mean_error_percent < 8.0

    # The remote path (encoding + transmission + edge inference) is slower than
    # the local path on this testbed but follows the same monotone shape.
    for series in figure.comparison.series:
        assert series.ground_truth[0] < series.ground_truth[-1]

    # No handoff is configured (the paper excludes mobility in this figure).
    breakdown = model.analyze_latency(
        model.app.with_mode(ExecutionMode.REMOTE), figure_context.network
    )
    from repro.core.segments import Segment

    assert breakdown.segment_ms(Segment.HANDOFF) == 0.0
