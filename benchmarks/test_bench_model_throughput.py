"""Micro-benchmarks: how fast is the framework itself?

These are not paper figures; they document the cost of using the framework
(single-frame analyses, full sweeps, simulated-testbed frame rate) so that
regressions in evaluation speed are caught.
"""

from repro.config.application import ExecutionMode
from repro.core.framework import XRPerformanceModel
from repro.simulation.testbed import SimulatedTestbed


def test_bench_single_frame_latency_analysis(benchmark, default_app, default_network):
    model = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
    result = benchmark(model.analyze_latency, default_app, default_network)
    assert result.total_ms > 0.0


def test_bench_single_frame_full_report(benchmark, default_app, default_network):
    model = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
    report = benchmark(model.analyze, default_app, default_network)
    assert report.total_energy_mj > 0.0


def test_bench_remote_frame_analysis(benchmark, default_app, default_network):
    model = XRPerformanceModel(device="XR2", edge="EDGE-AGX")
    remote_app = default_app.with_mode(ExecutionMode.REMOTE)
    report = benchmark(model.analyze, remote_app, default_network)
    assert report.total_latency_ms > 0.0


def test_bench_offloading_decision(benchmark, default_app, default_network):
    model = XRPerformanceModel(device="XR6", edge="EDGE-AGX")
    decision = benchmark(model.best_placement, "latency", default_app, default_network)
    assert decision.total_latency_ms > 0.0


def test_bench_simulated_testbed_run(benchmark, default_app, default_network):
    testbed = SimulatedTestbed(device="XR2", edge="EDGE-AGX")
    run = benchmark.pedantic(
        testbed.run,
        kwargs={
            "app": default_app,
            "network": default_network,
            "n_frames": 20,
            "repetitions": 1,
        },
        iterations=1,
        rounds=5,
    )
    assert len(run.trace) == 20
