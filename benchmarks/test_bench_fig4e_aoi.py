"""Fig. 4(e) benchmark: AoI vs time for 200 / 100 / 66.67 Hz sensors.

The paper emulates three sensors against an application requiring one update
every 5 ms and shows AoI growing over time for the sensors that generate
slower than required.
"""

import numpy as np

from repro.config.workload import WorkloadConfig
from repro.core.aoi import AoIModel
from repro.evaluation.figures import figure_4e
from repro.evaluation.report import save_text


def test_bench_fig4e_aoi(benchmark):
    workload = WorkloadConfig.paper_default()
    model = AoIModel(workload.buffer_service_rate_hz)

    # Benchmark the analytical AoI timeline evaluation for the whole workload.
    benchmark(model.timelines_for_workload, workload)

    figure = figure_4e(workload=workload)
    save_text("figure_4e.txt", figure.to_text())
    print()
    print(figure.to_text())

    # Analytical model tracks the event-driven emulation.
    assert figure.mean_error_percent() < 15.0

    by_frequency = {t.generation_frequency_hz: t for t in figure.analytical}
    # The 200 Hz sensor matches the requirement: its AoI stays flat.
    flat = by_frequency[200.0]
    assert np.max(flat.aoi_ms) - np.min(flat.aoi_ms) < 1.0
    # Slower sensors accumulate AoI; the slowest accumulates fastest.
    assert by_frequency[100.0].final_aoi_ms > by_frequency[200.0].final_aoi_ms
    assert by_frequency[66.67].final_aoi_ms > by_frequency[100.0].final_aoi_ms
    # Growth is roughly linear in time with slope (1/f_t - 1/f_req) per cycle.
    slow = by_frequency[66.67]
    increments = np.diff(slow.aoi_ms)
    assert np.allclose(increments, 1e3 / 66.67 - 5.0, atol=1e-3)
