"""Benchmarks: fleet analyzer throughput vs. fleet size.

The fleet analyzer memoizes per-device model construction and caches
per-(device, app, network) evaluations, so the per-user loop is nearly free
and fleet analysis time grows only mildly with the user count.  These
benchmarks document that scaling — including the headline requirement that a
10,000-user fleet evaluates in seconds, not minutes.
"""

import time

import pytest

from repro.fleet import FleetAnalyzer, GreedySLOAdmission, homogeneous, mixed_devices


def _analyze(n_users: int, include_aoi: bool = False):
    analyzer = FleetAnalyzer(
        homogeneous(n_users, device="XR1"),
        edge="EDGE-AGX",
        policy=GreedySLOAdmission(slo_ms=800.0),
        slo_ms=800.0,
        include_aoi=include_aoi,
    )
    return analyzer.analyze()


@pytest.mark.parametrize("n_users", (100, 1000, 10000))
def test_bench_fleet_analysis_scaling(benchmark, n_users):
    report = benchmark.pedantic(_analyze, args=(n_users,), iterations=1, rounds=3)
    assert report.n_users == n_users
    assert report.p95_latency_ms > 0.0


def test_bench_mixed_device_fleet(benchmark):
    population = mixed_devices(1000, devices=("XR1", "XR2", "XR3", "XR6"))
    analyzer = FleetAnalyzer(
        population, policy=GreedySLOAdmission(slo_ms=800.0), slo_ms=800.0
    )
    report = benchmark.pedantic(analyzer.analyze, iterations=1, rounds=3)
    assert report.n_users == 1000
    assert set(report.device_counts) == {"XR1", "XR2", "XR3", "XR6"}


def test_ten_thousand_user_fleet_under_ten_seconds():
    """Headline requirement: a 10k-user fleet evaluates in under 10 s."""
    start = time.perf_counter()
    report = _analyze(10_000)
    elapsed = time.perf_counter() - start
    assert report.n_users == 10_000
    assert elapsed < 10.0, f"10k-user fleet took {elapsed:.1f} s"
