"""Fig. 4(d) benchmark: end-to-end energy validation, remote inference.

Paper headline: 5.38 % mean error.
"""

from repro.config.application import ExecutionMode
from repro.core.framework import XRPerformanceModel
from repro.core.segments import Segment
from repro.evaluation.figures import figure_4d
from repro.evaluation.report import save_text


def test_bench_fig4d_energy_remote(benchmark, figure_context):
    model = XRPerformanceModel(
        device=figure_context.testbed.device,
        edge=figure_context.testbed.edge,
        coefficients=figure_context.coefficients,
    )
    remote_app = model.app.with_mode(ExecutionMode.REMOTE)

    benchmark(model.analyze_energy, remote_app)

    figure = figure_4d(context=figure_context)
    save_text("figure_4d.txt", figure.to_text())
    print()
    print(figure.to_text())

    assert figure.mean_error_percent < 10.0
    for series in figure.comparison.series:
        assert series.ground_truth[0] < series.ground_truth[-1]

    # Sanity on the energy structure of the remote path: waiting for the edge
    # server draws much less power than the on-device encoder/renderer.
    energy = model.analyze_energy(remote_app)
    assert energy.segment_mj(Segment.REMOTE_INFERENCE) < energy.segment_mj(Segment.ENCODING)
