"""Fig. 5(a) benchmark: latency accuracy of Proposed vs FACT vs LEAF.

The paper reports the proposed model beating FACT by 17.59 % and LEAF by
7.49 % in normalized latency accuracy for remote inference.
"""

from repro.evaluation.figures import figure_5a
from repro.evaluation.report import save_text


def test_bench_fig5a_latency_comparison(benchmark, figure_context):
    figure = benchmark.pedantic(
        figure_5a, kwargs={"context": figure_context}, iterations=1, rounds=1
    )
    save_text("figure_5a.txt", figure.to_text())
    print()
    print(figure.to_text())

    # The proposed framework is the most accurate model, as in the paper.
    assert figure.mean_accuracy("Proposed") > figure.mean_accuracy("LEAF")
    assert figure.mean_accuracy("LEAF") > figure.mean_accuracy("FACT")
    assert figure.mean_accuracy("Proposed") > 93.0

    # Gains are positive and of the same order as the paper's 17.59 % / 7.49 %.
    assert 2.0 < figure.gain_vs_fact < 40.0
    assert 2.0 < figure.gain_vs_leaf < 25.0
