"""Benchmarks: the adaptive runtime at trace scale.

The acceptance bar for the adaptation layer: a 1,000-epoch burst trace with
the :class:`GreedyBatchSweep` controller — which evaluates the *full*
candidate grid every epoch — must finish (including the pre-warm batch
evaluation of all ``epochs x candidates`` points) within the wall-clock
budget.  The pre-warmed vectorized sweep is what makes the full-grid
controller nearly free; the budget would be unreachable with per-epoch
scalar evaluation (~27,000 ``analyze`` calls).
"""

import os
import time

from repro.adaptive import (
    AdaptiveRuntime,
    EwmaPredictive,
    GreedyBatchSweep,
    HysteresisThreshold,
    burst_trace,
    mobility_fading_trace,
)

N_EPOCHS = 1_000

#: Wall-clock budget for the 1k-epoch full-grid run.  Measured ~0.5-1 s on
#: development machines; set REPRO_BENCH_MAX_ADAPT_SECONDS to loosen (or,
#: with a value <= 0, skip) the assertion on heavily-throttled runners.
MAX_SECONDS = float(os.environ.get("REPRO_BENCH_MAX_ADAPT_SECONDS", "10"))


def test_bench_adaptive_greedy_full_grid_budget():
    """Headline requirement: 1k epochs x full grid within the budget."""
    trace = burst_trace(N_EPOCHS, seed=0)

    start = time.perf_counter()
    runtime = AdaptiveRuntime(trace=trace)
    report = runtime.run(GreedyBatchSweep())
    elapsed = time.perf_counter() - start

    assert report.n_epochs == N_EPOCHS
    assert report.deadline_miss_rate == 0.0
    n_evaluations = N_EPOCHS * len(runtime.candidates)
    print(
        f"\n{N_EPOCHS} epochs x {len(runtime.candidates)} candidates in "
        f"{elapsed:.2f} s ({N_EPOCHS / elapsed:,.0f} epochs/s, "
        f"{n_evaluations / elapsed:,.0f} candidate evaluations/s)"
    )
    if MAX_SECONDS > 0.0:
        assert elapsed <= MAX_SECONDS, (
            f"1k-epoch full-grid adaptation took {elapsed:.2f} s "
            f"(budget {MAX_SECONDS:.0f} s)"
        )


def test_bench_adaptive_controller_comparison(benchmark):
    """Re-running controllers on a shared runtime reuses the sweep cache."""
    runtime = AdaptiveRuntime(trace=burst_trace(300, seed=1))

    def run_all():
        return [
            runtime.run(controller)
            for controller in (GreedyBatchSweep(), HysteresisThreshold())
        ]

    reports = benchmark(run_all)
    assert all(report.deadline_miss_rate == 0.0 for report in reports)


def test_bench_adaptive_ewma_unprewarmed(benchmark):
    """The EWMA controller's predicted conditions hit the uncached sweep path.

    One round on a fresh runtime: a second round would find every predicted
    condition already in the sweep memo and measure the cached path instead.
    """
    runtime = AdaptiveRuntime(trace=mobility_fading_trace(100, seed=2))
    report = benchmark.pedantic(
        lambda: runtime.run(EwmaPredictive()), iterations=1, rounds=1
    )
    assert report.n_epochs == 100
