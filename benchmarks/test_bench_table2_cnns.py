"""Table II reproduction benchmark: the CNN model zoo."""

from repro.cnn.zoo import get_cnn
from repro.evaluation.report import save_text
from repro.evaluation.tables import table_2


def test_bench_table2_cnns(benchmark):
    """Rebuild and render Table II; assert depths/sizes match the paper."""
    table = benchmark(table_2)

    assert table.n_rows == 11
    assert get_cnn("MobileNetv1_240 Float").depth == 31
    assert get_cnn("NasNet Float").depth == 663
    assert get_cnn("YOLOv3").size_mb == 210.0
    assert get_cnn("YOLOv7").depth_scale == 1.5

    text = table.to_text()
    assert "EfficientNet Quant" in text
    save_text("table_II.txt", text)
    print()
    print(text)
