"""Fig. 5(b) benchmark: energy accuracy of Proposed vs FACT vs LEAF.

The paper reports the proposed model beating FACT by 15.30 % and LEAF by
8.71 % in normalized energy accuracy for remote inference.
"""

from repro.evaluation.figures import figure_5b
from repro.evaluation.report import save_text


def test_bench_fig5b_energy_comparison(benchmark, figure_context):
    figure = benchmark.pedantic(
        figure_5b, kwargs={"context": figure_context}, iterations=1, rounds=1
    )
    save_text("figure_5b.txt", figure.to_text())
    print()
    print(figure.to_text())

    assert figure.mean_accuracy("Proposed") > figure.mean_accuracy("LEAF")
    assert figure.mean_accuracy("Proposed") > figure.mean_accuracy("FACT")
    assert figure.mean_accuracy("Proposed") > 93.0

    assert 2.0 < figure.gain_vs_fact < 40.0
    assert 2.0 < figure.gain_vs_leaf < 25.0
