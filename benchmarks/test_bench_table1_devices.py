"""Table I reproduction benchmark: the XR / edge device catalog."""

from repro.devices.catalog import list_devices, list_edge_servers
from repro.evaluation.report import save_text
from repro.evaluation.tables import table_1


def test_bench_table1_devices(benchmark):
    """Rebuild and render Table I; assert its contents match the paper."""
    table = benchmark(table_1)

    # 7 XR devices + 2 Jetson edge boards, exactly as in the paper.
    assert table.n_rows == 9
    assert len(list_devices()) == 7
    assert len(list_edge_servers()) == 2

    text = table.to_text()
    for expected in (
        "Huawei Mate 40 Pro",
        "OnePlus 8 Pro",
        "Motorola One Macro",
        "Xiaomi Redmi Note 8",
        "Google Glass Enterprise Edition 2",
        "Meta Quest 2",
        "Nvidia Jetson TX2",
        "Nvidia Jetson AGX Xavier",
    ):
        assert expected in text

    save_text("table_I.txt", text)
    print()
    print(text)
