"""Shared fixtures for the benchmark harness.

The expensive artefact — the simulated ground-truth sweeps at the paper's
full sweep size — is built once per session and shared by every figure
benchmark, exactly like the paper's measurement campaign is shared by all of
its figures.
"""

from __future__ import annotations

import pytest

from repro.config.application import ApplicationConfig
from repro.config.network import NetworkConfig
from repro.evaluation.figures import FigureContext


@pytest.fixture(scope="session")
def figure_context() -> FigureContext:
    """Full (paper-sized) figure context shared across benchmark modules."""
    return FigureContext(quick=False)


@pytest.fixture(scope="session")
def default_app() -> ApplicationConfig:
    """The default object-detection application."""
    return ApplicationConfig.object_detection_default()


@pytest.fixture(scope="session")
def default_network() -> NetworkConfig:
    """The default network topology."""
    return NetworkConfig()
