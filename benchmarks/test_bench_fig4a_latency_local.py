"""Fig. 4(a) benchmark: end-to-end latency validation, local inference.

The paper reports a 2.74 % mean error between the proposed analytical model
and the measured ground truth.  The benchmark times the analytical model's
sweep evaluation (the quantity a user of the framework pays for) and checks
that the reproduction's error against the simulated testbed stays within a
loose envelope of the paper's number while preserving the figure's shape.
"""

from repro.config.application import ExecutionMode
from repro.core.framework import XRPerformanceModel
from repro.evaluation.figures import figure_4a
from repro.evaluation.report import save_text


def test_bench_fig4a_latency_local(benchmark, figure_context):
    sweep = figure_context.sweep_config
    model = XRPerformanceModel(
        device=figure_context.testbed.device,
        edge=figure_context.testbed.edge,
        coefficients=figure_context.coefficients,
    )

    # Benchmark the analytical sweep (15 operating points, Eq. 1 each).
    benchmark(
        model.sweep,
        frame_sides_px=sweep.frame_sides_px,
        cpu_freqs_ghz=sweep.cpu_freqs_ghz,
        mode=ExecutionMode.LOCAL,
    )

    figure = figure_4a(context=figure_context)
    save_text("figure_4a.txt", figure.to_text())
    print()
    print(figure.to_text())

    # Headline: the paper reports 2.74 % mean error; the simulated testbed
    # should keep the proposed model within a single-digit error.
    assert figure.mean_error_percent < 8.0

    # Shape: latency grows with frame size and shrinks with CPU frequency.
    comparison = figure.comparison
    for series in comparison.series:
        assert series.ground_truth[0] < series.ground_truth[-1]
        assert series.model[0] < series.model[-1]
    slowest = comparison.series_for(min(sweep.cpu_freqs_ghz))
    fastest = comparison.series_for(max(sweep.cpu_freqs_ghz))
    assert fastest.ground_truth[-1] < slowest.ground_truth[-1]
