"""Ablation benchmarks for the design choices documented in DESIGN.md.

Four ablations: CNN-complexity placement (Eq. 11 verbatim vs proportional),
the memory-bandwidth term, paper-published vs testbed-calibrated regression
constants, and the M/M/1 vs M/D/1 buffer assumption.
"""

from repro.evaluation.ablations import (
    ablation_buffer_model,
    ablation_coefficient_source,
    ablation_complexity_mode,
    ablation_memory_term,
)
from repro.evaluation.report import save_text


def test_bench_ablation_complexity_mode(benchmark):
    result = benchmark.pedantic(ablation_complexity_mode, iterations=1, rounds=1)
    save_text("ablation_complexity_mode.txt", result.to_text())
    print()
    print(result.to_text())
    assert len(result.rows) >= 9  # one row per lightweight CNN


def test_bench_ablation_memory_term(benchmark):
    result = benchmark.pedantic(ablation_memory_term, iterations=1, rounds=1)
    save_text("ablation_memory_term.txt", result.to_text())
    print()
    print(result.to_text())
    # Removing the memory term can only lower the predicted latency.
    for row in result.rows:
        assert float(row[1]) >= float(row[2])


def test_bench_ablation_coefficient_source(benchmark):
    result = benchmark.pedantic(
        ablation_coefficient_source, kwargs={"quick": False}, iterations=1, rounds=1
    )
    save_text("ablation_coefficient_source.txt", result.to_text())
    print()
    print(result.to_text())
    paper_error = float(result.headline.split("paper constants ")[1].split("%")[0])
    calibrated_error = float(result.headline.split("calibrated constants ")[1].split("%")[0])
    # Calibrating the regression constants against the deployed testbed is what
    # delivers the paper's headline accuracy.
    assert calibrated_error < paper_error
    assert calibrated_error < 10.0


def test_bench_ablation_buffer_model(benchmark):
    result = benchmark.pedantic(ablation_buffer_model, iterations=1, rounds=1)
    save_text("ablation_buffer_model.txt", result.to_text())
    print()
    print(result.to_text())
    for row in result.rows:
        mm1, md1, simulated = (float(row[i]) for i in (1, 2, 3))
        assert md1 < mm1
        assert abs(simulated - mm1) / mm1 < 0.15
