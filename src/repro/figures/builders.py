"""Builders for every registered figure.

Three families:

* **Ported paper artifacts** (source ``"generator"``): re-run the seeded
  evaluation generators (:mod:`repro.evaluation`) and render the exact
  committed text — ``repro figures check`` gates on byte-identity — while
  adding the CSV/Vega-Lite sidecars the text files never had.
* **Dashboards** (sources ``"manifest"``/``"bench"``/``"history"``): read
  persisted JSON (the baseline run manifest, ``BENCH_*.json`` payloads,
  the manifest directory) and summarize the fleet / adaptive / co-sim /
  fault subsystems.
* **Telemetry diff** (source ``"snapshots"``): structural comparison of
  two snapshot files via :mod:`repro.figures.diffs`.

Importing this module populates :data:`repro.figures.registry.FIGURES`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.figures.registry import (
    BuiltFigure,
    FigureInputs,
    register,
    vega_lite_spec,
)
from repro.figures.tabular import Table, bench_table, manifest_table

# ---------------------------------------------------------------------------
# Ported paper tables
# ---------------------------------------------------------------------------


def _table_builder(table) -> Tuple[Table, dict]:
    data = Table(
        table.headers,
        [dict(zip(table.headers, row)) for row in table.rows],
    )
    spec = {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "description": table.title,
        "data": {"url": f"table_{table.table_id}.csv", "format": {"type": "csv"}},
        "mark": "text",
        "encoding": {"text": {"field": table.headers[0], "type": "nominal"}},
    }
    return data, spec


@register(
    "table_I",
    title="Table I: XR and edge device specifications",
    source="generator",
    artifact="table_I.txt",
    description="device catalog as printed in the paper",
)
def build_table_1(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.tables import table_1

    table = table_1()
    data, spec = _table_builder(table)
    return BuiltFigure(
        name="table_I",
        title=table.title,
        text=table.to_text(),
        table=data,
        spec=spec,
        section=(
            "Table I",
            "catalog as printed in the paper",
            f"{table.n_rows} rows reproduced (see results/table_I.txt)",
        ),
    )


@register(
    "table_II",
    title="Table II: CNN models used in this research",
    source="generator",
    artifact="table_II.txt",
    description="CNN catalog as printed in the paper",
)
def build_table_2(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.tables import table_2

    table = table_2()
    data, spec = _table_builder(table)
    return BuiltFigure(
        name="table_II",
        title=table.title,
        text=table.to_text(),
        table=data,
        spec=spec,
        section=(
            "Table II",
            "catalog as printed in the paper",
            f"{table.n_rows} rows reproduced (see results/table_II.txt)",
        ),
    )


#: Regression name -> paper-reported train R^2 (Eq. 3 / 21 / 10 / 12).
_PAPER_R2 = (
    ("compute_resource", 0.870),
    ("mean_power", 0.863),
    ("encoding_latency", 0.790),
    ("cnn_complexity", 0.844),
)


@register(
    "regression_quality",
    title="Regression fit quality (train R^2)",
    source="generator",
    artifact="regression_quality.txt",
    description="calibration-campaign R^2 vs the paper's reported fits",
)
def build_regression_quality(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.report import format_table

    r2 = inputs.context.coefficients.r_squared
    rows = [
        (name, f"{paper:.3f}", f"{r2.get(name, float('nan')):.3f}")
        for name, paper in _PAPER_R2
    ]
    text = "Regression fit quality (train R^2)\n" + format_table(
        rows, headers=("regression", "paper", "reproduction")
    )
    data = Table(
        ("regression", "paper", "reproduction"),
        [
            {"regression": name, "paper": paper, "reproduction": r2.get(name)}
            for name, paper in _PAPER_R2
        ],
    )
    spec = vega_lite_spec(
        "regression_quality",
        "Regression fit quality (train R^2)",
        "bar",
        {
            "x": {"field": "regression", "type": "nominal"},
            "y": {"field": "reproduction", "type": "quantitative", "title": "train R^2"},
        },
    )
    measured = "{:.2f} / {:.2f} / {:.2f} / {:.2f} (synthetic campaign)".format(
        *(r2.get(name, float("nan")) for name, _ in _PAPER_R2)
    )
    return BuiltFigure(
        name="regression_quality",
        title="Regression fit quality (train R^2)",
        text=text,
        table=data,
        spec=spec,
        section=("Regression R^2 (Eq. 3 / 21 / 10 / 12)", "0.87 / 0.863 / 0.79 / 0.844", measured),
    )


# ---------------------------------------------------------------------------
# Fig. 4(a)-(d): validation panels
# ---------------------------------------------------------------------------


def _validation_builder(name: str, figure) -> BuiltFigure:
    unit = "ms" if figure.comparison.metric == "latency" else "mJ"
    rows = [
        {
            "cpu_freq_ghz": cpu_freq,
            "frame_side_px": frame_side,
            "ground_truth": truth,
            "model": model,
            "error_percent": abs(model - truth) / truth * 100.0,
        }
        for cpu_freq, frame_side, truth, model in figure.comparison.rows()
    ]
    data = Table(
        ("cpu_freq_ghz", "frame_side_px", "ground_truth", "model", "error_percent"), rows
    )
    spec = vega_lite_spec(
        name,
        figure.title,
        {"type": "line", "point": True},
        {
            "x": {"field": "frame_side_px", "type": "quantitative", "title": "frame size (px^2)"},
            "y": {"field": "model", "type": "quantitative", "title": f"model ({unit})"},
            "color": {"field": "cpu_freq_ghz", "type": "nominal", "title": "CPU (GHz)"},
        },
    )
    return BuiltFigure(
        name=name,
        title=figure.title,
        text=figure.to_text(),
        table=data,
        spec=spec,
        section=(
            f"Fig. {figure.figure_id}",
            f"mean error {figure.paper_mean_error_percent:.2f}%",
            f"mean error {figure.mean_error_percent:.2f}%",
        ),
    )


def _register_validation(name: str, generator, title: str) -> None:
    @register(
        name,
        title=title,
        source="generator",
        artifact=f"{name}.txt",
        description=title,
    )
    def build(inputs: FigureInputs, _generator=generator, _name=name) -> BuiltFigure:
        return _validation_builder(_name, _generator(context=inputs.context))


def _register_validations() -> None:
    from repro.evaluation.figures import figure_4a, figure_4b, figure_4c, figure_4d

    _register_validation(
        "figure_4a", figure_4a, "Fig. 4(a): end-to-end latency, local inference"
    )
    _register_validation(
        "figure_4b", figure_4b, "Fig. 4(b): end-to-end latency, remote inference"
    )
    _register_validation(
        "figure_4c", figure_4c, "Fig. 4(c): end-to-end energy, local inference"
    )
    _register_validation(
        "figure_4d", figure_4d, "Fig. 4(d): end-to-end energy, remote inference"
    )


_register_validations()


# ---------------------------------------------------------------------------
# Fig. 4(e)/(f): AoI panels
# ---------------------------------------------------------------------------


def _aoi_builder(name: str, figure, section: Tuple[str, str, str]) -> BuiltFigure:
    rows: List[Dict[str, object]] = []
    for analytical, emulated in zip(figure.analytical, figure.emulated):
        n = min(analytical.n_updates, emulated.n_updates)
        for index in range(n):
            rows.append(
                {
                    "sensor_hz": analytical.generation_frequency_hz,
                    "time_ms": analytical.times_ms[index],
                    "gt_aoi_ms": emulated.aoi_ms[index],
                    "model_aoi_ms": analytical.aoi_ms[index],
                    "model_roi": analytical.roi[index],
                }
            )
    data = Table(("sensor_hz", "time_ms", "gt_aoi_ms", "model_aoi_ms", "model_roi"), rows)
    spec = vega_lite_spec(
        name,
        figure.title,
        {"type": "line", "interpolate": "step-after"},
        {
            "x": {"field": "time_ms", "type": "quantitative", "title": "time (ms)"},
            "y": {"field": "model_aoi_ms", "type": "quantitative", "title": "AoI (ms)"},
            "color": {"field": "sensor_hz", "type": "nominal", "title": "sensor (Hz)"},
        },
    )
    return BuiltFigure(
        name=name, title=figure.title, text=figure.to_text(), table=data, spec=spec, section=section
    )


@register(
    "figure_4e",
    title="Fig. 4(e): AoI vs time across sensor frequencies",
    source="generator",
    artifact="figure_4e.txt",
    description="analytical vs emulated AoI timelines",
)
def build_figure_4e(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.figures import figure_4e

    figure = figure_4e()
    return _aoi_builder(
        "figure_4e",
        figure,
        (
            "Fig. 4e",
            "AoI grows for sensors slower than the requirement",
            f"analytical vs emulated AoI error {figure.mean_error_percent():.2f}%",
        ),
    )


@register(
    "figure_4f",
    title="Fig. 4(f): AoI staircase and RoI for a 100 Hz sensor",
    source="generator",
    artifact="figure_4f.txt",
    description="AoI/RoI staircase against a 200 Hz requirement",
)
def build_figure_4f(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.figures import figure_4f

    figure = figure_4f()
    staircase = ", ".join(f"{value:.0f}" for value in figure.analytical[0].aoi_ms[:3])
    roi = ", ".join(f"{value:.2f}" for value in figure.analytical[0].roi[:3])
    return _aoi_builder(
        "figure_4f",
        figure,
        (
            "Fig. 4f",
            "AoI 10/15/20 ms with RoI 0.5/0.33/0.25 (100 Hz sensor)",
            f"AoI staircase {staircase} ms; RoI {roi}",
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 5(a)/(b): comparison panels
# ---------------------------------------------------------------------------


def _comparison_builder(name: str, figure) -> BuiltFigure:
    rows: List[Dict[str, object]] = []
    for index, frame_side in enumerate(figure.frame_sides_px):
        rows.append(
            {"frame_side_px": frame_side, "model": "Ground truth", "accuracy_percent": 100.0}
        )
        for model_name in ("Proposed", "FACT", "LEAF"):
            rows.append(
                {
                    "frame_side_px": frame_side,
                    "model": model_name,
                    "accuracy_percent": figure.accuracy_by_model[model_name][index],
                }
            )
    data = Table(("frame_side_px", "model", "accuracy_percent"), rows)
    spec = vega_lite_spec(
        name,
        figure.title,
        {"type": "line", "point": True},
        {
            "x": {"field": "frame_side_px", "type": "quantitative", "title": "frame size (px^2)"},
            "y": {
                "field": "accuracy_percent",
                "type": "quantitative",
                "title": "normalized accuracy (%)",
                "scale": {"zero": False},
            },
            "color": {"field": "model", "type": "nominal"},
        },
    )
    return BuiltFigure(
        name=name,
        title=figure.title,
        text=figure.to_text(),
        table=data,
        spec=spec,
        section=(
            f"Fig. {figure.figure_id}",
            f"accuracy gain vs FACT {figure.paper_gain_vs_fact:.2f}%, "
            f"vs LEAF {figure.paper_gain_vs_leaf:.2f}%",
            f"gain vs FACT {figure.gain_vs_fact:.2f}%, vs LEAF {figure.gain_vs_leaf:.2f}%",
        ),
    )


@register(
    "figure_5a",
    title="Fig. 5(a): latency accuracy vs FACT and LEAF",
    source="generator",
    artifact="figure_5a.txt",
    description="normalized latency accuracy against the baselines",
)
def build_figure_5a(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.figures import figure_5a

    return _comparison_builder("figure_5a", figure_5a(context=inputs.context))


@register(
    "figure_5b",
    title="Fig. 5(b): energy accuracy vs FACT and LEAF",
    source="generator",
    artifact="figure_5b.txt",
    description="normalized energy accuracy against the baselines",
)
def build_figure_5b(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.figures import figure_5b

    return _comparison_builder("figure_5b", figure_5b(context=inputs.context))


# ---------------------------------------------------------------------------
# Ablations and extensions
# ---------------------------------------------------------------------------


def _named_table_builder(name: str, result, kind: str, section_kind: str) -> BuiltFigure:
    data = Table(result.headers, [dict(zip(result.headers, row)) for row in result.rows])
    spec = {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "description": f"{kind}: {result.name}",
        "data": {"url": f"{name}.csv", "format": {"type": "csv"}},
        "mark": "bar",
        "encoding": {
            "x": {"field": result.headers[0], "type": "nominal"},
            "y": {"field": result.headers[-1], "type": "nominal"},
        },
    }
    return BuiltFigure(
        name=name,
        title=f"{kind}: {result.name}",
        text=result.to_text(),
        table=data,
        spec=spec,
        section=(f"{section_kind}: {result.name}", "-", result.headline),
    )


def _register_ablation(name: str, make, title: str) -> None:
    @register(name, title=title, source="generator", artifact=f"{name}.txt", description=title)
    def build(inputs: FigureInputs, _make=make, _name=name) -> BuiltFigure:
        return _named_table_builder(_name, _make(inputs), "Ablation", "Ablation")


def _register_extension(name: str, make, title: str) -> None:
    @register(name, title=title, source="generator", artifact=f"{name}.txt", description=title)
    def build(inputs: FigureInputs, _make=make, _name=name) -> BuiltFigure:
        return _named_table_builder(_name, _make(inputs), "Extension experiment", "Extension")


def _register_studies() -> None:
    from repro.evaluation import ablations, extensions

    _register_ablation(
        "ablation_complexity_mode",
        lambda inputs: ablations.ablation_complexity_mode(),
        "Ablation: CNN complexity placement (Eq. 11/13 vs proportional)",
    )
    _register_ablation(
        "ablation_memory_term",
        lambda inputs: ablations.ablation_memory_term(),
        "Ablation: memory-bandwidth term",
    )
    _register_ablation(
        "ablation_coefficient_source",
        lambda inputs: ablations.ablation_coefficient_source(quick=inputs.quick),
        "Ablation: published vs re-calibrated coefficients",
    )
    _register_ablation(
        "ablation_buffer_model",
        lambda inputs: ablations.ablation_buffer_model(),
        "Ablation: M/M/1 vs M/D/1 input buffer",
    )
    _register_extension(
        "extension_mobility",
        lambda inputs: extensions.mobility_extension(),
        "Extension: latency/energy vs device speed with handoffs",
    )
    _register_extension(
        "extension_pathloss",
        lambda inputs: extensions.pathloss_extension(),
        "Extension: path-loss environments",
    )
    _register_extension(
        "extension_multi_edge",
        lambda inputs: extensions.multi_edge_extension(),
        "Extension: multi-edge placement",
    )
    # The committed artifacts for these two are also (re)written by
    # benchmarks/test_bench_extensions.py; the full-mode parameters here
    # must stay identical to the benchmark kwargs or a local benchmark run
    # and 'figures check' disagree about results/.
    _register_extension(
        "extension_session",
        lambda inputs: extensions.session_extension(
            n_frames=120 if inputs.quick else 200, seed=3
        ),
        "Extension: frame-by-frame session simulation",
    )
    _register_extension(
        "extension_adaptation",
        lambda inputs: extensions.adaptation_extension(
            n_epochs=60 if inputs.quick else 150, seed=3
        ),
        "Extension: runtime adaptation policies",
    )


_register_studies()


# ---------------------------------------------------------------------------
# Dashboards over the baseline manifest
# ---------------------------------------------------------------------------


def _manifest_dashboard(
    name: str,
    title: str,
    inputs: FigureInputs,
    kinds: Tuple[str, ...],
    metrics: Tuple[str, ...],
    *,
    require: Optional[str] = None,
    y_field: str = "",
    y_title: str = "",
) -> BuiltFigure:
    from repro.evaluation.report import format_table

    manifest = inputs.manifest
    flat = manifest_table(manifest)
    names: List[str] = []
    for result in manifest.scenarios:
        if result.kind not in kinds:
            continue
        if require is not None and require not in result.metrics:
            continue
        names.append(result.name)
    wide = flat.where(lambda row: row["scenario"] in names and row["metric"] in metrics).pivot(
        "scenario", "metric", "value"
    )
    # Keep a deterministic metric column order regardless of row order.
    columns = ("scenario", *[metric for metric in metrics if metric in wide.columns])
    wide = Table(columns, wide.rows) if wide else Table(columns)

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    text_rows = [[fmt(row[column]) for column in columns] for row in wide.rows]
    header = f"{title}\n(source: results/manifests, suite {manifest.suite!r}, git {str(manifest.git_sha or 'unknown')[:12]})"
    text = header + "\n" + format_table(text_rows, headers=columns)
    spec = vega_lite_spec(
        name,
        title,
        "bar",
        {
            "x": {"field": "scenario", "type": "nominal"},
            "y": {"field": y_field or metrics[0], "type": "quantitative", "title": y_title or None},
        },
    )
    return BuiltFigure(name=name, title=title, text=text, table=wide, spec=spec)


@register(
    "fleet_dashboard",
    title="Fleet scale-out: tail latency and SLO pressure per scenario",
    source="manifest",
    description="p50/p95/p99 latency, utilization and SLO violations for fleet scenarios",
)
def build_fleet_dashboard(inputs: FigureInputs) -> BuiltFigure:
    return _manifest_dashboard(
        "fleet_dashboard",
        "Fleet scale-out: tail latency and SLO pressure per scenario",
        inputs,
        kinds=("fleet",),
        metrics=(
            "n_users",
            "p50_latency_ms",
            "p95_latency_ms",
            "p99_latency_ms",
            "max_edge_utilization",
            "slo_violations",
        ),
        y_field="p95_latency_ms",
        y_title="p95 latency (ms)",
    )


@register(
    "adaptive_dashboard",
    title="Adaptive control: deadline miss-rate vs controller",
    source="manifest",
    description="miss-rate, quality and switch counts per adapt scenario",
)
def build_adaptive_dashboard(inputs: FigureInputs) -> BuiltFigure:
    return _manifest_dashboard(
        "adaptive_dashboard",
        "Adaptive control: deadline miss-rate vs controller",
        inputs,
        kinds=("adapt",),
        metrics=(
            "deadline_miss_rate",
            "static_deadline_miss_rate",
            "mean_quality",
            "switch_count",
            "p95_latency_ms",
        ),
        y_field="deadline_miss_rate",
        y_title="deadline miss rate",
    )


@register(
    "cosim_dashboard",
    title="Device/edge co-simulation: convergence rate per scenario",
    source="manifest",
    description="convergence, unconverged epochs and fleet tail latency per cosim scenario",
)
def build_cosim_dashboard(inputs: FigureInputs) -> BuiltFigure:
    return _manifest_dashboard(
        "cosim_dashboard",
        "Device/edge co-simulation: convergence rate per scenario",
        inputs,
        kinds=("cosim",),
        metrics=(
            "n_users",
            "convergence_rate",
            "n_unconverged_epochs",
            "deadline_miss_rate",
            "fleet_p95_latency_ms",
        ),
        y_field="convergence_rate",
        y_title="convergence rate",
    )


@register(
    "faults_dashboard",
    title="Fault injection: availability and time-to-recover over fault windows",
    source="manifest",
    description="availability, TTR and miss-rate inside fault windows, any scenario kind",
)
def build_faults_dashboard(inputs: FigureInputs) -> BuiltFigure:
    return _manifest_dashboard(
        "faults_dashboard",
        "Fault injection: availability and time-to-recover over fault windows",
        inputs,
        kinds=("fleet", "adapt", "cosim"),
        metrics=(
            "availability",
            "fault_epoch_fraction",
            "mean_time_to_recover_epochs",
            "fault_miss_rate",
            "deadline_miss_rate",
        ),
        require="availability",
        y_field="availability",
        y_title="availability",
    )


# ---------------------------------------------------------------------------
# Bench trajectory and run history
# ---------------------------------------------------------------------------


@register(
    "bench_trajectory",
    title="Bench trajectory: perf metrics across committed BENCH baselines",
    source="bench",
    description="one row per (baseline file, case, metric) across BENCH_*.json",
)
def build_bench_trajectory(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.report import format_table

    tables = [bench_table(payload, source=stem) for stem, payload in inputs.benches]
    rows: List[Dict[str, object]] = []
    for table in tables:
        rows.extend(table.rows)
    data = Table(("source", "git_sha", "case", "metric", "value"), rows)
    text_rows = [
        (
            str(row["source"]),
            str(row["git_sha"] or "-"),
            str(row["case"]),
            str(row["metric"]),
            f"{row['value']:.6g}" if isinstance(row["value"], float) else str(row["value"]),
        )
        for row in data.rows
    ]
    title = "Bench trajectory: perf metrics across committed BENCH baselines"
    text = title + "\n" + format_table(text_rows, headers=("source", "git_sha", "case", "metric", "value"))
    spec = vega_lite_spec(
        "bench_trajectory",
        title,
        {"type": "line", "point": True},
        {
            "x": {"field": "source", "type": "nominal", "title": "baseline"},
            "y": {"field": "value", "type": "quantitative", "scale": {"type": "log"}},
            "color": {"field": "case", "type": "nominal"},
            "detail": {"field": "metric", "type": "nominal"},
        },
    )
    return BuiltFigure(name="bench_trajectory", title=title, text=text, table=data, spec=spec)


@register(
    "run_history",
    title="Run history: per-metric trajectory across archived manifests",
    source="history",
    description="first/last/delta per (scenario, metric) over the manifest directory",
)
def build_run_history(inputs: FigureInputs) -> BuiltFigure:
    from repro.evaluation.report import format_table

    history = inputs.history
    rows: List[Dict[str, object]] = []
    for scenario, metric in history.metrics():
        points = [p for p in history.series(scenario, metric) if p.value is not None]
        if not points:
            continue
        first, last = points[0], points[-1]
        rows.append(
            {
                "scenario": scenario,
                "metric": metric,
                "n_runs": len(points),
                "first": first.value,
                "last": last.value,
                "delta": last.value - first.value,
                "first_sha": (first.git_sha or "")[:12] or None,
                "last_sha": (last.git_sha or "")[:12] or None,
            }
        )
    columns = ("scenario", "metric", "n_runs", "first", "last", "delta", "first_sha", "last_sha")
    data = Table(columns, rows)

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    title = "Run history: per-metric trajectory across archived manifests"
    text_rows = [[fmt(row[column]) for column in columns] for row in data.rows]
    text = (
        f"{title}\n({history.n_runs} run(s) indexed)\n"
        + format_table(text_rows, headers=columns)
    )
    spec = vega_lite_spec(
        "run_history",
        title,
        {"type": "line", "point": True},
        {
            "x": {"field": "metric", "type": "nominal"},
            "y": {"field": "delta", "type": "quantitative", "title": "last - first"},
            "color": {"field": "scenario", "type": "nominal"},
        },
    )
    return BuiltFigure(name="run_history", title=title, text=text, table=data, spec=spec)


# ---------------------------------------------------------------------------
# Telemetry diff
# ---------------------------------------------------------------------------


@register(
    "telemetry_diff",
    title="Telemetry diff: structural comparison of two snapshots",
    source="snapshots",
    description="counter/span/histogram deltas between two snapshot files",
)
def build_telemetry_diff(inputs: FigureInputs) -> BuiltFigure:
    from repro.figures.diffs import diff_snapshots

    snapshot_a, snapshot_b, label_a, label_b = inputs.snapshots()
    diff = diff_snapshots(snapshot_a, snapshot_b, label_a=label_a, label_b=label_b)
    spec = vega_lite_spec(
        "telemetry_diff",
        "Telemetry diff: structural comparison of two snapshots",
        "bar",
        {
            "x": {"field": "delta", "type": "quantitative"},
            "y": {"field": "name", "type": "nominal"},
            "color": {"field": "section", "type": "nominal"},
        },
    )
    return BuiltFigure(
        name="telemetry_diff",
        title="Telemetry diff: structural comparison of two snapshots",
        text=diff.to_text(),
        table=diff.to_table(),
        spec=spec,
    )
