"""The figure registry: one named builder per reproducible artifact.

Every figure, table, ablation and dashboard the repo can render is an
entry in :data:`FIGURES`, keyed by name.  A builder turns a
:class:`FigureInputs` bundle (lazy-loading the expensive shared state:
the calibrated :class:`~repro.evaluation.figures.FigureContext`, the
baseline run manifest, the bench payloads, the run history) into a
:class:`BuiltFigure` carrying three synchronized renders of the same
data:

* ``text`` — a deterministic fixed-width render.  For ported paper
  artifacts this is byte-identical to the committed ``results/*.txt``
  file, which is what ``repro figures check`` gates on.
* ``table`` — the underlying series as a
  :class:`~repro.figures.tabular.Table`, saved as a CSV sidecar.
* ``spec`` — a Vega-Lite JSON spec referencing that CSV, so the same
  artifact plots in any Vega-Lite viewer without a plotting dependency
  in this repo.

Registry entries declare their ``source`` ("generator" figures re-run the
seeded evaluation code; "manifest"/"bench"/"history" figures load persisted
JSON; "snapshots" figures need two telemetry snapshot paths) and, when the
text render is committed under ``results/``, the ``artifact`` filename the
drift check compares against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.figures.tabular import RunHistory, Table, load_bench

#: Sources whose builders only read persisted JSON (cheap); "generator"
#: re-runs the seeded evaluation pipeline (seconds); "snapshots" needs two
#: explicit telemetry snapshot paths and is skipped by ``build --all``
#: unless they are provided.
SOURCES = ("generator", "manifest", "bench", "history", "snapshots")


@dataclass
class BuiltFigure:
    """One built artifact: text render + data table + Vega-Lite spec."""

    name: str
    title: str
    text: str
    table: Table
    spec: dict
    #: (identifier, paper claim, measured) row for EXPERIMENTS.md; only
    #: generator figures populate it.
    section: Optional[Tuple[str, str, str]] = None

    def save(self, directory: Union[str, Path]) -> List[Path]:
        """Write ``<name>.txt``, ``<name>.csv`` and ``<name>.vl.json``.

        The text file follows the ``results/`` convention (exactly one
        trailing newline); the JSON spec is rendered deterministically
        (sorted keys) so repeated builds are byte-stable.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        text_path = directory / f"{self.name}.txt"
        text_path.write_text(
            self.text + ("" if self.text.endswith("\n") else "\n"), encoding="utf-8"
        )
        csv_path = directory / f"{self.name}.csv"
        csv_path.write_text(self.table.to_csv(), encoding="utf-8")
        spec_path = directory / f"{self.name}.vl.json"
        spec_path.write_text(
            json.dumps(self.spec, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return [text_path, csv_path, spec_path]


@dataclass
class FigureInputs:
    """Lazy bundle of everything a builder may need.

    The expensive pieces (the simulated-testbed context, the manifest, the
    run history) are built on first access and cached, so building twenty
    figures calibrates coefficients exactly once, and a ``figures list``
    touches nothing at all.
    """

    quick: bool = False
    manifest_path: Union[str, Path] = Path("results") / "manifests" / "baseline.json"
    history_dir: Union[str, Path] = Path("results") / "manifests"
    bench_paths: Optional[Sequence[Union[str, Path]]] = None
    snapshot_paths: Optional[Tuple[Union[str, Path], Union[str, Path]]] = None
    _context: Optional[object] = field(default=None, repr=False)
    _manifest: Optional[object] = field(default=None, repr=False)
    _history: Optional[RunHistory] = field(default=None, repr=False)
    _benches: Optional[List[Tuple[str, dict]]] = field(default=None, repr=False)

    @property
    def context(self):
        """The shared :class:`FigureContext` (calibrated once, cached)."""
        if self._context is None:
            from repro.evaluation.figures import FigureContext

            self._context = FigureContext(quick=self.quick)
        return self._context

    @property
    def manifest(self):
        """The baseline :class:`RunManifest` (loaded once, cached)."""
        if self._manifest is None:
            from repro.experiments.runner import RunManifest

            path = Path(self.manifest_path)
            if not path.is_file():
                raise ConfigurationError(f"no run manifest at {path}")
            self._manifest = RunManifest.load(path)
        return self._manifest

    @property
    def history(self) -> RunHistory:
        """The manifest-directory run history (loaded once, cached)."""
        if self._history is None:
            self._history = RunHistory.load(self.history_dir)
        return self._history

    @property
    def benches(self) -> List[Tuple[str, dict]]:
        """The ``BENCH_*.json`` payloads as (stem, payload), name-sorted."""
        if self._benches is None:
            paths = (
                [Path(p) for p in self.bench_paths]
                if self.bench_paths is not None
                else sorted(Path(".").glob("BENCH_*.json"))
            )
            self._benches = [(path.stem, load_bench(path)) for path in paths]
        return self._benches

    def snapshots(self) -> Tuple[dict, dict, str, str]:
        """The two telemetry snapshots for diff figures (A, B, label_a, label_b)."""
        if self.snapshot_paths is None:
            raise ConfigurationError(
                "this figure needs two telemetry snapshots (pass --snapshot A --snapshot B)"
            )
        from repro.telemetry import load_snapshot

        path_a, path_b = (Path(p) for p in self.snapshot_paths)
        return load_snapshot(path_a), load_snapshot(path_b), path_a.name, path_b.name


@dataclass(frozen=True)
class FigureSpec:
    """One registry entry: how to build a named figure and how to gate it."""

    name: str
    title: str
    source: str
    builder: Callable[[FigureInputs], BuiltFigure]
    #: Committed text artifact under ``results/`` this figure must
    #: reproduce byte-identically (None for uncommitted dashboards).
    artifact: Optional[str] = None
    description: str = ""


FIGURES: Dict[str, FigureSpec] = {}


def register(
    name: str,
    *,
    title: str,
    source: str,
    artifact: Optional[str] = None,
    description: str = "",
) -> Callable[[Callable[[FigureInputs], BuiltFigure]], Callable[[FigureInputs], BuiltFigure]]:
    """Decorator adding a builder to :data:`FIGURES` under ``name``."""
    if source not in SOURCES:
        raise ValueError(f"unknown figure source {source!r} (expected one of {SOURCES})")

    def wrap(builder: Callable[[FigureInputs], BuiltFigure]):
        if name in FIGURES:
            raise ValueError(f"duplicate figure name {name!r}")
        FIGURES[name] = FigureSpec(
            name=name,
            title=title,
            source=source,
            builder=builder,
            artifact=artifact,
            description=description or title,
        )
        return builder

    return wrap


def figure_names(source: Optional[str] = None) -> List[str]:
    """Registered figure names, in registration order."""
    return [
        spec.name for spec in FIGURES.values() if source is None or spec.source == source
    ]


def build_figure(name: str, inputs: Optional[FigureInputs] = None) -> BuiltFigure:
    """Build one registered figure."""
    spec = FIGURES.get(name)
    if spec is None:
        known = ", ".join(sorted(FIGURES))
        raise ConfigurationError(f"unknown figure {name!r} (known: {known})")
    return spec.builder(inputs if inputs is not None else FigureInputs())


def build_all(
    inputs: Optional[FigureInputs] = None, names: Optional[Sequence[str]] = None
) -> List[BuiltFigure]:
    """Build every registered figure (or the named subset), in order.

    Snapshot-sourced figures are skipped unless the inputs carry snapshot
    paths (they have no default data to diff).
    """
    inputs = inputs if inputs is not None else FigureInputs()
    selected = list(names) if names is not None else figure_names()
    built: List[BuiltFigure] = []
    for name in selected:
        spec = FIGURES.get(name)
        if spec is None:
            known = ", ".join(sorted(FIGURES))
            raise ConfigurationError(f"unknown figure {name!r} (known: {known})")
        if spec.source == "snapshots" and inputs.snapshot_paths is None and names is None:
            continue
        built.append(spec.builder(inputs))
    return built


@dataclass(frozen=True)
class CheckResult:
    """Outcome of re-rendering one committed artifact."""

    name: str
    artifact: str
    status: str  # "ok" | "drift" | "missing"

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def check_figures(
    inputs: Optional[FigureInputs] = None,
    results_dir: Union[str, Path, None] = None,
) -> List[CheckResult]:
    """Re-render every committed text artifact and compare bytes.

    For each registry entry with an ``artifact``, the builder re-runs and
    its text render is compared against ``results/<artifact>``; any
    difference is ``drift``, an absent committed file is ``missing``.
    This is the CI gate that keeps ``results/`` a verified pipeline
    output instead of a stale copy.
    """
    from repro.evaluation.report import results_directory

    inputs = inputs if inputs is not None else FigureInputs()
    directory = Path(results_dir) if results_dir is not None else results_directory()
    outcomes: List[CheckResult] = []
    for spec in FIGURES.values():
        if spec.artifact is None:
            continue
        committed = directory / spec.artifact
        if not committed.is_file():
            outcomes.append(CheckResult(spec.name, spec.artifact, "missing"))
            continue
        built = spec.builder(inputs)
        rendered = built.text + ("" if built.text.endswith("\n") else "\n")
        status = "ok" if committed.read_text(encoding="utf-8") == rendered else "drift"
        outcomes.append(CheckResult(spec.name, spec.artifact, status))
    return outcomes


def vega_lite_spec(
    name: str,
    title: str,
    mark: Union[str, dict],
    encoding: dict,
    *,
    transform: Optional[List[dict]] = None,
) -> dict:
    """A minimal Vega-Lite v5 spec reading the figure's CSV sidecar."""
    spec: Dict[str, object] = {
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "description": title,
        "data": {"url": f"{name}.csv", "format": {"type": "csv"}},
        "mark": mark,
        "encoding": encoding,
    }
    if transform:
        spec["transform"] = transform
    return spec
