"""Structural diffing of telemetry snapshots.

Two snapshots of the same deterministic run must agree on every counter —
wall times may drift with machine load, but work done is work done.  This
module aligns two snapshots structurally: top-level counters and gauges by
name, histograms by name with percentile shifts, and the span tree by
path with per-node wall-time and counter deltas.  The result renders as a
deterministic text report (``repro profile --diff A B``) and flattens to a
:class:`~repro.figures.tabular.Table` for the figure registry.

The report deliberately separates *work* deltas (counters, span counts)
from *timing* deltas (wall-time, percentiles): a clean diff has zero work
deltas and whatever timing noise the machine produced, and
:attr:`SnapshotDiff.max_counter_delta` makes that gate a one-liner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.figures.tabular import Table

_PERCENTILES = (0.50, 0.95, 0.99)


def _delta(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None or b is None:
        return None
    return b - a


@dataclass(frozen=True)
class ValueDelta:
    """One named scalar present in either snapshot."""

    name: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        return _delta(self.a, self.b)


@dataclass(frozen=True)
class HistogramDelta:
    """Count and percentile shifts of one named histogram."""

    name: str
    count_a: int
    count_b: int
    percentiles_a: Tuple[float, ...]  # p50, p95, p99 (NaN when empty)
    percentiles_b: Tuple[float, ...]

    @property
    def count_delta(self) -> int:
        return self.count_b - self.count_a

    def shifts(self) -> Tuple[Optional[float], ...]:
        return tuple(
            None if math.isnan(a) or math.isnan(b) else b - a
            for a, b in zip(self.percentiles_a, self.percentiles_b)
        )


@dataclass(frozen=True)
class SpanDelta:
    """One aligned span-tree node: call-count, wall-time, counter deltas."""

    path: str
    count_a: int
    count_b: int
    total_ms_a: Optional[float]
    total_ms_b: Optional[float]
    counters: Tuple[ValueDelta, ...] = ()

    @property
    def count_delta(self) -> int:
        return self.count_b - self.count_a

    @property
    def total_ms_delta(self) -> Optional[float]:
        return _delta(self.total_ms_a, self.total_ms_b)


@dataclass
class SnapshotDiff:
    """The full structural comparison of two telemetry snapshots."""

    label_a: str
    label_b: str
    counters: List[ValueDelta] = field(default_factory=list)
    gauges: List[ValueDelta] = field(default_factory=list)
    histograms: List[HistogramDelta] = field(default_factory=list)
    spans: List[SpanDelta] = field(default_factory=list)

    @property
    def max_counter_delta(self) -> float:
        """Largest absolute *work* delta: top-level counters, span
        call-counts, and span-local counters.  Zero means snapshot B did
        exactly the work snapshot A did (missing-on-one-side counts as a
        full-magnitude delta)."""
        worst = 0.0
        for entry in self.counters:
            if entry.a is None or entry.b is None:
                worst = max(worst, abs(entry.a if entry.b is None else entry.b) or 1.0)
            else:
                worst = max(worst, abs(entry.delta))
        for span in self.spans:
            worst = max(worst, abs(span.count_delta))
            for entry in span.counters:
                if entry.a is None or entry.b is None:
                    worst = max(worst, abs(entry.a if entry.b is None else entry.b) or 1.0)
                else:
                    worst = max(worst, abs(entry.delta))
        return worst

    # -- renders ---------------------------------------------------------------

    def to_table(self) -> Table:
        """Long-form flattening: one row per compared quantity."""
        rows: List[Dict[str, object]] = []
        for section, entries in (("counter", self.counters), ("gauge", self.gauges)):
            for entry in entries:
                rows.append(
                    {
                        "section": section,
                        "name": entry.name,
                        "a": entry.a,
                        "b": entry.b,
                        "delta": entry.delta,
                    }
                )
        for hist in self.histograms:
            rows.append(
                {
                    "section": "histogram",
                    "name": f"{hist.name}.count",
                    "a": hist.count_a,
                    "b": hist.count_b,
                    "delta": hist.count_delta,
                }
            )
            for q, a, b, shift in zip(
                _PERCENTILES, hist.percentiles_a, hist.percentiles_b, hist.shifts()
            ):
                rows.append(
                    {
                        "section": "histogram",
                        "name": f"{hist.name}.p{int(q * 100)}",
                        "a": None if math.isnan(a) else a,
                        "b": None if math.isnan(b) else b,
                        "delta": shift,
                    }
                )
        for span in self.spans:
            rows.append(
                {
                    "section": "span",
                    "name": f"{span.path}.count",
                    "a": span.count_a,
                    "b": span.count_b,
                    "delta": span.count_delta,
                }
            )
            rows.append(
                {
                    "section": "span",
                    "name": f"{span.path}.total_ms",
                    "a": span.total_ms_a,
                    "b": span.total_ms_b,
                    "delta": span.total_ms_delta,
                }
            )
            for entry in span.counters:
                rows.append(
                    {
                        "section": "span",
                        "name": f"{span.path}.{entry.name}",
                        "a": entry.a,
                        "b": entry.b,
                        "delta": entry.delta,
                    }
                )
        return Table(("section", "name", "a", "b", "delta"), rows)

    def to_text(self) -> str:
        """Deterministic human-readable report."""
        from repro.evaluation.report import format_table

        def fmt(value: Optional[float]) -> str:
            if value is None:
                return "-"
            if isinstance(value, float) and math.isnan(value):
                return "nan"
            if float(value) == int(value) and abs(value) < 1e15:
                return str(int(value))
            return f"{value:.6g}"

        lines = [f"telemetry diff: {self.label_a} -> {self.label_b}", ""]

        work_rows = []
        for entry in self.counters:
            work_rows.append(("counter", entry.name, fmt(entry.a), fmt(entry.b), fmt(entry.delta)))
        for span in self.spans:
            work_rows.append(
                ("span", f"{span.path} calls", str(span.count_a), str(span.count_b), str(span.count_delta))
            )
            for entry in span.counters:
                work_rows.append(
                    ("span", f"{span.path} {entry.name}", fmt(entry.a), fmt(entry.b), fmt(entry.delta))
                )
        changed = [row for row in work_rows if row[4] not in ("0", "-")]
        lines.append(f"work deltas ({len(changed)} changed of {len(work_rows)} compared):")
        if changed:
            lines.append(format_table(changed, headers=("kind", "name", "a", "b", "delta")))
        else:
            lines.append("  none - snapshots agree on all counters and span call-counts")
        lines.append("")

        if self.gauges:
            gauge_rows = [
                (entry.name, fmt(entry.a), fmt(entry.b), fmt(entry.delta)) for entry in self.gauges
            ]
            lines.append("gauges:")
            lines.append(format_table(gauge_rows, headers=("name", "a", "b", "delta")))
            lines.append("")

        if self.histograms:
            hist_rows = []
            for hist in self.histograms:
                shifts = hist.shifts()
                hist_rows.append(
                    (
                        hist.name,
                        str(hist.count_a),
                        str(hist.count_b),
                        *(fmt(shift) for shift in shifts),
                    )
                )
            lines.append("histogram shifts:")
            lines.append(
                format_table(
                    hist_rows,
                    headers=("name", "count_a", "count_b", "dp50", "dp95", "dp99"),
                )
            )
            lines.append("")

        timing_rows = [
            (span.path, fmt(span.total_ms_a), fmt(span.total_ms_b), fmt(span.total_ms_delta))
            for span in self.spans
        ]
        if timing_rows:
            lines.append("span wall time (informational - expected to drift):")
            lines.append(
                format_table(timing_rows, headers=("span", "total_ms_a", "total_ms_b", "delta_ms"))
            )
            lines.append("")

        verdict = self.max_counter_delta
        lines.append(
            "verdict: identical work (max counter delta 0)"
            if verdict == 0.0
            else f"verdict: WORK DIVERGED (max counter delta {fmt(verdict)})"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Alignment
# ---------------------------------------------------------------------------


def _align_values(a: Mapping, b: Mapping) -> List[ValueDelta]:
    names = sorted(set(a) | set(b))
    return [
        ValueDelta(
            name=name,
            a=float(a[name]) if name in a else None,
            b=float(b[name]) if name in b else None,
        )
        for name in names
    ]


def _align_spans(
    a: Mapping, b: Mapping, prefix: str, out: List[SpanDelta]
) -> None:
    empty: Dict[str, object] = {}
    for name in sorted(set(a) | set(b)):
        node_a, node_b = a.get(name, empty), b.get(name, empty)
        path = f"{prefix}/{name}" if prefix else name
        out.append(
            SpanDelta(
                path=path,
                count_a=int(node_a.get("count", 0)),
                count_b=int(node_b.get("count", 0)),
                total_ms_a=node_a.get("total_ms"),
                total_ms_b=node_b.get("total_ms"),
                counters=tuple(
                    _align_values(node_a.get("counters") or {}, node_b.get("counters") or {})
                ),
            )
        )
        _align_spans(node_a.get("children") or {}, node_b.get("children") or {}, path, out)


def diff_snapshots(
    snapshot_a: Mapping,
    snapshot_b: Mapping,
    label_a: str = "A",
    label_b: str = "B",
) -> SnapshotDiff:
    """Structurally compare two telemetry snapshots.

    Counters, gauges and histograms align by name; span trees align by
    path, recursing into children present on either side.  Quantities
    present in only one snapshot surface with ``None`` on the other side
    (and count as full-magnitude work deltas in
    :attr:`SnapshotDiff.max_counter_delta`).
    """
    from repro.telemetry.histogram import StreamingHistogram

    diff = SnapshotDiff(label_a=label_a, label_b=label_b)
    diff.counters = _align_values(
        snapshot_a.get("counters") or {}, snapshot_b.get("counters") or {}
    )
    diff.gauges = _align_values(snapshot_a.get("gauges") or {}, snapshot_b.get("gauges") or {})

    hist_a = snapshot_a.get("histograms") or {}
    hist_b = snapshot_b.get("histograms") or {}
    for name in sorted(set(hist_a) | set(hist_b)):
        side_a = StreamingHistogram.from_dict(hist_a[name]) if name in hist_a else StreamingHistogram()
        side_b = StreamingHistogram.from_dict(hist_b[name]) if name in hist_b else StreamingHistogram()
        diff.histograms.append(
            HistogramDelta(
                name=name,
                count_a=side_a.count,
                count_b=side_b.count,
                percentiles_a=tuple(side_a.quantile(q) for q in _PERCENTILES),
                percentiles_b=tuple(side_b.quantile(q) for q in _PERCENTILES),
            )
        )

    spans: List[SpanDelta] = []
    _align_spans(snapshot_a.get("spans") or {}, snapshot_b.get("spans") or {}, "", spans)
    diff.spans = spans
    return diff


def diff_snapshot_files(path_a, path_b) -> SnapshotDiff:
    """Load and diff two snapshot files (labels are the file names)."""
    from pathlib import Path

    from repro.telemetry import load_snapshot

    return diff_snapshots(
        load_snapshot(path_a),
        load_snapshot(path_b),
        label_a=Path(path_a).name,
        label_b=Path(path_b).name,
    )
