"""Row-oriented tables and run-history indexing over persisted artifacts.

The figure registry needs exactly three dataframe operations — select,
group, pivot — over three JSON document families: run manifests
(:class:`~repro.experiments.runner.RunManifest`), telemetry snapshots
(:mod:`repro.telemetry`) and ``BENCH_*.json`` perf baselines.  Pulling
pandas in for that would be the repo's first third-party analytics
dependency; :class:`Table` is the stdlib-only sliver of it we actually use:
a tuple of column names plus a list of per-row dicts, with typed columns,
deterministic CSV round-trips (NaN/inf included), and the handful of
relational helpers the builders in :mod:`repro.figures.builders` call.

:class:`RunHistory` sits one level up: it ingests a *directory* of run
manifests (committed baseline plus CI-archived fresh runs) into per-metric
time series keyed by git SHA and spec hash, which is what turns write-only
manifests into a comparable perf/correctness trajectory.
"""

from __future__ import annotations

import csv
import io
import json
import math
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

Cell = Union[int, float, str, bool, None]


def _type_name(value: Cell) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return "str"


#: Type-promotion lattice for mixed columns: ints and floats unify to
#: float; anything else mixed degrades to str.
_PROMOTE = {frozenset(("int", "float")): "float"}


def _format_cell(value: Cell) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # repr round-trips doubles exactly; NaN/inf spell as nan/inf/-inf,
        # which _parse_cell below maps straight back through float().
        return repr(value)
    return str(value)


def _parse_cell(text: str) -> Cell:
    if text == "":
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


class Table:
    """A minimal row-oriented table: ordered columns over dict rows.

    Rows are plain dicts; a missing key reads as ``None``.  Column types
    are inferred (``int`` | ``float`` | ``bool`` | ``str``, ints and floats
    unifying to ``float``), and :meth:`to_csv` / :meth:`from_csv`
    round-trip every cell bit-exactly, NaN and infinities included.
    """

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str], rows: Iterable[Mapping[str, Cell]] = ()) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns!r}")
        self.rows: List[Dict[str, Cell]] = [
            {name: row.get(name) for name in self.columns} for row in rows
        ]

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Cell]], columns: Optional[Sequence[str]] = None
    ) -> "Table":
        """Build a table from dicts; columns default to first-seen order."""
        records = list(records)
        if columns is None:
            seen: Dict[str, None] = {}
            for record in records:
                for name in record:
                    seen.setdefault(name)
            columns = tuple(seen)
        return cls(columns, records)

    # -- basics ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Cell]]:
        return iter(self.rows)

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} (have {', '.join(self.columns)})")
        return [row[name] for row in self.rows]

    def column_types(self) -> Dict[str, Optional[str]]:
        """Inferred type per column (None for all-missing columns)."""
        types: Dict[str, Optional[str]] = {}
        for name in self.columns:
            current: Optional[str] = None
            for row in self.rows:
                observed = _type_name(row[name])
                if observed is None:
                    continue
                if current is None or current == observed:
                    current = observed
                else:
                    current = _PROMOTE.get(frozenset((current, observed)), "str")
            types[name] = current
        return types

    # -- relational helpers ----------------------------------------------------

    def select(self, *columns: str) -> "Table":
        """A table restricted to ``columns`` (order as given)."""
        missing = [name for name in columns if name not in self.columns]
        if missing:
            raise KeyError(f"no column(s) {', '.join(missing)}")
        return Table(columns, self.rows)

    def where(self, predicate: Callable[[Mapping[str, Cell]], bool]) -> "Table":
        """Rows for which ``predicate(row)`` is true."""
        return Table(self.columns, [row for row in self.rows if predicate(row)])

    def sort_by(self, *columns: str, reverse: bool = False) -> "Table":
        """Rows sorted by the given columns (None sorts first; stable)."""

        def key(row: Mapping[str, Cell]) -> tuple:
            parts = []
            for name in columns:
                value = row.get(name)
                # Tag by presence and type so None/str/number mixes compare.
                if value is None:
                    parts.append((0, ""))
                elif isinstance(value, (bool, int, float)):
                    parts.append((1, float(value)))
                else:
                    parts.append((2, str(value)))
            return tuple(parts)

        return Table(self.columns, sorted(self.rows, key=key, reverse=reverse))

    def group_by(self, *keys: str) -> Dict[Tuple[Cell, ...], "Table"]:
        """Partition rows by key tuple, insertion-ordered."""
        groups: Dict[Tuple[Cell, ...], List[Dict[str, Cell]]] = {}
        for row in self.rows:
            groups.setdefault(tuple(row.get(name) for name in keys), []).append(row)
        return {key: Table(self.columns, rows) for key, rows in groups.items()}

    def pivot(self, index: str, column: str, value: str) -> "Table":
        """A wide table: one row per ``index`` value, one column per
        distinct ``column`` value, cells from ``value``.

        Later duplicates of an (index, column) pair win, matching a plain
        dict update; absent pairs read as ``None``.
        """
        index_order: Dict[Cell, Dict[str, Cell]] = {}
        new_columns: Dict[str, None] = {}
        for row in self.rows:
            wide = index_order.setdefault(row.get(index), {index: row.get(index)})
            name = str(row.get(column))
            new_columns.setdefault(name)
            wide[name] = row.get(value)
        return Table((index, *new_columns), list(index_order.values()))

    # -- CSV -------------------------------------------------------------------

    def to_csv(self) -> str:
        """Deterministic CSV: header row plus one line per row.

        Floats render via ``repr`` so every double (NaN/inf included)
        parses back bit-exact; ``None`` renders as the empty cell.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([_format_cell(row[name]) for name in self.columns])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Table":
        """Parse :meth:`to_csv` output back into a typed table."""
        reader = csv.reader(io.StringIO(text))
        try:
            columns = next(reader)
        except StopIteration:
            return cls(())
        rows = [
            {name: _parse_cell(cell) for name, cell in zip(columns, line)} for line in reader
        ]
        return cls(tuple(columns), rows)


# ---------------------------------------------------------------------------
# Loaders: manifests, telemetry snapshots, bench payloads
# ---------------------------------------------------------------------------


def manifest_table(manifest) -> Table:
    """Flatten a :class:`RunManifest` into long form: one row per metric.

    Columns: ``scenario, kind, status, metric, value, tolerance``.
    Scenarios that errored contribute one row with ``metric=None`` so the
    failure stays visible in the flattened view instead of vanishing.
    """
    rows: List[Dict[str, Cell]] = []
    for result in manifest.scenarios:
        if not result.metrics:
            rows.append(
                {
                    "scenario": result.name,
                    "kind": result.kind,
                    "status": result.status,
                    "metric": None,
                    "value": None,
                    "tolerance": None,
                }
            )
            continue
        for metric in sorted(result.metrics):
            value = result.metrics[metric]
            rows.append(
                {
                    "scenario": result.name,
                    "kind": result.kind,
                    "status": result.status,
                    "metric": metric,
                    "value": value if isinstance(value, (int, float, str, bool)) else None,
                    "tolerance": result.tolerances.get(metric),
                }
            )
    return Table(("scenario", "kind", "status", "metric", "value", "tolerance"), rows)


def scenario_table(manifest) -> Table:
    """Flatten a :class:`RunManifest` wide: one row per scenario.

    Metric columns are the union over scenarios, in sorted order, after
    the identity columns; a scenario missing a metric reads as ``None``.
    """
    metric_names: Dict[str, None] = {}
    for result in manifest.scenarios:
        for metric in sorted(result.metrics):
            metric_names.setdefault(metric)
    rows = [
        {
            "scenario": result.name,
            "kind": result.kind,
            "status": result.status,
            **{
                metric: value
                for metric, value in result.metrics.items()
                if isinstance(value, (int, float, str, bool)) or value is None
            },
        }
        for result in manifest.scenarios
    ]
    return Table(("scenario", "kind", "status", *sorted(metric_names)), rows)


def _flatten_spans(
    nodes: Mapping, prefix: str, rows: List[Dict[str, Cell]]
) -> None:
    for name in sorted(nodes):
        node = nodes[name]
        path = f"{prefix}/{name}" if prefix else name
        row: Dict[str, Cell] = {
            "span": path,
            "count": node.get("count"),
            "total_ms": node.get("total_ms"),
            "mean_ms": node.get("mean_ms"),
            "p95_ms": node.get("p95_ms"),
        }
        for counter, value in sorted((node.get("counters") or {}).items()):
            rows.append({**row, "counter": counter, "counter_value": value})
        if not node.get("counters"):
            rows.append({**row, "counter": None, "counter_value": None})
        _flatten_spans(node.get("children") or {}, path, rows)


def telemetry_table(snapshot: Mapping) -> Table:
    """Flatten a telemetry snapshot into long form.

    One row per counter/gauge (``section`` = ``counter`` | ``gauge``), one
    row per histogram percentile (``p50``/``p95``/``p99``), and one row per
    (span path, span counter) pair with the span's wall-time aggregates.
    """
    from repro.telemetry.histogram import StreamingHistogram

    rows: List[Dict[str, Cell]] = []
    for section in ("counters", "gauges"):
        kind = section[:-1]
        for name, value in sorted((snapshot.get(section) or {}).items()):
            rows.append({"section": kind, "name": name, "value": value})
    for name, entry in sorted((snapshot.get("histograms") or {}).items()):
        histogram = StreamingHistogram.from_dict(entry)
        rows.append(
            {
                "section": "histogram",
                "name": name,
                "value": histogram.count,
                "p50": histogram.quantile(0.50) if histogram.count else None,
                "p95": histogram.quantile(0.95) if histogram.count else None,
                "p99": histogram.quantile(0.99) if histogram.count else None,
            }
        )
    span_rows: List[Dict[str, Cell]] = []
    _flatten_spans(snapshot.get("spans") or {}, "", span_rows)
    for row in span_rows:
        rows.append({"section": "span", "name": row["span"], "value": row["count"], **row})
    columns = (
        "section",
        "name",
        "value",
        "p50",
        "p95",
        "p99",
        "span",
        "count",
        "total_ms",
        "mean_ms",
        "p95_ms",
        "counter",
        "counter_value",
    )
    return Table(columns, rows)


def bench_table(payload: Mapping, source: Optional[str] = None) -> Table:
    """Flatten a ``repro bench --json`` payload into long form.

    One row per (case, numeric metric), keyed by the payload's git SHA so
    several baselines concatenate into a trajectory.
    """
    from repro.experiments.regression import _bench_cases

    rows: List[Dict[str, Cell]] = []
    sha = payload.get("git_sha")
    for case_name, case in _bench_cases(payload).items():
        for metric in sorted(case):
            value = case[metric]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            rows.append(
                {
                    "source": source,
                    "git_sha": (sha or "")[:12] or None,
                    "case": case_name,
                    "metric": metric,
                    "value": value,
                }
            )
    return Table(("source", "git_sha", "case", "metric", "value"), rows)


# ---------------------------------------------------------------------------
# Run history
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HistoryPoint:
    """One run's value of one scenario metric."""

    run: str
    git_sha: Optional[str]
    spec_hash: str
    status: str
    value: Optional[float]


@dataclass
class RunHistory:
    """A directory of run manifests indexed into per-metric time series.

    Manifests are ordered by file name (CI artifact names sort by run
    number, the committed baseline sorts first by convention); each series
    point is keyed by the manifest's git SHA and spec hash, so a metric
    jump is attributable to a commit and a spec-hash change marks the
    point where the suite itself moved.
    """

    runs: List[Tuple[str, object]] = field(default_factory=list)  # (label, RunManifest)

    @classmethod
    def load(cls, directory: Union[str, Path], pattern: str = "*.json") -> "RunHistory":
        """Ingest every loadable manifest under ``directory``.

        Files that are not run manifests (unreadable JSON, wrong schema)
        are skipped with a warning — a manifest directory routinely holds
        sibling artifacts — and a missing/empty directory yields an empty
        history rather than an error.
        """
        from repro.exceptions import ReproError
        from repro.experiments.runner import RunManifest

        directory = Path(directory)
        history = cls()
        if not directory.is_dir():
            return history
        for path in sorted(directory.glob(pattern)):
            try:
                manifest = RunManifest.load(path)
            except (ReproError, ValueError, KeyError, TypeError) as exc:
                warnings.warn(f"run history: skipping {path.name}: {exc}", stacklevel=2)
                continue
            history.runs.append((path.stem, manifest))
        return history

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def metrics(self) -> List[Tuple[str, str]]:
        """Every (scenario, metric) pair recorded by any run, sorted."""
        pairs = set()
        for _, manifest in self.runs:
            for result in manifest.scenarios:
                for metric in result.metrics:
                    pairs.add((result.name, metric))
        return sorted(pairs)

    def series(self, scenario: str, metric: str) -> List[HistoryPoint]:
        """The metric's trajectory across runs, in run order.

        Runs that did not record the scenario are skipped; runs whose
        scenario errored (or recorded no numeric value) contribute a point
        with ``value=None`` so gaps stay distinguishable from zeros.
        """
        points: List[HistoryPoint] = []
        for label, manifest in self.runs:
            result = manifest.result_for(scenario)
            if result is None:
                continue
            raw = result.metrics.get(metric)
            numeric = (
                float(raw)
                if isinstance(raw, (int, float)) and not isinstance(raw, bool)
                else None
            )
            points.append(
                HistoryPoint(
                    run=label,
                    git_sha=manifest.git_sha,
                    spec_hash=manifest.spec_hash,
                    status=result.status,
                    value=numeric,
                )
            )
        return points

    def deltas(self, scenario: str, metric: str) -> List[float]:
        """Consecutive differences of the numeric series (empty when the
        history holds fewer than two numeric points)."""
        values = [p.value for p in self.series(scenario, metric) if p.value is not None]
        return [b - a for a, b in zip(values, values[1:])]

    def table(self) -> Table:
        """The whole history flattened long: one row per run x metric."""
        rows: List[Dict[str, Cell]] = []
        for label, manifest in self.runs:
            for result in manifest.scenarios:
                for metric in sorted(result.metrics):
                    value = result.metrics[metric]
                    rows.append(
                        {
                            "run": label,
                            "git_sha": (manifest.git_sha or "")[:12] or None,
                            "spec_hash": manifest.spec_hash[:12],
                            "scenario": result.name,
                            "status": result.status,
                            "metric": metric,
                            "value": value
                            if isinstance(value, (int, float)) and not isinstance(value, bool)
                            else None,
                        }
                    )
        return Table(
            ("run", "git_sha", "spec_hash", "scenario", "status", "metric", "value"), rows
        )


def load_manifest(path: Union[str, Path]):
    """Load one manifest (thin alias so figure code has one import site)."""
    from repro.experiments.runner import RunManifest

    return RunManifest.load(path)


def load_bench(path: Union[str, Path]) -> dict:
    """Load one ``BENCH_*.json`` payload."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def nan_safe_equal(a: Cell, b: Cell) -> bool:
    """Cell equality where NaN == NaN (CSV round-trip assertions)."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b
