"""repro.figures: run-history analytics, figure registry, telemetry diffing.

Three layers over the repo's persisted artifacts:

* :mod:`repro.figures.tabular` — a stdlib-only row-oriented :class:`Table`
  plus loaders flattening run manifests, telemetry snapshots and
  ``BENCH_*.json`` payloads, and a :class:`RunHistory` index turning a
  directory of manifests into per-metric time series.
* :mod:`repro.figures.registry` / :mod:`repro.figures.builders` — the
  :data:`FIGURES` registry: every paper figure/table/ablation and every
  subsystem dashboard as a named builder emitting a byte-stable text
  render, a CSV data sidecar and a Vega-Lite spec.  ``repro figures
  check`` re-renders the committed ``results/*.txt`` artifacts through
  the registry and fails on drift.
* :mod:`repro.figures.diffs` — structural diffing of two telemetry
  snapshots (span-tree alignment, counter deltas, histogram percentile
  shifts), surfaced as ``repro profile --diff A B``.
"""

from repro.figures.diffs import (
    HistogramDelta,
    SnapshotDiff,
    SpanDelta,
    ValueDelta,
    diff_snapshot_files,
    diff_snapshots,
)
from repro.figures.registry import (
    FIGURES,
    BuiltFigure,
    CheckResult,
    FigureInputs,
    FigureSpec,
    build_all,
    build_figure,
    check_figures,
    figure_names,
    register,
)
from repro.figures.tabular import (
    HistoryPoint,
    RunHistory,
    Table,
    bench_table,
    load_bench,
    load_manifest,
    manifest_table,
    scenario_table,
    telemetry_table,
)
from repro.figures import builders as _builders  # noqa: F401  (populates FIGURES)

__all__ = [
    "FIGURES",
    "BuiltFigure",
    "CheckResult",
    "FigureInputs",
    "FigureSpec",
    "HistogramDelta",
    "HistoryPoint",
    "RunHistory",
    "SnapshotDiff",
    "SpanDelta",
    "Table",
    "ValueDelta",
    "bench_table",
    "build_all",
    "build_figure",
    "check_figures",
    "diff_snapshot_files",
    "diff_snapshots",
    "figure_names",
    "load_bench",
    "load_manifest",
    "manifest_table",
    "register",
    "scenario_table",
    "telemetry_table",
]
