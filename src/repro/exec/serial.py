"""The serial backend: the reference semantics every pool must match."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.exec.backend import DEFAULT_RETRY_POLICY, ExecutionBackend, RetryPolicy


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — no pool, no recovery machinery.

    This is the backend the others are measured against: the conformance
    suite requires every pooled backend to produce results and merged
    telemetry bit-identical to this one.  ``timeout_s`` is validated but
    not enforced (there is no preemption in-process), and chaos hooks are
    never consulted (they are worker-side by contract).
    """

    name = "serial"

    def map_tasks(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        max_workers: int,
        timeout_s: Optional[float] = None,
        label: str = "exec",
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> list:
        self._resolve_limits(max_workers, timeout_s)
        registry = telemetry.get()
        registry.add(f"{label}.tasks", len(payloads))
        if not payloads:
            return []
        return self._run_serial(fn, payloads)
