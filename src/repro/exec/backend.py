"""The :class:`ExecutionBackend` contract and its shared machinery.

Every backend maps a module-level function over a payload sequence and
returns ``[fn(p) for p in payloads]`` — results in payload (index) order,
regardless of completion order, worker crashes, or timeouts.  The serial
path is the *reference semantics*: a pooled backend that loses a worker
re-runs only the failed tasks serially, so every recovery path produces a
result bit-identical to an all-serial run.

Degradations are counted in telemetry under the caller's label:
``<label>.tasks``, ``<label>.retry.broken_pool`` / ``.timeout`` /
``.error``, ``<label>.serial_reruns`` and ``<label>.fallback.unpicklable``.
The counter names are part of the backend contract — the conformance suite
holds every backend to identical merged counters (modulo wall time) on a
clean run.

For tests and chaos drills the pooled backends honour environment hooks,
read *inside pool workers only* (serial execution never consults them, so
a retried task cannot crash twice):

- ``REPRO_CHAOS_KILL_TASK`` — comma-separated task indices whose worker
  dies (``os._exit(1)`` in a process worker — a real SIGCHLD-visible
  crash; a deliberate :class:`ChaosKilledTask` in a thread worker, where
  ``os._exit`` would take the whole interpreter down);
- ``REPRO_CHAOS_HANG_TASK`` — comma-separated task indices that sleep for
  ``REPRO_CHAOS_HANG_S`` seconds (default 3600) before running, to
  exercise the per-task timeout.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.exceptions import ConfigurationError

#: Environment variable naming the per-task timeout (seconds) when the
#: caller does not pass one explicitly.
EXEC_TIMEOUT_ENV = "REPRO_EXEC_TIMEOUT_S"

#: Chaos hooks (see module docstring).
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_TASK"
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG_S"
CHAOS_HANG_TASK_ENV = "REPRO_CHAOS_HANG_TASK"


class ChaosKilledTask(RuntimeError):
    """Raised by a *thread* worker whose task index is chaos-killed.

    The thread analogue of a worker process dying with ``os._exit(1)``:
    the task's result is lost, the pool survives, and the hardened
    collection loop re-runs the task serially (where chaos hooks are
    never consulted).
    """


def _chaos_indices(env_name: str) -> Tuple[int, ...]:
    raw = os.environ.get(env_name, "")
    indices = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if chunk:
            try:
                indices.append(int(chunk))
            except ValueError:
                continue
    return tuple(indices)


def chaos_hang(index: int) -> None:
    """Sleep if the hang hook is armed for this task index (workers only)."""
    if index in _chaos_indices(CHAOS_HANG_TASK_ENV):
        time.sleep(float(os.environ.get(CHAOS_HANG_ENV, "3600")))


def default_timeout_s() -> Optional[float]:
    """Per-task timeout from :data:`EXEC_TIMEOUT_ENV` (None = no timeout)."""
    raw = os.environ.get(EXEC_TIMEOUT_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{EXEC_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ConfigurationError(
            f"{EXEC_TIMEOUT_ENV} must be positive, got {value}"
        )
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """What a backend does with tasks the pool failed to complete.

    Attributes:
        serial_rerun: re-execute failed tasks serially, in payload order
            (the default, and the only mode whose results are guaranteed
            bit-identical to an all-serial run).  With ``serial_rerun``
            off the first pool failure is re-raised to the caller instead
            of being repaired.
    """

    serial_rerun: bool = True


#: The default policy: salvage completed tasks, re-run failures serially.
DEFAULT_RETRY_POLICY = RetryPolicy()


class ExecutionBackend:
    """Maps module-level functions over payloads with deterministic merge.

    Subclasses implement :meth:`map_tasks`; :meth:`submit` is the
    single-task convenience built on top of it.  The contract every
    implementation (including future distributed ones) must honour is
    pinned by the conformance suite in
    ``tests/unit/test_exec_backends.py``:

    * results come back in payload order: ``[fn(p) for p in payloads]``;
    * ``fn`` must be a picklable module-level function of one payload
      (REP003 lints call sites for this);
    * a task the pool loses (crash, hang past ``timeout_s``, exception)
      is re-run serially under the default :class:`RetryPolicy`, so the
      merged result is bit-identical to a serial run;
    * telemetry counters under ``label`` use the shared names listed in
      the module docstring.
    """

    #: Registry key (``"serial"``, ``"process"``, ``"thread"``).
    name: str = ""

    def map_tasks(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        max_workers: int,
        timeout_s: Optional[float] = None,
        label: str = "exec",
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> list:
        """Run ``fn`` over ``payloads``; results in payload order.

        Args:
            fn: a picklable module-level function of one payload.
            payloads: the task payloads; results come back in the same
                order.
            max_workers: pool size (>= 1; 1 runs everything serially).
            timeout_s: per-task wall-clock timeout; defaults to
                :data:`EXEC_TIMEOUT_ENV` when unset, and no timeout when
                that is unset too.
            label: telemetry counter prefix for this seam.
            retry: what to do with tasks the pool failed to complete.
        """
        raise NotImplementedError

    def submit(self, fn: Callable, payload, *, label: str = "exec"):
        """Run a single task through the backend; returns ``fn(payload)``."""
        return self.map_tasks(fn, [payload], max_workers=1, label=label)[0]

    # -- shared plumbing ----------------------------------------------------

    @staticmethod
    def _resolve_limits(
        max_workers: int, timeout_s: Optional[float]
    ) -> Optional[float]:
        """Validate ``max_workers``/``timeout_s``; returns the timeout."""
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if timeout_s is None:
            timeout_s = default_timeout_s()
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {timeout_s}"
            )
        return timeout_s

    @staticmethod
    def _run_serial(fn: Callable, payloads: Sequence) -> List:
        """The reference path: plain in-order, in-process execution."""
        return [fn(payload) for payload in payloads]
