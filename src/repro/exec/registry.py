"""Backend registry and name-based resolution (env-overridable)."""

from __future__ import annotations

import os
from typing import Dict, Tuple, Type, Union

from repro.exceptions import ConfigurationError
from repro.exec.backend import ExecutionBackend
from repro.exec.pools import ProcessPoolBackend, ThreadPoolBackend
from repro.exec.serial import SerialBackend

#: Environment variable naming the backend when the caller passes none.
EXEC_BACKEND_ENV = "REPRO_EXEC_BACKEND"

#: The backend used when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "process"

#: Registered backend classes keyed by name.  A future distributed
#: backend plugs in here as one more entry — call sites resolve by name
#: and never construct executors directly.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "thread": ThreadPoolBackend,
}


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted (for CLI choices and errors)."""
    return tuple(sorted(BACKENDS))


def resolve_backend(
    name: Union[str, ExecutionBackend, None] = None,
) -> ExecutionBackend:
    """An :class:`ExecutionBackend` instance for ``name``.

    Resolution order: an explicit ``name`` (an already-built backend
    instance passes through untouched, so tests can inject pool
    factories), then the :data:`EXEC_BACKEND_ENV` environment variable,
    then :data:`DEFAULT_BACKEND`.

    Raises:
        ConfigurationError: ``name`` (or the env override) is not a
            registered backend.
    """
    if isinstance(name, ExecutionBackend):
        return name
    if name is None:
        name = os.environ.get(EXEC_BACKEND_ENV, "").strip() or DEFAULT_BACKEND
    key = name.strip().lower()
    if key not in BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{', '.join(backend_names())} (callers may also set "
            f"{EXEC_BACKEND_ENV})"
        )
    return BACKENDS[key]()
