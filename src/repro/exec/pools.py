"""Pooled backends: hardened process and thread fan-out with salvage.

Both backends share one collection loop (:class:`_PoolBackend`) carrying
the per-task recovery discipline that used to live in
``repro.faults.execution.run_hardened``: completed futures keep their
results, and only the tasks that crashed, hung past the per-task timeout,
or raised are re-executed serially, in payload order.  Because the serial
path *is* the reference path (the same function on the same payload), a
partially-recovered run is bit-identical to an all-serial run.

The backends differ only in the executor they drive and in what "worker
death" means there:

* :class:`ProcessPoolBackend` — ``ProcessPoolExecutor``; payloads must
  pickle (probed up front, with a counted in-process fallback when they
  do not), a dead worker surfaces as ``BrokenProcessPool``, and a wedged
  worker is terminated with the pool.
* :class:`ThreadPoolBackend` — ``ThreadPoolExecutor`` for I/O-shaped
  work; nothing needs to pickle, workers share the interpreter (chaos
  "kill" raises :class:`~repro.exec.backend.ChaosKilledTask` instead of
  exiting), and a task that outlives ``timeout_s`` is abandoned — its
  thread cannot be terminated, so arm hang drills with a short
  ``REPRO_CHAOS_HANG_S``.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

from repro import telemetry
from repro.exec.backend import (
    CHAOS_KILL_ENV,
    DEFAULT_RETRY_POLICY,
    ChaosKilledTask,
    ExecutionBackend,
    RetryPolicy,
    _chaos_indices,
    chaos_hang,
)

_UNPICKLABLE_ERRORS = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    OSError,
    ImportError,
)


def _process_task(args: tuple):
    """Process-worker wrapper: apply chaos hooks, then run the real task."""
    fn, index, payload = args
    if index in _chaos_indices(CHAOS_KILL_ENV):
        os._exit(1)
    chaos_hang(index)
    return fn(payload)


def _thread_task(args: tuple):
    """Thread-worker wrapper: chaos "death" raises instead of exiting."""
    fn, index, payload = args
    if index in _chaos_indices(CHAOS_KILL_ENV):
        raise ChaosKilledTask(f"chaos hook killed thread task {index}")
    chaos_hang(index)
    return fn(payload)


class _PoolBackend(ExecutionBackend):
    """Shared hardened collection loop over an injectable executor."""

    #: Probe payload picklability before opening the pool.
    _pickle_probe = False
    #: Exception classes meaning "the pool itself died under this future".
    _broken_pool_errors: tuple = ()

    def __init__(
        self, pool_factory: Optional[Callable[[int], object]] = None
    ):
        """``pool_factory`` overrides the executor constructor (tests)."""
        self._pool_factory = pool_factory

    # -- per-executor hooks -------------------------------------------------

    def _default_pool_factory(self) -> Callable[[int], object]:
        raise NotImplementedError

    def _worker_entry(self) -> Callable:
        """The module-level wrapper submitted for every task."""
        raise NotImplementedError

    def _terminate(self, pool) -> None:
        """Best-effort hard stop of a pool whose workers may be wedged."""
        raise NotImplementedError

    # -- the hardened loop --------------------------------------------------

    def map_tasks(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        max_workers: int,
        timeout_s: Optional[float] = None,
        label: str = "exec",
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> list:
        timeout_s = self._resolve_limits(max_workers, timeout_s)
        registry = telemetry.get()
        n_tasks = len(payloads)
        registry.add(f"{label}.tasks", n_tasks)
        if n_tasks == 0:
            return []
        if max_workers == 1 or n_tasks == 1:
            return self._run_serial(fn, payloads)

        if self._pickle_probe:
            try:
                pickle.dumps(list(payloads))
            except _UNPICKLABLE_ERRORS:
                registry.add(f"{label}.fallback.unpicklable")
                return self._run_serial(fn, payloads)

        pool_factory = self._pool_factory or self._default_pool_factory()
        entry = self._worker_entry()
        results: List = [None] * n_tasks
        failed: List[int] = []
        first_error: Optional[BaseException] = None
        pool = pool_factory(min(max_workers, n_tasks))
        pool_dead = False
        try:
            try:
                futures = [
                    pool.submit(entry, (fn, index, payload))
                    for index, payload in enumerate(payloads)
                ]
            except _UNPICKLABLE_ERRORS:
                if not self._pickle_probe:
                    raise
                registry.add(f"{label}.fallback.unpicklable")
                return self._run_serial(fn, payloads)
            for index, future in enumerate(futures):
                if pool_dead:
                    if future.done() and not future.cancelled():
                        try:
                            results[index] = future.result()
                            continue
                        except BaseException:
                            pass
                    failed.append(index)
                    continue
                try:
                    results[index] = future.result(timeout=timeout_s)
                except concurrent.futures.TimeoutError as exc:
                    registry.add(f"{label}.retry.timeout")
                    failed.append(index)
                    first_error = first_error or exc
                    # A wedged worker can starve every queued task; stop
                    # waiting, salvage whatever already finished, and hand
                    # the rest to the serial retry.
                    self._terminate(pool)
                    pool_dead = True
                except self._broken_pool_errors as exc:
                    registry.add(f"{label}.retry.broken_pool")
                    failed.append(index)
                    first_error = first_error or exc
                except concurrent.futures.CancelledError as exc:
                    failed.append(index)
                    first_error = first_error or exc
                except Exception as exc:
                    # A genuine task exception: retry serially so a
                    # deterministic failure surfaces with a direct
                    # traceback.
                    registry.add(f"{label}.retry.error")
                    failed.append(index)
                    first_error = first_error or exc
        finally:
            if not pool_dead:
                pool.shutdown(wait=True)

        if failed:
            if not retry.serial_rerun:
                raise first_error
            registry.add(f"{label}.serial_reruns", len(failed))
            with registry.span(f"{label}.serial_rerun", tasks=len(failed)):
                for index in failed:
                    results[index] = fn(payloads[index])
        return results


class ProcessPoolBackend(_PoolBackend):
    """Hardened ``ProcessPoolExecutor`` fan-out for CPU-bound tasks.

    Absorbs the pickle-probe in-process fallback, BrokenProcessPool and
    per-task-timeout salvage, and failed-task-only serial re-run that
    ``repro.faults.execution.run_hardened`` introduced (that function is
    now a thin shim over this class).
    """

    name = "process"
    _pickle_probe = True
    _broken_pool_errors = (BrokenProcessPool,)

    def _default_pool_factory(self) -> Callable[[int], object]:
        return ProcessPoolExecutor

    def _worker_entry(self) -> Callable:
        return _process_task

    def _terminate(self, pool) -> None:
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except (OSError, AttributeError, ValueError):
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - pre-3.9 signature safety net
            pool.shutdown(wait=False)


class ThreadPoolBackend(_PoolBackend):
    """``ThreadPoolExecutor`` fan-out for I/O-shaped work.

    Payloads never cross a process boundary, so nothing needs to pickle
    and per-worker telemetry capture relies on
    :func:`repro.telemetry.scoped` thread-local registries.  Salvage
    semantics match the process backend, with one honest difference: a
    timed-out task's thread cannot be terminated, only abandoned, so the
    pool is shut down without waiting and the stragglers' results are
    discarded when they eventually finish.
    """

    name = "thread"
    _pickle_probe = False
    _broken_pool_errors = (concurrent.futures.BrokenExecutor,)

    def _default_pool_factory(self) -> Callable[[int], object]:
        return ThreadPoolExecutor

    def _worker_entry(self) -> Callable:
        return _thread_task

    def _terminate(self, pool) -> None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - pre-3.9 signature safety net
            pool.shutdown(wait=False)
