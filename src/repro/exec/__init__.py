"""repro.exec — one pluggable execution backend for every pool.

The execution backbone shared by the cosim shard fan-out, the
``ExperimentRunner`` scenario pool, and the bench harness.  A backend
maps a module-level function over payloads and hands back results in
payload order with serial-reference semantics: whatever a pool loses to
crashes, hangs, or unpicklable payloads is repaired by re-running exactly
the failed tasks in-process, so every backend produces bit-identical
results (and, modulo wall time, bit-identical merged telemetry).

Three implementations ship today, selected by name through
:func:`resolve_backend` (explicit argument ▸ ``REPRO_EXEC_BACKEND`` ▸
``"process"``):

* ``"serial"`` — :class:`SerialBackend`, the in-process reference path;
* ``"process"`` — :class:`ProcessPoolBackend`, hardened
  ``ProcessPoolExecutor`` fan-out for CPU-bound work;
* ``"thread"`` — :class:`ThreadPoolBackend`, ``ThreadPoolExecutor``
  fan-out for I/O-shaped work (no pickling; telemetry capture via
  thread-local :func:`repro.telemetry.scoped` registries).

The conformance suite (``tests/unit/test_exec_backends.py``) pins the
contract every implementation — including future distributed ones — must
honour; ``docs/ARCHITECTURE.md`` documents the determinism and merge
guarantees in prose.
"""

from repro.exec.backend import (
    CHAOS_HANG_ENV,
    CHAOS_HANG_TASK_ENV,
    CHAOS_KILL_ENV,
    DEFAULT_RETRY_POLICY,
    EXEC_TIMEOUT_ENV,
    ChaosKilledTask,
    ExecutionBackend,
    RetryPolicy,
    default_timeout_s,
)
from repro.exec.pools import ProcessPoolBackend, ThreadPoolBackend
from repro.exec.registry import (
    BACKENDS,
    DEFAULT_BACKEND,
    EXEC_BACKEND_ENV,
    backend_names,
    resolve_backend,
)
from repro.exec.serial import SerialBackend

__all__ = [
    "BACKENDS",
    "CHAOS_HANG_ENV",
    "CHAOS_HANG_TASK_ENV",
    "CHAOS_KILL_ENV",
    "DEFAULT_BACKEND",
    "DEFAULT_RETRY_POLICY",
    "EXEC_BACKEND_ENV",
    "EXEC_TIMEOUT_ENV",
    "ChaosKilledTask",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "ThreadPoolBackend",
    "backend_names",
    "default_timeout_s",
    "resolve_backend",
]
