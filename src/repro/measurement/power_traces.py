"""Monsoon-style power trace generation for whole pipeline runs.

Given a sequence of (segment, latency, power) triples — typically produced by
the analytical model or the simulated testbed — this module renders the
sampled power trace the Monsoon monitor would have recorded, which the
examples use to visualise per-segment energy and which tests use to check
that integrating the trace recovers the per-segment energies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.devices.power_rail import PowerRail


@dataclass(frozen=True)
class SegmentDraw:
    """One pipeline segment's contribution to the power trace.

    Attributes:
        segment: segment name.
        latency_ms: segment latency.
        power_w: mean power drawn during the segment.
    """

    segment: str
    latency_ms: float
    power_w: float


@dataclass(frozen=True)
class PowerTrace:
    """A rendered power trace plus its per-segment energy summary.

    Attributes:
        times_ms: sample timestamps.
        power_w: sampled power values.
        segment_energy_mj: energy attributed to each segment by the rail.
    """

    times_ms: np.ndarray
    power_w: np.ndarray
    segment_energy_mj: Dict[str, float]

    @property
    def total_energy_mj(self) -> float:
        """Energy of the whole trace by trapezoidal integration."""
        if len(self.times_ms) < 2:
            return 0.0
        return float(np.trapezoid(self.power_w, self.times_ms))

    @property
    def duration_ms(self) -> float:
        """Trace duration."""
        if len(self.times_ms) == 0:
            return 0.0
        return float(self.times_ms[-1] - self.times_ms[0])

    @property
    def mean_power_w(self) -> float:
        """Mean sampled power."""
        if len(self.power_w) == 0:
            return 0.0
        return float(np.mean(self.power_w))


def render_power_trace(
    draws: Sequence[SegmentDraw],
    base_power_w: float = 0.0,
    sampling_period_ms: float = 0.2,
    noise_std_w: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> PowerTrace:
    """Render a sampled power trace for a sequence of pipeline segments.

    Args:
        draws: per-segment latency and power, in execution order.
        base_power_w: always-on power added to every segment's draw.
        sampling_period_ms: power-rail sampling period (Monsoon: 0.2 ms).
        noise_std_w: additive Gaussian measurement noise on the samples.
        rng: random generator for the noise.

    Returns:
        The rendered :class:`PowerTrace`.
    """
    rail = PowerRail(
        sampling_period_ms=sampling_period_ms,
        rng=rng if rng is not None else np.random.default_rng(0),
        noise_std_w=noise_std_w,
    )
    segment_energy: Dict[str, float] = {}
    for draw in draws:
        energy = rail.record_segment(
            draw.segment, draw.latency_ms, draw.power_w + base_power_w
        )
        segment_energy[draw.segment] = segment_energy.get(draw.segment, 0.0) + energy
    samples = rail.samples
    times = np.array([sample.time_ms for sample in samples], dtype=float)
    powers = np.array([sample.power_w for sample in samples], dtype=float)
    return PowerTrace(times_ms=times, power_w=powers, segment_energy_mj=segment_energy)
