"""Measurement substrate: synthetic campaign + regression fitting.

The paper fits four multiple-linear-regression models (compute resource,
mean power, encoding latency, CNN complexity) on a 119k-sample measurement
campaign collected with a Monsoon power monitor on the Table I devices, and
evaluates them on a 36k-sample held-out set (train on XR1/XR3/XR5/XR6, test
on XR2/XR4/XR7).

We do not have the physical testbed, so this package substitutes it:

* :mod:`repro.measurement.truth` — the *hidden* device response surfaces of
  the simulated testbed (how much compute a clock setting really provides,
  how much power it really draws, how long encoding really takes).  Both the
  synthetic campaign and the simulated ground-truth testbed draw from these
  surfaces, exactly like the paper's regressions and ground truth both come
  from the same physical devices.
* :mod:`repro.measurement.synthetic` — the synthetic measurement campaign
  generator (sample device/clock/encoder/CNN operating points, evaluate the
  truth surfaces, add heteroscedastic measurement noise).
* :mod:`repro.measurement.regression` — ordinary-least-squares multiple
  linear regression with R^2 reporting, used to re-fit the paper's Eq. (3),
  (10), (12) and (21) forms from the campaign.
* :mod:`repro.measurement.datasets` — dataset containers and the
  train/test device split.
* :mod:`repro.measurement.power_traces` — Monsoon-style sampled power trace
  generation for whole pipeline runs.
"""

from repro.measurement.datasets import MeasurementDataset, MeasurementSample, split_by_device
from repro.measurement.regression import LinearRegression, RegressionResult
from repro.measurement.synthetic import CampaignConfig, SyntheticCampaign
from repro.measurement.truth import SEGMENT_POWER_FACTORS, TestbedTruth

__all__ = [
    "CampaignConfig",
    "LinearRegression",
    "MeasurementDataset",
    "MeasurementSample",
    "RegressionResult",
    "SEGMENT_POWER_FACTORS",
    "SyntheticCampaign",
    "TestbedTruth",
    "split_by_device",
]
