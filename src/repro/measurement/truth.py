"""Hidden response surfaces of the simulated testbed.

These functions answer "what would the physical devices actually do" for the
quantities the paper measures and then models with regressions:

* how much effective compute capability a (CPU clock, GPU clock, CPU share)
  operating point provides (the paper's ``c_client``, Eq. 3),
* how much mean power that operating point draws (Eq. 21),
* how long H.264 encoding takes for a given encoder configuration (Eq. 10),
* how complex a CNN model effectively is (Eq. 12).

Both the synthetic measurement campaign (which re-fits the paper's regression
forms) and the simulated ground-truth testbed (which the analytical models
are validated against) evaluate the *same* surfaces — mirroring the paper,
where the regressions and the ground truth both come from the same physical
devices.  The surfaces are intentionally simple, physically-monotone
functions (capability grows with clock, power grows super-linearly with
clock); they are **not** the paper's regression polynomials, so fitting those
polynomials to this truth is a genuine regression exercise with non-trivial
residuals.

The absolute scale is chosen so that the end-to-end latency and energy of the
default object-detection pipeline land in the ranges reported by the paper's
figures (hundreds of milliseconds, 600-1800 mJ per frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.exceptions import ModelDomainError

#: Relative power draw of each pipeline segment with respect to the mean
#: computation power ``P_mean``.  Encoding leans on the hardware codec (cheap),
#: inference leans on the GPU/NPU (expensive), transmission and handoff use the
#: radio instead of the compute complex.
SEGMENT_POWER_FACTORS: Dict[str, float] = {
    "frame_generation": 0.85,
    "volumetric": 1.00,
    "external": 0.20,
    "conversion": 0.90,
    "encoding": 0.50,
    "local_inference": 1.25,
    "remote_inference": 0.15,
    "transmission": 0.40,
    "handoff": 0.40,
    "rendering": 1.10,
    "cooperation": 0.40,
}

#: Per-device multiplicative factors (compute capability, power draw) capturing
#: the heterogeneity of the Table I devices around the nominal surfaces.
DEVICE_FACTORS: Dict[str, tuple[float, float]] = {
    "XR1": (1.06, 0.97),
    "XR2": (1.03, 1.00),
    "XR3": (0.94, 1.05),
    "XR4": (0.95, 1.03),
    "XR5": (0.97, 0.96),
    "XR6": (1.01, 1.04),
    "XR7": (0.98, 1.06),
}


@dataclass(frozen=True)
class TestbedTruth:
    """The simulated testbed's ground-truth response surfaces.

    (The ``Testbed`` prefix refers to the simulated testbed, not to pytest;
    ``__test__`` is set so test collectors skip it.)

    Attributes:
        cpu_capability_intercept / cpu_capability_slope: effective compute
            capability contributed by the CPU complex as an affine function of
            the CPU clock (GHz).
        gpu_capability_intercept / gpu_capability_slope: same for the GPU.
        cpu_power_coeffs: (intercept, linear, quadratic) of the CPU power (W)
            in the CPU clock.
        gpu_power_coeffs: (intercept, linear, quadratic) of the GPU power (W)
            in the GPU clock.
        encoding_coeffs: coefficients of the encoding-latency numerator in
            (1, n_i, n_b, bitrate, frame_side, fps, quantization); the
            numerator divided by the compute capability gives milliseconds.
        cnn_complexity_coeffs: (intercept, depth, size_mb, depth_scale) of the
            effective CNN complexity.
        decode_discount: fraction of the encoding latency a decode takes on
            the same device (the paper's ``gamma``, ~1/3).
        edge_compute_scale: ratio of edge to client allocated compute
            (the paper measures 11.76).
        device_factors: per-device (compute, power) multiplicative factors.
    """

    #: Tell pytest this is not a test class despite the ``Test`` prefix.
    __test__ = False

    cpu_capability_intercept: float = 1.6
    cpu_capability_slope: float = 0.8
    gpu_capability_intercept: float = 1.0
    gpu_capability_slope: float = 2.5
    cpu_power_coeffs: tuple[float, float, float] = (0.33, 0.22, 0.10)
    gpu_power_coeffs: tuple[float, float, float] = (0.66, 1.21, 0.0)
    encoding_coeffs: tuple[float, float, float, float, float, float, float] = (
        -150.0,
        -1.35,
        24.8,
        9.4,
        0.82,
        12.0,
        0.64,
    )
    cnn_complexity_coeffs: tuple[float, float, float, float] = (2.45, 0.0025, 0.03, 0.0029)
    decode_discount: float = 1.0 / 3.0
    edge_compute_scale: float = 11.76
    device_factors: Mapping[str, tuple[float, float]] = field(
        default_factory=lambda: dict(DEVICE_FACTORS)
    )

    # -- helpers -----------------------------------------------------------------

    def _factors(self, device_name: str | None) -> tuple[float, float]:
        if device_name is None:
            return (1.0, 1.0)
        return self.device_factors.get(device_name, (1.0, 1.0))

    # -- compute capability (the paper's c_client) --------------------------------

    def compute_capability(
        self,
        cpu_freq_ghz: float,
        gpu_freq_ghz: float,
        cpu_share: float,
        device_name: str | None = None,
    ) -> float:
        """Effective compute capability of an operating point.

        The unit is "swept frame-size units per millisecond": dividing a
        frame-size-like task measure by this capability yields milliseconds,
        exactly how the paper uses ``c_client``.
        """
        if cpu_freq_ghz <= 0.0 or gpu_freq_ghz <= 0.0:
            raise ModelDomainError(
                "clock frequencies must be > 0 GHz, got "
                f"cpu={cpu_freq_ghz}, gpu={gpu_freq_ghz}"
            )
        if not 0.0 <= cpu_share <= 1.0:
            raise ModelDomainError(f"cpu share must be in [0, 1], got {cpu_share}")
        compute_factor, _ = self._factors(device_name)
        cpu = self.cpu_capability_intercept + self.cpu_capability_slope * cpu_freq_ghz
        gpu = self.gpu_capability_intercept + self.gpu_capability_slope * gpu_freq_ghz
        return compute_factor * (cpu_share * cpu + (1.0 - cpu_share) * gpu)

    def edge_compute_capability(self, client_capability: float) -> float:
        """Edge compute capability corresponding to a client capability."""
        if client_capability <= 0.0:
            raise ModelDomainError(
                f"client capability must be > 0, got {client_capability}"
            )
        return self.edge_compute_scale * client_capability

    # -- power (the paper's P_mean) -------------------------------------------------

    def mean_power_w(
        self,
        cpu_freq_ghz: float,
        gpu_freq_ghz: float,
        cpu_share: float,
        device_name: str | None = None,
    ) -> float:
        """Mean computation power (W) of an operating point."""
        if cpu_freq_ghz <= 0.0 or gpu_freq_ghz <= 0.0:
            raise ModelDomainError(
                "clock frequencies must be > 0 GHz, got "
                f"cpu={cpu_freq_ghz}, gpu={gpu_freq_ghz}"
            )
        if not 0.0 <= cpu_share <= 1.0:
            raise ModelDomainError(f"cpu share must be in [0, 1], got {cpu_share}")
        _, power_factor = self._factors(device_name)
        a0, a1, a2 = self.cpu_power_coeffs
        b0, b1, b2 = self.gpu_power_coeffs
        cpu = a0 + a1 * cpu_freq_ghz + a2 * cpu_freq_ghz**2
        gpu = b0 + b1 * gpu_freq_ghz + b2 * gpu_freq_ghz**2
        return power_factor * (cpu_share * cpu + (1.0 - cpu_share) * gpu)

    def segment_power_w(
        self,
        segment: str,
        cpu_freq_ghz: float,
        gpu_freq_ghz: float,
        cpu_share: float,
        device_name: str | None = None,
    ) -> float:
        """Power drawn while executing one named pipeline segment."""
        try:
            factor = SEGMENT_POWER_FACTORS[segment]
        except KeyError as error:
            raise ModelDomainError(
                f"unknown segment {segment!r}; known: {sorted(SEGMENT_POWER_FACTORS)}"
            ) from error
        return factor * self.mean_power_w(
            cpu_freq_ghz, gpu_freq_ghz, cpu_share, device_name=device_name
        )

    # -- encoding -----------------------------------------------------------------

    def encoding_numerator(
        self,
        i_frame_interval: float,
        b_frame_count: float,
        bitrate_mbps: float,
        frame_side_px: float,
        frame_rate_fps: float,
        quantization: float,
    ) -> float:
        """Encoding-latency numerator (divide by the compute capability for ms)."""
        c0, c1, c2, c3, c4, c5, c6 = self.encoding_coeffs
        numerator = (
            c0
            + c1 * i_frame_interval
            + c2 * b_frame_count
            + c3 * bitrate_mbps
            + c4 * frame_side_px
            + c5 * frame_rate_fps
            + c6 * quantization
        )
        if numerator <= 0.0:
            raise ModelDomainError(
                "encoding workload evaluated to a non-positive value; the encoder "
                "configuration is outside the testbed's measured domain"
            )
        return numerator

    def encoding_latency_ms(
        self,
        compute_capability: float,
        i_frame_interval: float,
        b_frame_count: float,
        bitrate_mbps: float,
        frame_side_px: float,
        frame_rate_fps: float,
        quantization: float,
    ) -> float:
        """True encoding latency (ms), excluding the memory read term."""
        if compute_capability <= 0.0:
            raise ModelDomainError(
                f"compute capability must be > 0, got {compute_capability}"
            )
        return (
            self.encoding_numerator(
                i_frame_interval,
                b_frame_count,
                bitrate_mbps,
                frame_side_px,
                frame_rate_fps,
                quantization,
            )
            / compute_capability
        )

    def decoding_latency_ms(
        self, encoding_latency_ms: float, client_capability: float, edge_capability: float
    ) -> float:
        """True decoding latency on the edge (Eq. 14 structure)."""
        if encoding_latency_ms < 0.0:
            raise ModelDomainError(
                f"encoding latency must be >= 0, got {encoding_latency_ms}"
            )
        if client_capability <= 0.0 or edge_capability <= 0.0:
            raise ModelDomainError("capabilities must be > 0")
        return encoding_latency_ms * self.decode_discount * client_capability / edge_capability

    # -- CNN complexity ---------------------------------------------------------------

    def cnn_complexity(self, depth: float, size_mb: float, depth_scale: float = 1.0) -> float:
        """True effective complexity of a CNN model."""
        if depth <= 0 or size_mb <= 0 or depth_scale <= 0:
            raise ModelDomainError(
                "CNN parameters must be positive: "
                f"depth={depth}, size_mb={size_mb}, depth_scale={depth_scale}"
            )
        k0, k1, k2, k3 = self.cnn_complexity_coeffs
        return k0 + k1 * depth + k2 * size_mb + k3 * depth_scale
