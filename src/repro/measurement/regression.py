"""Ordinary-least-squares multiple linear regression with R^2 reporting.

The paper's modeling framework relies on multiple linear regressions wherever
an explicit analytical form is impractical (computation resource, mean power,
encoding latency, CNN complexity) and reports the fit quality as R^2 values
(0.87, 0.863, 0.79, 0.844).  This module provides the small amount of
regression machinery needed to reproduce that methodology on the synthetic
campaign: design-matrix fitting via :func:`numpy.linalg.lstsq`, R^2 on
training and held-out data, and 95% confidence intervals on the coefficients
(the paper states its models use a 95% confidence boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.exceptions import RegressionError


def r_squared(y_true: np.ndarray, y_predicted: np.ndarray) -> float:
    """Coefficient of determination of predictions against observations."""
    y_true = np.asarray(y_true, dtype=float)
    y_predicted = np.asarray(y_predicted, dtype=float)
    if y_true.shape != y_predicted.shape:
        raise RegressionError(
            f"shape mismatch: y_true {y_true.shape} vs y_predicted {y_predicted.shape}"
        )
    if y_true.size == 0:
        raise RegressionError("cannot compute R^2 on empty arrays")
    residual = float(np.sum((y_true - y_predicted) ** 2))
    total = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


@dataclass(frozen=True)
class RegressionResult:
    """Outcome of one linear regression fit.

    Attributes:
        coefficients: fitted coefficient vector (same order as the feature
            columns; includes the intercept when the design matrix had one).
        r_squared_train: R^2 on the training data.
        r_squared_test: R^2 on the held-out data (NaN if no test set given).
        confidence_intervals: per-coefficient 95% confidence half-widths.
        n_train: number of training samples.
        n_test: number of test samples.
        feature_names: optional human-readable names of the columns.
    """

    coefficients: np.ndarray
    r_squared_train: float
    r_squared_test: float
    confidence_intervals: np.ndarray
    n_train: int
    n_test: int
    feature_names: tuple[str, ...] = ()

    def summary(self) -> str:
        """Multi-line human readable summary of the fit."""
        lines = [
            f"n_train={self.n_train}, n_test={self.n_test}",
            f"R^2 (train) = {self.r_squared_train:.3f}",
        ]
        if not np.isnan(self.r_squared_test):
            lines.append(f"R^2 (test)  = {self.r_squared_test:.3f}")
        names = self.feature_names or tuple(
            f"x{i}" for i in range(len(self.coefficients))
        )
        for name, coefficient, interval in zip(
            names, self.coefficients, self.confidence_intervals
        ):
            lines.append(f"  {name:>14s} = {coefficient:+.4f} (+/- {interval:.4f})")
        return "\n".join(lines)


class LinearRegression:
    """Multiple linear regression ``y = X @ beta`` fitted by least squares.

    The design matrix is taken as-is: callers append a column of ones when
    they want an intercept (the paper's regression forms each have their own
    structure, e.g. the compute-resource model of Eq. 3 has *no* global
    intercept but CPU- and GPU-specific ones).
    """

    def __init__(self, feature_names: Sequence[str] = ()) -> None:
        self.feature_names = tuple(feature_names)
        self._coefficients: Optional[np.ndarray] = None

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted coefficient vector.

        Raises:
            RegressionError: if the model has not been fitted yet.
        """
        if self._coefficients is None:
            raise RegressionError("the regression has not been fitted yet")
        return self._coefficients

    def fit(
        self,
        design_matrix: np.ndarray,
        targets: np.ndarray,
        test_design_matrix: Optional[np.ndarray] = None,
        test_targets: Optional[np.ndarray] = None,
    ) -> RegressionResult:
        """Fit the regression and report train/test R^2 and 95% intervals.

        Args:
            design_matrix: (n_samples, n_features) training design matrix.
            targets: (n_samples,) training targets.
            test_design_matrix: optional held-out design matrix.
            test_targets: optional held-out targets.

        Raises:
            RegressionError: on shape mismatches or under-determined systems.
        """
        X = np.asarray(design_matrix, dtype=float)
        y = np.asarray(targets, dtype=float)
        if X.ndim != 2:
            raise RegressionError(f"design matrix must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or len(y) != X.shape[0]:
            raise RegressionError(
                f"targets must be 1-D with {X.shape[0]} entries, got shape {y.shape}"
            )
        if X.shape[0] < X.shape[1]:
            raise RegressionError(
                f"need at least {X.shape[1]} samples to fit {X.shape[1]} coefficients, "
                f"got {X.shape[0]}"
            )
        coefficients, _, rank, _ = np.linalg.lstsq(X, y, rcond=None)
        if rank < X.shape[1]:
            raise RegressionError(
                f"design matrix is rank deficient (rank {rank} < {X.shape[1]} features)"
            )
        self._coefficients = coefficients

        predictions = X @ coefficients
        train_r2 = r_squared(y, predictions)

        test_r2 = float("nan")
        n_test = 0
        if test_design_matrix is not None and test_targets is not None:
            X_test = np.asarray(test_design_matrix, dtype=float)
            y_test = np.asarray(test_targets, dtype=float)
            test_r2 = r_squared(y_test, X_test @ coefficients)
            n_test = len(y_test)

        intervals = self._confidence_intervals(X, y, predictions, coefficients)
        return RegressionResult(
            coefficients=coefficients,
            r_squared_train=train_r2,
            r_squared_test=test_r2,
            confidence_intervals=intervals,
            n_train=len(y),
            n_test=n_test,
            feature_names=self.feature_names,
        )

    def predict(self, design_matrix: np.ndarray) -> np.ndarray:
        """Predict targets for a design matrix using the fitted coefficients."""
        X = np.asarray(design_matrix, dtype=float)
        return X @ self.coefficients

    @staticmethod
    def _confidence_intervals(
        X: np.ndarray,
        y: np.ndarray,
        predictions: np.ndarray,
        coefficients: np.ndarray,
        confidence: float = 0.95,
    ) -> np.ndarray:
        """95% confidence half-widths of the fitted coefficients."""
        n_samples, n_features = X.shape
        dof = max(n_samples - n_features, 1)
        residual_variance = float(np.sum((y - predictions) ** 2)) / dof
        gram = X.T @ X
        try:
            covariance = residual_variance * np.linalg.inv(gram)
        except np.linalg.LinAlgError:
            covariance = residual_variance * np.linalg.pinv(gram)
        standard_errors = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
        t_value = float(stats.t.ppf(0.5 + confidence / 2.0, dof))
        return t_value * standard_errors
