"""Synthetic measurement campaign.

Replaces the paper's physical measurement campaign: operating points of the
Table I devices are sampled over the ranges the paper sweeps (CPU/GPU clocks,
CPU/GPU split, encoder settings, frame sizes and rates, the Table II CNNs),
the hidden testbed response surfaces of :mod:`repro.measurement.truth` are
evaluated at each point, and heteroscedastic (multiplicative Gaussian)
measurement noise is added.  The campaign then re-fits the paper's regression
forms with :class:`repro.measurement.regression.LinearRegression` and reports
train/test R^2 using the paper's device split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.cnn.zoo import list_cnns
from repro.devices.catalog import DEVICE_CATALOG, TEST_DEVICES, TRAIN_DEVICES
from repro.exceptions import ConfigurationError
from repro.measurement.datasets import MeasurementDataset, MeasurementSample, split_by_device
from repro.measurement.regression import LinearRegression, RegressionResult
from repro.measurement.truth import TestbedTruth


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of the synthetic measurement campaign.

    Attributes:
        n_samples: total number of measurement samples to generate.  The
            paper's campaign has 119,465 + 36,083 samples; the default here is
            smaller so that calibration stays fast, and tests/benchmarks can
            request the full size.
        devices: device names to measure (defaults to all Table I XR devices).
        seed: RNG seed.
        compute_noise: relative noise on the compute-capability measurements.
        power_noise: relative noise on the power measurements.
        encoding_noise: relative noise on the encoding-latency measurements.
        complexity_noise: relative noise on the CNN-complexity measurements.
        cpu_freq_range_ghz: sampled CPU clock range.
        gpu_freq_range_ghz: sampled GPU clock range.
    """

    n_samples: int = 6000
    devices: Tuple[str, ...] = tuple(sorted(DEVICE_CATALOG))
    seed: int = 2024
    compute_noise: float = 0.05
    power_noise: float = 0.08
    encoding_noise: float = 0.14
    complexity_noise: float = 0.20
    cpu_freq_range_ghz: Tuple[float, float] = (0.8, 3.2)
    gpu_freq_range_ghz: Tuple[float, float] = (0.3, 1.3)

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ConfigurationError(f"n_samples must be > 0, got {self.n_samples}")
        if not self.devices:
            raise ConfigurationError("at least one device is required")
        unknown = [name for name in self.devices if name not in DEVICE_CATALOG]
        if unknown:
            raise ConfigurationError(f"unknown devices in campaign config: {unknown}")
        for name in ("compute_noise", "power_noise", "encoding_noise", "complexity_noise"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
        for name in ("cpu_freq_range_ghz", "gpu_freq_range_ghz"):
            low, high = getattr(self, name)
            if not 0.0 < low < high:
                raise ConfigurationError(f"{name} must satisfy 0 < low < high, got {low}, {high}")

    @classmethod
    def paper_scale(cls) -> "CampaignConfig":
        """A campaign with the paper's full sample count (119,465 + 36,083)."""
        return cls(n_samples=119_465 + 36_083)


@dataclass(frozen=True)
class CampaignFits:
    """The four regression fits produced by one campaign.

    Attributes map one-to-one to the paper's regressions: Eq. (3) compute
    resource, Eq. (21) mean power, Eq. (10) encoding latency, Eq. (12) CNN
    complexity.
    """

    resource: RegressionResult
    power: RegressionResult
    encoding: RegressionResult
    complexity: RegressionResult

    def r_squared_summary(self) -> Dict[str, float]:
        """Train R^2 of each regression keyed like the paper reports them."""
        return {
            "compute_resource": self.resource.r_squared_train,
            "mean_power": self.power.r_squared_train,
            "encoding_latency": self.encoding.r_squared_train,
            "cnn_complexity": self.complexity.r_squared_train,
        }


class SyntheticCampaign:
    """Generates the synthetic measurement dataset and fits the regressions."""

    def __init__(
        self, config: CampaignConfig | None = None, truth: TestbedTruth | None = None
    ) -> None:
        self.config = config if config is not None else CampaignConfig()
        self.truth = truth if truth is not None else TestbedTruth()

    # -- dataset generation -----------------------------------------------------------

    def generate(self) -> MeasurementDataset:
        """Generate the full synthetic measurement dataset."""
        rng = np.random.default_rng(self.config.seed)
        cnns = list_cnns()
        samples = []
        for _ in range(self.config.n_samples):
            device = self.config.devices[rng.integers(0, len(self.config.devices))]
            cpu_freq = float(rng.uniform(*self.config.cpu_freq_range_ghz))
            gpu_freq = float(rng.uniform(*self.config.gpu_freq_range_ghz))
            cpu_share = float(rng.uniform(0.0, 1.0))
            i_frame = float(rng.choice([15, 30, 45, 60]))
            b_frames = float(rng.integers(0, 5))
            bitrate = float(rng.uniform(2.0, 40.0))
            frame_side = float(rng.uniform(240.0, 720.0))
            fps = float(rng.choice([15, 24, 30, 60]))
            quantization = float(rng.uniform(18.0, 40.0))
            cnn = cnns[rng.integers(0, len(cnns))]

            compute = self.truth.compute_capability(
                cpu_freq, gpu_freq, cpu_share, device_name=device
            )
            power = self.truth.mean_power_w(
                cpu_freq, gpu_freq, cpu_share, device_name=device
            )
            encoding_numerator = self.truth.encoding_numerator(
                i_frame, b_frames, bitrate, frame_side, fps, quantization
            )
            complexity = self.truth.cnn_complexity(
                cnn.depth, cnn.size_mb, cnn.depth_scale
            )

            samples.append(
                MeasurementSample(
                    device=device,
                    cpu_freq_ghz=cpu_freq,
                    gpu_freq_ghz=gpu_freq,
                    cpu_share=cpu_share,
                    i_frame_interval=i_frame,
                    b_frame_count=b_frames,
                    bitrate_mbps=bitrate,
                    frame_side_px=frame_side,
                    frame_rate_fps=fps,
                    quantization=quantization,
                    cnn_depth=float(cnn.depth),
                    cnn_size_mb=cnn.size_mb,
                    cnn_depth_scale=cnn.depth_scale,
                    measured_compute=self._noisy(compute, self.config.compute_noise, rng),
                    measured_power_w=self._noisy(power, self.config.power_noise, rng),
                    measured_encoding_numerator=self._noisy(
                        encoding_numerator, self.config.encoding_noise, rng
                    ),
                    measured_cnn_complexity=self._noisy(
                        complexity, self.config.complexity_noise, rng
                    ),
                )
            )
        return MeasurementDataset(samples)

    @staticmethod
    def _noisy(value: float, relative_noise: float, rng: np.random.Generator) -> float:
        """Apply multiplicative Gaussian noise, clipped away from zero."""
        if relative_noise == 0.0:
            return value
        noisy = value * (1.0 + rng.normal(0.0, relative_noise))
        return max(noisy, 0.05 * abs(value))

    # -- regression fitting --------------------------------------------------------------

    def fit(
        self,
        dataset: MeasurementDataset | None = None,
        train_devices: Sequence[str] = TRAIN_DEVICES,
        test_devices: Sequence[str] = TEST_DEVICES,
    ) -> CampaignFits:
        """Fit the four regressions on the train devices, evaluate on the test devices."""
        if dataset is None:
            dataset = self.generate()
        train, test = split_by_device(dataset, train_devices, test_devices)

        resource = LinearRegression(MeasurementDataset.RESOURCE_FEATURES).fit(
            train.resource_design_matrix(),
            train.resource_targets(),
            test.resource_design_matrix(),
            test.resource_targets(),
        )
        power = LinearRegression(MeasurementDataset.RESOURCE_FEATURES).fit(
            train.resource_design_matrix(),
            train.power_targets(),
            test.resource_design_matrix(),
            test.power_targets(),
        )
        encoding = LinearRegression(MeasurementDataset.ENCODING_FEATURES).fit(
            train.encoding_design_matrix(),
            train.encoding_targets(),
            test.encoding_design_matrix(),
            test.encoding_targets(),
        )
        complexity = LinearRegression(MeasurementDataset.COMPLEXITY_FEATURES).fit(
            train.complexity_design_matrix(),
            train.complexity_targets(),
            test.complexity_design_matrix(),
            test.complexity_targets(),
        )
        return CampaignFits(
            resource=resource, power=power, encoding=encoding, complexity=complexity
        )
