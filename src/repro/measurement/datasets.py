"""Dataset containers for the synthetic measurement campaign.

A :class:`MeasurementSample` is one operating point of one device with its
"measured" quantities; a :class:`MeasurementDataset` is a collection of
samples that knows how to expose the design matrices and target vectors of
the paper's four regression models and how to split itself by device
(the paper trains on XR1/XR3/XR5/XR6 and tests on XR2/XR4/XR7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.devices.catalog import TEST_DEVICES, TRAIN_DEVICES
from repro.exceptions import RegressionError


@dataclass(frozen=True)
class MeasurementSample:
    """One synthetic measurement of one device operating point.

    The first block of attributes are the controlled factors of the campaign;
    the ``measured_*`` attributes are the noisy responses.
    """

    device: str
    cpu_freq_ghz: float
    gpu_freq_ghz: float
    cpu_share: float
    i_frame_interval: float
    b_frame_count: float
    bitrate_mbps: float
    frame_side_px: float
    frame_rate_fps: float
    quantization: float
    cnn_depth: float
    cnn_size_mb: float
    cnn_depth_scale: float
    measured_compute: float
    measured_power_w: float
    measured_encoding_numerator: float
    measured_cnn_complexity: float


class MeasurementDataset:
    """A collection of measurement samples with regression-ready views."""

    #: Feature names of the compute-resource / power regressions (Eq. 3 / 21 form).
    RESOURCE_FEATURES: Tuple[str, ...] = (
        "cpu_intercept",
        "cpu_linear",
        "cpu_quadratic",
        "gpu_intercept",
        "gpu_linear",
        "gpu_quadratic",
    )

    #: Feature names of the encoding-latency regression (Eq. 10 form).
    ENCODING_FEATURES: Tuple[str, ...] = (
        "intercept",
        "i_frame_interval",
        "b_frame_count",
        "bitrate_mbps",
        "frame_side_px",
        "frame_rate_fps",
        "quantization",
    )

    #: Feature names of the CNN complexity regression (Eq. 12 form).
    COMPLEXITY_FEATURES: Tuple[str, ...] = ("intercept", "depth", "size_mb", "depth_scale")

    def __init__(self, samples: Iterable[MeasurementSample]) -> None:
        self._samples: List[MeasurementSample] = list(samples)
        if not self._samples:
            raise RegressionError("a measurement dataset must contain at least one sample")

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def samples(self) -> List[MeasurementSample]:
        """All samples in insertion order."""
        return list(self._samples)

    @property
    def devices(self) -> Tuple[str, ...]:
        """Distinct device names present in the dataset."""
        return tuple(sorted({sample.device for sample in self._samples}))

    def filter_devices(self, devices: Sequence[str]) -> "MeasurementDataset":
        """Subset of the dataset restricted to the given devices."""
        wanted = set(devices)
        subset = [sample for sample in self._samples if sample.device in wanted]
        if not subset:
            raise RegressionError(
                f"no samples for devices {sorted(wanted)}; present: {self.devices}"
            )
        return MeasurementDataset(subset)

    # -- regression views -----------------------------------------------------------

    def resource_design_matrix(self) -> np.ndarray:
        """Design matrix of the compute-resource regression (Eq. 3 structure).

        Columns: ``[w_c, w_c f_c, w_c f_c^2, (1-w_c), (1-w_c) f_g, (1-w_c) f_g^2]``.
        """
        rows = []
        for sample in self._samples:
            w = sample.cpu_share
            fc = sample.cpu_freq_ghz
            fg = sample.gpu_freq_ghz
            rows.append([w, w * fc, w * fc**2, 1.0 - w, (1.0 - w) * fg, (1.0 - w) * fg**2])
        return np.array(rows, dtype=float)

    def resource_targets(self) -> np.ndarray:
        """Measured compute capabilities (``c_client``)."""
        return np.array([sample.measured_compute for sample in self._samples], dtype=float)

    def power_targets(self) -> np.ndarray:
        """Measured mean powers (``P_mean``, W)."""
        return np.array([sample.measured_power_w for sample in self._samples], dtype=float)

    def encoding_design_matrix(self) -> np.ndarray:
        """Design matrix of the encoding-latency regression (Eq. 10 structure)."""
        rows = []
        for sample in self._samples:
            rows.append(
                [
                    1.0,
                    sample.i_frame_interval,
                    sample.b_frame_count,
                    sample.bitrate_mbps,
                    sample.frame_side_px,
                    sample.frame_rate_fps,
                    sample.quantization,
                ]
            )
        return np.array(rows, dtype=float)

    def encoding_targets(self) -> np.ndarray:
        """Measured encoding-latency numerators (encoding latency x compute)."""
        return np.array(
            [sample.measured_encoding_numerator for sample in self._samples], dtype=float
        )

    def complexity_design_matrix(self) -> np.ndarray:
        """Design matrix of the CNN complexity regression (Eq. 12 structure)."""
        rows = []
        for sample in self._samples:
            rows.append([1.0, sample.cnn_depth, sample.cnn_size_mb, sample.cnn_depth_scale])
        return np.array(rows, dtype=float)

    def complexity_targets(self) -> np.ndarray:
        """Measured CNN complexities."""
        return np.array(
            [sample.measured_cnn_complexity for sample in self._samples], dtype=float
        )


def split_by_device(
    dataset: MeasurementDataset,
    train_devices: Sequence[str] = TRAIN_DEVICES,
    test_devices: Sequence[str] = TEST_DEVICES,
) -> Tuple[MeasurementDataset, MeasurementDataset]:
    """Split a dataset into the paper's train/test device partitions."""
    return dataset.filter_devices(train_devices), dataset.filter_devices(test_devices)
