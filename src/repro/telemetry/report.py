"""Human-readable rendering of telemetry snapshots (``repro profile``)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple


def _format_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e3:
        return f"{value / 1e3:.2f} s"
    if value >= 1.0:
        return f"{value:.1f} ms"
    return f"{value * 1e3:.0f} us"


def _format_count(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def _span_rows(
    spans: Mapping[str, Mapping], depth: int = 0, rows: Optional[List[Tuple[str, ...]]] = None
) -> List[Tuple[str, ...]]:
    rows = rows if rows is not None else []
    for name, node in spans.items():
        attrs = ", ".join(
            f"{key}={_format_count(value)}"
            for key, value in (node.get("counters") or {}).items()
        )
        rows.append(
            (
                "  " * depth + name,
                _format_count(node.get("count", 0)),
                _format_ms(node.get("total_ms")),
                _format_ms(node.get("mean_ms")),
                _format_ms(node.get("p95_ms")),
                attrs,
            )
        )
        _span_rows(node.get("children") or {}, depth + 1, rows)
    return rows


def _table(rows: List[Tuple[str, ...]], headers: Tuple[str, ...]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)).rstrip(),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def format_profile(
    snapshot: Mapping, cache_stats: Optional[Dict[str, Dict[str, object]]] = None
) -> str:
    """Render a snapshot as a span tree plus counter/histogram tables."""
    sections: List[str] = []

    spans = snapshot.get("spans") or {}
    if spans:
        sections.append(
            "span tree\n"
            + _table(
                _span_rows(spans),
                headers=("span", "calls", "total", "mean", "p95", "attrs"),
            )
        )

    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    scalar_rows = [
        (name, _format_count(value)) for name, value in sorted(counters.items())
    ] + [(name + " (gauge)", _format_count(value)) for name, value in sorted(gauges.items())]
    if scalar_rows:
        sections.append("counters\n" + _table(scalar_rows, headers=("counter", "value")))

    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, entry in sorted(histograms.items()):
            rows.append(
                (
                    name,
                    _format_count(entry.get("count", 0)),
                    _format_count(entry["mean"]) if entry.get("mean") is not None else "-",
                    _format_count(entry["p50"]) if entry.get("p50") is not None else "-",
                    _format_count(entry["p95"]) if entry.get("p95") is not None else "-",
                    _format_count(entry["max"]) if entry.get("max") is not None else "-",
                )
            )
        sections.append(
            "histograms\n"
            + _table(rows, headers=("histogram", "n", "mean", "p50", "p95", "max"))
        )

    if cache_stats:
        rows = [
            (
                name,
                _format_count(entry["hits"]),
                _format_count(entry["misses"]),
                _format_count(entry["currsize"]),
                "-" if entry["maxsize"] is None else _format_count(entry["maxsize"]),
            )
            for name, entry in sorted(cache_stats.items())
        ]
        sections.append(
            "caches (process-global lru_cache surfaces)\n"
            + _table(rows, headers=("cache", "hits", "misses", "size", "max"))
        )

    if not sections:
        return "telemetry snapshot is empty (was telemetry enabled?)"
    return "\n\n".join(sections)
