"""The process-local telemetry registry: counters, gauges, histograms, spans.

Everything here is dependency-free (stdlib only): the registry is imported
by every subsystem's hot path, so it must never pull NumPy, the model
packages, or anything that could create an import cycle.

Design contract
---------------
* **Disabled by default, near-zero overhead.**  The module-level active
  registry starts as the :data:`NULL_TELEMETRY` singleton whose recording
  methods are no-ops; instrumentation sites pay one attribute lookup and
  one no-op call.  Sites that would need extra work to *compute* a metric
  guard it with ``telemetry.get().enabled``.
* **Deterministic modulo wall time.**  Counters, gauges and value
  histograms record quantities derived from the simulation itself, so two
  serial runs against fresh registries produce identical snapshots once
  the wall-time fields are removed (:func:`strip_timing` knows exactly
  which fields those are; the determinism tests compare stripped
  snapshots).
* **Mergeable.**  :meth:`Telemetry.merge_snapshot` folds a snapshot from
  another process (a co-sim shard, an experiment worker) into this
  registry; counter addition and histogram bucket addition are associative,
  so shards can be merged in any grouping with identical results.

Spans
-----
``with telemetry.get().span("cosim.run", users=64) as sp: ...`` times a
block and records it into a *tree* keyed by the nesting at runtime: a span
opened while another is active becomes its child.  Keyword attributes (and
:meth:`Span.annotate` calls) fold numeric values into per-node counters.
Every span measures its wall time even on the null registry — ``sp.elapsed_s``
is always valid — which is what lets spans replace the repo's hand-rolled
``time.perf_counter()`` pairs wholesale.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Union

from repro.schema import check_schema
from repro.telemetry.histogram import StreamingHistogram

#: Snapshot schema version ("MAJOR.MINOR": bump the major when the JSON
#: layout changes shape, the minor when fields are added).  Loading accepts
#: any 1.x document — see :func:`repro.schema.check_schema` for the exact
#: forward/backward-compatibility contract (the legacy bare ``1`` written
#: by older snapshots reads as ``1.0``).
TELEMETRY_SCHEMA_VERSION = "1.1"

#: Top-level snapshot keys this reader understands; anything else is
#: ignored with a warning instead of breaking the consumer.
_SNAPSHOT_KEYS = ("counters", "gauges", "histograms", "spans")

#: Span-node keys that carry wall time.  :func:`strip_timing` removes
#: exactly these (everything else in a snapshot is deterministic).
SPAN_TIMING_FIELDS = ("total_ms", "min_ms", "max_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms")


class _SpanNode:
    """Aggregated statistics of one span path in the tree."""

    __slots__ = ("count", "timings", "counters", "children")

    def __init__(self) -> None:
        self.count = 0
        self.timings = StreamingHistogram()  # milliseconds
        self.counters: Dict[str, float] = {}
        self.children: Dict[str, "_SpanNode"] = {}

    def child(self, name: str) -> "_SpanNode":
        node = self.children.get(name)
        if node is None:
            node = _SpanNode()
            self.children[name] = node
        return node

    def to_dict(self) -> dict:
        timings = self.timings
        payload: Dict[str, object] = {
            "count": self.count,
            "total_ms": timings.sum,
            "min_ms": timings.min,
            "max_ms": timings.max,
            "mean_ms": timings.mean if timings.count else None,
            "p50_ms": timings.quantile(0.50) if timings.count else None,
            "p95_ms": timings.quantile(0.95) if timings.count else None,
            "p99_ms": timings.quantile(0.99) if timings.count else None,
        }
        if self.counters:
            payload["counters"] = dict(sorted(self.counters.items()))
        if self.children:
            payload["children"] = {
                name: child.to_dict() for name, child in self.children.items()
            }
        return payload

    def merge_dict(self, payload: Mapping) -> None:
        self.count += int(payload.get("count", 0))
        total = payload.get("total_ms")
        if total:
            # Reconstruct a single-bucket approximation: merged wall times
            # keep exact totals/counts; per-merge quantiles are a sketch
            # anyway, so fold the foreign total in as one mean-sized sample
            # per recorded call.
            count = max(int(payload.get("count", 0)), 1)
            mean = float(total) / count
            for _ in range(count):
                self.timings.record(mean)
        for name, value in (payload.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, child in (payload.get("children") or {}).items():
            self.child(name).merge_dict(child)


def _as_number(value: Union[int, float]) -> Union[int, float]:
    """Coerce to a built-in ``int``/``float``.

    Instrumentation sites hand the registry whatever the models produce,
    which routinely includes NumPy scalars (``np.int64`` switch counts,
    ``np.float64`` sums) — those are not JSON-serializable, and this module
    must stay NumPy-free, so coerce via the numeric protocols instead of
    ``isinstance`` checks against NumPy types.
    """
    if isinstance(value, (int, float)):
        return value
    try:
        return value.__index__()  # integral types (np.int64, ...)
    except (AttributeError, TypeError):
        return float(value)


class Span:
    """A timed block; also usable as a plain stopwatch on the null registry.

    ``elapsed_s`` is valid after ``__exit__`` regardless of whether the
    owning registry records anything — the one timing idiom the CLI bench
    paths and the experiment runner share.
    """

    __slots__ = ("_telemetry", "name", "_attrs", "_start", "elapsed_s")

    def __init__(self, telemetry: Optional["Telemetry"], name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self._attrs = attrs
        self._start = 0.0
        self.elapsed_s = 0.0

    def annotate(self, **attrs: float) -> None:
        """Fold numeric attributes into the span's node counters on exit."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry._enter_span(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_s = time.perf_counter() - self._start
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry._exit_span(self.name, self.elapsed_s, self._attrs)
        return False


class Telemetry:
    """A recording registry of counters, gauges, histograms and a span tree."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, StreamingHistogram] = {}
        self._root = _SpanNode()
        self._stack: List[_SpanNode] = [self._root]

    # -- scalar instruments ----------------------------------------------------

    def add(self, name: str, value: Union[int, float] = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0) + _as_number(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = _as_number(value)

    def record(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = StreamingHistogram()
            self.histograms[name] = histogram
        histogram.record(float(value))

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, **attrs: float) -> Span:
        """A context manager timing one block into the span tree."""
        return Span(self, name, attrs)

    def _enter_span(self, name: str) -> None:
        self._stack.append(self._stack[-1].child(name))

    def _exit_span(self, name: str, elapsed_s: float, attrs: Mapping) -> None:
        node = self._stack.pop()
        node.count += 1
        node.timings.record(elapsed_s * 1e3)
        for key, value in attrs.items():
            if isinstance(value, (bool, str, bytes)):
                continue
            try:
                number = _as_number(value)
            except (TypeError, ValueError):
                continue
            node.counters[key] = node.counters.get(key, 0) + number

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry's full JSON-able state."""
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": {
                name: child.to_dict()
                for name, child in self._root.children.items()
            },
        }

    def merge_snapshot(self, payload: Mapping) -> None:
        """Fold a snapshot (e.g. from a process-pool shard) into this registry.

        Counter and histogram merges are associative and commutative;
        span-tree wall times keep exact call counts and totals (per-node
        quantiles over merged foreign samples are sketched from the
        foreign means).  Shards merged in any grouping therefore agree on
        every deterministic field.
        """
        check_schema(
            payload,
            current=TELEMETRY_SCHEMA_VERSION,
            known_keys=_SNAPSHOT_KEYS,
            consumer="telemetry snapshot",
        )
        for name, value in (payload.get("counters") or {}).items():
            self.add(name, value)
        for name, value in (payload.get("gauges") or {}).items():
            self.gauge(name, value)
        for name, entry in (payload.get("histograms") or {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = StreamingHistogram()
                self.histograms[name] = histogram
            histogram.merge(StreamingHistogram.from_dict(entry))
        for name, child in (payload.get("spans") or {}).items():
            self._root.child(name).merge_dict(child)


class NullTelemetry:
    """The disabled registry: every recording method is a no-op.

    ``span`` still returns a ticking :class:`Span` (with no registry to
    report to) so call sites can rely on ``elapsed_s`` unconditionally.
    """

    enabled = False

    def add(self, name: str, value: Union[int, float] = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def record(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, **attrs: float) -> Span:
        return Span(None, name, attrs)

    def snapshot(self) -> dict:
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }

    def merge_snapshot(self, payload: Mapping) -> None:
        pass


#: The process-wide disabled singleton.
NULL_TELEMETRY = NullTelemetry()

TelemetryLike = Union[Telemetry, NullTelemetry]

_active: TelemetryLike = NULL_TELEMETRY

# Per-thread override installed by :func:`scoped`.  Worker threads (the
# thread execution backend) capture into private registries through this
# slot, so concurrent tasks never clobber the process-wide registry; in
# single-threaded code (including process-pool workers) the override is
# indistinguishable from plain :func:`activate`.
_local = threading.local()


def get() -> TelemetryLike:
    """The active registry (the no-op singleton unless enabled).

    A :func:`scoped` override installed on the calling thread wins over
    the process-wide registry set by :func:`activate`.
    """
    override = getattr(_local, "registry", None)
    return _active if override is None else override


def activate(telemetry: TelemetryLike) -> TelemetryLike:
    """Install ``telemetry`` as the active registry; returns the previous one.

    The previous registry makes scoped instrumentation easy::

        previous = activate(Telemetry())
        try:
            ...
        finally:
            activate(previous)
    """
    global _active
    previous = _active
    _active = telemetry
    return previous


def enable() -> Telemetry:
    """Install (and return) a fresh recording registry."""
    telemetry = Telemetry()
    activate(telemetry)
    return telemetry


def disable() -> None:
    """Restore the no-op singleton."""
    activate(NULL_TELEMETRY)


@contextlib.contextmanager
def scoped(telemetry: TelemetryLike) -> Iterator[TelemetryLike]:
    """Make ``telemetry`` the active registry for this thread only.

    Unlike :func:`activate`, the override is confined to the calling
    thread and restored on exit, which makes it safe inside concurrently
    running pool workers::

        with telemetry.scoped(Telemetry()) as registry:
            ...  # instrumentation on this thread records into registry
        snapshot = registry.snapshot()

    Capture wrappers (cosim shards, experiment scenarios) use this so the
    same code path is correct in a process worker, a thread worker, and
    the in-process serial fallback.
    """
    previous = getattr(_local, "registry", None)
    _local.registry = telemetry
    try:
        yield telemetry
    finally:
        _local.registry = previous


# ---------------------------------------------------------------------------
# Snapshot helpers
# ---------------------------------------------------------------------------


def _strip_span(node: Mapping) -> dict:
    stripped = {
        key: value for key, value in node.items() if key not in SPAN_TIMING_FIELDS
    }
    if "children" in stripped:
        stripped["children"] = {
            name: _strip_span(child) for name, child in stripped["children"].items()
        }
    return stripped


def strip_timing(snapshot: Mapping) -> dict:
    """A snapshot with every wall-time field removed.

    Span call counts, attribute counters, value histograms, counters and
    gauges survive; span durations do not.  Two serial runs against fresh
    registries produce identical stripped snapshots — the telemetry
    analogue of :meth:`repro.experiments.runner.RunManifest.metric_payload`.
    """
    payload = dict(snapshot)
    payload["spans"] = {
        name: _strip_span(node) for name, node in (snapshot.get("spans") or {}).items()
    }
    return payload


def merge_snapshots(snapshots: List[Mapping]) -> dict:
    """Merge snapshots (in order) into one, via a scratch registry."""
    merged = Telemetry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def load_snapshot(path) -> dict:
    """Read a snapshot written by :func:`save_snapshot`, version-checked.

    Older 1.x snapshots (including the legacy integer ``schema_version: 1``)
    load cleanly; unknown top-level keys are dropped with a single warning;
    a different major version raises :class:`ValueError`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"telemetry snapshot {str(path)!r} is not a JSON object")
    check_schema(
        payload,
        current=TELEMETRY_SCHEMA_VERSION,
        known_keys=_SNAPSHOT_KEYS,
        consumer="telemetry snapshot",
    )
    return {
        "schema_version": payload["schema_version"],
        **{key: payload.get(key) or {} for key in _SNAPSHOT_KEYS},
    }


def save_snapshot(snapshot: Mapping, path) -> None:
    """Write a snapshot as indented JSON (parent directories created)."""
    import os

    directory = os.path.dirname(str(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
