"""repro.telemetry — structured tracing, metrics, and profiling hooks.

A dependency-free instrumentation layer shared by every subsystem:

* a process-local :class:`Telemetry` registry of counters, gauges and
  mergeable :class:`~repro.telemetry.histogram.StreamingHistogram` sketches
  (p50/p95/p99 without materializing samples),
* nestable :meth:`~repro.telemetry.registry.Telemetry.span` timers that
  record wall time into a span tree,
* a no-op :data:`~repro.telemetry.registry.NULL_TELEMETRY` singleton that
  keeps the whole layer disabled by default with near-zero overhead,
* JSON snapshots that merge deterministically across process-pool shards
  (:meth:`~repro.telemetry.registry.Telemetry.merge_snapshot`) and strip
  down to a bit-deterministic payload (:func:`strip_timing`),
* :func:`cache_report` over the module-level ``lru_cache`` surfaces, and
  a profile formatter (:func:`format_profile`) behind ``repro profile``.

Typical use::

    from repro import telemetry

    registry = telemetry.enable()           # fresh recording registry
    ...  # run any workload; subsystems record into the active registry
    print(telemetry.format_profile(registry.snapshot()))
    telemetry.disable()

Instrumentation sites call ``telemetry.get()`` and record unconditionally
(the null registry ignores them), guarding only *extra computation* behind
``telemetry.get().enabled``.
"""

from repro.telemetry.cache import cache_report
from repro.telemetry.histogram import BUCKETS_PER_OCTAVE, StreamingHistogram
from repro.telemetry.registry import (
    NULL_TELEMETRY,
    SPAN_TIMING_FIELDS,
    TELEMETRY_SCHEMA_VERSION,
    NullTelemetry,
    Span,
    Telemetry,
    activate,
    disable,
    enable,
    get,
    load_snapshot,
    merge_snapshots,
    save_snapshot,
    scoped,
    strip_timing,
)
from repro.telemetry.report import format_profile

__all__ = [
    "BUCKETS_PER_OCTAVE",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SPAN_TIMING_FIELDS",
    "Span",
    "StreamingHistogram",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "activate",
    "cache_report",
    "disable",
    "enable",
    "format_profile",
    "get",
    "load_snapshot",
    "merge_snapshots",
    "save_snapshot",
    "scoped",
    "strip_timing",
]
