"""Streaming log-bucketed histograms: percentiles without materializing samples.

The million-user roadmap item needs percentile aggregation whose memory does
not grow with the sample count and whose shards merge deterministically.
:class:`StreamingHistogram` provides exactly that shape: samples land in
logarithmically-spaced buckets (8 per octave, ~4.4% relative quantile
error), so a histogram is a sparse ``bucket index -> count`` mapping plus
exact count/sum/min/max moments.  Merging two histograms adds the integer
bucket counts — an associative, commutative operation — so per-shard
histograms can be combined in any grouping and produce the same result
(the associativity tests pin this down).

The quantile estimate returned by :meth:`quantile` is the geometric midpoint
of the bucket holding the requested rank, clamped to the exact observed
``[min, max]`` range; it is a sketch, not an order statistic, and is
deterministic for a deterministic sample stream.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

#: Buckets per octave (powers of two).  8 gives a bucket growth factor of
#: 2**(1/8) ~ 1.0905, i.e. at most ~4.4% relative error at the midpoint.
BUCKETS_PER_OCTAVE = 8

_LOG_BASE = math.log(2.0) / BUCKETS_PER_OCTAVE


class StreamingHistogram:
    """A mergeable log-bucketed histogram of non-negative samples.

    Values ``<= 0`` are counted in a dedicated zero bucket (wall times and
    counters never go negative; an exact zero is common for cache-hit
    paths), everything else in bucket ``floor(log2(value) * 8)``.
    """

    __slots__ = ("count", "sum", "min", "max", "zero_count", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero_count = 0
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
        else:
            index = math.floor(math.log(value) / _LOG_BASE)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        """Add an iterable of samples."""
        for value in values:
            self.record(value)

    # -- quantiles -------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); NaN when empty."""
        if self.count == 0:
            return math.nan
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # The rank of the requested quantile among the sorted samples
        # (nearest-rank definition, so merged and re-merged histograms
        # agree exactly on which bucket holds it).
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return self._clamp(0.0)
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                midpoint = math.exp((index + 0.5) * _LOG_BASE)
                return self._clamp(midpoint)
        return self._clamp(self.max if self.max is not None else math.nan)

    def _clamp(self, value: float) -> float:
        if self.min is not None and value < self.min:
            return self.min
        if self.max is not None and value > self.max:
            return self.max
        return value

    @property
    def mean(self) -> float:
        """Exact sample mean; NaN when empty."""
        return self.sum / self.count if self.count else math.nan

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram into this one (associative on bucket counts)."""
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self.zero_count += other.zero_count
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form (bucket indices become string keys)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean if self.count else None,
            "p50": self.quantile(0.50) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
            "zero_count": self.zero_count,
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StreamingHistogram":
        """Rebuild a histogram from :meth:`to_dict` output.

        The derived fields (``mean``/``p50``/...) are recomputed, so a
        round-trip is exact on the state and self-consistent on the rest.
        """
        histogram = cls()
        histogram.count = int(payload["count"])
        histogram.sum = float(payload["sum"])
        histogram.min = None if payload.get("min") is None else float(payload["min"])
        histogram.max = None if payload.get("max") is None else float(payload["max"])
        histogram.zero_count = int(payload.get("zero_count", 0))
        histogram.buckets = {
            int(index): int(n) for index, n in payload.get("buckets", {}).items()
        }
        return histogram
