"""Cache statistics: one report over every memoization surface in the repo.

Two families of caches exist:

* module-level ``functools.lru_cache`` surfaces — the device/edge catalogs,
  the CNN zoo, and the Eq. (12) complexity memo — whose statistics are
  process-global (:func:`cache_report` walks them via ``cache_info()``);
* per-instance dict caches — e.g. :class:`repro.fleet.FleetAnalyzer`'s
  report/mode-variant/service-time memos — which expose their own
  ``cache_stats()`` and are deterministic per analyzer instance.

The imports below happen inside the function so that
:mod:`repro.telemetry` itself stays import-light (it sits under every hot
path) and no import cycle can form.
"""

from __future__ import annotations

from typing import Dict


def cache_report() -> Dict[str, Dict[str, object]]:
    """Hit/miss/size statistics of every module-level ``lru_cache``.

    Returns a mapping from cache name to a dict with ``hits``, ``misses``,
    ``currsize`` and ``maxsize`` (None for unbounded caches).  Statistics
    are process-global and monotone — they accumulate across runs in the
    same interpreter — so they belong in profiles, not in deterministic
    snapshots.
    """
    from repro.cnn.complexity import _evaluate_complexity
    from repro.cnn.zoo import get_cnn
    from repro.devices.catalog import get_device, get_edge_server

    surfaces = {
        "devices.catalog.get_device": get_device,
        "devices.catalog.get_edge_server": get_edge_server,
        "cnn.zoo.get_cnn": get_cnn,
        "cnn.complexity.evaluate": _evaluate_complexity,
    }
    report: Dict[str, Dict[str, object]] = {}
    for name, function in surfaces.items():
        info = function.cache_info()
        report[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
            "maxsize": info.maxsize,
        }
    return report
