"""Little's-law helpers used by the property-based queueing tests.

Little's law (``L = lambda * W``) holds for any stationary queueing system,
so it provides an assumption-free consistency check between the closed-form
models, the queue simulator and the simulated testbed's buffer statistics.
"""

from __future__ import annotations


def littles_law_l(arrival_rate_per_ms: float, mean_time_in_system_ms: float) -> float:
    """Mean number in system implied by Little's law, ``L = lambda * W``."""
    if arrival_rate_per_ms < 0.0:
        raise ValueError(f"arrival rate must be >= 0, got {arrival_rate_per_ms}")
    if mean_time_in_system_ms < 0.0:
        raise ValueError(
            f"mean time in system must be >= 0, got {mean_time_in_system_ms}"
        )
    return arrival_rate_per_ms * mean_time_in_system_ms


def littles_law_w(mean_number_in_system: float, arrival_rate_per_ms: float) -> float:
    """Mean time in system implied by Little's law, ``W = L / lambda``."""
    if arrival_rate_per_ms <= 0.0:
        raise ValueError(f"arrival rate must be > 0, got {arrival_rate_per_ms}")
    if mean_number_in_system < 0.0:
        raise ValueError(
            f"mean number in system must be >= 0, got {mean_number_in_system}"
        )
    return mean_number_in_system / arrival_rate_per_ms


def relative_gap(observed: float, expected: float) -> float:
    """Relative difference ``|observed - expected| / max(|expected|, eps)``.

    Used by tests comparing simulated statistics against closed-form values.
    """
    denominator = max(abs(expected), 1e-12)
    return abs(observed - expected) / denominator
