"""Closed-form M/M/1 queue results.

The paper models buffering in the XR input buffer as a stable M/M/1 queue
(Eq. 7) and re-uses the same result for the average time an information
packet spends in the buffer in the AoI model (Eq. 22):

    T̄ = 1 / (mu - lambda)

This module provides that result plus the standard companion quantities
(utilisation, queue lengths, waiting time, sojourn-time distribution) so the
simulated testbed and the property-based tests can cross-check the formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import UnstableQueueError


@dataclass(frozen=True)
class MM1Queue:
    """A stationary M/M/1 queue.

    An idle queue (``lambda == 0``) is a legitimate boundary case — e.g. a
    fleet with zero offloaders — and yields zero waiting time, an empty
    queue, and a sojourn time equal to the service time.

    Attributes:
        arrival_rate_per_ms: Poisson arrival rate ``lambda`` (packets/ms),
            >= 0.
        service_rate_per_ms: exponential service rate ``mu`` (packets/ms).
    """

    arrival_rate_per_ms: float
    service_rate_per_ms: float

    def __post_init__(self) -> None:
        if self.arrival_rate_per_ms < 0.0:
            raise UnstableQueueError(
                f"arrival rate must be >= 0, got {self.arrival_rate_per_ms}"
            )
        if self.service_rate_per_ms <= 0.0:
            raise UnstableQueueError(
                f"service rate must be > 0, got {self.service_rate_per_ms}"
            )
        if self.arrival_rate_per_ms >= self.service_rate_per_ms:
            raise UnstableQueueError(
                "M/M/1 queue requires lambda < mu for stability, got "
                f"lambda={self.arrival_rate_per_ms}, mu={self.service_rate_per_ms}"
            )

    # -- first-order quantities ----------------------------------------------

    @property
    def utilization(self) -> float:
        """Server utilisation ``rho = lambda / mu`` (strictly below 1)."""
        return self.arrival_rate_per_ms / self.service_rate_per_ms

    @property
    def mean_time_in_system_ms(self) -> float:
        """Mean sojourn time ``T̄ = 1 / (mu - lambda)`` of Eqs. (7) and (22)."""
        return 1.0 / (self.service_rate_per_ms - self.arrival_rate_per_ms)

    @property
    def mean_waiting_time_ms(self) -> float:
        """Mean waiting (queueing-only) time ``W_q = rho / (mu - lambda)``."""
        return self.utilization * self.mean_time_in_system_ms

    @property
    def mean_service_time_ms(self) -> float:
        """Mean service time ``1 / mu``."""
        return 1.0 / self.service_rate_per_ms

    @property
    def mean_number_in_system(self) -> float:
        """Mean number of packets in the system ``L = rho / (1 - rho)``."""
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def mean_number_in_queue(self) -> float:
        """Mean number of packets waiting ``L_q = rho^2 / (1 - rho)``."""
        rho = self.utilization
        return rho * rho / (1.0 - rho)

    # -- distributions ---------------------------------------------------------

    def prob_n_in_system(self, n: int) -> float:
        """Stationary probability of exactly ``n`` packets in the system."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        rho = self.utilization
        return (1.0 - rho) * rho**n

    def prob_empty(self) -> float:
        """Probability the buffer is empty (no waiting and no service)."""
        return self.prob_n_in_system(0)

    def sojourn_time_cdf(self, time_ms: float) -> float:
        """CDF of the sojourn time: ``1 - exp(-(mu - lambda) t)``."""
        if time_ms < 0.0:
            return 0.0
        return 1.0 - float(np.exp(-(self.service_rate_per_ms - self.arrival_rate_per_ms) * time_ms))

    def sojourn_time_quantile(self, probability: float) -> float:
        """Quantile (ms) of the sojourn-time distribution."""
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"probability must be in [0, 1), got {probability}")
        rate = self.service_rate_per_ms - self.arrival_rate_per_ms
        return float(-np.log(1.0 - probability) / rate)

    # -- convenience constructors ----------------------------------------------

    @classmethod
    def from_rates_hz(cls, arrival_rate_hz: float, service_rate_hz: float) -> "MM1Queue":
        """Build a queue from rates expressed in events per second."""
        return cls(
            arrival_rate_per_ms=arrival_rate_hz / 1e3,
            service_rate_per_ms=service_rate_hz / 1e3,
        )
