"""Arrival and service processes for the queueing substrate.

Two concrete processes cover everything the framework needs:

* :class:`PoissonProcess` — exponential inter-event times, used for the
  M/M/1 input-buffer model and its simulation counterpart,
* :class:`DeterministicProcess` — fixed-period events, used for sensor
  information generation at a fixed frequency (Fig. 2) and for M/D/1
  comparisons.

Rates are expressed in events per millisecond so the generated timestamps
line up with the rest of the framework's millisecond time base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PoissonProcess:
    """Homogeneous Poisson process with rate ``rate_per_ms``.

    Attributes:
        rate_per_ms: expected number of events per millisecond.
    """

    rate_per_ms: float

    def __post_init__(self) -> None:
        if self.rate_per_ms <= 0.0:
            raise ConfigurationError(
                f"Poisson rate must be > 0 events/ms, got {self.rate_per_ms}"
            )

    @property
    def mean_interarrival_ms(self) -> float:
        """Mean time between events in milliseconds."""
        return 1.0 / self.rate_per_ms

    def sample_interarrival_times(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` exponential inter-arrival times (ms)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return rng.exponential(self.mean_interarrival_ms, size=n)

    def sample_arrival_times(
        self, horizon_ms: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Arrival timestamps (ms) of all events up to ``horizon_ms``."""
        if horizon_ms <= 0.0:
            raise ValueError(f"horizon must be > 0 ms, got {horizon_ms}")
        # Draw in chunks until the horizon is exceeded.
        expected = int(self.rate_per_ms * horizon_ms)
        chunk = max(16, expected + 4 * int(np.sqrt(expected) + 1))
        times: List[float] = []
        current = 0.0
        while current <= horizon_ms:
            gaps = self.sample_interarrival_times(chunk, rng)
            for gap in gaps:
                current += float(gap)
                if current > horizon_ms:
                    break
                times.append(current)
        return np.array(times, dtype=float)


@dataclass(frozen=True)
class DeterministicProcess:
    """Deterministic (fixed-period) event process.

    Attributes:
        period_ms: time between consecutive events.
        offset_ms: timestamp of the first event.
    """

    period_ms: float
    offset_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0.0:
            raise ConfigurationError(
                f"period must be > 0 ms, got {self.period_ms}"
            )
        if self.offset_ms < 0.0:
            raise ConfigurationError(
                f"offset must be >= 0 ms, got {self.offset_ms}"
            )

    @property
    def rate_per_ms(self) -> float:
        """Event rate in events per millisecond."""
        return 1.0 / self.period_ms

    def sample_arrival_times(
        self, horizon_ms: float, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Event timestamps (ms) up to ``horizon_ms`` (rng accepted for API parity)."""
        if horizon_ms <= 0.0:
            raise ValueError(f"horizon must be > 0 ms, got {horizon_ms}")
        first = self.offset_ms if self.offset_ms > 0.0 else self.period_ms
        return np.arange(first, horizon_ms + 1e-12, self.period_ms, dtype=float)


def merge_arrival_times(streams: Sequence[np.ndarray]) -> np.ndarray:
    """Merge several sorted arrival-time arrays into one sorted array.

    Used to superpose the per-sensor arrival streams into the single stream
    entering the XR input buffer.
    """
    non_empty = [np.asarray(stream, dtype=float) for stream in streams if len(stream)]
    if not non_empty:
        return np.array([], dtype=float)
    merged = np.concatenate(non_empty)
    merged.sort(kind="mergesort")
    return merged
