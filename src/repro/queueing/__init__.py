"""Queueing-theory substrate used by the buffering and AoI models.

The paper models the XR input buffer as a stable M/M/1 queue (Eq. 7 and
Eq. 22).  This package provides:

* arrival/service process generators (:mod:`repro.queueing.arrivals`),
* closed-form M/M/1 and M/G/1 (Pollaczek–Khinchine) results
  (:mod:`repro.queueing.mm1`, :mod:`repro.queueing.mg1`),
* an event-driven single-server queue simulator used to validate the
  closed-form results and to drive the simulated testbed's input buffer
  (:mod:`repro.queueing.simulation`),
* Little's-law consistency helpers (:mod:`repro.queueing.littles_law`),
* vectorized array ports of the M/M/1 / M/G/1 closed forms used by the
  batch evaluation engine (:mod:`repro.queueing.vectorized`).
"""

from repro.queueing.arrivals import (
    DeterministicProcess,
    PoissonProcess,
    merge_arrival_times,
)
from repro.queueing.littles_law import littles_law_l, littles_law_w, relative_gap
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue
from repro.queueing.simulation import QueueSimulationResult, simulate_single_server_queue
from repro.queueing.vectorized import (
    mg1_waiting_ms,
    mm1_sojourn_ms,
    mm1_waiting_ms,
    ps_waiting_ms,
)

__all__ = [
    "DeterministicProcess",
    "MG1Queue",
    "MM1Queue",
    "PoissonProcess",
    "QueueSimulationResult",
    "littles_law_l",
    "littles_law_w",
    "merge_arrival_times",
    "mg1_waiting_ms",
    "mm1_sojourn_ms",
    "mm1_waiting_ms",
    "ps_waiting_ms",
    "relative_gap",
    "simulate_single_server_queue",
]
