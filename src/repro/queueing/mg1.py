"""M/G/1 queue via the Pollaczek–Khinchine formula.

The paper assumes Markovian service at the input buffer; real buffer service
times are closer to deterministic (fixed-size control packets).  The M/G/1
model lets the ablation benchmarks quantify how much that assumption matters
by comparing M/M/1 against M/D/1 (deterministic service, squared coefficient
of variation 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnstableQueueError


@dataclass(frozen=True)
class MG1Queue:
    """A stationary M/G/1 queue characterised by its service-time moments.

    An idle queue (``lambda == 0``) is a legitimate boundary case — e.g. a
    fleet with zero offloaders — and yields zero waiting time.

    Attributes:
        arrival_rate_per_ms: Poisson arrival rate ``lambda`` (packets/ms),
            >= 0.
        mean_service_time_ms: mean service time ``E[S]``.
        service_scv: squared coefficient of variation of the service time
            (``Var[S] / E[S]^2``): 1 recovers M/M/1, 0 gives M/D/1.
    """

    arrival_rate_per_ms: float
    mean_service_time_ms: float
    service_scv: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_ms < 0.0:
            raise UnstableQueueError(
                f"arrival rate must be >= 0, got {self.arrival_rate_per_ms}"
            )
        if self.mean_service_time_ms <= 0.0:
            raise UnstableQueueError(
                f"mean service time must be > 0, got {self.mean_service_time_ms}"
            )
        if self.service_scv < 0.0:
            raise UnstableQueueError(
                f"service SCV must be >= 0, got {self.service_scv}"
            )
        if self.utilization >= 1.0:
            raise UnstableQueueError(
                f"M/G/1 queue requires rho < 1, got rho={self.utilization:.4f}"
            )

    @classmethod
    def md1(cls, arrival_rate_per_ms: float, mean_service_time_ms: float) -> "MG1Queue":
        """Deterministic-service (M/D/1) special case."""
        return cls(
            arrival_rate_per_ms=arrival_rate_per_ms,
            mean_service_time_ms=mean_service_time_ms,
            service_scv=0.0,
        )

    @classmethod
    def mm1(cls, arrival_rate_per_ms: float, service_rate_per_ms: float) -> "MG1Queue":
        """Exponential-service (M/M/1) special case for cross-checking."""
        return cls(
            arrival_rate_per_ms=arrival_rate_per_ms,
            mean_service_time_ms=1.0 / service_rate_per_ms,
            service_scv=1.0,
        )

    @property
    def utilization(self) -> float:
        """Server utilisation ``rho = lambda * E[S]``."""
        return self.arrival_rate_per_ms * self.mean_service_time_ms

    @property
    def mean_waiting_time_ms(self) -> float:
        """Pollaczek–Khinchine mean waiting time.

        ``W_q = rho * E[S] * (1 + c_s^2) / (2 * (1 - rho))``
        """
        rho = self.utilization
        return (
            rho
            * self.mean_service_time_ms
            * (1.0 + self.service_scv)
            / (2.0 * (1.0 - rho))
        )

    @property
    def mean_time_in_system_ms(self) -> float:
        """Mean sojourn time ``W = W_q + E[S]``."""
        return self.mean_waiting_time_ms + self.mean_service_time_ms

    @property
    def mean_number_in_system(self) -> float:
        """Mean number in system via Little's law ``L = lambda * W``."""
        return self.arrival_rate_per_ms * self.mean_time_in_system_ms

    @property
    def mean_number_in_queue(self) -> float:
        """Mean number waiting via Little's law ``L_q = lambda * W_q``."""
        return self.arrival_rate_per_ms * self.mean_waiting_time_ms
