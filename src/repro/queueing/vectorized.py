"""Vectorized closed-form queueing results (array ports of M/M/1 and M/G/1).

The scalar classes :class:`repro.queueing.mm1.MM1Queue` and
:class:`repro.queueing.mg1.MG1Queue` evaluate one operating point at a time;
the batch evaluation engine (:mod:`repro.batch`) and the multi-tenant edge
scheduler need the same closed forms over whole arrays of operating points.
The functions below are element-wise ports of the scalar formulas — same
equations, same operation order, so a length-1 array reproduces the scalar
result bit for bit:

* ``mm1_sojourn_ms``  — Eq. (7)/(22) mean sojourn ``1 / (mu - lambda)``;
  used by the batch engine's buffering and AoI terms,
* ``mm1_waiting_ms``  — the queueing-only companion ``rho / (mu - lambda)``,
* ``mg1_waiting_ms``  — the Pollaczek–Khinchine mean waiting time and
* ``ps_waiting_ms``   — the processor-sharing slowdown ``E[S] rho/(1-rho)``;
  both backing :meth:`repro.fleet.edge_scheduler.EdgeScheduler.\
tagged_waiting_times_ms`, which the capacity planner's vectorized probes
  call.

Stability is enforced exactly like the scalar classes: a zero arrival rate
is a legitimate idle-queue boundary, while ``rho >= 1`` raises
:class:`~repro.exceptions.UnstableQueueError` (use ``where_stable`` masks on
the caller side when saturation should map to ``inf`` instead).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import UnstableQueueError

ArrayLike = Union[float, np.ndarray]


def _as_array(value: ArrayLike) -> np.ndarray:
    return np.asarray(value, dtype=float)


def _check_rates(arrival_rate_per_ms: np.ndarray, service_rate_per_ms: np.ndarray) -> None:
    if np.any(arrival_rate_per_ms < 0.0):
        raise UnstableQueueError(
            f"arrival rates must be >= 0, got min {np.min(arrival_rate_per_ms)}"
        )
    if np.any(service_rate_per_ms <= 0.0):
        raise UnstableQueueError(
            f"service rates must be > 0, got min {np.min(service_rate_per_ms)}"
        )
    if np.any(arrival_rate_per_ms >= service_rate_per_ms):
        raise UnstableQueueError(
            "M/M/1 requires lambda < mu for stability at every point"
        )


def mm1_sojourn_ms(
    arrival_rate_per_ms: ArrayLike, service_rate_per_ms: ArrayLike
) -> np.ndarray:
    """Element-wise M/M/1 mean sojourn time ``T̄ = 1 / (mu - lambda)`` (ms)."""
    arrival = _as_array(arrival_rate_per_ms)
    service = _as_array(service_rate_per_ms)
    _check_rates(arrival, service)
    return 1.0 / (service - arrival)


def mm1_waiting_ms(
    arrival_rate_per_ms: ArrayLike, service_rate_per_ms: ArrayLike
) -> np.ndarray:
    """Element-wise M/M/1 mean waiting time ``W_q = rho / (mu - lambda)`` (ms)."""
    arrival = _as_array(arrival_rate_per_ms)
    service = _as_array(service_rate_per_ms)
    _check_rates(arrival, service)
    rho = arrival / service
    return rho * (1.0 / (service - arrival))


def mg1_waiting_ms(
    arrival_rate_per_ms: ArrayLike,
    mean_service_time_ms: ArrayLike,
    service_scv: ArrayLike = 1.0,
) -> np.ndarray:
    """Element-wise Pollaczek–Khinchine mean waiting time (ms).

    ``W_q = rho * E[S] * (1 + c_s^2) / (2 * (1 - rho))`` — identical to
    :attr:`repro.queueing.mg1.MG1Queue.mean_waiting_time_ms`.
    """
    arrival = _as_array(arrival_rate_per_ms)
    service = _as_array(mean_service_time_ms)
    scv = _as_array(service_scv)
    if np.any(arrival < 0.0):
        raise UnstableQueueError(
            f"arrival rates must be >= 0, got min {np.min(arrival)}"
        )
    if np.any(service <= 0.0):
        raise UnstableQueueError(
            f"mean service times must be > 0, got min {np.min(service)}"
        )
    if np.any(scv < 0.0):
        raise UnstableQueueError(f"service SCV must be >= 0, got min {np.min(scv)}")
    rho = arrival * service
    if np.any(rho >= 1.0):
        raise UnstableQueueError(
            f"M/G/1 requires rho < 1 at every point, got max rho={np.max(rho):.4f}"
        )
    return rho * service * (1.0 + scv) / (2.0 * (1.0 - rho))


def ps_waiting_ms(
    mean_service_time_ms: ArrayLike, utilization: ArrayLike
) -> np.ndarray:
    """Element-wise M/G/1-PS extra delay ``E[S] * rho / (1 - rho)`` (ms).

    Matches the ``"ps"`` branch of
    :meth:`repro.fleet.edge_scheduler.EdgeScheduler.waiting_time_ms`.
    """
    service = _as_array(mean_service_time_ms)
    rho = _as_array(utilization)
    if np.any(service <= 0.0):
        raise UnstableQueueError(
            f"mean service times must be > 0, got min {np.min(service)}"
        )
    if np.any((rho < 0.0) | (rho >= 1.0)):
        raise UnstableQueueError("PS slowdown requires 0 <= rho < 1 at every point")
    return service * rho / (1.0 - rho)
