"""Event-driven single-server queue simulator.

Used to (a) validate the closed-form M/M/1 / M/G/1 results in the test suite
and (b) provide the input-buffer behaviour inside the simulated testbed,
where the buffering delay experienced by each frame is *measured* rather than
taken from the analytical formula — this is one of the effects that makes the
simulated ground truth deviate slightly from the analytical model, as a real
testbed would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class QueueSimulationResult:
    """Outcome of one single-server queue simulation.

    Attributes:
        arrival_times_ms: packet arrival timestamps.
        start_service_times_ms: timestamps at which service began per packet.
        departure_times_ms: service completion timestamps per packet.
        waiting_times_ms: per-packet waiting (pre-service) times.
        sojourn_times_ms: per-packet total time in the system.
    """

    arrival_times_ms: np.ndarray
    start_service_times_ms: np.ndarray
    departure_times_ms: np.ndarray
    waiting_times_ms: np.ndarray
    sojourn_times_ms: np.ndarray

    @property
    def n_packets(self) -> int:
        """Number of packets that went through the queue."""
        return int(len(self.arrival_times_ms))

    @property
    def mean_waiting_time_ms(self) -> float:
        """Average waiting time across packets (0.0 when empty)."""
        if self.n_packets == 0:
            return 0.0
        return float(np.mean(self.waiting_times_ms))

    @property
    def mean_sojourn_time_ms(self) -> float:
        """Average time in system across packets (0.0 when empty)."""
        if self.n_packets == 0:
            return 0.0
        return float(np.mean(self.sojourn_times_ms))

    @property
    def utilization(self) -> float:
        """Fraction of the simulated horizon the server was busy."""
        if self.n_packets == 0:
            return 0.0
        horizon = float(self.departure_times_ms[-1])
        if horizon <= 0.0:
            return 0.0
        busy = float(np.sum(self.departure_times_ms - self.start_service_times_ms))
        return min(1.0, busy / horizon)

    def mean_number_in_system(self) -> float:
        """Time-averaged number of packets in the system (Little's-law check)."""
        if self.n_packets == 0:
            return 0.0
        horizon = float(self.departure_times_ms[-1])
        if horizon <= 0.0:
            return 0.0
        return float(np.sum(self.sojourn_times_ms)) / horizon


def simulate_single_server_queue(
    arrival_times_ms: Sequence[float],
    service_times_ms: Sequence[float] | Callable[[int, np.random.Generator], float],
    rng: Optional[np.random.Generator] = None,
) -> QueueSimulationResult:
    """Simulate a FIFO single-server queue.

    Args:
        arrival_times_ms: sorted packet arrival timestamps.
        service_times_ms: either a per-packet array of service times, or a
            callable ``(packet_index, rng) -> service_time_ms`` used to draw
            them lazily.
        rng: random generator forwarded to a callable ``service_times_ms``.

    Returns:
        A :class:`QueueSimulationResult` with per-packet timings.

    Raises:
        SimulationError: if the arrival times are not sorted or a drawn
            service time is negative.
    """
    arrivals = np.asarray(arrival_times_ms, dtype=float)
    if arrivals.ndim != 1:
        raise SimulationError("arrival times must be a 1-D sequence")
    if len(arrivals) > 1 and np.any(np.diff(arrivals) < 0.0):
        raise SimulationError("arrival times must be sorted non-decreasingly")
    if rng is None:
        rng = np.random.default_rng(0)

    n = len(arrivals)
    if callable(service_times_ms):
        services = np.array([float(service_times_ms(i, rng)) for i in range(n)])
    else:
        services = np.asarray(service_times_ms, dtype=float)
        if len(services) != n:
            raise SimulationError(
                f"expected {n} service times, got {len(services)}"
            )
    if np.any(services < 0.0):
        raise SimulationError("service times must be >= 0")

    start_service = np.zeros(n)
    departures = np.zeros(n)
    previous_departure = 0.0
    for index in range(n):
        start_service[index] = max(arrivals[index], previous_departure)
        departures[index] = start_service[index] + services[index]
        previous_departure = departures[index]

    waiting = start_service - arrivals
    sojourn = departures - arrivals
    return QueueSimulationResult(
        arrival_times_ms=arrivals,
        start_service_times_ms=start_service,
        departure_times_ms=departures,
        waiting_times_ms=waiting,
        sojourn_times_ms=sojourn,
    )


def simulate_mm1(
    arrival_rate_per_ms: float,
    service_rate_per_ms: float,
    horizon_ms: float,
    rng: Optional[np.random.Generator] = None,
) -> QueueSimulationResult:
    """Convenience wrapper simulating an M/M/1 queue over a time horizon."""
    from repro.queueing.arrivals import PoissonProcess

    if rng is None:
        rng = np.random.default_rng(0)
    arrivals = PoissonProcess(arrival_rate_per_ms).sample_arrival_times(horizon_ms, rng)
    services = rng.exponential(1.0 / service_rate_per_ms, size=len(arrivals))
    return simulate_single_server_queue(arrivals, services, rng=rng)
