"""Schema-version compatibility for the repo's persisted JSON documents.

Run manifests (:mod:`repro.experiments.runner`) and telemetry snapshots
(:mod:`repro.telemetry`) are long-lived JSON artifacts: baselines are
committed, CI archives fresh copies, and the figure registry
(:mod:`repro.figures`) reads both back.  This module makes the loading
contract explicit instead of implicit:

* Versions are ``"MAJOR.MINOR"`` strings (a bare integer is the legacy
  spelling of ``MAJOR.0``).
* **Same major, minor <= current**: loads silently — older documents stay
  readable forever within a major line.
* **Same major, minor > current**: loads with a single warning — a newer
  writer may only have *added* fields, and additions must not strand
  otherwise-valid data.
* **Different major**: refused — the layout changed shape.
* **Unknown top-level keys**: ignored with a single warning naming every
  unknown key, so a document from a newer minor version degrades gracefully
  instead of breaking consumers silently.

Stdlib-only on purpose: :mod:`repro.telemetry` imports this from hot paths
and must never pull NumPy or the model packages.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping, Tuple, Type, Union

SchemaVersion = Union[int, str]


def parse_version(value: object) -> Tuple[int, int]:
    """Parse a schema version into ``(major, minor)``.

    Accepts the legacy bare-integer spelling (``1`` -> ``(1, 0)``) and
    ``"MAJOR"`` / ``"MAJOR.MINOR"`` strings.  Raises :class:`ValueError`
    for anything else.
    """
    if isinstance(value, bool):
        raise ValueError(f"invalid schema version {value!r}")
    if isinstance(value, int):
        return (value, 0)
    if isinstance(value, str):
        parts = value.split(".")
        if len(parts) in (1, 2):
            try:
                numbers = [int(part) for part in parts]
            except ValueError:
                raise ValueError(f"invalid schema version {value!r}") from None
            if all(number >= 0 for number in numbers):
                return (numbers[0], numbers[1] if len(numbers) == 2 else 0)
    raise ValueError(f"invalid schema version {value!r}")


def check_schema(
    payload: Mapping,
    *,
    current: SchemaVersion,
    known_keys: Iterable[str],
    consumer: str,
    error: Type[Exception] = ValueError,
) -> Tuple[int, int]:
    """Validate ``payload``'s ``schema_version`` and top-level key set.

    Returns the parsed ``(major, minor)`` of the document.  Raises
    ``error`` when the version is missing, unparseable, or from a different
    major line; warns (once per call, via :mod:`warnings`) when the document
    is from a newer minor version or carries unknown top-level keys.

    Args:
        payload: the decoded JSON document.
        current: this reader's schema version.
        known_keys: every top-level key this reader understands
            (``schema_version`` itself is always known).
        consumer: short document name for error/warning text
            (e.g. ``"run manifest"``).
        error: exception type raised for hard incompatibilities.
    """
    raw = payload.get("schema_version")
    if raw is None:
        raise error(f"{consumer} has no schema_version field")
    try:
        major, minor = parse_version(raw)
    except ValueError:
        raise error(f"{consumer} has unsupported schema_version {raw!r}") from None
    current_major, current_minor = parse_version(current)
    if major != current_major:
        raise error(
            f"unsupported {consumer} schema_version {raw!r} "
            f"(this reader supports {current_major}.x, up to "
            f"{current_major}.{current_minor})"
        )
    if minor > current_minor:
        warnings.warn(
            f"{consumer} schema_version {raw!r} is newer than this reader "
            f"({current_major}.{current_minor}); loading the known fields",
            stacklevel=2,
        )
    unknown = sorted(set(payload) - set(known_keys) - {"schema_version"})
    if unknown:
        warnings.warn(
            f"{consumer}: ignoring unknown top-level key(s) {', '.join(unknown)}",
            stacklevel=2,
        )
    return (major, minor)
