"""Units, physical constants and conversion helpers.

The paper mixes units freely (GHz clocks, GB/s memory bandwidth, MB payloads,
Mbps throughput, metres, Hz, frames per second).  To keep every model in the
framework consistent we fix the internal conventions here:

* **time** is carried in **milliseconds** (latency figures in the paper are in
  ms),
* **energy** is carried in **millijoules** (energy figures are in mJ),
* **power** is carried in **watts** (so ``energy_mJ = power_W * latency_ms``),
* **data sizes** are megabytes, **memory bandwidth** is GB/s, **throughput**
  is Mbps, **distances** are metres, **clock frequencies** are GHz.

Only this module knows the numeric conversion factors; every other module
converts through the helpers below so the factors never get duplicated.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Speed of light in vacuum (m/s) — used as the default propagation speed for
#: the wireless medium, matching the paper's ``c`` in Eqs. (6), (16), (18), (23).
SPEED_OF_LIGHT_M_PER_S: float = 299_792_458.0

#: Bytes occupied by one pixel of a YUV420 frame (12 bits/pixel).
YUV420_BYTES_PER_PIXEL: float = 1.5

#: Bytes occupied by one pixel of an RGB888 frame.
RGB_BYTES_PER_PIXEL: float = 3.0

#: Sampling period of the Monsoon power monitor used in the paper (0.2 ms).
POWER_MONITOR_SAMPLING_PERIOD_MS: float = 0.2

# ---------------------------------------------------------------------------
# Time conversions
# ---------------------------------------------------------------------------


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def hz_to_period_ms(frequency_hz: float) -> float:
    """Return the period in milliseconds of an event repeating at ``frequency_hz``.

    Used for frame-rate (``1/n_fps`` in Eq. 2) and sensor information
    generation frequency (``1/f_t`` in Eq. 6).

    Raises:
        ValueError: if ``frequency_hz`` is not strictly positive.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be > 0 Hz, got {frequency_hz}")
    return 1e3 / frequency_hz


def period_ms_to_hz(period_ms: float) -> float:
    """Return the frequency in Hz of an event with period ``period_ms``."""
    if period_ms <= 0.0:
        raise ValueError(f"period must be > 0 ms, got {period_ms}")
    return 1e3 / period_ms


# ---------------------------------------------------------------------------
# Data-size conversions
# ---------------------------------------------------------------------------


def bytes_to_mb(n_bytes: float) -> float:
    """Convert bytes to megabytes (10^6 bytes, consistent with MB/GB/s usage)."""
    return n_bytes / 1e6


def mb_to_bytes(megabytes: float) -> float:
    """Convert megabytes to bytes."""
    return megabytes * 1e6


def mb_to_megabits(megabytes: float) -> float:
    """Convert megabytes to megabits (for throughput calculations)."""
    return megabytes * 8.0


def frame_pixels(frame_side_px: float) -> float:
    """Number of pixels of a square frame whose side is ``frame_side_px``.

    The paper's sweeps express "frame size (pixel^2)" as a scalar in the
    300–700 range; we interpret that scalar as the side length of a square
    frame, so the pixel count is its square.
    """
    if frame_side_px <= 0.0:
        raise ValueError(f"frame side must be > 0 px, got {frame_side_px}")
    return frame_side_px * frame_side_px


def yuv_frame_size_mb(frame_side_px: float) -> float:
    """Data size (MB) of a raw YUV420 square frame of side ``frame_side_px``."""
    return bytes_to_mb(frame_pixels(frame_side_px) * YUV420_BYTES_PER_PIXEL)


def rgb_frame_size_mb(frame_side_px: float) -> float:
    """Data size (MB) of an RGB square frame of side ``frame_side_px``."""
    return bytes_to_mb(frame_pixels(frame_side_px) * RGB_BYTES_PER_PIXEL)


# ---------------------------------------------------------------------------
# Latency primitives
# ---------------------------------------------------------------------------


def memory_access_latency_ms(data_size_mb: float, bandwidth_gb_per_s: float) -> float:
    """Latency (ms) of moving ``data_size_mb`` over a ``bandwidth_gb_per_s`` memory bus.

    This is the ``delta / m`` term appearing throughout Section IV.
    """
    if bandwidth_gb_per_s <= 0.0:
        raise ValueError(f"memory bandwidth must be > 0 GB/s, got {bandwidth_gb_per_s}")
    if data_size_mb < 0.0:
        raise ValueError(f"data size must be >= 0 MB, got {data_size_mb}")
    # MB / (GB/s) = 1e-3 s = 1 ms per (MB / GBps)
    return data_size_mb / bandwidth_gb_per_s


def transmission_latency_ms(data_size_mb: float, throughput_mbps: float) -> float:
    """Latency (ms) of transmitting ``data_size_mb`` at ``throughput_mbps``.

    This is the ``delta / r_w`` term of Eqs. (16) and (18).
    """
    if throughput_mbps <= 0.0:
        raise ValueError(f"throughput must be > 0 Mbps, got {throughput_mbps}")
    if data_size_mb < 0.0:
        raise ValueError(f"data size must be >= 0 MB, got {data_size_mb}")
    return seconds_to_ms(mb_to_megabits(data_size_mb) / throughput_mbps)


def propagation_delay_ms(distance_m: float, speed_m_per_s: float = SPEED_OF_LIGHT_M_PER_S) -> float:
    """Propagation delay (ms) over ``distance_m`` at ``speed_m_per_s``.

    This is the ``d / c`` term of Eqs. (6), (16), (18) and (23).
    """
    if distance_m < 0.0:
        raise ValueError(f"distance must be >= 0 m, got {distance_m}")
    if speed_m_per_s <= 0.0:
        raise ValueError(f"propagation speed must be > 0 m/s, got {speed_m_per_s}")
    return seconds_to_ms(distance_m / speed_m_per_s)


# ---------------------------------------------------------------------------
# Energy primitives
# ---------------------------------------------------------------------------


def energy_mj(power_w: float, latency_ms: float) -> float:
    """Energy (mJ) consumed by drawing ``power_w`` for ``latency_ms``.

    ``W * ms == mJ`` exactly, which is why the framework carries power in
    watts and time in milliseconds.
    """
    if latency_ms < 0.0:
        raise ValueError(f"latency must be >= 0 ms, got {latency_ms}")
    return power_w * latency_ms


def db_to_linear(value_db: float) -> float:
    """Convert a dB quantity to linear scale."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear quantity to dB."""
    if value <= 0.0:
        raise ValueError(f"value must be > 0 to convert to dB, got {value}")
    return 10.0 * math.log10(value)
