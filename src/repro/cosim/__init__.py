"""repro.cosim — closed-loop fleet x adaptive co-simulation.

Composes the three layers PRs 1–3 built in isolation: every user of a
:class:`~repro.fleet.population.FleetPopulation` runs an adaptive
:class:`~repro.adaptive.controllers.Controller`, while the shared Wi-Fi
contention and edge GPU queueing are recomputed from the controllers' own
placement decisions each control epoch (bounded, damped best-response
iteration to a per-epoch fixed point).  Users are grouped into
``(device, app, controller, trace)`` equivalence classes so fleet size
costs NumPy arithmetic, not controller work.

Quickstart::

    from repro.cosim import CoSimulation
    from repro.adaptive import GreedyBatchSweep, step_trace
    from repro.fleet import homogeneous

    sim = CoSimulation(
        population=homogeneous(1000, device="XR1"),
        controller=GreedyBatchSweep(),
        trace=step_trace(200, seed=7),
    )
    print(sim.run().summary())
"""

from repro.cosim.engine import (
    ControllerLike,
    CoSimulation,
    CosimControlContext,
    TraceLike,
    run_cosim,
)
from repro.cosim.results import CosimReport, ShardedCosimReport

__all__ = [
    "CoSimulation",
    "CosimControlContext",
    "CosimReport",
    "ControllerLike",
    "ShardedCosimReport",
    "TraceLike",
    "run_cosim",
]
