"""Result containers for the closed-loop fleet x adaptive co-simulation.

A co-simulation run produces one :class:`~repro.adaptive.runtime
.AdaptationReport` per *equivalence class* (users sharing device,
application, controller and condition trace behave identically, so one
class-level timeline stands for all of them) plus fleet-level aggregates the
class reports cannot express: per-epoch latency percentiles across users,
the offload fraction the feedback loop settled on, edge utilisation, and
the per-epoch convergence diagnostics of the best-response iteration.

Degeneracies (asserted by the test suite):

* with a single user the sole class report **is** the single-user
  :class:`AdaptationReport` the :class:`~repro.adaptive.runtime
  .AdaptiveRuntime` would have produced, field for field;
* with every controller a :class:`~repro.adaptive.controllers
  .StaticBaseline` pinned to the users' own operating point, the per-epoch
  fleet aggregates equal :meth:`repro.fleet.analyzer.FleetAnalyzer.analyze`
  bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.adaptive.runtime import AdaptationReport
from repro.faults.report import FaultOutcome


@dataclass(frozen=True)
class CosimReport:
    """Aggregate outcome of one closed-loop co-simulation run.

    All per-epoch and per-user series are tuples, so two runs from identical
    inputs compare equal bit for bit (the determinism contract the bench
    suite asserts).

    Attributes:
        n_users / n_epochs / epoch_ms / deadline_ms / n_edges: run geometry.
        max_iterations: per-epoch best-response iteration budget.
        class_names: one label per equivalence class, in discovery order.
        class_sizes: number of users per class.
        class_reports: per-class adaptation reports; the per-epoch latency
            and energy of a class are the means over its users (exact when
            the class occupies a single edge — always at ``N == 1``).
        converged: per epoch, whether the best-response iteration reached a
            fixed point within ``max_iterations``.
        iterations: best-response iterations spent per epoch.
        offload_fraction: per epoch, fraction of users whose chosen
            operating point offloads.
        miss_fraction: per epoch, fraction of users over the deadline.
        p50_latency_ms / p95_latency_ms / p99_latency_ms: per-epoch latency
            percentiles across users (linear interpolation; order statistics
            when an edge is saturated, like :class:`repro.fleet.results
            .FleetReport`).
        mean_latency_ms: per-epoch mean per-user latency.
        total_energy_mj / mean_energy_mj: per-epoch per-frame device energy
            across / per user.
        mean_quality: per-epoch mean inference-quality proxy across users.
        max_edge_utilization: per-epoch maximum edge-server utilisation.
        user_names: user identifiers in population order.
        user_miss_rate: per-user fraction of epochs over the deadline.
        user_mean_latency_ms: per-user mean latency over the run.
        user_energy_j: per-user device energy integrated over all frames.
        user_switch_count: per-user operating-point switches.
        deadline_miss_rate: fraction of (user, epoch) samples over the
            deadline.
        fleet_p50_latency_ms / fleet_p95_latency_ms / fleet_p99_latency_ms:
            latency percentiles over all (user, epoch) samples (plain linear
            interpolation, matching :class:`AdaptationReport` so the
            single-user degeneracy holds).
        total_energy_j: fleet energy integrated over all frames of the run.
        mean_quality_overall: mean quality over all (user, epoch) samples.
        switch_count: total operating-point switches across all users.
        epoch_availability: per-epoch edge-pool capacity fraction (all ones
            when no fault schedule was active; empty on reports predating
            fault injection).
        faults: fault-conditioned recovery summary, or ``None`` when the
            run had no fault schedule.
    """

    n_users: int
    n_epochs: int
    epoch_ms: float
    deadline_ms: float
    n_edges: int
    max_iterations: int
    class_names: Tuple[str, ...]
    class_sizes: Tuple[int, ...]
    class_reports: Tuple[AdaptationReport, ...]
    converged: Tuple[bool, ...]
    iterations: Tuple[int, ...]
    offload_fraction: Tuple[float, ...]
    miss_fraction: Tuple[float, ...]
    p50_latency_ms: Tuple[float, ...]
    p95_latency_ms: Tuple[float, ...]
    p99_latency_ms: Tuple[float, ...]
    mean_latency_ms: Tuple[float, ...]
    total_energy_mj: Tuple[float, ...]
    mean_energy_mj: Tuple[float, ...]
    mean_quality: Tuple[float, ...]
    max_edge_utilization: Tuple[float, ...]
    user_names: Tuple[str, ...]
    user_miss_rate: Tuple[float, ...]
    user_mean_latency_ms: Tuple[float, ...]
    user_energy_j: Tuple[float, ...]
    user_switch_count: Tuple[int, ...]
    deadline_miss_rate: float
    fleet_p50_latency_ms: float
    fleet_p95_latency_ms: float
    fleet_p99_latency_ms: float
    total_energy_j: float
    mean_quality_overall: float
    switch_count: int
    epoch_availability: Tuple[float, ...] = ()
    faults: Optional[FaultOutcome] = None

    # -- fault diagnostics ----------------------------------------------------

    @property
    def availability(self) -> float:
        """Run-mean edge-pool capacity fraction (1.0 without faults)."""
        if self.faults is not None:
            return self.faults.availability
        if self.epoch_availability:
            return float(np.mean(self.epoch_availability))
        return 1.0

    @property
    def fault_miss_rate(self) -> float:
        """Mean miss fraction over faulted epochs (0.0 without faults)."""
        return self.faults.fault_miss_rate if self.faults is not None else 0.0

    @property
    def fault_epoch_fraction(self) -> float:
        """Fraction of epochs with any fault active (0.0 without faults)."""
        return self.faults.fault_epoch_fraction if self.faults is not None else 0.0

    @property
    def mean_time_to_recover_epochs(self) -> float:
        """Mean epochs-to-recover across fault windows (0.0 without faults)."""
        return (
            self.faults.mean_time_to_recover_epochs
            if self.faults is not None
            else 0.0
        )

    # -- convergence diagnostics ---------------------------------------------

    @property
    def all_converged(self) -> bool:
        """Whether every epoch's best-response iteration reached a fixed point."""
        return all(self.converged)

    @property
    def n_unconverged_epochs(self) -> int:
        """Number of epochs that exhausted the iteration budget."""
        return sum(1 for flag in self.converged if not flag)

    @property
    def convergence_rate(self) -> float:
        """Fraction of epochs whose best response reached a fixed point."""
        if not self.converged:
            return 1.0
        return sum(1 for flag in self.converged if flag) / len(self.converged)

    @property
    def mean_offload_fraction(self) -> float:
        """Run-mean fraction of users on the edge tier."""
        return float(np.mean(self.offload_fraction))

    def summary(self) -> str:
        """Multi-line human-readable summary of the co-simulation."""
        convergence = (
            "all epochs converged"
            if self.all_converged
            else f"{self.n_unconverged_epochs} of {self.n_epochs} epochs did NOT converge"
        )
        lines = [
            f"Co-simulation report — {self.n_users} users in "
            f"{len(self.class_reports)} class(es), {self.n_epochs} epochs x "
            f"{self.epoch_ms:.0f} ms, {self.n_edges} edge server(s)",
            f"  fixed point: {convergence} "
            f"(<= {self.max_iterations} best-response iterations/epoch)",
            f"  deadline ({self.deadline_ms:.0f} ms): "
            f"{self.deadline_miss_rate * 100.0:.1f}% of user-epochs missed",
            f"  latency: p50 {self.fleet_p50_latency_ms:.1f} ms, "
            f"p95 {self.fleet_p95_latency_ms:.1f} ms, "
            f"p99 {self.fleet_p99_latency_ms:.1f} ms",
            f"  offload fraction: {self.mean_offload_fraction * 100.0:.1f}% "
            f"(per-epoch mean), quality {self.mean_quality_overall:.3f}",
            f"  energy: {self.total_energy_j:.1f} J fleet total, "
            f"{self.switch_count} operating-point switches",
        ]
        if self.faults is not None:
            lines.append(f"  {self.faults.summary()}")
        for name, size, report in zip(
            self.class_names, self.class_sizes, self.class_reports
        ):
            lines.append(
                f"  [{name} x{size}] miss {report.deadline_miss_rate * 100.0:.1f}%, "
                f"p95 {report.p95_latency_ms:.1f} ms, "
                f"quality {report.mean_quality:.3f}, "
                f"{report.switch_count} switches"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-able form (used by the bench baseline and replay tests)."""
        return {
            "n_users": self.n_users,
            "n_epochs": self.n_epochs,
            "epoch_ms": self.epoch_ms,
            "deadline_ms": self.deadline_ms,
            "n_edges": self.n_edges,
            "max_iterations": self.max_iterations,
            "class_names": list(self.class_names),
            "class_sizes": list(self.class_sizes),
            "class_reports": [report.to_dict() for report in self.class_reports],
            "converged": list(self.converged),
            "iterations": list(self.iterations),
            "offload_fraction": list(self.offload_fraction),
            "miss_fraction": list(self.miss_fraction),
            "p50_latency_ms": list(self.p50_latency_ms),
            "p95_latency_ms": list(self.p95_latency_ms),
            "p99_latency_ms": list(self.p99_latency_ms),
            "mean_latency_ms": list(self.mean_latency_ms),
            "total_energy_mj": list(self.total_energy_mj),
            "mean_energy_mj": list(self.mean_energy_mj),
            "mean_quality": list(self.mean_quality),
            "max_edge_utilization": list(self.max_edge_utilization),
            "user_names": list(self.user_names),
            "user_miss_rate": list(self.user_miss_rate),
            "user_mean_latency_ms": list(self.user_mean_latency_ms),
            "user_energy_j": list(self.user_energy_j),
            "user_switch_count": list(self.user_switch_count),
            "deadline_miss_rate": self.deadline_miss_rate,
            "fleet_p50_latency_ms": self.fleet_p50_latency_ms,
            "fleet_p95_latency_ms": self.fleet_p95_latency_ms,
            "fleet_p99_latency_ms": self.fleet_p99_latency_ms,
            "total_energy_j": self.total_energy_j,
            "mean_quality_overall": self.mean_quality_overall,
            "switch_count": self.switch_count,
            "epoch_availability": list(self.epoch_availability),
            "faults": self.faults.to_dict() if self.faults is not None else None,
        }


@dataclass(frozen=True)
class ShardedCosimReport:
    """Merged outcome of independent per-cell co-simulation shards.

    Sharding partitions the fleet round-robin into ``n_shards`` independent
    cells (each with its own Wi-Fi channel and edge pool); the shards run in
    a process pool and merge deterministically in shard order.  Latency
    percentiles here are computed over the *per-user mean* latencies — the
    per-sample distributions live in the individual shard reports.

    Attributes:
        shards: the per-cell reports, in shard order.
        n_users: total users across shards.
        deadline_miss_rate: fraction of (user, epoch) samples missing the
            deadline, across all shards.
        fleet_p50_latency_ms / fleet_p95_latency_ms / fleet_p99_latency_ms:
            percentiles of the per-user mean latency across all shards.
        total_energy_j: fleet energy across shards.
        switch_count: total operating-point switches across shards.
        availability: mean per-shard edge-pool capacity fraction (1.0 when
            no shard ran under a fault schedule).
        fault_miss_rate: user-weighted mean miss fraction over faulted
            epochs across shards.
        fault_epoch_fraction: mean fraction of epochs with a fault active.
        mean_time_to_recover_epochs: mean per-shard time-to-recover.
    """

    shards: Tuple[CosimReport, ...]
    n_users: int
    deadline_miss_rate: float
    fleet_p50_latency_ms: float
    fleet_p95_latency_ms: float
    fleet_p99_latency_ms: float
    total_energy_j: float
    switch_count: int
    availability: float = 1.0
    fault_miss_rate: float = 0.0
    fault_epoch_fraction: float = 0.0
    mean_time_to_recover_epochs: float = 0.0

    @classmethod
    def from_shards(cls, shards: Tuple[CosimReport, ...]) -> "ShardedCosimReport":
        """Merge per-cell shard reports (deterministic in shard order)."""
        if not shards:
            raise ValueError("a sharded co-sim report needs at least one shard")
        user_means = np.concatenate(
            [np.asarray(shard.user_mean_latency_ms) for shard in shards]
        )
        user_miss = np.concatenate(
            [np.asarray(shard.user_miss_rate) for shard in shards]
        )
        # Users behind a saturated edge carry infinite means; order
        # statistics avoid inf - inf = nan, matching FleetReport.
        method = "linear" if np.isfinite(user_means).all() else "lower"
        p50, p95, p99 = (
            float(np.percentile(user_means, q, method=method)) for q in (50, 95, 99)
        )
        n_users = sum(shard.n_users for shard in shards)
        return cls(
            shards=tuple(shards),
            n_users=n_users,
            deadline_miss_rate=float(np.mean(user_miss)),
            fleet_p50_latency_ms=p50,
            fleet_p95_latency_ms=p95,
            fleet_p99_latency_ms=p99,
            total_energy_j=float(sum(shard.total_energy_j for shard in shards)),
            switch_count=sum(shard.switch_count for shard in shards),
            availability=float(
                np.mean([shard.availability for shard in shards])
            ),
            fault_miss_rate=float(
                sum(shard.fault_miss_rate * shard.n_users for shard in shards)
                / n_users
            ),
            fault_epoch_fraction=float(
                np.mean([shard.fault_epoch_fraction for shard in shards])
            ),
            mean_time_to_recover_epochs=float(
                np.mean([shard.mean_time_to_recover_epochs for shard in shards])
            ),
        )

    @property
    def n_shards(self) -> int:
        """Number of independent cells."""
        return len(self.shards)

    @property
    def all_converged(self) -> bool:
        """Whether every epoch of every shard reached a fixed point."""
        return all(shard.all_converged for shard in self.shards)

    @property
    def convergence_rate(self) -> float:
        """Fraction of (shard, epoch) best responses that reached a fixed point."""
        total = sum(len(shard.converged) for shard in self.shards)
        if not total:
            return 1.0
        converged = sum(
            sum(1 for flag in shard.converged if flag) for shard in self.shards
        )
        return converged / total

    def summary(self) -> str:
        """Multi-line human-readable summary across shards."""
        lines = [
            f"Sharded co-simulation — {self.n_users} users across "
            f"{self.n_shards} independent cells",
            f"  deadline misses: {self.deadline_miss_rate * 100.0:.1f}% of "
            f"user-epochs; per-user mean latency p50 "
            f"{self.fleet_p50_latency_ms:.1f} / p95 {self.fleet_p95_latency_ms:.1f} "
            f"/ p99 {self.fleet_p99_latency_ms:.1f} ms",
            f"  energy {self.total_energy_j:.1f} J, "
            f"{self.switch_count} switches, "
            f"{'all' if self.all_converged else 'NOT all'} epochs converged",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form."""
        return {
            "n_shards": self.n_shards,
            "n_users": self.n_users,
            "deadline_miss_rate": self.deadline_miss_rate,
            "fleet_p50_latency_ms": self.fleet_p50_latency_ms,
            "fleet_p95_latency_ms": self.fleet_p95_latency_ms,
            "fleet_p99_latency_ms": self.fleet_p99_latency_ms,
            "total_energy_j": self.total_energy_j,
            "switch_count": self.switch_count,
            "availability": self.availability,
            "fault_miss_rate": self.fault_miss_rate,
            "fault_epoch_fraction": self.fault_epoch_fraction,
            "mean_time_to_recover_epochs": self.mean_time_to_recover_epochs,
            "shards": [shard.to_dict() for shard in self.shards],
        }
