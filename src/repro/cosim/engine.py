"""Closed-loop co-simulation: an adaptive fleet that shapes its own channel.

PRs 1–3 built three layers that had never been composed: the fleet layer
(:mod:`repro.fleet`) freezes every user at a static operating point, and the
adaptive runtime (:mod:`repro.adaptive`) drives a single user against an
*exogenous* condition trace.  This engine closes the loop: every user in a
:class:`~repro.fleet.population.FleetPopulation` runs an adaptive
:class:`~repro.adaptive.controllers.Controller`, while the shared Wi-Fi
contention (:class:`~repro.fleet.contention.ContentionModel`) and the edge
GPU queueing (:class:`~repro.fleet.edge_scheduler.EdgeScheduler`) are
recomputed **from the controllers' own placement decisions** every control
epoch.

Fixed point per epoch
---------------------
Decisions determine load; load determines the conditions decisions are made
under.  Each epoch therefore runs a bounded best-response iteration: the
previous epoch's decisions seed a load estimate, every controller re-decides
against the implied (contended throughput, edge wait) conditions, and the
loop repeats until the decision vector stops changing or the iteration
budget is exhausted.  The endogenous quantities fed to the controllers are
relaxed between iterations (``damping``) to tame decision flapping; the
*charged* outcomes always use the exact loads implied by the final
decisions.  Every epoch's convergence flag and iteration count are recorded
on the :class:`~repro.cosim.results.CosimReport` — an adversarial fleet
whose best responses cycle is reported, not hidden.

Equivalence classes
-------------------
Users sharing ``(device, app, controller, trace)`` see identical conditions
and make identical decisions, so the engine simulates one representative
controller per class and multiplies: a 10k-user homogeneous fleet costs the
same controller work as a single user plus O(users) NumPy arithmetic per
epoch.  Candidate evaluation inside each class goes through the vectorized
batch engine (:func:`repro.batch.evaluate_points`) via the pre-warmed
:class:`~repro.adaptive.runtime.ControlContext` sweep cache.

Degeneracies
------------
* ``N == 1``: contention leaves the channel untouched and a sole tenant
  waits zero, so the run reduces to :meth:`repro.adaptive.runtime
  .AdaptiveRuntime.run` and the class report equals its
  :class:`AdaptationReport` field for field.
* every controller a :class:`~repro.adaptive.controllers.StaticBaseline`
  pinned to the users' own operating point: decisions never move, the loop
  converges immediately, and the per-epoch fleet aggregates reproduce
  :meth:`repro.fleet.analyzer.FleetAnalyzer.analyze` bit for bit (same
  contended throughput, same per-edge accumulation order, same tagged
  M/G/1 waits).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.adaptive.controllers import Controller
from repro.adaptive.runtime import (
    AdaptationReport,
    CandidateEvaluation,
    ControlContext,
    EpochOutcome,
    build_adaptation_report,
    default_candidates,
)
from repro.adaptive.traces import ConditionTrace, EpochConditions
from repro.batch.grid import OperatingPoint
from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.device import EdgeServerSpec
from repro.config.network import NetworkConfig
from repro.core.coefficients import CoefficientSet
from repro.core.framework import XRPerformanceModel
from repro.cosim.results import CosimReport, ShardedCosimReport
from repro.exceptions import ConfigurationError
from repro.exec import resolve_backend
from repro.faults.report import fault_outcome
from repro.faults.schedule import EpochFaultState, FaultInjector, FaultSchedule
from repro.fleet.contention import ContentionModel
from repro.fleet.edge_scheduler import EdgeScheduler
from repro.fleet.population import FleetPopulation, UserProfile
from repro.simulation.des import EventScheduler

#: Per-user controller specification: one shared template instance, a
#: mapping from user name to controller, or a factory called per user.
ControllerLike = Union[
    Controller,
    Mapping[str, Controller],
    Callable[[UserProfile], Controller],
]

#: Per-user exogenous trace specification, mirroring :data:`ControllerLike`.
TraceLike = Union[
    ConditionTrace,
    Mapping[str, ConditionTrace],
    Callable[[UserProfile], ConditionTrace],
]


class CosimControlContext(ControlContext):
    """A :class:`ControlContext` whose sweeps carry the fleet's edge wait.

    The engine sets :attr:`decision_wait_ms` before every controller
    decision; offloading candidates are then charged that wait on top of
    their closed-form latency (plus the radio-idle energy of waiting), so
    deadline-first selection sees the queueing the rest of the fleet causes.
    A wait of zero returns the memoized base evaluation object untouched —
    the fast path that keeps the ``N == 1`` degeneracy bit-exact.
    """

    def __init__(self, *args, radio_idle_power_w: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.offload_mask = np.asarray(
            [
                point.app.inference.mode is not ExecutionMode.LOCAL
                for point in self.candidates
            ]
        )
        self.radio_idle_power_w = float(radio_idle_power_w)
        #: Edge queueing delay applied to offloading candidates during the
        #: current decision (set by the co-sim engine each iteration).
        self.decision_wait_ms = 0.0

    def sweep(self, conditions: EpochConditions) -> CandidateEvaluation:
        base = super().sweep(conditions)
        wait = self.decision_wait_ms
        if wait == 0.0:
            return base
        if math.isinf(wait):
            # A saturated edge has no steady state: offloading candidates
            # are infinitely late, and no waiting energy is charged (the
            # same convention as the fleet analyzer).
            latency = np.where(self.offload_mask, math.inf, base.latency_ms)
            energy = base.energy_mj
        else:
            latency = np.where(
                self.offload_mask, base.latency_ms + wait, base.latency_ms
            )
            energy = np.where(
                self.offload_mask,
                base.energy_mj + self.radio_idle_power_w * wait,
                base.energy_mj,
            )
        return CandidateEvaluation(
            latency_ms=latency, energy_mj=energy, min_roi=base.min_roi
        )


@dataclass
class _UserClass:
    """One equivalence class: users that are simulated by a single proxy."""

    name: str
    device: str
    app: ApplicationConfig
    template: Controller
    trace: ConditionTrace
    user_indices: List[int] = field(default_factory=list)
    context: CosimControlContext = None  # type: ignore[assignment]
    controller: Controller = None  # type: ignore[assignment]
    arrival_per_ms: np.ndarray = None  # type: ignore[assignment]
    service_ms: np.ndarray = None  # type: ignore[assignment]
    frames_per_epoch: np.ndarray = None  # type: ignore[assignment]
    service_ref_ms: float = 1.0
    outcomes: List[EpochOutcome] = field(default_factory=list)

    @property
    def n_users(self) -> int:
        return len(self.user_indices)


@dataclass
class _EpochLoads:
    """Exact fleet loads implied by one decision vector."""

    n_offloaded: int
    wait_user_ms: np.ndarray
    edge_rate: np.ndarray
    edge_busy: np.ndarray
    class_wait_ms: Dict[Tuple[int, int], float]


class CoSimulation:
    """Closed-loop co-simulation of an adaptive multi-user XR fleet.

    Args:
        population: the fleet's users.
        controller: controller specification — a single template instance
            (deep-copied per equivalence class), a mapping from user name to
            controller, or a factory called once per user.  Users given the
            *same* controller object (and device, app, trace) form one
            equivalence class and are simulated by a single proxy; a factory
            returning fresh instances therefore opts a user out of sharing.
        trace: exogenous per-user condition timeline(s) — the channel each
            user would see absent the rest of the fleet (fading, mobility
            handoffs, non-fleet contenders).  Same sharing semantics as
            ``controller``.  All traces must agree on epoch count/length.
        edge: edge server model shared by the ``n_edges`` servers.
        n_edges: number of identical edge servers behind the cell.
        network: base network configuration of the shared channel.
        contention: Wi-Fi contention model fed back from the offload count
            (defaults to one wrapping ``network``).
        scheduler: edge GPU queueing model.
        deadline_ms: per-frame end-to-end latency budget.
        objective: candidate-selection objective inside each class.
        candidates: explicit operating points shared by every class; None
            derives :func:`~repro.adaptive.runtime.default_candidates` from
            each class's device/app.
        coefficients / complexity_mode / include_aoi: forwarded to the batch
            evaluation contexts.
        max_iterations: best-response iteration budget per epoch (>= 2 so a
            fixed point can be verified).
        damping: relaxation factor in (0, 1] applied to the endogenous
            throughput/wait between iterations (1.0 = undamped best
            response).  Charged outcomes always use undamped final loads.
        prewarm: pre-fill each class's sweep cache for its exogenous trace
            with one batched call.
        faults: optional :class:`~repro.faults.schedule.FaultSchedule`
            injected into the closed loop — dead edges leave the
            round-robin deal, brownouts and straggler windows inflate the
            affected edges' service times, and link degradation scales the
            exogenous channel before contention; controllers see the
            faulted conditions and react.  The report then carries a
            :class:`~repro.faults.report.FaultOutcome` with per-window miss
            rates and time-to-recover.  ``None`` (the default) is bit-exact
            with the pre-fault engine.
    """

    def __init__(
        self,
        population: FleetPopulation,
        controller: ControllerLike,
        trace: TraceLike,
        *,
        edge: Union[str, EdgeServerSpec] = "EDGE-AGX",
        n_edges: int = 1,
        network: Optional[NetworkConfig] = None,
        contention: Optional[ContentionModel] = None,
        scheduler: Optional[EdgeScheduler] = None,
        deadline_ms: float = 700.0,
        objective: str = "quality",
        candidates: Optional[Sequence[OperatingPoint]] = None,
        coefficients: Optional[CoefficientSet] = None,
        complexity_mode: str = "paper",
        include_aoi: bool = True,
        max_iterations: int = 8,
        damping: float = 0.5,
        prewarm: bool = True,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if n_edges < 1:
            raise ConfigurationError(f"need at least one edge server, got {n_edges}")
        if max_iterations < 2:
            raise ConfigurationError(
                f"max_iterations must be >= 2 to verify a fixed point, "
                f"got {max_iterations}"
            )
        if not 0.0 < damping <= 1.0:
            raise ConfigurationError(f"damping must be in (0, 1], got {damping}")
        self.population = (
            population
            if isinstance(population, FleetPopulation)
            else FleetPopulation(users=tuple(population))
        )
        self.edge = edge
        self.n_edges = n_edges
        self.network = network if network is not None else NetworkConfig()
        self.contention = (
            contention if contention is not None else ContentionModel(network=self.network)
        )
        self.scheduler = scheduler if scheduler is not None else EdgeScheduler()
        self.deadline_ms = float(deadline_ms)
        self.objective = objective
        self.coefficients = (
            coefficients if coefficients is not None else CoefficientSet.paper()
        )
        self.complexity_mode = complexity_mode
        self.include_aoi = include_aoi
        self.max_iterations = int(max_iterations)
        self.damping = float(damping)
        self.faults = faults
        # Validates edge targets against the pool up front and memoizes the
        # per-epoch composed states.
        self._injector = (
            FaultInjector(faults, n_edges) if faults is not None else None
        )

        self._n_users = len(self.population)
        self._models: Dict[object, XRPerformanceModel] = {}
        self._share_cache: Dict[int, float] = {}
        self._classes, self._class_of_user = self._build_classes(
            controller, trace, candidates, prewarm
        )
        self._user_arrays = [
            np.asarray(cls.user_indices, dtype=np.intp) for cls in self._classes
        ]

    # -- construction ---------------------------------------------------------

    @staticmethod
    def _resolve(spec, user: UserProfile, kind: str):
        if isinstance(spec, Mapping):
            try:
                return spec[user.name]
            except KeyError:
                raise ConfigurationError(
                    f"no {kind} given for user {user.name!r}"
                ) from None
        if isinstance(spec, ConditionTrace):
            return spec
        if callable(spec) and not isinstance(spec, Controller):
            return spec(user)
        return spec

    def _model_for(self, device) -> XRPerformanceModel:
        key = device if isinstance(device, str) else id(device)
        model = self._models.get(key)
        if model is None:
            model = XRPerformanceModel(
                device=device,
                edge=self.edge,
                coefficients=self.coefficients,
                complexity_mode=self.complexity_mode,
            )
            self._models[key] = model
        return model

    def _build_classes(
        self,
        controller: ControllerLike,
        trace: TraceLike,
        candidates: Optional[Sequence[OperatingPoint]],
        prewarm: bool,
    ) -> Tuple[List[_UserClass], np.ndarray]:
        classes: List[_UserClass] = []
        class_of_user = np.empty(self._n_users, dtype=np.intp)
        key_to_index: Dict[tuple, int] = {}
        for index, user in enumerate(self.population):
            user_controller = self._resolve(controller, user, "controller")
            user_trace = self._resolve(trace, user, "trace")
            if not isinstance(user_trace, ConditionTrace):
                raise ConfigurationError(
                    f"cannot interpret {user_trace!r} as a condition trace"
                )
            key = (user.device, user.app, id(user_controller), id(user_trace))
            cls_index = key_to_index.get(key)
            if cls_index is None:
                cls_index = len(classes)
                key_to_index[key] = cls_index
                classes.append(
                    _UserClass(
                        name=f"{user.device}/{getattr(user_controller, 'name', 'controller')}"
                        f"#{cls_index}",
                        device=user.device,
                        app=user.app,
                        template=user_controller,
                        trace=user_trace,
                    )
                )
            classes[cls_index].user_indices.append(index)
            class_of_user[index] = cls_index
        reference = classes[0].trace
        for cls in classes:
            if (
                cls.trace.n_epochs != reference.n_epochs
                or cls.trace.epoch_ms != reference.epoch_ms
            ):
                raise ConfigurationError(
                    "all class traces must share the same epoch count and length; "
                    f"got {cls.trace.n_epochs} x {cls.trace.epoch_ms} ms vs "
                    f"{reference.n_epochs} x {reference.epoch_ms} ms"
                )
        for cls in classes:
            cls_candidates = (
                tuple(candidates)
                if candidates is not None
                else default_candidates(
                    device=cls.device, edge=self.edge, app=cls.app, network=self.network
                )
            )
            cls.context = CosimControlContext(
                candidates=cls_candidates,
                deadline_ms=self.deadline_ms,
                objective=self.objective,
                coefficients=self.coefficients,
                complexity_mode=self.complexity_mode,
                include_aoi=self.include_aoi,
                radio_idle_power_w=self.network.radio_idle_power_w,
            )
            cls.arrival_per_ms = np.asarray(
                [point.app.frame_rate_fps / 1e3 for point in cls_candidates]
            )
            service = np.zeros(len(cls_candidates))
            for i, point in enumerate(cls_candidates):
                if cls.context.offload_mask[i]:
                    # The same per-frame edge busy time the fleet analyzer
                    # charges (memoized per device model).
                    service[i] = self._model_for(
                        point.device
                    ).latency_model.remote_inference_ms(point.app)
            cls.service_ms = service
            offloading = service[cls.context.offload_mask]
            cls.service_ref_ms = float(offloading.min()) if offloading.size else 1.0
            cls.frames_per_epoch = np.asarray(
                [
                    cls.trace.epoch_ms / point.app.frame_period_ms
                    for point in cls_candidates
                ]
            )
            if prewarm:
                cls.context.prewarm(cls.trace)
        return classes, class_of_user

    # -- endogenous conditions ------------------------------------------------

    def _share(self, n_offloaded: int) -> float:
        share = self._share_cache.get(n_offloaded)
        if share is None:
            share = self.contention.per_user_throughput_mbps(n_offloaded)
            self._share_cache[n_offloaded] = share
        return share

    def _endogenous(self, base: EpochConditions, n_offloaded: int) -> EpochConditions:
        """Fold the fleet's contention into one user's exogenous conditions.

        The effective throughput is the binding constraint of the user's own
        channel (fading, mobility, background stations) and the fleet's fair
        contended share: ``min(exogenous, share(n_offloaded))``.  With at
        most one offloader the exogenous conditions pass through untouched —
        the ``N == 1`` degeneracy — and when the fleet share binds the value
        equals :meth:`ContentionModel.per_user_throughput_mbps` exactly,
        which is what the static-fleet degeneracy relies on.
        """
        if n_offloaded <= 1:
            return base
        share = self._share(n_offloaded)
        if share >= base.throughput_mbps:
            return base
        return replace(base, throughput_mbps=share, n_contenders=n_offloaded)

    def _damp(self, previous: Optional[float], new: float) -> float:
        if (
            previous is None
            or previous == new
            or self.damping >= 1.0
            or math.isinf(new)
            or math.isinf(previous)
        ):
            return new
        return self.damping * new + (1.0 - self.damping) * previous

    # -- loads ----------------------------------------------------------------

    def _loads(
        self,
        decisions: Sequence[Optional[int]],
        fault_state: Optional[EpochFaultState] = None,
    ) -> _EpochLoads:
        """Edge loads and per-user waits implied by a decision vector.

        Replicates ``FleetAnalyzer.analyze`` operation for operation: users
        whose chosen candidate offloads are dealt round-robin onto the edge
        servers in population order, each edge's offered load accumulates in
        that order (``np.cumsum`` preserves the scalar addition order), and
        every tenant's wait is the tagged M/G/1 wait of the *other* tenants'
        load — ``inf`` when the edge's aggregate load is unstable.

        Under a fault state, dead edges leave the round-robin deal (the
        survivors absorb the load) and each surviving edge's busy fraction
        and waits are scaled by its effective service multiplier
        (brownout/straggler).  With every edge dead, offloaders wait
        forever.  A scale of exactly 1.0 leaves every float untouched, so
        the no-fault path is bit-identical to the pre-fault engine.
        """
        classes = self._classes
        offload_c = np.asarray(
            [
                decision is not None and bool(cls.context.offload_mask[decision])
                for cls, decision in zip(classes, decisions)
            ]
        )
        rate_c = np.asarray(
            [
                cls.arrival_per_ms[decision] if offloads else 0.0
                for cls, decision, offloads in zip(classes, decisions, offload_c)
            ]
        )
        service_c = np.asarray(
            [
                cls.service_ms[decision] if offloads else 0.0
                for cls, decision, offloads in zip(classes, decisions, offload_c)
            ]
        )
        wait_user = np.zeros(self._n_users)
        edge_rate = np.zeros(self.n_edges)
        edge_busy = np.zeros(self.n_edges)
        class_wait: Dict[Tuple[int, int], float] = {}
        user_offloads = offload_c[self._class_of_user]
        offloader_indices = np.flatnonzero(user_offloads)
        n_offloaded = int(offloader_indices.size)
        if n_offloaded:
            offloader_classes = self._class_of_user[offloader_indices]
            alive = (
                np.asarray(fault_state.alive_edges, dtype=np.intp)
                if fault_state is not None
                else np.arange(self.n_edges, dtype=np.intp)
            )
            if alive.size == 0:
                # Every edge is down: offloaded frames never complete.
                wait_user[offloader_indices] = math.inf
                for cls_index in np.unique(offloader_classes):
                    class_wait[(int(cls_index), 0)] = math.inf
                return _EpochLoads(
                    n_offloaded=n_offloaded,
                    wait_user_ms=wait_user,
                    edge_rate=edge_rate,
                    edge_busy=edge_busy,
                    class_wait_ms=class_wait,
                )
            edges = alive[np.arange(n_offloaded, dtype=np.intp) % alive.size]
            rate_u = rate_c[offloader_classes]
            busy_u = rate_u * service_c[offloader_classes]
            for edge_index in range(self.n_edges):
                mask = edges == edge_index
                if mask.any():
                    scale = (
                        fault_state.service_scale(edge_index)
                        if fault_state is not None
                        else 1.0
                    )
                    edge_rate[edge_index] = np.cumsum(rate_u[mask])[-1]
                    edge_busy[edge_index] = np.cumsum(busy_u[mask])[-1] * scale
            for cls_index in np.unique(offloader_classes):
                own_rate = float(rate_c[cls_index])
                own_service = float(service_c[cls_index])
                cls_mask = offloader_classes == cls_index
                for edge_index in np.unique(edges[cls_mask]):
                    scale = (
                        fault_state.service_scale(edge_index)
                        if fault_state is not None
                        else 1.0
                    )
                    own_busy = own_rate * own_service * scale
                    if edge_busy[edge_index] >= 1.0:
                        wait = math.inf
                    else:
                        background = max(edge_rate[edge_index] - own_rate, 0.0)
                        background_busy = max(edge_busy[edge_index] - own_busy, 0.0)
                        wait = self.scheduler.tagged_waiting_time_ms(
                            own_service * scale,
                            background,
                            background_busy / background if background > 0.0 else None,
                        )
                    class_wait[(int(cls_index), int(edge_index))] = wait
                    pair_mask = cls_mask & (edges == edge_index)
                    wait_user[offloader_indices[pair_mask]] = wait
        return _EpochLoads(
            n_offloaded=n_offloaded,
            wait_user_ms=wait_user,
            edge_rate=edge_rate,
            edge_busy=edge_busy,
            class_wait_ms=class_wait,
        )

    def _decision_wait(
        self,
        cls_index: int,
        loads: _EpochLoads,
        fault_state: Optional[EpochFaultState] = None,
    ) -> float:
        """The edge wait class ``cls_index`` should decide against.

        A class currently offloading sees the worst wait across the edges
        its users occupy (conservative when round robin splits the class).
        A class currently local sees the wait a marginal tenant would face
        on the least-loaded edge given everyone else's load — zero on an
        idle deployment, so the single-user degeneracy is unaffected.
        Under a fault state dead edges are out of bounds for the marginal
        tenant (infinite wait when every edge is dead), and the tenant's
        reference service time is scaled like the loads are.
        """
        waits = [
            wait
            for (ci, _), wait in loads.class_wait_ms.items()
            if ci == cls_index
        ]
        if waits:
            return max(waits)
        if fault_state is not None:
            if fault_state.n_edges_alive == 0:
                return math.inf
            masked_busy = np.where(
                np.asarray(fault_state.edge_capacity) > 0.0,
                loads.edge_busy,
                math.inf,
            )
            edge_index = int(np.argmin(masked_busy))
        else:
            edge_index = int(np.argmin(loads.edge_busy))
        if loads.edge_busy[edge_index] >= 1.0:
            return math.inf
        rate = float(loads.edge_rate[edge_index])
        if rate <= 0.0:
            return 0.0
        scale = (
            fault_state.service_scale(edge_index) if fault_state is not None else 1.0
        )
        return self.scheduler.tagged_waiting_time_ms(
            self._classes[cls_index].service_ref_ms * scale,
            rate,
            float(loads.edge_busy[edge_index]) / rate,
        )

    # -- the epoch loop -------------------------------------------------------

    def _decide_round(
        self,
        epoch: int,
        base: Sequence[EpochConditions],
        snapshots: Sequence[Controller],
        loads: _EpochLoads,
        wait_ms: Sequence[float],
        throughput_mbps: Sequence[float],
    ) -> List[int]:
        """One synchronized decision round under the given per-class conditions.

        Every controller is restored from its epoch-start snapshot first:
        the fixed-point search may call ``decide`` several times per epoch,
        but controller state must advance exactly once per epoch.
        """
        decisions: List[int] = []
        for cls_index, cls in enumerate(self._classes):
            conditions = self._endogenous(base[cls_index], loads.n_offloaded)
            if throughput_mbps[cls_index] != conditions.throughput_mbps:
                conditions = replace(
                    conditions, throughput_mbps=throughput_mbps[cls_index]
                )
            cls.controller = copy.deepcopy(snapshots[cls_index])
            cls.context.decision_wait_ms = wait_ms[cls_index]
            index = int(cls.controller.decide(epoch, conditions, cls.context))
            if not 0 <= index < cls.context.n_candidates:
                raise ConfigurationError(
                    f"controller {cls.controller.name!r} chose candidate "
                    f"{index}, but only {cls.context.n_candidates} exist"
                )
            decisions.append(index)
        return decisions

    def run(self) -> CosimReport:
        """Drive the closed loop over every epoch on the shared DES clock."""
        with telemetry.get().span(
            "cosim.run",
            users=self._n_users,
            epochs=self._classes[0].trace.n_epochs,
            classes=len(self._classes),
        ):
            return self._run()

    def _run(self) -> CosimReport:
        classes = self._classes
        n_users = self._n_users
        n_epochs = classes[0].trace.n_epochs
        epoch_ms = classes[0].trace.epoch_ms
        for cls in classes:
            cls.controller = copy.deepcopy(cls.template)
            cls.context.decision_wait_ms = 0.0
            cls.controller.reset(cls.context)
            cls.outcomes = []
        self._prev_decisions: List[Optional[int]] = [None] * len(classes)

        user_miss = np.zeros(n_users)
        user_latency_sum = np.zeros(n_users)
        user_energy_j = np.zeros(n_users)
        series: Dict[str, list] = {
            name: []
            for name in (
                "converged",
                "iterations",
                "offload_fraction",
                "miss_fraction",
                "p50",
                "p95",
                "p99",
                "mean_latency",
                "total_energy",
                "mean_energy",
                "mean_quality",
                "max_rho",
                "availability",
            )
        }
        sample_values: List[np.ndarray] = []
        sample_counts: List[np.ndarray] = []

        def step(scheduler: EventScheduler) -> None:
            epoch = len(series["converged"])
            self._run_epoch(
                epoch,
                scheduler.now_ms,
                user_miss,
                user_latency_sum,
                user_energy_j,
                series,
                sample_values,
                sample_counts,
            )
            if epoch + 1 < n_epochs:
                scheduler.schedule_in(epoch_ms, step)

        clock = EventScheduler()
        clock.schedule_at(0.0, step)
        clock.run(max_events=n_epochs + 1)

        class_reports: List[AdaptationReport] = []
        user_switches = np.zeros(n_users, dtype=int)
        for cls, user_array in zip(classes, self._user_arrays):
            report = build_adaptation_report(
                cls.controller.name,
                cls.trace,
                cls.context,
                cls.frames_per_epoch,
                cls.outcomes,
            )
            class_reports.append(report)
            user_switches[user_array] = report.switch_count

        all_samples = np.repeat(
            np.concatenate(sample_values), np.concatenate(sample_counts)
        )
        # Saturated-fleet samples are infinite; linear interpolation would
        # produce inf - inf = nan, so fall back to order statistics exactly
        # like FleetReport.  At N == 1 no queueing exists, every sample is
        # finite, and the plain linear path preserves the AdaptationReport
        # degeneracy.
        method = "linear" if np.isfinite(all_samples).all() else "lower"
        fleet_p50, fleet_p95, fleet_p99 = (
            float(np.percentile(all_samples, q, method=method)) for q in (50, 95, 99)
        )
        return CosimReport(
            n_users=n_users,
            n_epochs=n_epochs,
            epoch_ms=epoch_ms,
            deadline_ms=self.deadline_ms,
            n_edges=self.n_edges,
            max_iterations=self.max_iterations,
            class_names=tuple(cls.name for cls in classes),
            class_sizes=tuple(cls.n_users for cls in classes),
            class_reports=tuple(class_reports),
            converged=tuple(series["converged"]),
            iterations=tuple(series["iterations"]),
            offload_fraction=tuple(series["offload_fraction"]),
            miss_fraction=tuple(series["miss_fraction"]),
            p50_latency_ms=tuple(series["p50"]),
            p95_latency_ms=tuple(series["p95"]),
            p99_latency_ms=tuple(series["p99"]),
            mean_latency_ms=tuple(series["mean_latency"]),
            total_energy_mj=tuple(series["total_energy"]),
            mean_energy_mj=tuple(series["mean_energy"]),
            mean_quality=tuple(series["mean_quality"]),
            max_edge_utilization=tuple(series["max_rho"]),
            user_names=tuple(user.name for user in self.population),
            user_miss_rate=tuple(float(v) for v in user_miss / n_epochs),
            user_mean_latency_ms=tuple(float(v) for v in user_latency_sum / n_epochs),
            user_energy_j=tuple(float(v) for v in user_energy_j),
            user_switch_count=tuple(int(v) for v in user_switches),
            deadline_miss_rate=float(np.sum(user_miss) / (n_users * n_epochs)),
            fleet_p50_latency_ms=fleet_p50,
            fleet_p95_latency_ms=fleet_p95,
            fleet_p99_latency_ms=fleet_p99,
            total_energy_j=float(np.sum(user_energy_j)),
            mean_quality_overall=float(np.mean(series["mean_quality"])),
            switch_count=int(np.sum(user_switches)),
            epoch_availability=tuple(series["availability"]),
            faults=fault_outcome(self.faults, self.n_edges, series["miss_fraction"]),
        )

    def _run_epoch(
        self,
        epoch: int,
        now_ms: float,
        user_miss: np.ndarray,
        user_latency_sum: np.ndarray,
        user_energy_j: np.ndarray,
        series: Dict[str, list],
        sample_values: List[np.ndarray],
        sample_counts: List[np.ndarray],
    ) -> None:
        classes = self._classes
        fault_state = (
            self._injector.state(epoch) if self._injector is not None else None
        )
        base = [cls.trace[epoch] for cls in classes]
        if fault_state is not None:
            # Link degradation reshapes the exogenous channel *before*
            # contention; edge-side faults act through the loads below.
            base = [fault_state.apply_to_conditions(c) for c in base]
        snapshots = [copy.deepcopy(cls.controller) for cls in classes]
        decisions: List[Optional[int]] = list(self._prev_decisions)
        prev_wait: List[Optional[float]] = [None] * len(classes)
        prev_thr: List[Optional[float]] = [None] * len(classes)
        converged = False
        iterations = 0
        loads: Optional[_EpochLoads] = None
        # Whether `loads` was computed for the current `decisions` vector
        # (lets the charging step below skip a recomputation).
        loads_current = False
        registry = telemetry.get()
        n_blends = 0

        while iterations < self.max_iterations:
            iterations += 1
            loads = self._loads(decisions, fault_state)
            loads_current = True
            exact_wait = [
                self._decision_wait(cls_index, loads, fault_state)
                for cls_index in range(len(classes))
            ]
            exact_thr = [
                self._endogenous(base[cls_index], loads.n_offloaded).throughput_mbps
                for cls_index in range(len(classes))
            ]
            used_wait = [
                self._damp(previous, exact)
                for previous, exact in zip(prev_wait, exact_wait)
            ]
            used_thr = [
                self._damp(previous, exact)
                for previous, exact in zip(prev_thr, exact_thr)
            ]
            if registry.enabled:
                n_blends += sum(
                    used != exact for used, exact in zip(used_wait, exact_wait)
                )
                n_blends += sum(
                    used != exact for used, exact in zip(used_thr, exact_thr)
                )
            prev_wait, prev_thr = used_wait, used_thr
            new_decisions = self._decide_round(
                epoch, base, snapshots, loads, used_wait, used_thr
            )
            if new_decisions != decisions:
                decisions = new_decisions
                loads_current = False
                continue
            if used_wait == exact_wait and used_thr == exact_thr:
                # The stable decisions were made against their own exact
                # implied conditions: a genuine best-response fixed point.
                converged = True
                break
            # Decisions are stable only under the *damped* conditions, which
            # may be a relaxation artifact (e.g. a blended throughput parked
            # inside a hysteresis dead band).  Spend one iteration verifying
            # against the exact implied conditions before declaring a fixed
            # point.
            if iterations >= self.max_iterations:
                break
            iterations += 1
            verification = self._decide_round(
                epoch, base, snapshots, loads, exact_wait, exact_thr
            )
            prev_wait, prev_thr = list(exact_wait), list(exact_thr)
            if verification == decisions:
                converged = True
                break
            decisions = verification
            loads_current = False
        self._prev_decisions = decisions

        if registry.enabled:
            registry.add("cosim.epochs")
            if converged:
                registry.add("cosim.epochs_converged")
            else:
                registry.add("cosim.epochs_unconverged")
                if not loads_current:
                    # The budget ran out with decisions still moving in the
                    # final round: a best-response cycle, not a stable-but-
                    # unverified point.
                    registry.add("cosim.epochs_oscillating")
            registry.add("cosim.best_response_iterations", iterations)
            registry.add("cosim.damping_blends", n_blends)
            registry.record("cosim.iterations_per_epoch", iterations)
            if fault_state is not None and fault_state.any_fault:
                registry.add("faults.epochs_faulted")
                registry.add(
                    "faults.edges_dead",
                    fault_state.n_edges - fault_state.n_edges_alive,
                )

        # Charge outcomes with the exact (undamped) loads of the final
        # decisions — the realised regime, self-consistent when converged.
        # Every converged exit leaves `loads` computed for exactly this
        # decision vector; only budget-exhausted exits need a recomputation.
        if not loads_current:
            loads = self._loads(decisions, fault_state)
        n_classes = len(classes)
        latency_c = np.empty(n_classes)
        energy_c = np.empty(n_classes)
        quality_c = np.empty(n_classes)
        frames_c = np.empty(n_classes)
        roi_c: List[Optional[float]] = [None] * n_classes
        final_conditions: List[EpochConditions] = []
        for cls_index, cls in enumerate(classes):
            conditions = self._endogenous(base[cls_index], loads.n_offloaded)
            final_conditions.append(conditions)
            cls.context.decision_wait_ms = 0.0
            evaluation = cls.context.sweep(conditions)
            index = decisions[cls_index]
            latency_c[cls_index] = evaluation.latency_ms[index]
            energy_c[cls_index] = evaluation.energy_mj[index]
            quality_c[cls_index] = cls.context.quality[index]
            frames_c[cls_index] = cls.frames_per_epoch[index]
            if evaluation.min_roi is not None:
                roi_c[cls_index] = float(evaluation.min_roi[index])

        class_ids = self._class_of_user
        wait_user = loads.wait_user_ms
        latency_user = latency_c[class_ids] + wait_user
        wait_energy = np.where(
            np.isinf(wait_user), 0.0, self.network.radio_idle_power_w * wait_user
        )
        energy_user = energy_c[class_ids] + wait_energy
        missed_user = latency_user > self.deadline_ms

        user_miss += missed_user
        user_latency_sum += latency_user
        user_energy_j += energy_user * frames_c[class_ids] / 1e3

        method = "linear" if np.isfinite(latency_user).all() else "lower"
        series["converged"].append(converged)
        series["iterations"].append(iterations)
        series["offload_fraction"].append(loads.n_offloaded / self._n_users)
        series["miss_fraction"].append(float(np.mean(missed_user)))
        for name, q in (("p50", 50), ("p95", 95), ("p99", 99)):
            series[name].append(float(np.percentile(latency_user, q, method=method)))
        series["mean_latency"].append(float(np.mean(latency_user)))
        series["total_energy"].append(float(np.sum(energy_user)))
        series["mean_energy"].append(float(np.mean(energy_user)))
        series["mean_quality"].append(float(np.mean(quality_c[class_ids])))
        series["max_rho"].append(float(loads.edge_busy.max()))
        series["availability"].append(
            fault_state.availability if fault_state is not None else 1.0
        )
        values, counts = np.unique(latency_user, return_counts=True)
        sample_values.append(values)
        sample_counts.append(counts)

        for cls_index, (cls, user_array) in enumerate(
            zip(classes, self._user_arrays)
        ):
            mean_latency = float(np.mean(latency_user[user_array]))
            outcome = EpochOutcome(
                epoch=epoch,
                time_ms=now_ms,
                index=decisions[cls_index],
                latency_ms=mean_latency,
                energy_mj=float(np.mean(energy_user[user_array])),
                quality=float(quality_c[cls_index]),
                deadline_missed=mean_latency > self.deadline_ms,
                min_roi=roi_c[cls_index],
            )
            cls.controller.observe(epoch, final_conditions[cls_index], outcome)
            cls.outcomes.append(outcome)


# ---------------------------------------------------------------------------
# Sharded entry point
# ---------------------------------------------------------------------------


def _run_shard(payload: tuple) -> Tuple[CosimReport, Optional[dict]]:
    """Run one shard; optionally capture its telemetry snapshot.

    ``capture`` makes the shard record into a *fresh* registry (restored
    afterwards) whether it runs in a pool worker or in-process during the
    serial fallback — the merged parent-side snapshot is identical either
    way, which keeps the fallback bit-compatible.
    """
    population, controller, trace, kwargs, capture = payload
    if not capture:
        return CoSimulation(population, controller, trace, **kwargs).run(), None
    # Thread-local activation: correct in a process worker, a thread
    # worker, and the in-process serial fallback alike.
    with telemetry.scoped(telemetry.Telemetry()) as registry:
        report = CoSimulation(population, controller, trace, **kwargs).run()
    return report, registry.snapshot()


def run_cosim(
    population: FleetPopulation,
    controller: ControllerLike,
    trace: TraceLike,
    *,
    n_shards: int = 1,
    shard_timeout_s: Optional[float] = None,
    backend: Optional[str] = None,
    **kwargs,
) -> Union[CosimReport, ShardedCosimReport]:
    """Run a co-simulation, optionally sharded across independent cells.

    With ``n_shards == 1`` this is exactly ``CoSimulation(...).run()``.
    Otherwise the population is partitioned round-robin into ``n_shards``
    independent cells — each with its own Wi-Fi channel and ``n_edges``
    edge servers — and the shards fan out through the execution backend
    named by ``backend`` (default: ``REPRO_EXEC_BACKEND``, then the
    hardened process pool; see :func:`repro.exec.resolve_backend`):
    unpicklable specifications fall back to in-process execution, and a
    shard whose worker crashes or exceeds ``shard_timeout_s`` is
    re-executed serially while completed shards keep their results.
    Shards are deterministic and merged in shard order, so every backend
    and every recovery path produces a result bit-identical to the
    all-serial run.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    population = (
        population
        if isinstance(population, FleetPopulation)
        else FleetPopulation(users=tuple(population))
    )
    if n_shards == 1:
        return CoSimulation(population, controller, trace, **kwargs).run()
    if n_shards > len(population):
        raise ConfigurationError(
            f"cannot split {len(population)} users into {n_shards} shards"
        )
    registry = telemetry.get()
    capture = registry.enabled
    payloads = [
        (
            FleetPopulation(users=population.users[shard::n_shards]),
            controller,
            trace,
            kwargs,
            capture,
        )
        for shard in range(n_shards)
    ]
    with registry.span("cosim.run_sharded", users=len(population), shards=n_shards):
        results = resolve_backend(backend).map_tasks(
            _run_shard,
            payloads,
            max_workers=n_shards,
            timeout_s=shard_timeout_s,
            label="exec",
        )
        with registry.span("cosim.merge_shards", shards=n_shards):
            # Shard snapshots merge in shard order (associative, so any
            # grouping agrees on every deterministic field).
            for _, snapshot in results:
                if snapshot is not None:
                    registry.merge_snapshot(snapshot)
            return ShardedCosimReport.from_shards(
                tuple(report for report, _ in results)
            )
