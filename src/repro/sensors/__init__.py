"""External sensors and the XR input buffer.

The XR device receives control and environmental information from external
sensors and devices (roadside units, neighbouring XR devices, IoT devices).
This package models:

* the per-sensor information generation process and its latency contribution
  (Eqs. 5-6) — :mod:`repro.sensors.sensor`,
* the alignment between the XR application's requested update instants and
  the sensors' actual generation instants, which drives the AoI staircase of
  Fig. 4(f) — :mod:`repro.sensors.generators`,
* the input buffer holding captured frames, volumetric data and external
  information, modelled as an M/M/1 queue (Eq. 7) — :mod:`repro.sensors.buffer`.
"""

from repro.sensors.buffer import BufferDelays, InputBuffer
from repro.sensors.generators import UpdateSchedule, generation_times_for_requests
from repro.sensors.sensor import ExternalSensor

__all__ = [
    "BufferDelays",
    "ExternalSensor",
    "InputBuffer",
    "UpdateSchedule",
    "generation_times_for_requests",
]
