"""Alignment between requested and generated information updates.

The AoI model (Eq. 23) measures, for each update cycle ``n``, the gap between
the instant the XR application *requested* fresh information
(``T_Req^n``) and the instant the information that eventually serves that
request was *generated* by the sensor (``T^mn``), plus the propagation and
buffering delays.  A sensor that generates slower than the application
requests serves several consecutive requests with the same (aging) sample,
which is exactly the staircase of Fig. 4(f).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class UpdateSchedule:
    """Pairing of application requests with sensor generations.

    Attributes:
        request_times_ms: instants ``T_Req^n`` at which the application needs
            fresh information.
        generation_times_ms: instants ``T^mn`` of the sensor samples that
            serve each request (the latest sample generated at or before the
            request, or the first sample ever if none exists yet).
        served_by_sample: index of the sensor sample serving each request
            (-1 when the request is served by the very first, not yet
            generated, sample).
    """

    request_times_ms: np.ndarray
    generation_times_ms: np.ndarray
    served_by_sample: np.ndarray

    @property
    def n_requests(self) -> int:
        """Number of application update requests."""
        return int(len(self.request_times_ms))

    @property
    def staleness_ms(self) -> np.ndarray:
        """Per-request staleness ``T_Req^n - T^mn`` (>= 0 once samples exist)."""
        return self.request_times_ms - self.generation_times_ms

    def requests_per_sample(self) -> np.ndarray:
        """How many consecutive requests each sensor sample served."""
        if self.n_requests == 0:
            return np.array([], dtype=int)
        unique, counts = np.unique(self.served_by_sample, return_counts=True)
        del unique
        return counts


def generation_times_for_requests(
    request_times_ms: Sequence[float],
    sensor_generation_times_ms: Sequence[float],
) -> UpdateSchedule:
    """Pair each application request with the sensor sample that serves it.

    A request at time ``t`` is served by the most recent sensor sample
    generated at or before ``t``.  Requests made before the sensor's first
    sample wait for that first sample (its generation time is used, yielding
    a negative staleness that the AoI model interprets as "the information
    arrives later than requested" — the Fig. 4(e) ramp-up).

    Args:
        request_times_ms: sorted application request instants ``T_Req^n``.
        sensor_generation_times_ms: sorted sensor generation instants.

    Returns:
        An :class:`UpdateSchedule` pairing requests with generations.
    """
    requests = np.asarray(request_times_ms, dtype=float)
    generations = np.asarray(sensor_generation_times_ms, dtype=float)
    if len(requests) and np.any(np.diff(requests) < 0.0):
        raise ValueError("request times must be sorted non-decreasingly")
    if len(generations) and np.any(np.diff(generations) < 0.0):
        raise ValueError("generation times must be sorted non-decreasingly")
    if len(generations) == 0:
        raise ValueError("the sensor must generate at least one sample")

    # For each request, index of the last generation <= request time.
    indices = np.searchsorted(generations, requests, side="right") - 1
    served = indices.copy()
    # Requests that precede the first sample are served by that first sample.
    early = indices < 0
    indices[early] = 0
    served[early] = -1
    serving_times = generations[indices]
    return UpdateSchedule(
        request_times_ms=requests,
        generation_times_ms=serving_times,
        served_by_sample=served,
    )
