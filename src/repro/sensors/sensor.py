"""External sensor runtime model.

One :class:`ExternalSensor` wraps a :class:`~repro.config.network.SensorConfig`
and answers the questions the latency and AoI models ask about it:

* the latency of delivering the ``n``-th update of frame ``q``
  (Eq. 6: generation period plus propagation delay),
* the timestamps at which the sensor actually generates information, given
  its own clock (a deterministic process at ``f_t``), which feed the AoI
  model and the simulated testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.config.network import SensorConfig
from repro.queueing.arrivals import DeterministicProcess, PoissonProcess


@dataclass(frozen=True)
class ExternalSensor:
    """Runtime view of one external sensor or device.

    Attributes:
        config: static sensor configuration.
        propagation_speed_m_per_s: propagation speed of the wireless medium
            between the sensor and the XR device.
    """

    config: SensorConfig
    propagation_speed_m_per_s: float = units.SPEED_OF_LIGHT_M_PER_S

    @property
    def name(self) -> str:
        """Sensor identifier."""
        return self.config.name

    @property
    def generation_period_ms(self) -> float:
        """Information generation period ``1 / f_t^m`` (ms)."""
        return self.config.generation_period_ms

    @property
    def propagation_delay_ms(self) -> float:
        """One-way propagation delay from the sensor to the XR device (ms)."""
        return units.propagation_delay_ms(
            self.config.distance_m, self.propagation_speed_m_per_s
        )

    # -- Eq. (6) ----------------------------------------------------------------

    def update_latency_ms(self, distance_m: Optional[float] = None) -> float:
        """Latency of one information update, ``1/f_t + d/c`` (Eq. 6).

        Args:
            distance_m: optionally override the configured distance (the paper
                allows the distance to vary per update as the devices move).
        """
        propagation = (
            self.propagation_delay_ms
            if distance_m is None
            else units.propagation_delay_ms(distance_m, self.propagation_speed_m_per_s)
        )
        return self.generation_period_ms + propagation

    def total_latency_ms(self, n_updates: int) -> float:
        """Total latency of ``n_updates`` consecutive updates (inner sum of Eq. 5)."""
        if n_updates < 0:
            raise ValueError(f"n_updates must be >= 0, got {n_updates}")
        return n_updates * self.update_latency_ms()

    # -- generation process -------------------------------------------------------

    def generation_times_ms(self, horizon_ms: float, offset_ms: float = 0.0) -> np.ndarray:
        """Deterministic generation timestamps up to ``horizon_ms``.

        The first sample is produced one full generation period after
        ``offset_ms`` — the sensor needs ``1/f_t`` to *produce* the
        information, which is exactly the behaviour of Fig. 2.
        """
        process = DeterministicProcess(
            period_ms=self.generation_period_ms, offset_ms=offset_ms
        )
        times = process.sample_arrival_times(horizon_ms)
        if offset_ms > 0.0:
            # DeterministicProcess emits the first event at offset; shift it so
            # the first information is ready one period after the offset.
            times = times + self.generation_period_ms
            times = times[times <= horizon_ms + 1e-12]
        return times

    def arrival_times_ms(
        self,
        horizon_ms: float,
        rng: Optional[np.random.Generator] = None,
        poisson: bool = False,
    ) -> np.ndarray:
        """Arrival timestamps at the XR input buffer up to ``horizon_ms``.

        By default arrivals are the deterministic generation instants shifted
        by the propagation delay.  With ``poisson=True`` the arrival process
        is Poisson at the sensor's effective arrival rate, matching the
        M/M/1 assumption of the analytical buffer model.
        """
        if poisson:
            if rng is None:
                rng = np.random.default_rng(0)
            rate_per_ms = self.config.effective_arrival_rate_hz / 1e3
            return PoissonProcess(rate_per_ms).sample_arrival_times(horizon_ms, rng)
        return self.generation_times_ms(horizon_ms) + self.propagation_delay_ms
