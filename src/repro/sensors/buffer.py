"""XR input buffer model (Eq. 7).

Three data streams are queued in the input buffer: the captured frame, the
volumetric data and the external sensor information.  The paper models the
buffer as a stable M/M/1 system, so each stream's buffering time is the M/M/1
mean sojourn time ``1 / (mu - lambda)`` evaluated with that stream's arrival
rate; the per-frame buffering delay is the sum of the three (Eq. 7).

Two modes are provided:

* the **analytical** mode returns the closed-form Eq. (7) value,
* the **simulation** mode replays concrete arrivals through the event-driven
  queue simulator, which is what the simulated testbed uses so the ground
  truth contains realistic buffering variability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.config.application import ApplicationConfig
from repro.config.network import NetworkConfig
from repro.exceptions import UnstableQueueError
from repro.queueing.mm1 import MM1Queue
from repro.queueing.arrivals import PoissonProcess, merge_arrival_times
from repro.queueing.simulation import simulate_single_server_queue


@dataclass(frozen=True)
class BufferDelays:
    """Per-stream buffering delays of one frame (terms of Eq. 7).

    Attributes:
        frame_ms: buffering delay of the captured frame (``t_buff_f``).
        volumetric_ms: buffering delay of the volumetric data (``t_buff_vol``).
        external_ms: buffering delay of the external information (``t_buff_ext``).
    """

    frame_ms: float
    volumetric_ms: float
    external_ms: float

    @property
    def total_ms(self) -> float:
        """Total per-frame buffering delay ``t_buff`` (Eq. 7)."""
        return self.frame_ms + self.volumetric_ms + self.external_ms


class InputBuffer:
    """The XR device's input buffer.

    Args:
        service_rate_hz: buffer service rate ``mu`` in items per second.
    """

    def __init__(self, service_rate_hz: float) -> None:
        if service_rate_hz <= 0.0:
            raise UnstableQueueError(
                f"buffer service rate must be > 0 Hz, got {service_rate_hz}"
            )
        self.service_rate_hz = service_rate_hz

    @property
    def service_rate_per_ms(self) -> float:
        """Service rate in items per millisecond."""
        return self.service_rate_hz / 1e3

    # -- analytical mode ---------------------------------------------------------

    def stream_delay_ms(self, arrival_rate_hz: float) -> float:
        """M/M/1 mean sojourn time for a stream with the given arrival rate."""
        queue = MM1Queue.from_rates_hz(arrival_rate_hz, self.service_rate_hz)
        return queue.mean_time_in_system_ms

    def analytical_delays(
        self, app: ApplicationConfig, network: NetworkConfig
    ) -> BufferDelays:
        """Closed-form per-stream buffering delays (Eq. 7).

        The frame and volumetric streams arrive once per captured frame; the
        external stream arrives at the aggregate sensor rate.
        """
        frame_rate_hz = app.frame_rate_fps
        sensor_rate_hz = network.total_sensor_arrival_rate_hz
        frame_delay = self.stream_delay_ms(frame_rate_hz)
        volumetric_delay = self.stream_delay_ms(frame_rate_hz)
        if sensor_rate_hz > 0.0:
            external_delay = self.stream_delay_ms(sensor_rate_hz)
        else:
            external_delay = 0.0
        return BufferDelays(
            frame_ms=frame_delay,
            volumetric_ms=volumetric_delay,
            external_ms=external_delay,
        )

    def aoi_service_time_ms(self, arrival_rate_hz: float) -> float:
        """Average buffer time ``T̄ = 1/(mu - lambda)`` used by the AoI model (Eq. 22)."""
        return self.stream_delay_ms(arrival_rate_hz)

    # -- simulation mode -----------------------------------------------------------

    def simulate_delays(
        self,
        app: ApplicationConfig,
        network: NetworkConfig,
        horizon_ms: float,
        rng: Optional[np.random.Generator] = None,
    ) -> BufferDelays:
        """Measure per-stream buffering delays by simulating the shared buffer.

        All three streams share one FIFO server; each stream's delay is the
        mean sojourn time of its own packets, which captures the cross-stream
        interference the analytical model ignores.
        """
        if horizon_ms <= 0.0:
            raise ValueError(f"horizon must be > 0 ms, got {horizon_ms}")
        if rng is None:
            rng = np.random.default_rng(0)

        frame_rate_per_ms = app.frame_rate_fps / 1e3
        streams = {
            "frame": PoissonProcess(frame_rate_per_ms).sample_arrival_times(horizon_ms, rng),
            "volumetric": PoissonProcess(frame_rate_per_ms).sample_arrival_times(
                horizon_ms, rng
            ),
        }
        sensor_rate_hz = network.total_sensor_arrival_rate_hz
        if sensor_rate_hz > 0.0:
            streams["external"] = PoissonProcess(sensor_rate_hz / 1e3).sample_arrival_times(
                horizon_ms, rng
            )
        else:
            streams["external"] = np.array([], dtype=float)

        labels: list[str] = []
        for name, times in streams.items():
            labels.extend([name] * len(times))
        merged = merge_arrival_times(list(streams.values()))
        order = np.argsort(
            np.concatenate([times for times in streams.values()])
            if any(len(t) for t in streams.values())
            else np.array([])
        , kind="mergesort")
        ordered_labels = [labels[i] for i in order]

        if len(merged) == 0:
            return BufferDelays(frame_ms=0.0, volumetric_ms=0.0, external_ms=0.0)

        services = rng.exponential(1.0 / self.service_rate_per_ms, size=len(merged))
        result = simulate_single_server_queue(merged, services, rng=rng)

        def mean_for(label: str) -> float:
            values = [
                result.sojourn_times_ms[i]
                for i, packet_label in enumerate(ordered_labels)
                if packet_label == label
            ]
            return float(np.mean(values)) if values else 0.0

        return BufferDelays(
            frame_ms=mean_for("frame"),
            volumetric_ms=mean_for("volumetric"),
            external_ms=mean_for("external"),
        )

    # -- stability ------------------------------------------------------------------

    def is_stable(self, arrival_rates_hz: Sequence[float]) -> bool:
        """True when the aggregate arrival rate keeps the buffer stable."""
        return sum(arrival_rates_hz) < self.service_rate_hz
