"""Regression gates: manifest-vs-baseline and bench-vs-baseline comparison.

Two comparators share one drift vocabulary:

* :func:`compare_manifests` — gates a fresh :class:`~repro.experiments
  .runner.RunManifest` against a committed baseline manifest.  Every metric
  recorded in the baseline must be reproduced within its relative tolerance
  (per-metric tolerances committed with the baseline win over the gate-wide
  default).  Missing scenarios, missing metrics, error statuses, NaN
  mismatches and spec-hash drift all fail with a named reason.
* :func:`compare_bench` — gates a fresh ``repro bench --json`` payload
  against the committed ``BENCH_*.json`` baselines.  Throughput metrics are
  one-sided (only *slower* fails, with a generous machine-variance
  tolerance); model-output metrics are two-sided and tight, because they
  are deterministic.

Both return a :class:`RegressionReport` whose ``summary()`` names each
drifted metric — the text CI prints when the gate fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import RunManifest, metrics_close

#: Gate-wide default relative tolerance for manifest metrics.  The model is
#: deterministic, so the default is tight; scenarios loosen individual
#: metrics through their committed ``tolerances`` table.
DEFAULT_GATE_RTOL = 1e-6

#: Default one-sided slack for bench throughput metrics: the current run may
#: be up to this fraction slower than the recorded baseline before the gate
#: fails (CI runners are noisy; correctness metrics stay tight).
DEFAULT_BENCH_TOLERANCE = 0.6

#: Bench metrics that measure speed (one-sided: only slower is drift).
_BENCH_THROUGHPUT_METRICS = (
    "scalar_points_per_s",
    "batch_points_per_s",
    "speedup",
    "users_per_s",
    "epochs_per_s",
    "candidate_evaluations_per_s",
    "user_epochs_per_s",
)

#: Grid cases below this many points are sub-millisecond microbenchmarks
#: whose throughput swings 2-3x between back-to-back runs on one machine
#: (observed across the committed BENCH_*.json baselines themselves); their
#: throughput is reported but not gated.  Model outputs stay gated.
_BENCH_MIN_GATED_POINTS = 100

#: Bench metrics that are deterministic model outputs (two-sided, tight).
_BENCH_CORRECTNESS_METRICS = (
    "points",
    "users",
    "epochs",
    "candidates",
    "shards",
    "p95_latency_ms",
    "deadline_miss_rate",
    "mean_quality",
    "mean_offload_fraction",
    "unconverged_epochs",
)


@dataclass
class MetricDrift:
    """One gate violation.

    ``reason`` is one of ``drift`` | ``missing-metric`` |
    ``missing-scenario`` | ``status`` | ``baseline-status`` | ``spec-hash``
    | ``slower``.
    """

    scenario: str
    metric: str
    reason: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    tolerance: Optional[float] = None

    @property
    def relative_error(self) -> float:
        """``|current - baseline| / |baseline|`` for numeric drifts.

        NaN/inf mismatches and zero baselines rank as ``inf`` (maximally
        severe); non-numeric reasons (missing scenario/metric, statuses)
        rank as NaN so callers can keep them out of numeric orderings.
        """
        if self.baseline is None or self.current is None:
            return float("nan")
        if math.isnan(self.baseline) or math.isnan(self.current):
            return float("inf")
        if math.isinf(self.baseline) or math.isinf(self.current):
            return 0.0 if self.baseline == self.current else float("inf")
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return abs(self.current - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        if self.reason == "missing-scenario":
            return f"{self.scenario}: scenario present in the baseline but not in this run"
        if self.reason == "missing-metric":
            return (
                f"{self.scenario}.{self.metric}: metric present in the baseline "
                f"(value {self.baseline!r}) but not in this run"
            )
        if self.reason == "status":
            return f"{self.scenario}: run status is {self.metric!r} (baseline ran clean)"
        if self.reason == "baseline-status":
            return (
                f"{self.scenario}: the baseline entry itself was recorded with status "
                f"{self.metric!r}, so it gates nothing — regenerate the baseline"
            )
        if self.reason == "spec-hash":
            return (
                "spec hash mismatch — the scenario suite changed since the baseline "
                "was recorded; regenerate the baseline manifest"
            )
        if self.reason == "slower":
            return (
                f"{self.scenario}.{self.metric}: {self.current:,.1f} is more than "
                f"{self.tolerance:.0%} below the baseline {self.baseline:,.1f}"
            )
        rel = ""
        if (
            self.baseline is not None
            and self.current is not None
            and not math.isnan(self.baseline)
            and not math.isnan(self.current)
            and self.baseline != 0.0
        ):
            rel = f" (rel. error {abs(self.current - self.baseline) / abs(self.baseline):.3g})"
        return (
            f"{self.scenario}.{self.metric}: baseline {self.baseline!r} vs current "
            f"{self.current!r}, tolerance {self.tolerance!r}{rel}"
        )


@dataclass
class RegressionReport:
    """Outcome of one gate comparison."""

    baseline_label: str
    current_label: str
    drifts: Tuple[MetricDrift, ...]
    n_compared: int
    n_scenarios: int
    n_new_metrics: int = 0

    @property
    def passed(self) -> bool:
        return not self.drifts

    def summary(self) -> str:
        """Multi-line pass/fail report naming every drifted metric.

        Numeric drifts print as one aligned
        ``scenario/metric  baseline  actual  rel_err`` line each, sorted by
        relative error descending, so the worst offender is always the
        first line under the FAIL header; structural failures (missing
        scenarios/metrics, statuses, spec-hash drift) follow as prose.
        """
        header = (
            f"Regression gate: {self.current_label} vs {self.baseline_label} — "
            f"{self.n_compared} metrics across {self.n_scenarios} scenarios"
        )
        if self.n_new_metrics:
            header += f", {self.n_new_metrics} new (uncompared)"
        lines = [header]
        if self.passed:
            lines.append("PASS: every baseline metric reproduced within tolerance")
            return "\n".join(lines)
        lines.append(f"FAIL: {len(self.drifts)} drifted metric(s)")
        numeric = sorted(
            (d for d in self.drifts if not math.isnan(d.relative_error)),
            key=lambda d: d.relative_error,
            reverse=True,
        )
        if numeric:
            from repro.evaluation.report import format_table

            rows = [
                (
                    f"{drift.scenario}/{drift.metric}",
                    f"{drift.baseline:.6g}",
                    f"{drift.current:.6g}",
                    f"{drift.relative_error:.3g}",
                )
                for drift in numeric
            ]
            table = format_table(rows, headers=("scenario/metric", "baseline", "actual", "rel_err"))
            lines.extend(f"  {line}" for line in table.splitlines())
        structural = [d for d in self.drifts if math.isnan(d.relative_error)]
        lines.extend(f"  - {drift.describe()}" for drift in structural)
        return "\n".join(lines)


def _as_number(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_manifests(
    current: RunManifest,
    baseline: RunManifest,
    default_rtol: float = DEFAULT_GATE_RTOL,
    ignore_spec_hash: bool = False,
) -> RegressionReport:
    """Gate ``current`` against a committed ``baseline`` manifest."""
    drifts: List[MetricDrift] = []
    n_compared = 0
    n_new = 0
    if not ignore_spec_hash and current.spec_hash != baseline.spec_hash:
        drifts.append(MetricDrift(scenario="<suite>", metric="spec_hash", reason="spec-hash"))
    baseline_names = set()
    for base in baseline.scenarios:
        baseline_names.add(base.name)
        if base.status != "ok":
            # A baseline recorded from a failed run carries no (or partial)
            # metrics; silently gating nothing would hide exactly the drift
            # the baseline exists to catch.
            drifts.append(
                MetricDrift(scenario=base.name, metric=base.status, reason="baseline-status")
            )
        result = current.result_for(base.name)
        if result is None:
            drifts.append(
                MetricDrift(scenario=base.name, metric="<scenario>", reason="missing-scenario")
            )
            continue
        if result.status != "ok":
            drifts.append(MetricDrift(scenario=base.name, metric=result.status, reason="status"))
        for metric in sorted(base.metrics):
            base_value = _as_number(base.metrics[metric])
            has_current = metric in result.metrics
            current_value = _as_number(result.metrics.get(metric))
            if base_value is None:
                # Non-numeric baseline entries (None placeholders) only
                # need to stay non-numeric.
                if current_value is not None:
                    drifts.append(
                        MetricDrift(
                            scenario=base.name,
                            metric=metric,
                            reason="drift",
                            baseline=base_value,
                            current=current_value,
                        )
                    )
                continue
            n_compared += 1
            if not has_current or current_value is None:
                drifts.append(
                    MetricDrift(
                        scenario=base.name,
                        metric=metric,
                        reason="missing-metric",
                        baseline=base_value,
                    )
                )
                continue
            rtol = base.tolerances.get(metric, result.tolerances.get(metric, default_rtol))
            if not metrics_close(current_value, base_value, rtol):
                drifts.append(
                    MetricDrift(
                        scenario=base.name,
                        metric=metric,
                        reason="drift",
                        baseline=base_value,
                        current=current_value,
                        tolerance=rtol,
                    )
                )
        n_new += len(set(result.metrics) - set(base.metrics))
    for result in current.scenarios:
        if result.name not in baseline_names:
            n_new += len(result.metrics)
    return RegressionReport(
        baseline_label=f"baseline {baseline.suite!r} ({baseline.git_sha or 'no sha'})",
        current_label=f"run {current.suite!r} ({current.git_sha or 'no sha'})",
        drifts=tuple(drifts),
        n_compared=n_compared,
        n_scenarios=len(baseline.scenarios),
        n_new_metrics=n_new,
    )


# ---------------------------------------------------------------------------
# Bench baselines
# ---------------------------------------------------------------------------


def _bench_cases(payload: Mapping) -> Dict[str, Mapping]:
    """Flatten a ``repro bench --json`` payload into name -> case dict."""
    cases: Dict[str, Mapping] = {}
    for grid in payload.get("grids") or ():
        cases[grid["name"]] = grid
    for section in ("fleet", "adaptive", "cosim"):
        case = payload.get(section)
        if case is not None:
            cases[case["name"]] = case
    return cases


def compare_bench(
    current: Mapping,
    baseline: Mapping,
    tolerance: float = DEFAULT_BENCH_TOLERANCE,
    correctness_rtol: float = DEFAULT_GATE_RTOL,
    baseline_label: str = "bench baseline",
) -> RegressionReport:
    """Gate a fresh bench payload against one committed ``BENCH_*.json``.

    Every case recorded in the baseline must exist in the current payload
    (matched by case name, so the bench must be invoked with the same
    shapes).  Throughput metrics may not fall more than ``tolerance``
    below the baseline; deterministic model outputs must match within
    ``correctness_rtol``.
    """
    drifts: List[MetricDrift] = []
    n_compared = 0
    current_cases = _bench_cases(current)
    baseline_cases = _bench_cases(baseline)
    for name, base_case in baseline_cases.items():
        case = current_cases.get(name)
        if case is None:
            drifts.append(
                MetricDrift(scenario=name, metric="<case>", reason="missing-scenario")
            )
            continue
        points = _as_number(base_case.get("points"))
        gate_throughput = points is None or points >= _BENCH_MIN_GATED_POINTS
        for metric in _BENCH_THROUGHPUT_METRICS if gate_throughput else ():
            base_value = _as_number(base_case.get(metric))
            if base_value is None:
                continue
            n_compared += 1
            value = _as_number(case.get(metric))
            if value is None:
                drifts.append(
                    MetricDrift(
                        scenario=name,
                        metric=metric,
                        reason="missing-metric",
                        baseline=base_value,
                    )
                )
            elif value < (1.0 - tolerance) * base_value:
                drifts.append(
                    MetricDrift(
                        scenario=name,
                        metric=metric,
                        reason="slower",
                        baseline=base_value,
                        current=value,
                        tolerance=tolerance,
                    )
                )
        for metric in _BENCH_CORRECTNESS_METRICS:
            base_value = _as_number(base_case.get(metric))
            if base_value is None:
                continue
            n_compared += 1
            value = _as_number(case.get(metric))
            if value is None:
                drifts.append(
                    MetricDrift(
                        scenario=name,
                        metric=metric,
                        reason="missing-metric",
                        baseline=base_value,
                    )
                )
            elif not metrics_close(value, base_value, correctness_rtol):
                drifts.append(
                    MetricDrift(
                        scenario=name,
                        metric=metric,
                        reason="drift",
                        baseline=base_value,
                        current=value,
                        tolerance=correctness_rtol,
                    )
                )
    return RegressionReport(
        baseline_label=baseline_label,
        current_label="repro bench --json",
        drifts=tuple(drifts),
        n_compared=n_compared,
        n_scenarios=len(baseline_cases),
    )


def compare_bench_files(
    current: Mapping,
    baseline_paths: Sequence[str],
    tolerance: float = DEFAULT_BENCH_TOLERANCE,
    correctness_rtol: float = DEFAULT_GATE_RTOL,
) -> List[RegressionReport]:
    """Run :func:`compare_bench` against several committed baseline files."""
    import json
    from pathlib import Path

    from repro.exceptions import ConfigurationError

    reports = []
    for path in baseline_paths:
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"bench baseline {str(path)!r} does not exist")
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        reports.append(
            compare_bench(
                current,
                baseline,
                tolerance=tolerance,
                correctness_rtol=correctness_rtol,
                baseline_label=path.name,
            )
        )
    return reports
