"""Declarative experiment suite, run manifests, and regression gates.

This package turns every reproduction workload — single-point analyses,
Fig. 4/5 sweeps, fleet capacity studies, adaptive-runtime traces and
closed-loop co-simulations — into versioned :class:`ScenarioSpec` documents
(TOML/JSON), runs them through one :class:`ExperimentRunner`, and gates the
resulting :class:`RunManifest` against a committed baseline so CI detects
both correctness and performance drift from a single entry point
(``repro experiments check``).
"""

from repro.experiments.regression import (
    DEFAULT_BENCH_TOLERANCE,
    DEFAULT_GATE_RTOL,
    MetricDrift,
    RegressionReport,
    compare_bench,
    compare_bench_files,
    compare_manifests,
)
from repro.experiments.runner import (
    DEFAULT_MANIFEST_DIR,
    ExperimentRunner,
    RunManifest,
    ScenarioResult,
    git_sha,
    metrics_close,
    run_scenario,
)
from repro.experiments.spec import (
    SCENARIO_KINDS,
    ScenarioSpec,
    ScenarioSuite,
    bundled_suite,
    load_specs,
    load_suite,
    toml_available,
)

__all__ = [
    "DEFAULT_BENCH_TOLERANCE",
    "DEFAULT_GATE_RTOL",
    "DEFAULT_MANIFEST_DIR",
    "ExperimentRunner",
    "MetricDrift",
    "RegressionReport",
    "RunManifest",
    "SCENARIO_KINDS",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSuite",
    "bundled_suite",
    "compare_bench",
    "compare_bench_files",
    "compare_manifests",
    "git_sha",
    "load_specs",
    "load_suite",
    "metrics_close",
    "run_scenario",
    "toml_available",
]
