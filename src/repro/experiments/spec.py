"""Declarative experiment scenarios.

A :class:`ScenarioSpec` is the versioned, diffable description of one
reproduction workload: which subsystem to drive (``analyze`` | ``sweep`` |
``fleet`` | ``adapt`` | ``cosim``), on which device/edge pair, with which
application/network overrides and workload parameters, under which seed, and
— optionally — which metric values the run is expected to produce and how
much relative drift the regression gate tolerates per metric.

Specs load from TOML or JSON files (one ``[[scenario]]`` table per spec) and
round-trip bit-exactly through ``to_dict``/``from_dict``, so a suite can be
hashed, committed, and compared across revisions.  Validation happens at
construction time: unknown keys, unknown devices, out-of-range parameters
and kind/parameter mismatches all raise
:class:`repro.exceptions.ConfigurationError` naming the offending field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.config.validation import ensure_choice, ensure_non_negative
from repro.devices.catalog import DEVICE_CATALOG, EDGE_CATALOG
from repro.exceptions import ConfigurationError

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None

#: Workload kinds a scenario can dispatch to (one per subsystem facade).
SCENARIO_KINDS: Tuple[str, ...] = ("analyze", "sweep", "fleet", "adapt", "cosim")

#: Per-kind parameter allowlists; every ``params`` key must appear here.
_PARAM_KEYS: Dict[str, Tuple[str, ...]] = {
    "analyze": ("include_aoi",),
    "sweep": ("frame_sides_px", "cpu_freqs_ghz"),
    "fleet": (
        "users",
        "n_edges",
        "policy",
        "slo_ms",
        "mixed_devices",
        "plan_capacity",
        "include_aoi",
        "fault_epoch",
    ),
    "adapt": (
        "trace",
        "epochs",
        "epoch_ms",
        "controller",
        "deadline_ms",
        "objective",
        "include_aoi",
    ),
    "cosim": (
        "trace",
        "epochs",
        "epoch_ms",
        "users",
        "controller",
        "n_edges",
        "shards",
        "deadline_ms",
        "objective",
        "max_iterations",
        "damping",
        "include_aoi",
    ),
}

_TRACE_NAMES = ("drift", "step", "burst", "mobility")
_FLEET_POLICIES = ("round-robin", "greedy", "energy")
_ADAPT_CONTROLLERS = ("static", "hysteresis", "greedy", "ewma")
_COSIM_CONTROLLERS = ("hysteresis", "greedy", "ewma", "static")

# Overridable scalar fields of the two config dataclasses.  Nested
# sub-configs (encoder/inference/cooperation, sensors/handoff) stay out of
# the declarative surface: scenarios that need them belong in Python.
_APP_FIELDS = frozenset(
    f.name
    for f in dataclasses.fields(ApplicationConfig)
    if f.name not in ("encoder", "inference", "cooperation")
)
_NETWORK_FIELDS = frozenset(
    f.name
    for f in dataclasses.fields(NetworkConfig)
    if f.name not in ("sensors", "handoff")
)

_SPEC_KEYS = (
    "name",
    "kind",
    "description",
    "device",
    "edge",
    "mode",
    "seed",
    "app",
    "network",
    "params",
    "faults",
    "expected",
    "tolerances",
)

#: Kinds that accept a ``[scenario.faults]`` section (the static
#: ``analyze``/``sweep`` workloads have no epoch axis to fault).
_FAULT_KINDS = ("fleet", "adapt", "cosim")


def _plain(value: object) -> object:
    """Recursively coerce a parsed TOML/JSON tree to dicts/lists/scalars."""
    if isinstance(value, Mapping):
        return {key: _plain(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(entry) for entry in value]
    return value


def _ensure_str_float_map(name: str, value: Mapping) -> Dict[str, float]:
    mapping: Dict[str, float] = {}
    for key, raw in value.items():
        if not isinstance(key, str):
            raise ConfigurationError(f"{name} keys must be strings, got {key!r}")
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ConfigurationError(f"{name}[{key!r}] must be a number, got {raw!r}")
        mapping[key] = float(raw)
    return mapping


@dataclass
class ScenarioSpec:
    """One declarative reproduction scenario.

    Attributes:
        name: unique identifier within a suite (used by ``--select`` and by
            the regression gate to match manifests).
        kind: workload kind — one of :data:`SCENARIO_KINDS`.
        description: free-form one-liner shown by ``repro experiments list``.
        device: XR device catalog name.
        edge: edge server catalog name.
        mode: execution mode for ``analyze``/``sweep`` scenarios
            (``local`` | ``remote`` | ``split``).
        seed: RNG seed threaded to trace generators.
        app: scalar :class:`ApplicationConfig` field overrides.
        network: scalar :class:`NetworkConfig` field overrides.
        params: kind-specific workload parameters (see ``_PARAM_KEYS``).
        faults: optional fault-schedule payload for ``fleet``/``adapt``/
            ``cosim`` scenarios — either a bundled-generator reference
            (``schedule = "edge-outage"`` plus overrides) or inline
            ``events`` tables, exactly the :func:`repro.faults.build_schedule`
            surface.  Validated at construction; materialised by
            :meth:`build_faults`.
        expected: metric name -> value the run must reproduce (checked by
            the runner within the metric's tolerance).
        tolerances: metric name -> relative tolerance used both for
            ``expected`` checks and by the baseline regression gate.
    """

    name: str
    kind: str
    description: str = ""
    device: str = "XR1"
    edge: str = "EDGE-AGX"
    mode: str = "remote"
    seed: int = 0
    app: Dict[str, object] = field(default_factory=dict)
    network: Dict[str, object] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    faults: Dict[str, object] = field(default_factory=dict)
    expected: Dict[str, float] = field(default_factory=dict)
    tolerances: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"scenario name must be a non-empty string, got {self.name!r}"
            )
        ensure_choice("kind", self.kind, SCENARIO_KINDS)
        ensure_choice("device", self.device, sorted(DEVICE_CATALOG))
        ensure_choice("edge", self.edge, sorted(EDGE_CATALOG))
        ensure_choice("mode", self.mode, [mode.value for mode in ExecutionMode])
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an integer, got {self.seed!r}")
        ensure_non_negative("seed", self.seed)
        for label, overrides, allowed in (
            ("app", self.app, _APP_FIELDS),
            ("network", self.network, _NETWORK_FIELDS),
        ):
            for key in overrides:
                if key not in allowed:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: unknown {label} override {key!r}; "
                        f"allowed: {sorted(allowed)}"
                    )
        allowed_params = _PARAM_KEYS[self.kind]
        for key in self.params:
            if key not in allowed_params:
                raise ConfigurationError(
                    f"scenario {self.name!r} (kind {self.kind!r}): unknown parameter "
                    f"{key!r}; allowed: {sorted(allowed_params)}"
                )
        self._validate_params()
        if self.faults:
            if self.kind not in _FAULT_KINDS:
                raise ConfigurationError(
                    f"scenario {self.name!r} (kind {self.kind!r}): faults are only "
                    f"supported for kinds {list(_FAULT_KINDS)}"
                )
            # Materialise once to surface schedule errors at load time.
            self.build_faults()
        self.expected = _ensure_str_float_map(f"scenario {self.name!r} expected", self.expected)
        self.tolerances = _ensure_str_float_map(
            f"scenario {self.name!r} tolerances", self.tolerances
        )
        for metric, rtol in self.tolerances.items():
            if rtol < 0.0 or math.isnan(rtol):
                raise ConfigurationError(
                    f"scenario {self.name!r}: tolerance for {metric!r} must be >= 0, got {rtol!r}"
                )

    def _validate_params(self) -> None:
        params = self.params
        if "trace" in params:
            ensure_choice("trace", params["trace"], _TRACE_NAMES)
        if "policy" in params:
            ensure_choice("policy", params["policy"], _FLEET_POLICIES)
        if "controller" in params:
            controllers = _ADAPT_CONTROLLERS if self.kind == "adapt" else _COSIM_CONTROLLERS
            ensure_choice("controller", params["controller"], controllers)
        for key in ("users", "epochs", "n_edges", "shards", "max_iterations"):
            if key in params:
                value = params[key]
                if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: {key} must be a positive integer, "
                        f"got {value!r}"
                    )
        for key in ("epoch_ms", "deadline_ms", "slo_ms", "damping"):
            if key in params:
                value = params[key]
                if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: {key} must be a positive number, "
                        f"got {value!r}"
                    )
        for key in ("frame_sides_px", "cpu_freqs_ghz"):
            if key in params:
                values = params[key]
                if (
                    not isinstance(values, (list, tuple))
                    or not values
                    or any(
                        isinstance(v, bool) or not isinstance(v, (int, float)) or v <= 0
                        for v in values
                    )
                ):
                    raise ConfigurationError(
                        f"scenario {self.name!r}: {key} must be a non-empty list of "
                        f"positive numbers, got {values!r}"
                    )
        if "fault_epoch" in params:
            value = params["fault_epoch"]
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: fault_epoch must be a non-negative "
                    f"integer, got {value!r}"
                )
        if "mixed_devices" in params:
            devices = params["mixed_devices"]
            if not isinstance(devices, (list, tuple)) or not devices:
                raise ConfigurationError(
                    f"scenario {self.name!r}: mixed_devices must be a non-empty list"
                )
            for device in devices:
                ensure_choice("mixed_devices entry", device, sorted(DEVICE_CATALOG))

    # -- config materialisation ----------------------------------------------------

    def build_app(self) -> ApplicationConfig:
        """The scenario's :class:`ApplicationConfig` (overrides + mode applied)."""
        app = ApplicationConfig(**self.app) if self.app else ApplicationConfig()
        return app.with_mode(ExecutionMode(self.mode))

    def build_network(self) -> NetworkConfig:
        """The scenario's :class:`NetworkConfig` with overrides applied."""
        return NetworkConfig(**self.network) if self.network else NetworkConfig()

    def build_faults(self):
        """The scenario's :class:`~repro.faults.FaultSchedule`, or None.

        Imported lazily so loading a fault-free suite never touches the
        faults subsystem.
        """
        if not self.faults:
            return None
        from repro.faults import build_schedule

        return build_schedule(self.faults)

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON/TOML-able form; ``from_dict`` restores an equal spec."""
        payload = {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "device": self.device,
            "edge": self.edge,
            "mode": self.mode,
            "seed": self.seed,
            "app": dict(self.app),
            "network": dict(self.network),
            "params": {
                key: list(value) if isinstance(value, (list, tuple)) else value
                for key, value in self.params.items()
            },
            "faults": _plain(self.faults),
            "expected": dict(self.expected),
            "tolerances": dict(self.tolerances),
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioSpec":
        """Validate and build a spec from a parsed TOML/JSON table."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(f"scenario spec must be a table/object, got {payload!r}")
        unknown = set(payload) - set(_SPEC_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys {sorted(unknown)}; allowed: {list(_SPEC_KEYS)}"
            )
        for required in ("name", "kind"):
            if required not in payload:
                raise ConfigurationError(f"scenario spec is missing the {required!r} key")
        kwargs = dict(payload)
        for mapping_key in ("app", "network", "params", "faults", "expected", "tolerances"):
            if mapping_key in kwargs and not isinstance(kwargs[mapping_key], Mapping):
                raise ConfigurationError(
                    f"scenario {kwargs.get('name')!r}: {mapping_key} must be a "
                    f"table/object, got {kwargs[mapping_key]!r}"
                )
        return cls(**kwargs)


@dataclass
class ScenarioSuite:
    """An ordered, uniquely-named collection of scenarios."""

    name: str
    specs: Tuple[ScenarioSpec, ...]

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        seen: Dict[str, int] = {}
        for spec in self.specs:
            if spec.name in seen:
                raise ConfigurationError(
                    f"suite {self.name!r} has two scenarios named {spec.name!r}"
                )
            seen[spec.name] = 1

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def select(self, names: Sequence[str]) -> "ScenarioSuite":
        """The sub-suite containing exactly ``names`` (suite order preserved)."""
        known = {spec.name for spec in self.specs}
        missing = [name for name in names if name not in known]
        if missing:
            raise ConfigurationError(
                f"unknown scenario(s) {missing}; suite {self.name!r} has {sorted(known)}"
            )
        wanted = set(names)
        return ScenarioSuite(
            name=self.name,
            specs=tuple(spec for spec in self.specs if spec.name in wanted),
        )

    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON of every spec (order-sensitive)."""
        canonical = json.dumps(
            [spec.to_dict() for spec in self.specs], sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------

#: Directory holding the bundled scenario files.
BUNDLED_DIR = Path(__file__).resolve().parent / "scenarios"


def toml_available() -> bool:
    """Whether a TOML parser is importable (stdlib ``tomllib`` on >= 3.11)."""
    return _toml is not None


def _parse_scenarios(payload: object, source: str) -> List[ScenarioSpec]:
    if isinstance(payload, Mapping):
        if "scenario" in payload:  # TOML [[scenario]] array-of-tables
            payload = payload["scenario"]
        elif "scenarios" in payload:  # JSON {"scenarios": [...]}
            payload = payload["scenarios"]
        else:  # a single bare spec table
            payload = [payload]
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"{source}: expected a list of scenario tables, got {type(payload).__name__}"
        )
    return [ScenarioSpec.from_dict(entry) for entry in payload]


def load_specs(path: Union[str, Path]) -> List[ScenarioSpec]:
    """Load scenario specs from one ``.toml`` or ``.json`` file."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"scenario file {str(path)!r} does not exist")
    if path.suffix == ".toml":
        if _toml is None:
            raise ConfigurationError(
                f"cannot load {str(path)!r}: TOML parsing needs Python >= 3.11 "
                f"(stdlib tomllib) or the tomli package; use a .json suite instead"
            )
        with open(path, "rb") as handle:
            payload = _toml.load(handle)
    elif path.suffix == ".json":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        raise ConfigurationError(
            f"unsupported scenario file suffix {path.suffix!r} (expected .toml or .json)"
        )
    return _parse_scenarios(payload, str(path))


def load_suite(path: Union[str, Path], name: Optional[str] = None) -> ScenarioSuite:
    """Load a suite from a scenario file or from a directory of them.

    A directory is read in sorted filename order so the suite (and therefore
    its ``spec_hash``) is stable across filesystems.
    """
    path = Path(path)
    if path.is_dir():
        files = sorted(entry for entry in path.iterdir() if entry.suffix in (".toml", ".json"))
        if not files:
            raise ConfigurationError(f"no .toml/.json scenario files under {str(path)!r}")
        specs: List[ScenarioSpec] = []
        for entry in files:
            specs.extend(load_specs(entry))
        return ScenarioSuite(name=name or path.name, specs=tuple(specs))
    return ScenarioSuite(name=name or path.stem, specs=tuple(load_specs(path)))


def bundled_suite() -> ScenarioSuite:
    """The committed ``scenarios/`` suite covering every subsystem."""
    return load_suite(BUNDLED_DIR, name="bundled")
