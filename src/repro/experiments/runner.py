"""Scenario execution and run manifests.

:class:`ExperimentRunner` dispatches every :class:`~repro.experiments.spec
.ScenarioSpec` of a suite to the matching subsystem facade —
:meth:`repro.core.framework.XRPerformanceModel.analyze` / ``sweep_batch``,
:class:`repro.fleet.FleetAnalyzer` (+ ``plan_capacity``),
:class:`repro.adaptive.AdaptiveRuntime` and :func:`repro.cosim.run_cosim` —
and collects each scenario's scalar metrics into a :class:`RunManifest`.

Scenarios are independent, so the runner can fan them out on a process pool;
a deterministic serial path produces bit-identical metric payloads and is
used both as the default and as the fallback when a pool cannot be created
(sandboxed interpreters, unpicklable payloads, killed workers).  Manifests
are JSON documents under ``results/manifests/`` carrying the suite's spec
hash, the repro version and git SHA, per-scenario metrics/tolerances and
wall times — everything :mod:`repro.experiments.regression` needs to gate a
fresh run against a committed baseline.
"""

from __future__ import annotations

import json
import math
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro._version import __version__
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.spec import ScenarioSpec, ScenarioSuite
from repro.schema import check_schema

#: Manifest schema version ("MAJOR.MINOR": bump the major when the JSON
#: layout changes shape, the minor when fields are added).  Loading accepts
#: any 1.x manifest — older minors (including the legacy bare ``1``) load
#: silently, newer minors and unknown top-level keys degrade with a single
#: warning — see :func:`repro.schema.check_schema`.
MANIFEST_SCHEMA_VERSION = "1.1"

#: Top-level manifest keys this reader understands; anything else is
#: ignored with a warning instead of breaking consumers silently.
_MANIFEST_KEYS = (
    "suite",
    "spec_hash",
    "repro_version",
    "git_sha",
    "total_wall_time_s",
    "scenarios",
    "telemetry",
)

#: Default directory run manifests are written to.
DEFAULT_MANIFEST_DIR = Path("results") / "manifests"

#: Manifest keys that vary between otherwise-identical runs.  Regression
#: comparisons and determinism tests ignore exactly these.
WALL_TIME_FIELDS = ("wall_time_s", "total_wall_time_s")

#: Default relative tolerance for ``expected`` metric checks; individual
#: metrics override it via ``ScenarioSpec.tolerances``.
DEFAULT_EXPECTED_RTOL = 1e-6


def git_sha(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The current checkout's commit SHA, or None outside a git repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def metrics_close(current: float, reference: float, rtol: float, atol: float = 1e-12) -> bool:
    """NaN/inf-aware closeness: ``|c - r| <= atol + rtol * |r|``.

    Two NaNs compare equal (a NaN metric that *stays* NaN is not drift);
    matching infinities compare equal; any other NaN/inf mismatch fails.
    """
    if math.isnan(current) and math.isnan(reference):
        return True
    if math.isnan(current) or math.isnan(reference):
        return False
    if math.isinf(current) or math.isinf(reference):
        return current == reference
    return abs(current - reference) <= atol + rtol * abs(reference)


# ---------------------------------------------------------------------------
# Per-kind dispatch
# ---------------------------------------------------------------------------


def _analyze_metrics(spec: ScenarioSpec) -> Dict[str, object]:
    from repro.core.framework import XRPerformanceModel

    app = spec.build_app()
    network = spec.build_network()
    model = XRPerformanceModel(device=spec.device, edge=spec.edge, app=app, network=network)
    include_aoi = bool(spec.params.get("include_aoi", False))
    report = model.analyze(include_aoi=include_aoi)
    metrics: Dict[str, object] = {
        "total_latency_ms": float(report.total_latency_ms),
        "total_energy_mj": float(report.total_energy_mj),
    }
    if report.aoi is not None:
        metrics["max_average_aoi_ms"] = float(max(report.aoi.average_aoi_ms.values()))
        metrics["min_roi"] = float(min(report.aoi.roi.values()))
    return metrics


def _sweep_metrics(spec: ScenarioSpec) -> Dict[str, object]:
    import numpy as np

    from repro.config.workload import SweepConfig
    from repro.core.framework import XRPerformanceModel

    default_sweep = SweepConfig.paper_default()
    frame_sides = tuple(spec.params.get("frame_sides_px", default_sweep.frame_sides_px))
    cpu_freqs = tuple(spec.params.get("cpu_freqs_ghz", default_sweep.cpu_freqs_ghz))
    model = XRPerformanceModel(
        device=spec.device,
        edge=spec.edge,
        app=spec.build_app(),
        network=spec.build_network(),
    )
    batch = model.sweep_batch(frame_sides, cpu_freqs)
    latency = np.asarray(batch.total_latency_ms)
    energy = np.asarray(batch.total_energy_mj)
    return {
        "n_points": int(batch.n_points),
        "mean_latency_ms": float(latency.mean()),
        "min_latency_ms": float(latency.min()),
        "max_latency_ms": float(latency.max()),
        "mean_energy_mj": float(energy.mean()),
        "max_energy_mj": float(energy.max()),
    }


def _fleet_metrics(spec: ScenarioSpec) -> Dict[str, object]:
    from repro.fleet import (
        EnergyAwareAdmission,
        FleetAnalyzer,
        GreedySLOAdmission,
        RoundRobinAdmission,
        homogeneous,
        mixed_devices,
        plan_capacity,
    )

    params = spec.params
    users = int(params.get("users", 64))
    slo_ms = float(params.get("slo_ms", 800.0))
    n_edges = int(params.get("n_edges", 1))
    app = spec.build_app()
    network = spec.build_network()
    if "mixed_devices" in params:
        population = mixed_devices(users, devices=tuple(params["mixed_devices"]), app=app)
    else:
        population = homogeneous(users, device=spec.device, app=app)
    policy_name = params.get("policy", "greedy")
    policy = {
        "greedy": lambda: GreedySLOAdmission(slo_ms=slo_ms),
        "energy": EnergyAwareAdmission,
        "round-robin": RoundRobinAdmission,
    }[policy_name]()
    fault_state = None
    schedule = spec.build_faults()
    if schedule is not None:
        # A fleet analysis is a steady-state snapshot, so the schedule is
        # sampled at one epoch: ``fault_epoch`` if given, else the first
        # epoch any event is active.
        epoch = int(params.get("fault_epoch", min(e.start_epoch for e in schedule.events)))
        fault_state = schedule.state_at(epoch, n_edges)
    report = FleetAnalyzer(
        population,
        edge=spec.edge,
        n_edges=n_edges,
        network=network,
        policy=policy,
        slo_ms=slo_ms,
        include_aoi=bool(params.get("include_aoi", False)),
        fault_state=fault_state,
    ).analyze()
    metrics: Dict[str, object] = {
        "n_users": users,
        "p50_latency_ms": float(report.p50_latency_ms),
        "p95_latency_ms": float(report.p95_latency_ms),
        "p99_latency_ms": float(report.p99_latency_ms),
        "mean_latency_ms": float(report.mean_latency_ms),
        "total_energy_mj": float(report.total_energy_mj),
        "slo_violations": int(report.slo_violations),
        "max_edge_utilization": float(max(report.edge_utilizations, default=0.0)),
    }
    if fault_state is not None:
        metrics["availability"] = float(report.availability)
        metrics["n_edges_alive"] = int(report.n_edges_alive)
        metrics["fault_forced_local"] = int(report.fault_forced_local)
    if params.get("plan_capacity", False):
        plan = plan_capacity(
            device=spec.device,
            edge=spec.edge,
            slo_ms=slo_ms,
            app=app,
            network=network,
            n_edges=n_edges,
        )
        metrics["capacity_max_users"] = int(plan.max_users)
        metrics["capacity_p95_ms"] = (
            float(plan.p95_at_capacity_ms) if plan.p95_at_capacity_ms is not None else None
        )
    return metrics


def _adapt_controller(name: str):
    from repro.adaptive import EwmaPredictive, GreedyBatchSweep, HysteresisThreshold

    return {
        "hysteresis": HysteresisThreshold,
        "greedy": GreedyBatchSweep,
        "ewma": EwmaPredictive,
    }[name]()


def _adapt_metrics(spec: ScenarioSpec) -> Dict[str, object]:
    from repro.adaptive import AdaptiveRuntime, make_trace

    params = spec.params
    trace = make_trace(
        params.get("trace", "burst"),
        int(params.get("epochs", 200)),
        epoch_ms=float(params.get("epoch_ms", 100.0)),
        seed=spec.seed,
    )
    runtime = AdaptiveRuntime(
        trace=trace,
        device=spec.device,
        edge=spec.edge,
        app=spec.build_app(),
        network=spec.build_network(),
        deadline_ms=float(params.get("deadline_ms", 700.0)),
        objective=params.get("objective", "quality"),
        include_aoi=bool(params.get("include_aoi", False)),
        faults=spec.build_faults(),
    )
    controller_name = params.get("controller", "greedy")
    if controller_name == "static":
        report = static = runtime.static_report()
    else:
        report = runtime.run(_adapt_controller(controller_name))
        static = runtime.static_report()
    metrics: Dict[str, object] = {
        "n_epochs": int(report.n_epochs),
        "deadline_miss_rate": float(report.deadline_miss_rate),
        "p50_latency_ms": float(report.p50_latency_ms),
        "p95_latency_ms": float(report.p95_latency_ms),
        "p99_latency_ms": float(report.p99_latency_ms),
        "mean_quality": float(report.mean_quality),
        "total_energy_j": float(report.total_energy_j),
        "switch_count": int(report.switch_count),
        "static_deadline_miss_rate": float(static.deadline_miss_rate),
    }
    if report.aoi_violation_rate is not None:
        metrics["aoi_violation_rate"] = float(report.aoi_violation_rate)
    outcome = runtime.fault_report(report)
    if outcome is not None:
        metrics["availability"] = float(outcome.availability)
        metrics["fault_miss_rate"] = float(outcome.fault_miss_rate)
        metrics["fault_epoch_fraction"] = float(outcome.fault_epoch_fraction)
        metrics["mean_time_to_recover_epochs"] = float(outcome.mean_time_to_recover_epochs)
    return metrics


def _cosim_metrics(spec: ScenarioSpec) -> Dict[str, object]:
    from repro.adaptive import StaticBaseline, make_trace
    from repro.cosim import run_cosim
    from repro.fleet import homogeneous

    params = spec.params
    trace = make_trace(
        params.get("trace", "burst"),
        int(params.get("epochs", 100)),
        epoch_ms=float(params.get("epoch_ms", 100.0)),
        seed=spec.seed,
    )
    controller_name = params.get("controller", "hysteresis")
    if controller_name == "static":
        controller = StaticBaseline()
    else:
        controller = _adapt_controller(controller_name)
    population = homogeneous(
        int(params.get("users", 64)), device=spec.device, app=spec.build_app()
    )
    faults = spec.build_faults()
    report = run_cosim(
        population,
        controller,
        trace,
        n_shards=int(params.get("shards", 1)),
        edge=spec.edge,
        n_edges=int(params.get("n_edges", 1)),
        network=spec.build_network(),
        deadline_ms=float(params.get("deadline_ms", 700.0)),
        objective=params.get("objective", "quality"),
        include_aoi=bool(params.get("include_aoi", False)),
        max_iterations=int(params.get("max_iterations", 8)),
        damping=float(params.get("damping", 0.5)),
        faults=faults,
    )
    metrics: Dict[str, object] = {
        "n_users": int(report.n_users),
        "deadline_miss_rate": float(report.deadline_miss_rate),
        "fleet_p50_latency_ms": float(report.fleet_p50_latency_ms),
        "fleet_p95_latency_ms": float(report.fleet_p95_latency_ms),
        "fleet_p99_latency_ms": float(report.fleet_p99_latency_ms),
        "total_energy_j": float(report.total_energy_j),
        "switch_count": int(report.switch_count),
        "convergence_rate": float(report.convergence_rate),
    }
    # Sharded merges expose a reduced surface; record the closed-loop
    # diagnostics whenever the report carries them.
    for name in ("mean_offload_fraction", "mean_quality_overall", "n_unconverged_epochs"):
        value = getattr(report, name, None)
        if value is not None:
            metrics[name] = float(value) if name != "n_unconverged_epochs" else int(value)
    if faults is not None:
        # Both report shapes carry the fault surface (the sharded merge
        # aggregates it user-weighted across shards).
        metrics["availability"] = float(report.availability)
        metrics["fault_miss_rate"] = float(report.fault_miss_rate)
        metrics["fault_epoch_fraction"] = float(report.fault_epoch_fraction)
        metrics["mean_time_to_recover_epochs"] = float(report.mean_time_to_recover_epochs)
    return metrics


_DISPATCH = {
    "analyze": _analyze_metrics,
    "sweep": _sweep_metrics,
    "fleet": _fleet_metrics,
    "adapt": _adapt_metrics,
    "cosim": _cosim_metrics,
}


# ---------------------------------------------------------------------------
# Results and manifests
# ---------------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """Outcome of one scenario run.

    ``status`` is ``"ok"``, ``"check-failed"`` (an ``expected`` metric
    drifted) or ``"error"`` (the subsystem raised); ``checks`` lists every
    failed expectation and ``error`` carries the exception text.
    """

    name: str
    kind: str
    status: str
    metrics: Dict[str, object] = field(default_factory=dict)
    tolerances: Dict[str, float] = field(default_factory=dict)
    checks: Tuple[str, ...] = ()
    error: Optional[str] = None
    wall_time_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "metrics": dict(self.metrics),
            "tolerances": dict(self.tolerances),
            "checks": list(self.checks),
            "error": self.error,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioResult":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            status=payload["status"],
            metrics=dict(payload.get("metrics", {})),
            tolerances=dict(payload.get("tolerances", {})),
            checks=tuple(payload.get("checks", ())),
            error=payload.get("error"),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
        )


@dataclass
class RunManifest:
    """The attributable record of one suite run.

    Two serial runs of the same suite at the same commit produce manifests
    that are identical except for the fields named in
    :data:`WALL_TIME_FIELDS` (compare with :meth:`metric_payload`).
    """

    suite: str
    spec_hash: str
    scenarios: Tuple[ScenarioResult, ...]
    repro_version: str = __version__
    git_sha: Optional[str] = None
    schema_version: Union[int, str] = MANIFEST_SCHEMA_VERSION
    total_wall_time_s: float = 0.0
    #: Telemetry snapshot of the run (present only when the run was
    #: telemetry-enabled).  Stripped by :meth:`metric_payload` exactly like
    #: the wall-time fields, so enabling telemetry never perturbs the
    #: deterministic payload.
    telemetry: Optional[dict] = None

    @property
    def passed(self) -> bool:
        """Whether every scenario ran and met its ``expected`` metrics."""
        return all(result.status == "ok" for result in self.scenarios)

    def result_for(self, name: str) -> Optional[ScenarioResult]:
        for result in self.scenarios:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "spec_hash": self.spec_hash,
            "repro_version": self.repro_version,
            "git_sha": self.git_sha,
            "total_wall_time_s": self.total_wall_time_s,
            "scenarios": [result.to_dict() for result in self.scenarios],
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        check_schema(
            payload,
            current=MANIFEST_SCHEMA_VERSION,
            known_keys=_MANIFEST_KEYS,
            consumer="run manifest",
            error=ConfigurationError,
        )
        return cls(
            suite=payload["suite"],
            spec_hash=payload["spec_hash"],
            scenarios=tuple(
                ScenarioResult.from_dict(entry) for entry in payload.get("scenarios", ())
            ),
            repro_version=payload.get("repro_version", ""),
            git_sha=payload.get("git_sha"),
            schema_version=payload["schema_version"],
            total_wall_time_s=float(payload.get("total_wall_time_s", 0.0)),
            telemetry=payload.get("telemetry"),
        )

    def metric_payload(self) -> dict:
        """The manifest dict with every wall-time field removed.

        This is the deterministic payload: the determinism tests and the
        regression gate compare exactly this.
        """
        payload = self.to_dict()
        payload.pop("total_wall_time_s", None)
        payload.pop("telemetry", None)
        for scenario in payload["scenarios"]:
            scenario.pop("wall_time_s", None)
        return payload

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"manifest {str(path)!r} does not exist")
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario and fold its ``expected`` checks into the status."""
    registry = telemetry.get()
    with registry.span(f"experiments.scenario.{spec.name}") as sp:
        result = _run_scenario(spec)
    result.wall_time_s = sp.elapsed_s
    if registry.enabled:
        registry.add("experiments.scenarios")
        registry.add(f"experiments.scenarios_{result.status.replace('-', '_')}")
    return result


def _run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    try:
        metrics = _DISPATCH[spec.kind](spec)
    except ReproError as exc:
        return ScenarioResult(
            name=spec.name,
            kind=spec.kind,
            status="error",
            tolerances=dict(spec.tolerances),
            error=f"{type(exc).__name__}: {exc}",
        )
    checks: List[str] = []
    for metric, expected in sorted(spec.expected.items()):
        rtol = spec.tolerances.get(metric, DEFAULT_EXPECTED_RTOL)
        current = metrics.get(metric)
        if not isinstance(current, (int, float)):
            checks.append(f"{metric}: expected {expected!r} but the run produced no value")
        elif not metrics_close(float(current), expected, rtol):
            checks.append(
                f"{metric}: expected {expected!r} within rtol {rtol!r}, got {current!r}"
            )
    return ScenarioResult(
        name=spec.name,
        kind=spec.kind,
        status="check-failed" if checks else "ok",
        metrics=metrics,
        tolerances=dict(spec.tolerances),
        checks=tuple(checks),
    )


def _run_scenario_captured(payload: Tuple[ScenarioSpec, bool]):
    """Pool-worker entry point: optionally capture the worker's telemetry.

    Mirrors ``repro.cosim.engine._run_shard``: with ``capture`` the scenario
    records into a fresh registry (restored afterwards) whether it runs in a
    worker or in-process during the serial fallback, so the parent-side
    merged snapshot is identical either way.
    """
    spec, capture = payload
    if not capture:
        return run_scenario(spec), None
    # Thread-local activation: correct in a process worker, a thread
    # worker, and the in-process serial fallback alike.
    with telemetry.scoped(telemetry.Telemetry()) as registry:
        result = run_scenario(spec)
    return result, registry.snapshot()


class ExperimentRunner:
    """Run a :class:`ScenarioSuite` and emit a :class:`RunManifest`.

    Args:
        suite: the suite to run.
        manifest_dir: where :meth:`run` writes the manifest (None disables
            writing; ``results/manifests/`` by default).
    """

    def __init__(
        self,
        suite: ScenarioSuite,
        manifest_dir: Union[str, Path, None] = DEFAULT_MANIFEST_DIR,
    ) -> None:
        self.suite = suite
        self.manifest_dir = Path(manifest_dir) if manifest_dir is not None else None

    def manifest_path(self) -> Optional[Path]:
        """Default output path: ``<manifest_dir>/<suite>.json``."""
        if self.manifest_dir is None:
            return None
        return self.manifest_dir / f"{self.suite.name}.json"

    def run(
        self,
        select: Optional[Sequence[str]] = None,
        processes: int = 0,
        write: bool = True,
        task_timeout_s: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> RunManifest:
        """Run the (sub-)suite and return its manifest.

        Args:
            select: scenario names to run (default: the whole suite).  The
                spec hash always covers the scenarios actually run, so a
                selected manifest never silently gates against a full
                baseline.
            processes: pool width; 0/1 runs serially in-process.  The
                serial path is the reference: pooled runs produce the same
                metric payload, and scenarios whose worker crashes, hangs
                past ``task_timeout_s`` or cannot be pickled are re-run
                serially (see :class:`repro.exec.ExecutionBackend`).
            write: write the manifest to :meth:`manifest_path`.
            task_timeout_s: per-scenario wall-clock budget for pooled runs
                (default: the ``REPRO_EXEC_TIMEOUT_S`` environment variable,
                unbounded when unset).
            backend: execution backend name for pooled runs (default: the
                ``REPRO_EXEC_BACKEND`` environment variable, then the
                hardened process pool; see
                :func:`repro.exec.resolve_backend`).
        """
        if processes < 0:
            raise ConfigurationError(f"processes must be >= 0, got {processes}")
        suite = self.suite if select is None else self.suite.select(select)
        registry = telemetry.get()
        with registry.span("experiments.run", scenarios=len(suite.specs)) as sp:
            results = self._run_specs(
                suite.specs, processes, task_timeout_s, backend
            )
        manifest = RunManifest(
            suite=suite.name,
            spec_hash=suite.spec_hash(),
            scenarios=tuple(results),
            repro_version=__version__,
            git_sha=git_sha(),
            total_wall_time_s=sp.elapsed_s,
            telemetry=registry.snapshot() if registry.enabled else None,
        )
        path = self.manifest_path()
        if write and path is not None:
            manifest.save(path)
        return manifest

    @staticmethod
    def _run_specs(
        specs: Sequence[ScenarioSpec],
        processes: int,
        task_timeout_s: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> List[ScenarioResult]:
        if processes <= 1 or len(specs) <= 1:
            return [run_scenario(spec) for spec in specs]
        # The execution backend seam (shared with repro.cosim.run_cosim)
        # recovers per-scenario: a crashed or timed-out worker costs one
        # serial re-run of that scenario, completed scenarios keep their
        # results, and the merged manifest is bit-identical to the
        # all-serial path.  A genuine scenario error is captured in its
        # ScenarioResult either way.
        from repro.exec import resolve_backend

        registry = telemetry.get()
        payloads = [(spec, registry.enabled) for spec in specs]
        results = resolve_backend(backend).map_tasks(
            _run_scenario_captured,
            payloads,
            max_workers=min(processes, len(specs)),
            timeout_s=task_timeout_s,
            label="exec",
        )
        # Worker snapshots merge in scenario order (associative, so any
        # grouping agrees on every deterministic field).
        for _, snapshot in results:
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
        return [result for result, _ in results]
