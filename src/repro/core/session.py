"""Session-level analysis: from per-frame models to whole XR sessions.

The paper's models are per-frame.  A developer evaluating an XR product needs
session-level answers: what frame rate can the device sustain, how long does
the battery last, how hot does the device get, and what do the latency tails
look like once run-to-run variability is taken into account.
:class:`SessionAnalyzer` composes the per-frame analytical models with the
battery/thermal device models and (optionally) the simulated testbed's
stochastic traces to answer those questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.application import ApplicationConfig
from repro.config.network import NetworkConfig
from repro.core.framework import XRPerformanceModel
from repro.devices.battery import Battery
from repro.devices.thermals import ThermalModel
from repro.exceptions import ConfigurationError
from repro.simulation.noise import NoiseModel
from repro.simulation.pipeline_sim import PipelineSimulator
from repro.simulation.testbed import truth_coefficients
from repro.measurement.truth import TestbedTruth


@dataclass(frozen=True)
class SessionReport:
    """Summary of an XR session of many frames.

    Attributes:
        n_frames: number of frames analysed.
        mean_latency_ms: mean per-frame latency.
        p95_latency_ms: 95th-percentile per-frame latency.
        p99_latency_ms: 99th-percentile per-frame latency.
        achievable_fps: frame rate sustainable at the mean latency.
        mean_energy_mj: mean per-frame energy.
        session_energy_j: total energy over the session, in joules.
        battery_drain_fraction: fraction of the battery consumed.
        battery_life_s: projected time to empty at this workload (inf for
            tethered devices).
        final_temperature_c: device skin temperature at the end of the session.
        thermal_throttling: whether the skin temperature crossed the throttle
            threshold at any point.
    """

    n_frames: int
    mean_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    achievable_fps: float
    mean_energy_mj: float
    session_energy_j: float
    battery_drain_fraction: float
    battery_life_s: float
    final_temperature_c: float
    thermal_throttling: bool

    def summary(self) -> str:
        """Multi-line human readable summary."""
        battery_life = (
            "unlimited (tethered)"
            if self.battery_life_s == float("inf")
            else f"{self.battery_life_s / 60.0:.0f} min"
        )
        return "\n".join(
            [
                f"frames analysed        : {self.n_frames}",
                f"mean / p95 / p99 latency: {self.mean_latency_ms:.1f} / "
                f"{self.p95_latency_ms:.1f} / {self.p99_latency_ms:.1f} ms",
                f"achievable frame rate  : {self.achievable_fps:.1f} fps",
                f"mean energy per frame  : {self.mean_energy_mj:.1f} mJ",
                f"session energy         : {self.session_energy_j:.1f} J",
                f"battery consumed       : {self.battery_drain_fraction * 100.0:.1f}%",
                f"projected battery life : {battery_life}",
                f"final skin temperature : {self.final_temperature_c:.1f} C"
                + (" (throttling)" if self.thermal_throttling else ""),
            ]
        )


class SessionAnalyzer:
    """Analyses whole sessions of an XR application on one device.

    Two modes are available:

    * **analytical** — every frame costs exactly the per-frame model's
      prediction; fast, used for capacity-planning style questions.
    * **simulated** — frames are drawn from the simulated testbed
      (stochastic latencies/powers), so the report includes realistic latency
      tails; used for the ``p95``/``p99`` style questions.
    """

    def __init__(self, model: XRPerformanceModel, use_simulation: bool = False, seed: int = 0):
        self.model = model
        self.use_simulation = use_simulation
        self.seed = seed

    def _simulated_frames(
        self, app: ApplicationConfig, network: NetworkConfig, n_frames: int
    ) -> tuple[np.ndarray, np.ndarray]:
        truth = TestbedTruth()
        simulator = PipelineSimulator(
            device=self.model.device,
            edge=self.model.edge,
            exact_coefficients=truth_coefficients(truth, self.model.device.name),
            truth=truth,
            noise=NoiseModel(),
        )
        trace = simulator.simulate(app, network, n_frames=n_frames, seed=self.seed)
        return trace.latencies_ms, trace.energies_mj

    def _analytical_frames(
        self, app: ApplicationConfig, network: NetworkConfig, n_frames: int
    ) -> tuple[np.ndarray, np.ndarray]:
        report = self.model.analyze(app=app, network=network, include_aoi=False)
        latencies = np.full(n_frames, report.total_latency_ms)
        energies = np.full(n_frames, report.total_energy_mj)
        return latencies, energies

    def analyze_session(
        self,
        n_frames: int = 1000,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
    ) -> SessionReport:
        """Analyse a session of ``n_frames`` frames and summarise it."""
        if n_frames <= 0:
            raise ConfigurationError(f"n_frames must be > 0, got {n_frames}")
        app = app if app is not None else self.model.app
        network = network if network is not None else self.model.network

        if self.use_simulation:
            latencies, energies = self._simulated_frames(app, network, n_frames)
        else:
            latencies, energies = self._analytical_frames(app, network, n_frames)

        battery = Battery.from_spec(self.model.device)
        thermal = ThermalModel.from_spec(self.model.device)
        throttled = False
        for latency, energy in zip(latencies, energies):
            battery.drain(float(energy))
            thermal.step(float(energy), float(latency))
            throttled = throttled or thermal.is_throttling

        mean_latency = float(np.mean(latencies))
        mean_energy = float(np.mean(energies))
        session_energy_j = float(np.sum(energies)) / 1e3
        drained = 1.0 - battery.state_of_charge
        battery_life = Battery.from_spec(self.model.device).runtime_remaining_s(
            mean_energy, mean_latency
        )
        return SessionReport(
            n_frames=n_frames,
            mean_latency_ms=mean_latency,
            p95_latency_ms=float(np.percentile(latencies, 95)),
            p99_latency_ms=float(np.percentile(latencies, 99)),
            achievable_fps=1e3 / mean_latency,
            mean_energy_mj=mean_energy,
            session_energy_j=session_energy_j,
            battery_drain_fraction=drained,
            battery_life_s=battery_life,
            final_temperature_c=thermal.temperature_c,
            thermal_throttling=throttled,
        )
