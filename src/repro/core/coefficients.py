"""Regression coefficient sets used by the analytical models.

The paper's framework relies on four regression models.  Their published
coefficients (Eqs. 3, 10, 12, 21) are shipped verbatim as
``CoefficientSet.paper()``.  Because we validate against a *simulated*
testbed rather than the authors' physical one, the framework can also
re-calibrate the same regression forms against the synthetic measurement
campaign (``CoefficientSet.calibrated()``) — this mirrors exactly what the
paper did against its own testbed and is what the figure-reproduction
harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from repro.cnn.complexity import CNNComplexityModel
from repro.exceptions import ModelDomainError


@dataclass(frozen=True)
class QuadraticBlend:
    """A CPU/GPU blended quadratic response (the Eq. 3 / Eq. 21 form).

    ``value = w_c * (a0 + a1 f_c + a2 f_c^2) + (1 - w_c) * (b0 + b1 f_g + b2 f_g^2)``

    Attributes:
        cpu: (intercept, linear, quadratic) coefficients in the CPU clock.
        gpu: (intercept, linear, quadratic) coefficients in the GPU clock.
    """

    cpu: Tuple[float, float, float]
    gpu: Tuple[float, float, float]

    def cpu_component(self, cpu_freq_ghz: float) -> float:
        """Evaluate the CPU polynomial."""
        a0, a1, a2 = self.cpu
        return a0 + a1 * cpu_freq_ghz + a2 * cpu_freq_ghz**2

    def gpu_component(self, gpu_freq_ghz: float) -> float:
        """Evaluate the GPU polynomial."""
        b0, b1, b2 = self.gpu
        return b0 + b1 * gpu_freq_ghz + b2 * gpu_freq_ghz**2

    def evaluate(self, cpu_freq_ghz: float, gpu_freq_ghz: float, cpu_share: float) -> float:
        """Evaluate the blended response at an operating point."""
        if not 0.0 <= cpu_share <= 1.0:
            raise ModelDomainError(f"cpu share must be in [0, 1], got {cpu_share}")
        if cpu_freq_ghz <= 0.0 or gpu_freq_ghz <= 0.0:
            raise ModelDomainError(
                f"clock frequencies must be > 0, got cpu={cpu_freq_ghz}, gpu={gpu_freq_ghz}"
            )
        return cpu_share * self.cpu_component(cpu_freq_ghz) + (
            1.0 - cpu_share
        ) * self.gpu_component(gpu_freq_ghz)

    @classmethod
    def from_flat(cls, coefficients) -> "QuadraticBlend":
        """Build from a flat 6-vector ``[a0, a1, a2, b0, b1, b2]``."""
        values = [float(c) for c in coefficients]
        if len(values) != 6:
            raise ModelDomainError(
                f"a quadratic blend needs 6 coefficients, got {len(values)}"
            )
        return cls(cpu=(values[0], values[1], values[2]), gpu=(values[3], values[4], values[5]))


@dataclass(frozen=True)
class EncodingCoefficients:
    """Coefficients of the frame-encoding latency regression (Eq. 10).

    The encoding latency is ``numerator / c_client + delta_f1 / m_client``
    where the numerator is a linear function of the encoder parameters.

    Attributes map one-to-one to the paper's regression terms.
    """

    intercept: float
    i_frame_interval: float
    b_frame_count: float
    bitrate_mbps: float
    frame_side_px: float
    frame_rate_fps: float
    quantization: float

    def numerator(
        self,
        i_frame_interval: float,
        b_frame_count: float,
        bitrate_mbps: float,
        frame_side_px: float,
        frame_rate_fps: float,
        quantization: float,
    ) -> float:
        """Evaluate the encoding workload numerator.

        Raises:
            ModelDomainError: if the numerator is non-positive, which means
                the encoder configuration lies outside the regression's valid
                domain.
        """
        value = (
            self.intercept
            + self.i_frame_interval * i_frame_interval
            + self.b_frame_count * b_frame_count
            + self.bitrate_mbps * bitrate_mbps
            + self.frame_side_px * frame_side_px
            + self.frame_rate_fps * frame_rate_fps
            + self.quantization * quantization
        )
        if value <= 0.0:
            raise ModelDomainError(
                "encoding regression evaluated to a non-positive workload "
                f"({value:.2f}); the encoder configuration is outside the model domain"
            )
        return value

    @classmethod
    def from_flat(cls, coefficients) -> "EncodingCoefficients":
        """Build from a flat 7-vector in the Eq. 10 term order."""
        values = [float(c) for c in coefficients]
        if len(values) != 7:
            raise ModelDomainError(
                f"the encoding regression needs 7 coefficients, got {len(values)}"
            )
        return cls(*values)


#: The paper's published Eq. (3) coefficients (compute resource).
PAPER_RESOURCE_BLEND = QuadraticBlend(
    cpu=(18.24, -6.02, 1.84), gpu=(193.67, -558.29, 400.96)
)

#: The paper's published Eq. (21) coefficients (mean power, W).
PAPER_POWER_BLEND = QuadraticBlend(
    cpu=(-20.74, 18.85, -3.64), gpu=(-62.197, 187.48, -135.11)
)

#: The paper's published Eq. (10) coefficients (encoding latency).
PAPER_ENCODING = EncodingCoefficients(
    intercept=-574.36,
    i_frame_interval=-7.71,
    b_frame_count=142.61,
    bitrate_mbps=53.38,
    frame_side_px=1.43,
    frame_rate_fps=163.65,
    quantization=3.62,
)

#: R^2 values the paper reports for its regressions.
PAPER_R_SQUARED: Dict[str, float] = {
    "compute_resource": 0.87,
    "mean_power": 0.863,
    "encoding_latency": 0.79,
    "cnn_complexity": 0.844,
}


@dataclass(frozen=True)
class CoefficientSet:
    """All regression coefficients the analytical framework consumes.

    Attributes:
        resource: compute-resource blend (Eq. 3).
        power: mean-power blend (Eq. 21).
        encoding: encoding-latency coefficients (Eq. 10).
        cnn_complexity: CNN complexity model (Eq. 12).
        decode_discount: decoding-to-encoding latency ratio ``gamma`` (Eq. 14).
        edge_compute_scale: edge-to-client compute ratio (the paper measures
            ``c_epsilon = 11.76 c_client``).
        r_squared: fit quality of each regression.
        source: provenance of the coefficients (``"paper"`` or ``"calibrated"``).
    """

    resource: QuadraticBlend = PAPER_RESOURCE_BLEND
    power: QuadraticBlend = PAPER_POWER_BLEND
    encoding: EncodingCoefficients = PAPER_ENCODING
    cnn_complexity: CNNComplexityModel = field(default_factory=CNNComplexityModel.paper)
    decode_discount: float = 1.0 / 3.0
    edge_compute_scale: float = 11.76
    r_squared: Mapping[str, float] = field(default_factory=lambda: dict(PAPER_R_SQUARED))
    source: str = "paper"

    def __post_init__(self) -> None:
        if not 0.0 < self.decode_discount <= 1.0:
            raise ModelDomainError(
                f"decode discount must be in (0, 1], got {self.decode_discount}"
            )
        if self.edge_compute_scale <= 0.0:
            raise ModelDomainError(
                f"edge compute scale must be > 0, got {self.edge_compute_scale}"
            )

    @classmethod
    def paper(cls) -> "CoefficientSet":
        """The coefficient set published in the paper (Eqs. 3, 10, 12, 21)."""
        return cls()

    @classmethod
    def from_campaign_fits(cls, fits, **overrides) -> "CoefficientSet":
        """Build a coefficient set from synthetic-campaign regression fits.

        Args:
            fits: a :class:`repro.measurement.synthetic.CampaignFits` instance.
            **overrides: optional field overrides (e.g. ``decode_discount``).
        """
        r2 = {
            "compute_resource": fits.resource.r_squared_train,
            "mean_power": fits.power.r_squared_train,
            "encoding_latency": fits.encoding.r_squared_train,
            "cnn_complexity": fits.complexity.r_squared_train,
            "compute_resource_test": fits.resource.r_squared_test,
            "mean_power_test": fits.power.r_squared_test,
            "encoding_latency_test": fits.encoding.r_squared_test,
            "cnn_complexity_test": fits.complexity.r_squared_test,
        }
        base = cls(
            resource=QuadraticBlend.from_flat(fits.resource.coefficients),
            power=QuadraticBlend.from_flat(fits.power.coefficients),
            encoding=EncodingCoefficients.from_flat(fits.encoding.coefficients),
            cnn_complexity=CNNComplexityModel.from_coefficients(
                fits.complexity.coefficients, r_squared=fits.complexity.r_squared_train
            ),
            r_squared=r2,
            source="calibrated",
        )
        if overrides:
            base = replace(base, **overrides)
        return base

    def with_complexity(self, model: CNNComplexityModel) -> "CoefficientSet":
        """Return a copy using a different CNN complexity model."""
        return replace(self, cnn_complexity=model)


# ---------------------------------------------------------------------------
# Calibration cache
# ---------------------------------------------------------------------------

_CALIBRATION_CACHE: Dict[Tuple[int, int], CoefficientSet] = {}


def calibrated_coefficients(
    n_samples: int = 6000, seed: int = 2024, force_refit: bool = False
) -> CoefficientSet:
    """Coefficients re-fitted against the synthetic measurement campaign.

    This is the coefficient set the figure-reproduction harness uses: the
    regression *forms* are the paper's, but the constants are calibrated to
    the simulated testbed, exactly as the paper calibrated its constants to
    the physical testbed.  Results are cached per (n_samples, seed).

    Args:
        n_samples: number of synthetic measurement samples.
        seed: campaign RNG seed.
        force_refit: bypass the in-process cache.
    """
    key = (int(n_samples), int(seed))
    if not force_refit and key in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[key]
    from repro.measurement.synthetic import CampaignConfig, SyntheticCampaign

    campaign = SyntheticCampaign(CampaignConfig(n_samples=n_samples, seed=seed))
    fits = campaign.fit()
    coefficients = CoefficientSet.from_campaign_fits(
        fits,
        decode_discount=campaign.truth.decode_discount,
        edge_compute_scale=campaign.truth.edge_compute_scale,
    )
    _CALIBRATION_CACHE[key] = coefficients
    return coefficients
