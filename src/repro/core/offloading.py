"""Offloading decision helpers built on top of the analytical models.

The paper's framework models both local and remote execution (and split
execution across the client and multiple edge servers); a common consumer
question is "where should this frame's inference run?".
:class:`OffloadingPlanner` answers it by evaluating the candidate placements
with the latency and energy models and ranking them under a configurable
objective (latency, energy, or a weighted combination).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.network import NetworkConfig
from repro.core.energy import XREnergyModel
from repro.core.latency import XRLatencyModel
from repro.core.results import EnergyBreakdown, LatencyBreakdown
from repro.exceptions import ConfigurationError

#: Supported ranking objectives.
OBJECTIVES = ("latency", "energy", "weighted")


def _with_placement(
    app: ApplicationConfig, mode: ExecutionMode, edge_shares: Tuple[float, ...]
) -> ApplicationConfig:
    if mode is ExecutionMode.LOCAL:
        inference = replace(
            app.inference, mode=mode, omega_client=1.0, edge_shares=()
        )
    elif mode is ExecutionMode.REMOTE:
        inference = replace(
            app.inference,
            mode=mode,
            omega_client=0.0,
            edge_shares=edge_shares or (app.inference.total_task,),
        )
    else:
        total = app.inference.total_task
        client_share = max(total - sum(edge_shares), 0.0)
        inference = replace(
            app.inference,
            mode=mode,
            omega_client=client_share,
            edge_shares=edge_shares,
        )
    return replace(app, inference=inference)


def placement_candidates(
    app: ApplicationConfig, n_edge_servers: int = 1
) -> Tuple[ApplicationConfig, ...]:
    """The candidate placements of one application: local, remote, even split.

    This is the pure derivation behind :meth:`OffloadingPlanner.candidates`;
    it needs no models, so consumers that only want the placement variants
    (e.g. the adaptive layer's candidate grids) can use it directly.
    """
    if n_edge_servers <= 0:
        raise ConfigurationError(
            f"n_edge_servers must be >= 1, got {n_edge_servers}"
        )
    total = app.inference.total_task
    remote_shares = tuple([total / n_edge_servers] * n_edge_servers)
    split_shares = tuple([total / (2 * n_edge_servers)] * n_edge_servers)
    return (
        _with_placement(app, ExecutionMode.LOCAL, ()),
        _with_placement(app, ExecutionMode.REMOTE, remote_shares),
        _with_placement(app, ExecutionMode.SPLIT, split_shares),
    )


@dataclass(frozen=True)
class OffloadingDecision:
    """Outcome of evaluating one candidate placement.

    Attributes:
        mode: the placement (local / remote / split).
        edge_shares: per-edge task shares used by the candidate.
        latency: the latency breakdown of the candidate.
        energy: the energy breakdown of the candidate.
        score: the objective value used for ranking (lower is better).
    """

    mode: ExecutionMode
    edge_shares: Tuple[float, ...]
    latency: LatencyBreakdown
    energy: EnergyBreakdown
    score: float

    @property
    def total_latency_ms(self) -> float:
        """End-to-end latency of the candidate."""
        return self.latency.total_ms

    @property
    def total_energy_mj(self) -> float:
        """End-to-end energy of the candidate."""
        return self.energy.total_mj

    def describe(self) -> str:
        """One-line human-readable description."""
        shares = ", ".join(f"{share:.2f}" for share in self.edge_shares) or "-"
        return (
            f"{self.mode.value:>6s} (edge shares: {shares}): "
            f"{self.total_latency_ms:.1f} ms, {self.total_energy_mj:.1f} mJ"
        )


class OffloadingPlanner:
    """Ranks inference placements for one application/network configuration."""

    def __init__(
        self,
        latency_model: XRLatencyModel,
        energy_model: XREnergyModel,
        objective: str = "latency",
        latency_weight: float = 0.5,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ConfigurationError(
                f"objective must be one of {OBJECTIVES}, got {objective!r}"
            )
        if not 0.0 <= latency_weight <= 1.0:
            raise ConfigurationError(
                f"latency weight must be in [0, 1], got {latency_weight}"
            )
        self.latency_model = latency_model
        self.energy_model = energy_model
        self.objective = objective
        self.latency_weight = latency_weight
        self._candidate_cache: Dict[
            Tuple[ApplicationConfig, int], Tuple[ApplicationConfig, ...]
        ] = {}

    # -- candidate construction ------------------------------------------------------

    _with_placement = staticmethod(_with_placement)

    def candidates(
        self, app: ApplicationConfig, n_edge_servers: int = 1
    ) -> Tuple[ApplicationConfig, ...]:
        """The candidate placements of ``app``: local, remote, and an even split.

        Memoized per planner, so repeated :meth:`rank` calls (and adaptive
        controllers re-ranking every epoch) do not re-derive the three
        placements each time.
        """
        key = (app, n_edge_servers)
        cached = self._candidate_cache.get(key)
        if cached is None:
            cached = placement_candidates(app, n_edge_servers=n_edge_servers)
            self._candidate_cache[key] = cached
        return cached

    def candidate_placements(
        self, app: ApplicationConfig, n_edge_servers: int = 1
    ) -> List[ApplicationConfig]:
        """Build the candidate placements: local, remote, and an even split."""
        return list(self.candidates(app, n_edge_servers=n_edge_servers))

    # -- scoring ------------------------------------------------------------------------

    def _score(self, latency: LatencyBreakdown, energy: EnergyBreakdown) -> float:
        if self.objective == "latency":
            return latency.total_ms
        if self.objective == "energy":
            return energy.total_mj
        # Weighted objective on normalised quantities: milliseconds and
        # millijoules are of similar magnitude for the paper's workloads, so a
        # simple convex combination is adequate for ranking.
        return (
            self.latency_weight * latency.total_ms
            + (1.0 - self.latency_weight) * energy.total_mj
        )

    def evaluate(
        self, app: ApplicationConfig, network: Optional[NetworkConfig] = None
    ) -> OffloadingDecision:
        """Evaluate a single, fully-specified placement."""
        if network is None:
            network = NetworkConfig()
        latency = self.latency_model.end_to_end(app, network)
        energy = self.energy_model.from_latency_breakdown(latency, app, network)
        return OffloadingDecision(
            mode=app.inference.mode,
            edge_shares=tuple(app.inference.edge_shares),
            latency=latency,
            energy=energy,
            score=self._score(latency, energy),
        )

    def rank(
        self,
        app: ApplicationConfig,
        network: Optional[NetworkConfig] = None,
        n_edge_servers: int = 1,
    ) -> List[OffloadingDecision]:
        """Evaluate all candidate placements, best (lowest score) first.

        The three candidates differ structurally (execution mode), so the
        batch engine cannot group them; per-candidate scalar evaluation is
        the faster path here and honours any customized energy model.
        """
        candidates = self.candidates(app, n_edge_servers=n_edge_servers)
        decisions = [self.evaluate(candidate, network) for candidate in candidates]
        return sorted(decisions, key=lambda decision: decision.score)

    def best(
        self,
        app: ApplicationConfig,
        network: Optional[NetworkConfig] = None,
        n_edge_servers: int = 1,
    ) -> OffloadingDecision:
        """The best placement under the configured objective."""
        return self.rank(app, network, n_edge_servers=n_edge_servers)[0]
