"""The :class:`XRPerformanceModel` facade — the framework's main entry point.

One object bundles the device/edge specifications, the regression
coefficients and the three analytical models (latency, energy, AoI), and
exposes the per-frame analysis the paper's evaluation performs::

    from repro import XRPerformanceModel
    model = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
    report = model.analyze()
    print(report.summary())

Devices and edge servers can be given as catalog names (Table I), as
specification dataclasses, or as runtime objects.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.device import DeviceSpec, EdgeServerSpec
from repro.config.network import NetworkConfig
from repro.config.workload import WorkloadConfig
from repro.core.aoi import AoIModel, AoIResult, AoITimeline
from repro.core.coefficients import CoefficientSet
from repro.core.energy import XREnergyModel
from repro.core.latency import XRLatencyModel
from repro.core.offloading import OffloadingDecision, OffloadingPlanner
from repro.core.power import PowerModel
from repro.core.results import EnergyBreakdown, LatencyBreakdown, PerformanceReport
from repro.devices.device import XRDevice
from repro.devices.edge_server import EdgeServer
from repro.devices.resolve import resolve_device_spec, resolve_edge_spec
from repro.exceptions import ConfigurationError

DeviceLike = Union[str, DeviceSpec, XRDevice]
EdgeLike = Union[str, EdgeServerSpec, EdgeServer, None]

# Shared resolution helpers (kept under their historical local names).
_resolve_device = resolve_device_spec
_resolve_edge = resolve_edge_spec


class XRPerformanceModel:
    """Performance analysis of one XR application on one device/edge pair.

    Args:
        device: XR device (catalog name, spec, or runtime device).
        edge: edge server (catalog name, spec, runtime server, or None for a
            purely local analysis).
        app: application configuration; defaults to the paper's
            object-detection pipeline.
        network: network configuration; defaults to the paper's testbed
            topology (Wi-Fi to one edge server, three external sensors).
        coefficients: regression coefficient set; defaults to the paper's
            published constants.
        complexity_mode: CNN-complexity placement mode (see DESIGN.md).
    """

    def __init__(
        self,
        device: DeviceLike = "XR1",
        edge: EdgeLike = "EDGE-AGX",
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
        coefficients: Optional[CoefficientSet] = None,
        complexity_mode: str = "paper",
    ) -> None:
        self.device = _resolve_device(device)
        self.edge = _resolve_edge(edge)
        self.app = app if app is not None else ApplicationConfig.object_detection_default()
        self.network = network if network is not None else NetworkConfig()
        self.coefficients = coefficients if coefficients is not None else CoefficientSet.paper()

        self.latency_model = XRLatencyModel(
            device=self.device,
            edge=self.edge,
            coefficients=self.coefficients,
            complexity_mode=complexity_mode,
        )
        self.power_model = PowerModel(coefficients=self.coefficients, device=self.device)
        self.energy_model = XREnergyModel(
            latency_model=self.latency_model, power_model=self.power_model
        )

    # -- configuration helpers -------------------------------------------------------

    def with_app(self, **changes) -> "XRPerformanceModel":
        """Return a new model whose application config has the given fields replaced."""
        return XRPerformanceModel(
            device=self.device,
            edge=self.edge,
            app=replace(self.app, **changes),
            network=self.network,
            coefficients=self.coefficients,
            complexity_mode=self.latency_model.complexity_mode,
        )

    def _app_or_default(self, app: Optional[ApplicationConfig]) -> ApplicationConfig:
        return app if app is not None else self.app

    def _network_or_default(self, network: Optional[NetworkConfig]) -> NetworkConfig:
        return network if network is not None else self.network

    # -- per-frame analyses ------------------------------------------------------------

    def analyze_latency(
        self,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
    ) -> LatencyBreakdown:
        """Per-segment and end-to-end latency of one frame (Eq. 1)."""
        return self.latency_model.end_to_end(
            self._app_or_default(app), self._network_or_default(network)
        )

    def analyze_energy(
        self,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
    ) -> EnergyBreakdown:
        """Per-segment and end-to-end energy of one frame (Eq. 19)."""
        return self.energy_model.end_to_end(
            self._app_or_default(app), self._network_or_default(network)
        )

    def analyze_aoi(
        self,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
        frame_latency_ms: Optional[float] = None,
    ) -> AoIResult:
        """Per-sensor AoI/RoI for one frame (Eqs. 22-26).

        The required information frequency is derived from the frame's total
        latency (``f_req = N / L_tot``); pass ``frame_latency_ms`` to reuse a
        latency value you already computed.
        """
        app = self._app_or_default(app)
        network = self._network_or_default(network)
        if not network.sensors:
            raise ConfigurationError("AoI analysis requires at least one sensor")
        if frame_latency_ms is None:
            frame_latency_ms = self.analyze_latency(app, network).total_ms
        model = AoIModel(app.buffer_service_rate_hz)
        return model.analyze_frame(
            network=network,
            updates_per_frame=max(app.sensor_updates_per_frame, 1),
            frame_latency_ms=frame_latency_ms,
        )

    def aoi_timelines(self, workload: Optional[WorkloadConfig] = None) -> List[AoITimeline]:
        """AoI timelines of an emulation workload (Fig. 4(e)/(f))."""
        workload = workload if workload is not None else WorkloadConfig.paper_default()
        model = AoIModel(workload.buffer_service_rate_hz)
        return model.timelines_for_workload(workload)

    def analyze(
        self,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
        include_aoi: bool = True,
    ) -> PerformanceReport:
        """Full per-frame performance report (latency + energy + AoI)."""
        app = self._app_or_default(app)
        network = self._network_or_default(network)
        latency = self.analyze_latency(app, network)
        energy = self.energy_model.from_latency_breakdown(latency, app, network)
        aoi = None
        if include_aoi and network.sensors:
            aoi = self.analyze_aoi(app, network, frame_latency_ms=latency.total_ms)
        return PerformanceReport(
            latency=latency,
            energy=energy,
            aoi=aoi,
            device_name=self.device.name,
            edge_name=self.edge.name if self.edge is not None else None,
        )

    # -- sweeps -------------------------------------------------------------------------

    def sweep_batch(
        self,
        frame_sides_px: Sequence[float],
        cpu_freqs_ghz: Sequence[float],
        mode: Optional[ExecutionMode] = None,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
        include_aoi: bool = False,
    ):
        """Evaluate a (CPU frequency x frame size) sweep as one vectorized batch.

        Returns a :class:`repro.batch.BatchResult` whose point order matches
        the nested ``for cpu_freq: for frame_side`` loop of :meth:`sweep`;
        prefer this over :meth:`sweep` when only the metric arrays are needed.
        """
        from repro.batch import ParameterGrid, evaluate_grid

        app = self._app_or_default(app)
        network = self._network_or_default(network)
        if mode is not None:
            app = app.with_mode(mode)
        grid = ParameterGrid(
            frame_sides_px=tuple(frame_sides_px),
            cpu_freqs_ghz=tuple(cpu_freqs_ghz),
            devices=(self.device,),
            edge=self.edge,
            app=app,
            network=network,
        )
        result = evaluate_grid(
            grid,
            coefficients=self.coefficients,
            complexity_mode=self.latency_model.complexity_mode,
            include_aoi=include_aoi,
        )
        # Keep the scalar diagnostic alive: record the clamps the per-point
        # path would have counted.
        self.power_model.clamp_count += result.power_clamp_count
        return result

    def sweep(
        self,
        frame_sides_px: Sequence[float],
        cpu_freqs_ghz: Sequence[float],
        mode: Optional[ExecutionMode] = None,
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
    ) -> Dict[Tuple[float, float], PerformanceReport]:
        """Evaluate a (CPU frequency x frame size) sweep.

        Returns a mapping from ``(cpu_freq_ghz, frame_side_px)`` to the
        corresponding performance report — the raw material of the Fig. 4 and
        Fig. 5 sweeps.  The grid is evaluated by the vectorized batch engine
        (:mod:`repro.batch`); the reports are bit-identical to per-point
        :meth:`analyze` calls.
        """
        results: Dict[Tuple[float, float], PerformanceReport] = {}
        if len(frame_sides_px) == 0 or len(cpu_freqs_ghz) == 0:
            # An empty axis is an empty sweep, not a configuration error.
            return results
        batch = self.sweep_batch(
            frame_sides_px, cpu_freqs_ghz, mode=mode, app=app, network=network
        )
        index = 0
        for cpu_freq in cpu_freqs_ghz:
            for frame_side in frame_sides_px:
                results[(cpu_freq, frame_side)] = batch.report_at(index)
                index += 1
        return results

    # -- offloading --------------------------------------------------------------------

    def offloading_planner(
        self, objective: str = "latency", latency_weight: float = 0.5
    ) -> OffloadingPlanner:
        """An :class:`OffloadingPlanner` bound to this model's latency/energy models."""
        return OffloadingPlanner(
            latency_model=self.latency_model,
            energy_model=self.energy_model,
            objective=objective,
            latency_weight=latency_weight,
        )

    def best_placement(
        self,
        objective: str = "latency",
        app: Optional[ApplicationConfig] = None,
        network: Optional[NetworkConfig] = None,
        n_edge_servers: int = 1,
    ) -> OffloadingDecision:
        """The best inference placement under the given objective."""
        planner = self.offloading_planner(objective=objective)
        return planner.best(
            self._app_or_default(app),
            self._network_or_default(network),
            n_edge_servers=n_edge_servers,
        )
