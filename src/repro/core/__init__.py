"""Core contribution: the XR performance analysis modeling framework.

This package implements Sections IV-VI of the paper:

* :mod:`repro.core.coefficients` — the regression coefficient sets (the
  paper's published constants and campaign-calibrated alternatives),
* :mod:`repro.core.resources` — the computation-resource availability model
  (Eq. 3) and the client/edge compute relation,
* :mod:`repro.core.power` — the mean-power model (Eq. 21) with per-segment
  power factors, base power and thermal conversion,
* :mod:`repro.core.latency` — the per-segment and end-to-end latency model
  (Eqs. 1-18),
* :mod:`repro.core.energy` — the per-segment and end-to-end energy model
  (Eqs. 19-20),
* :mod:`repro.core.aoi` — the Age-of-Information and Relevance-of-Information
  models (Eqs. 22-26),
* :mod:`repro.core.offloading` — local/remote/split placement comparison
  helpers built on top of the models,
* :mod:`repro.core.framework` — the :class:`XRPerformanceModel` facade that
  ties everything together (the main public entry point).
"""

from repro.core.aoi import AoIModel, AoIResult, AoITimeline
from repro.core.coefficients import (
    CoefficientSet,
    EncodingCoefficients,
    QuadraticBlend,
    calibrated_coefficients,
)
from repro.core.energy import XREnergyModel
from repro.core.framework import XRPerformanceModel
from repro.core.latency import XRLatencyModel
from repro.core.offloading import OffloadingDecision, OffloadingPlanner
from repro.core.power import PowerModel
from repro.core.resources import ComputeResourceModel
from repro.core.results import EnergyBreakdown, LatencyBreakdown, PerformanceReport
from repro.core.segments import Segment
from repro.core.session import SessionAnalyzer, SessionReport

__all__ = [
    "AoIModel",
    "AoIResult",
    "AoITimeline",
    "CoefficientSet",
    "ComputeResourceModel",
    "EncodingCoefficients",
    "EnergyBreakdown",
    "LatencyBreakdown",
    "OffloadingDecision",
    "OffloadingPlanner",
    "PerformanceReport",
    "PowerModel",
    "QuadraticBlend",
    "Segment",
    "SessionAnalyzer",
    "SessionReport",
    "XREnergyModel",
    "XRLatencyModel",
    "XRPerformanceModel",
    "calibrated_coefficients",
]
