"""Result containers returned by the analytical models.

All breakdowns are per-frame quantities: milliseconds for latency,
millijoules for energy.  Segments that execute in parallel with the critical
path (e.g. XR cooperation by default) are reported in the breakdown but
excluded from the totals; :attr:`LatencyBreakdown.included_segments` records
which segments the total sums over, so the composition of Eq. (1)/(19) is
always inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional

from repro.config.application import ExecutionMode
from repro.core.segments import COMPUTE_SEGMENTS, Segment


def _format_table(rows, headers) -> str:
    """Minimal fixed-width table renderer for summaries."""
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        text_row = [str(cell) for cell in row]
        widths = [max(w, len(cell)) for w, cell in zip(widths, text_row)]
        text_rows.append(text_row)
    def render(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in text_rows)
    return "\n".join(lines)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-segment latency of one frame (Eq. 1).

    Attributes:
        per_segment_ms: latency of every evaluated segment (including the
            segments excluded from the total, e.g. parallel cooperation).
        included_segments: segments whose latency sums into :attr:`total_ms`.
        mode: where inference executed for this frame.
        client_compute: the ``c_client`` value used (diagnostic).
        edge_compute: the ``c_epsilon`` value used (diagnostic; None for
            purely local execution).
    """

    per_segment_ms: Mapping[Segment, float]
    included_segments: FrozenSet[Segment]
    mode: ExecutionMode
    client_compute: float
    edge_compute: Optional[float] = None

    def __post_init__(self) -> None:
        for segment, value in self.per_segment_ms.items():
            if value < 0.0:
                raise ValueError(f"segment {segment} has negative latency {value}")

    @property
    def total_ms(self) -> float:
        """End-to-end latency ``L_tot`` (Eq. 1)."""
        return sum(
            value
            for segment, value in self.per_segment_ms.items()
            if segment in self.included_segments
        )

    @property
    def computation_ms(self) -> float:
        """Latency spent on the device compute complex."""
        return sum(
            value
            for segment, value in self.per_segment_ms.items()
            if segment in self.included_segments and segment in COMPUTE_SEGMENTS
        )

    @property
    def communication_ms(self) -> float:
        """Latency spent outside the device compute complex."""
        return self.total_ms - self.computation_ms

    def segment_ms(self, segment: Segment) -> float:
        """Latency of one segment (0.0 when the segment was not evaluated)."""
        return float(self.per_segment_ms.get(segment, 0.0))

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary keyed by segment value plus ``"total"``."""
        data = {segment.value: float(value) for segment, value in self.per_segment_ms.items()}
        data["total"] = self.total_ms
        return data

    def summary(self) -> str:
        """Fixed-width text table of the breakdown."""
        rows = []
        for segment in Segment:
            if segment not in self.per_segment_ms:
                continue
            included = "yes" if segment in self.included_segments else "parallel"
            rows.append(
                (segment.value, f"{self.per_segment_ms[segment]:.2f}", included)
            )
        rows.append(("TOTAL", f"{self.total_ms:.2f}", ""))
        return _format_table(rows, headers=("segment", "latency (ms)", "in total"))


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-segment energy of one frame (Eq. 19).

    Attributes:
        per_segment_mj: energy of every evaluated segment.
        included_segments: segments whose energy sums into the total.
        thermal_mj: thermal conversion term ``E_theta``.
        base_mj: base energy term ``E_base``.
        mode: where inference executed.
        mean_power_w: the ``P_mean`` value used (diagnostic).
    """

    per_segment_mj: Mapping[Segment, float]
    included_segments: FrozenSet[Segment]
    thermal_mj: float
    base_mj: float
    mode: ExecutionMode
    mean_power_w: float

    def __post_init__(self) -> None:
        for segment, value in self.per_segment_mj.items():
            if value < 0.0:
                raise ValueError(f"segment {segment} has negative energy {value}")
        if self.thermal_mj < 0.0 or self.base_mj < 0.0:
            raise ValueError("thermal and base energy must be >= 0")

    @property
    def segment_total_mj(self) -> float:
        """Energy of the included pipeline segments (without thermal/base)."""
        return sum(
            value
            for segment, value in self.per_segment_mj.items()
            if segment in self.included_segments
        )

    @property
    def total_mj(self) -> float:
        """End-to-end energy ``E_tot`` (Eq. 19) including thermal and base terms."""
        return self.segment_total_mj + self.thermal_mj + self.base_mj

    def segment_mj(self, segment: Segment) -> float:
        """Energy of one segment (0.0 when not evaluated)."""
        return float(self.per_segment_mj.get(segment, 0.0))

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary keyed by segment value plus thermal/base/total."""
        data = {segment.value: float(value) for segment, value in self.per_segment_mj.items()}
        data["thermal"] = self.thermal_mj
        data["base"] = self.base_mj
        data["total"] = self.total_mj
        return data

    def summary(self) -> str:
        """Fixed-width text table of the breakdown."""
        rows = []
        for segment in Segment:
            if segment not in self.per_segment_mj:
                continue
            included = "yes" if segment in self.included_segments else "parallel"
            rows.append((segment.value, f"{self.per_segment_mj[segment]:.2f}", included))
        rows.append(("thermal (E_theta)", f"{self.thermal_mj:.2f}", "yes"))
        rows.append(("base (E_base)", f"{self.base_mj:.2f}", "yes"))
        rows.append(("TOTAL", f"{self.total_mj:.2f}", ""))
        return _format_table(rows, headers=("segment", "energy (mJ)", "in total"))


@dataclass(frozen=True)
class PerformanceReport:
    """Combined per-frame performance analysis of an XR application.

    Attributes:
        latency: the latency breakdown (Eq. 1).
        energy: the energy breakdown (Eq. 19).
        aoi: optional AoI analysis (Section VI) when sensors are configured.
        device_name: XR device the analysis was performed for.
        edge_name: edge server involved (None for purely local execution).
    """

    latency: "LatencyBreakdown"
    energy: "EnergyBreakdown"
    aoi: Optional[object] = None
    device_name: str = ""
    edge_name: Optional[str] = None

    @property
    def total_latency_ms(self) -> float:
        """End-to-end latency of the analysed frame."""
        return self.latency.total_ms

    @property
    def total_energy_mj(self) -> float:
        """End-to-end energy of the analysed frame."""
        return self.energy.total_mj

    def summary(self) -> str:
        """Multi-section text summary (latency table, energy table, AoI)."""
        sections = [
            f"XR performance report — device={self.device_name or 'n/a'}, "
            f"edge={self.edge_name or 'n/a'}, mode={self.latency.mode.value}",
            "",
            "Latency (ms):",
            self.latency.summary(),
            "",
            "Energy (mJ):",
            self.energy.summary(),
        ]
        if self.aoi is not None:
            sections.extend(["", "Age-of-Information:", str(self.aoi)])
        return "\n".join(sections)
