"""Pipeline segment taxonomy.

One enumeration names every segment of the object-detection XR pipeline of
Fig. 1, and records which segments belong to the local-inference path, the
remote-inference path, or both, so the latency/energy models can assemble
Eq. (1) / Eq. (19) without hard-coding segment lists in several places.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class Segment(str, enum.Enum):
    """Segments of the XR object-detection pipeline (Fig. 1)."""

    FRAME_GENERATION = "frame_generation"
    VOLUMETRIC = "volumetric"
    EXTERNAL = "external"
    CONVERSION = "conversion"
    ENCODING = "encoding"
    LOCAL_INFERENCE = "local_inference"
    REMOTE_INFERENCE = "remote_inference"
    TRANSMISSION = "transmission"
    HANDOFF = "handoff"
    RENDERING = "rendering"
    COOPERATION = "cooperation"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Segments present regardless of where inference executes.
COMMON_SEGMENTS: FrozenSet[Segment] = frozenset(
    {
        Segment.FRAME_GENERATION,
        Segment.VOLUMETRIC,
        Segment.EXTERNAL,
        Segment.RENDERING,
    }
)

#: Segments active only on the local-inference path (``omega_loc = 1``).
LOCAL_ONLY_SEGMENTS: FrozenSet[Segment] = frozenset(
    {Segment.CONVERSION, Segment.LOCAL_INFERENCE}
)

#: Segments active only on the remote-inference path (``omega_loc = 0``).
REMOTE_ONLY_SEGMENTS: FrozenSet[Segment] = frozenset(
    {
        Segment.ENCODING,
        Segment.REMOTE_INFERENCE,
        Segment.TRANSMISSION,
        Segment.HANDOFF,
    }
)

#: Segments that execute on the device's compute complex (CPU/GPU); these are
#: the segments whose power scales with the mean computation power of Eq. (21)
#: and whose energy contributes to the thermal conversion term.
COMPUTE_SEGMENTS: FrozenSet[Segment] = frozenset(
    {
        Segment.FRAME_GENERATION,
        Segment.VOLUMETRIC,
        Segment.CONVERSION,
        Segment.ENCODING,
        Segment.LOCAL_INFERENCE,
        Segment.RENDERING,
    }
)

#: Segments that use the radio rather than the compute complex.
RADIO_SEGMENTS: FrozenSet[Segment] = frozenset(
    {Segment.TRANSMISSION, Segment.HANDOFF, Segment.COOPERATION}
)


def segments_for_mode(local_inference: bool, include_cooperation: bool) -> FrozenSet[Segment]:
    """The set of segments contributing to the end-to-end totals (Eq. 1).

    Args:
        local_inference: True when inference executes on the XR device
            (``omega_loc = 1``), False for the remote/split path.
        include_cooperation: whether the XR-cooperation segment is billed to
            the end-to-end totals (the paper excludes it by default because it
            runs in parallel with rendering).
    """
    segments = set(COMMON_SEGMENTS)
    if local_inference:
        segments |= LOCAL_ONLY_SEGMENTS
    else:
        segments |= REMOTE_ONLY_SEGMENTS
    if include_cooperation:
        segments.add(Segment.COOPERATION)
    return frozenset(segments)
