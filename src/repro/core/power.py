"""Power model (Eq. 21): mean computation power, per-segment power, base power.

The mean power drawn while the compute complex is busy is the blended
quadratic regression of Eq. (21).  Individual pipeline segments stress
different parts of the SoC (hardware codec for encoding, GPU/NPU for
inference, radio for transmission), so each segment's power is the mean
computation power scaled by a per-segment factor — the same factors the
simulated testbed uses, playing the role of the per-segment power
measurements the paper's testbed provides.

The paper's published Eq. (21) coefficients become negative below roughly
1.3 GHz (CPU) / 0.5 GHz (GPU); the model clamps the mean power at the
device's base power and records that it clamped, as documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config.application import ApplicationConfig
from repro.config.device import DeviceSpec
from repro.config.network import NetworkConfig
from repro.core.coefficients import CoefficientSet
from repro.core.segments import RADIO_SEGMENTS, Segment
from repro.exceptions import ModelDomainError
from repro.measurement.truth import SEGMENT_POWER_FACTORS


@dataclass
class PowerModel:
    """Evaluates segment power draws for one XR device.

    Attributes:
        coefficients: regression coefficient set (Eq. 21 blend).
        device: the XR device specification (base power, thermal fraction).
        segment_factors: per-segment scaling of the mean computation power.
        clamp_count: number of times the mean-power evaluation had to be
            clamped at the base power (diagnostic, mutated by evaluation).
    """

    coefficients: CoefficientSet
    device: DeviceSpec
    segment_factors: Dict[str, float] = field(
        default_factory=lambda: dict(SEGMENT_POWER_FACTORS)
    )
    clamp_count: int = 0

    # -- mean computation power (Eq. 21) ---------------------------------------------

    def mean_power_w(
        self, cpu_freq_ghz: float, gpu_freq_ghz: float, cpu_share: float
    ) -> float:
        """Mean computation power ``P_mean`` (W), clamped at the base power."""
        value = self.coefficients.power.evaluate(cpu_freq_ghz, gpu_freq_ghz, cpu_share)
        floor = max(self.device.base_power_w, 1e-3)
        if value < floor:
            self.clamp_count += 1
            return floor
        return value

    def mean_power_for(self, app: ApplicationConfig) -> float:
        """Mean computation power at an application's operating point."""
        return self.mean_power_w(app.cpu_freq_ghz, app.gpu_freq_ghz, app.cpu_share)

    # -- per-segment power -------------------------------------------------------------

    def segment_power_w(
        self,
        segment: Segment,
        app: ApplicationConfig,
        network: NetworkConfig | None = None,
    ) -> float:
        """Power drawn by the XR device while executing one segment.

        Radio-bound segments (transmission, handoff, cooperation) use the
        radio power from the network configuration when provided; compute
        segments scale the mean computation power by the segment factor.
        """
        if network is not None and segment in RADIO_SEGMENTS:
            if segment is Segment.HANDOFF:
                return network.handoff.power_w
            return network.radio_tx_power_w
        try:
            factor = self.segment_factors[segment.value]
        except KeyError as error:
            raise ModelDomainError(f"no power factor for segment {segment}") from error
        return factor * self.mean_power_for(app)

    # -- base power and thermal conversion ------------------------------------------------

    @property
    def base_power_w(self) -> float:
        """Always-on base power of the device (``E_base`` source)."""
        return self.device.base_power_w

    def base_energy_mj(self, total_latency_ms: float) -> float:
        """Base energy ``E_base`` accumulated over a frame's total latency."""
        if total_latency_ms < 0.0:
            raise ModelDomainError(
                f"total latency must be >= 0 ms, got {total_latency_ms}"
            )
        return self.base_power_w * total_latency_ms

    def thermal_energy_mj(self, compute_energy_mj: float) -> float:
        """Thermal conversion ``E_theta`` of the computation energy."""
        if compute_energy_mj < 0.0:
            raise ModelDomainError(
                f"compute energy must be >= 0 mJ, got {compute_energy_mj}"
            )
        return self.device.thermal_fraction * compute_energy_mj
