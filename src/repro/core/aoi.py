"""Age-of-Information (AoI) and Relevance-of-Information (RoI) models (Section VI).

The XR device requests fresh external information once every
``required_update_period_ms`` (``1 / f_req``).  A sensor generating at
frequency ``f_t`` produces the information that serves the ``n``-th request
at ``T^mn = n / f_t``; the information additionally experiences the wireless
propagation delay ``d_m / c`` and the average buffering time
``T̄ = 1 / (mu - lambda)`` of the M/M/1 input buffer (Eq. 22).  The AoI of
the ``n``-th update is therefore (Eq. 23)::

    t_mn = T^mn + (d_m / c + T̄) - T_Req^n

with ``T_Req^n = (n - 1) / f_req`` (the first request is issued at t = 0).
A sensor slower than the application's requirement accumulates AoI linearly
with the update index — the staircase of Fig. 4(f) — while a sensor at least
as fast as the requirement keeps a constant AoI (Fig. 4(e)).

The average AoI over the ``N`` updates of frame ``q`` is Eq. (24); its
reciprocal is the effectively processed information frequency (Eq. 25) and
the ratio of that frequency to the required frequency is the RoI (Eq. 26).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import units
from repro.config.network import NetworkConfig, SensorConfig
from repro.config.workload import WorkloadConfig
from repro.exceptions import ModelDomainError
from repro.queueing.mm1 import MM1Queue


@dataclass(frozen=True)
class AoITimeline:
    """AoI evolution of one sensor over an emulation horizon (Fig. 4(e)/(f)).

    Attributes:
        sensor_name: the sensor the timeline belongs to.
        generation_frequency_hz: the sensor's information generation frequency.
        times_ms: generation instants ``T^mn`` of the samples serving each
            update cycle (the x-axis of Fig. 4(e)).
        aoi_ms: AoI of each update cycle (Eq. 23).
        roi: RoI of each update cycle (Eq. 26 evaluated per cycle).
    """

    sensor_name: str
    generation_frequency_hz: float
    times_ms: np.ndarray
    aoi_ms: np.ndarray
    roi: np.ndarray

    @property
    def n_updates(self) -> int:
        """Number of update cycles in the timeline."""
        return int(len(self.times_ms))

    @property
    def final_aoi_ms(self) -> float:
        """AoI at the end of the horizon (0.0 for an empty timeline)."""
        return float(self.aoi_ms[-1]) if self.n_updates else 0.0

    @property
    def is_fresh(self) -> bool:
        """True when every update satisfies RoI >= 1 (information stays fresh)."""
        return bool(np.all(self.roi >= 1.0)) if self.n_updates else True


@dataclass(frozen=True)
class AoIResult:
    """Per-sensor AoI/RoI analysis for one frame (Eqs. 24-26).

    Attributes:
        average_aoi_ms: average AoI ``A^mq`` per sensor.
        roi: RoI per sensor.
        processed_frequency_hz: effective processed information frequency per
            sensor (Eq. 25).
        required_frequency_hz: the application's required frequency ``f_req``.
        buffer_time_ms: the M/M/1 average buffering time ``T̄`` used.
    """

    average_aoi_ms: Dict[str, float]
    roi: Dict[str, float]
    processed_frequency_hz: Dict[str, float]
    required_frequency_hz: float
    buffer_time_ms: float

    def fresh_sensors(self) -> List[str]:
        """Sensors whose information can be considered fresh (RoI >= 1)."""
        return sorted(name for name, value in self.roi.items() if value >= 1.0)

    def stale_sensors(self) -> List[str]:
        """Sensors whose information goes stale (RoI < 1)."""
        return sorted(name for name, value in self.roi.items() if value < 1.0)

    def __str__(self) -> str:
        lines = [
            f"required frequency: {self.required_frequency_hz:.1f} Hz, "
            f"buffer time: {self.buffer_time_ms:.3f} ms"
        ]
        for name in sorted(self.average_aoi_ms):
            lines.append(
                f"  {name}: AoI={self.average_aoi_ms[name]:.2f} ms, "
                f"RoI={self.roi[name]:.3f}, "
                f"processed={self.processed_frequency_hz[name]:.1f} Hz"
            )
        return "\n".join(lines)


class AoIModel:
    """Analytical AoI/RoI model for the external sensors of an XR application."""

    def __init__(self, buffer_service_rate_hz: float) -> None:
        if buffer_service_rate_hz <= 0.0:
            raise ModelDomainError(
                f"buffer service rate must be > 0 Hz, got {buffer_service_rate_hz}"
            )
        self.buffer_service_rate_hz = buffer_service_rate_hz

    # -- Eq. (22) -------------------------------------------------------------------

    def average_buffer_time_ms(self, total_arrival_rate_hz: float) -> float:
        """Average time an information packet spends in the buffer, ``T̄``."""
        if total_arrival_rate_hz <= 0.0:
            return 0.0
        queue = MM1Queue.from_rates_hz(total_arrival_rate_hz, self.buffer_service_rate_hz)
        return queue.mean_time_in_system_ms

    # -- Eq. (23) -------------------------------------------------------------------

    def update_aoi_ms(
        self,
        sensor: SensorConfig,
        update_index: int,
        required_update_period_ms: float,
        buffer_time_ms: float,
        propagation_speed_m_per_s: float = units.SPEED_OF_LIGHT_M_PER_S,
    ) -> float:
        """AoI of the ``n``-th update cycle for one sensor (Eq. 23).

        Sensors generating at most as fast as the application requires
        (``1/f_t >= 1/f_req``, the regime of the paper's evaluation) follow
        Eq. (23) verbatim: the ``n``-th request is served by the ``n``-th
        generated sample, so AoI accumulates by ``1/f_t - 1/f_req`` per cycle.
        A sensor generating *faster* than required always has a sample at most
        one generation period old, so its AoI is the age of the freshest
        sample at the request instant plus the delivery overheads (bounded and
        never negative) — Eq. (23) applied literally would keep decreasing
        without bound in that regime.
        """
        if update_index <= 0:
            raise ModelDomainError(f"update index must be >= 1, got {update_index}")
        if required_update_period_ms <= 0.0:
            raise ModelDomainError(
                f"required update period must be > 0 ms, got {required_update_period_ms}"
            )
        generation_period = sensor.generation_period_ms
        request_time = (update_index - 1) * required_update_period_ms
        propagation = units.propagation_delay_ms(
            sensor.distance_m, propagation_speed_m_per_s
        )
        delivery_overhead = propagation + buffer_time_ms
        if generation_period >= required_update_period_ms:
            generation_time = update_index * generation_period
            return generation_time + delivery_overhead - request_time
        freshest_age = request_time % generation_period
        return freshest_age + delivery_overhead

    # -- timelines (Fig. 4(e)/(f)) -----------------------------------------------------

    def timeline(
        self,
        sensor: SensorConfig,
        required_update_period_ms: float,
        horizon_ms: float,
        total_arrival_rate_hz: Optional[float] = None,
        propagation_speed_m_per_s: float = units.SPEED_OF_LIGHT_M_PER_S,
    ) -> AoITimeline:
        """AoI/RoI evolution of one sensor over an emulation horizon."""
        if horizon_ms <= 0.0:
            raise ModelDomainError(f"horizon must be > 0 ms, got {horizon_ms}")
        arrival_rate = (
            total_arrival_rate_hz
            if total_arrival_rate_hz is not None
            else sensor.effective_arrival_rate_hz
        )
        buffer_time = self.average_buffer_time_ms(arrival_rate)
        required_frequency_hz = 1e3 / required_update_period_ms

        n_updates = int(np.floor(horizon_ms / sensor.generation_period_ms))
        times: List[float] = []
        aois: List[float] = []
        rois: List[float] = []
        for index in range(1, n_updates + 1):
            aoi = self.update_aoi_ms(
                sensor,
                index,
                required_update_period_ms,
                buffer_time,
                propagation_speed_m_per_s,
            )
            times.append(index * sensor.generation_period_ms)
            aois.append(aoi)
            processed_hz = 1e3 / aoi if aoi > 0.0 else float("inf")
            rois.append(processed_hz / required_frequency_hz)
        return AoITimeline(
            sensor_name=sensor.name,
            generation_frequency_hz=sensor.generation_frequency_hz,
            times_ms=np.array(times, dtype=float),
            aoi_ms=np.array(aois, dtype=float),
            roi=np.array(rois, dtype=float),
        )

    def timelines_for_workload(self, workload: WorkloadConfig) -> List[AoITimeline]:
        """Timelines for every sensor of an AoI emulation workload (Fig. 4(e))."""
        model = AoIModel(workload.buffer_service_rate_hz)
        sensors = [
            SensorConfig(
                name=f"sensor-{frequency:.0f}hz",
                generation_frequency_hz=frequency,
                distance_m=distance,
            )
            for frequency, distance in zip(
                workload.sensor_frequencies_hz, workload.sensor_distances_m
            )
        ]
        total_rate = sum(sensor.effective_arrival_rate_hz for sensor in sensors)
        return [
            model.timeline(
                sensor,
                workload.required_update_period_ms,
                workload.horizon_ms,
                total_arrival_rate_hz=total_rate,
            )
            for sensor in sensors
        ]

    # -- Eqs. (24)-(26) -----------------------------------------------------------------

    def analyze_frame(
        self,
        network: NetworkConfig,
        updates_per_frame: int,
        frame_latency_ms: float,
    ) -> AoIResult:
        """Per-sensor average AoI and RoI for one frame.

        Args:
            network: network configuration holding the sensor population.
            updates_per_frame: number of information updates ``N`` the
                application requires during the frame.
            frame_latency_ms: total processing latency of the frame
                (``L_tot``), which sets the required update period
                ``L_tot / N`` and hence ``f_req = N / L_tot``.
        """
        if updates_per_frame <= 0:
            raise ModelDomainError(
                f"updates per frame must be >= 1, got {updates_per_frame}"
            )
        if frame_latency_ms <= 0.0:
            raise ModelDomainError(
                f"frame latency must be > 0 ms, got {frame_latency_ms}"
            )
        required_period_ms = frame_latency_ms / updates_per_frame
        required_frequency_hz = 1e3 / required_period_ms
        total_rate = network.total_sensor_arrival_rate_hz
        buffer_time = self.average_buffer_time_ms(total_rate)

        average_aoi: Dict[str, float] = {}
        roi: Dict[str, float] = {}
        processed: Dict[str, float] = {}
        for sensor in network.sensors:
            aois = [
                self.update_aoi_ms(
                    sensor,
                    index,
                    required_period_ms,
                    buffer_time,
                    network.propagation_speed_m_per_s,
                )
                for index in range(1, updates_per_frame + 1)
            ]
            mean_aoi = float(np.mean(aois))
            average_aoi[sensor.name] = mean_aoi
            processed_hz = 1e3 / mean_aoi if mean_aoi > 0.0 else float("inf")
            processed[sensor.name] = processed_hz
            roi[sensor.name] = processed_hz / required_frequency_hz
        return AoIResult(
            average_aoi_ms=average_aoi,
            roi=roi,
            processed_frequency_hz=processed,
            required_frequency_hz=required_frequency_hz,
            buffer_time_ms=buffer_time,
        )
