"""Computation-resource availability model (Eq. 3) and the client/edge relation.

The XR application requests processing-unit allocations from the device OS;
the resulting effective compute resource ``c_client`` is modelled by the
blended quadratic regression of Eq. (3) over the CPU/GPU clocks and the
CPU utilisation share.  The edge server's allocated compute ``c_epsilon``
follows the measured proportionality ``c_epsilon = 11.76 c_client``
(Section IV-B), optionally overridden by an
:class:`~repro.config.device.EdgeServerSpec`'s own scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.application import ApplicationConfig
from repro.config.device import EdgeServerSpec
from repro.core.coefficients import CoefficientSet
from repro.exceptions import ModelDomainError


@dataclass(frozen=True)
class ComputeResourceModel:
    """Evaluates allocated compute resources for client and edge devices.

    Attributes:
        coefficients: the regression coefficient set in use.
        floor: lower clamp applied to the evaluated client compute.  The
            paper's published Eq. (3) coefficients can dip to very small (or,
            for some GPU clocks, negative) values outside the fitted domain;
            clamping keeps downstream latency finite while
            :attr:`clamp_is_error` is False.  Setting ``clamp_is_error=True``
            turns an out-of-domain evaluation into a
            :class:`~repro.exceptions.ModelDomainError` instead.
        clamp_is_error: raise instead of clamping when the evaluation falls
            below the floor.
    """

    coefficients: CoefficientSet
    floor: float = 0.5
    clamp_is_error: bool = False

    def __post_init__(self) -> None:
        if self.floor <= 0.0:
            raise ModelDomainError(f"compute floor must be > 0, got {self.floor}")

    # -- client ------------------------------------------------------------------

    def client_compute(
        self, cpu_freq_ghz: float, gpu_freq_ghz: float, cpu_share: float
    ) -> float:
        """Allocated client compute ``c_client`` (Eq. 3)."""
        value = self.coefficients.resource.evaluate(cpu_freq_ghz, gpu_freq_ghz, cpu_share)
        if value < self.floor:
            if self.clamp_is_error:
                raise ModelDomainError(
                    f"compute resource evaluated to {value:.3f} below the floor "
                    f"{self.floor}; operating point (cpu={cpu_freq_ghz} GHz, "
                    f"gpu={gpu_freq_ghz} GHz, share={cpu_share}) is outside the model domain"
                )
            return self.floor
        return value

    def client_compute_for(self, app: ApplicationConfig) -> float:
        """Client compute for an application configuration's operating point."""
        return self.client_compute(app.cpu_freq_ghz, app.gpu_freq_ghz, app.cpu_share)

    # -- edge --------------------------------------------------------------------

    def edge_compute(
        self, client_compute: float, edge: Optional[EdgeServerSpec] = None
    ) -> float:
        """Allocated edge compute ``c_epsilon`` for a given client compute.

        Uses the edge server's own ``compute_scale_vs_client`` when a spec is
        provided, otherwise the coefficient set's global scale (11.76 for the
        paper's measurements).
        """
        if client_compute <= 0.0:
            raise ModelDomainError(
                f"client compute must be > 0, got {client_compute}"
            )
        scale = (
            edge.compute_scale_vs_client
            if edge is not None
            else self.coefficients.edge_compute_scale
        )
        return scale * client_compute

    def edge_compute_for(
        self, app: ApplicationConfig, edge: Optional[EdgeServerSpec] = None
    ) -> float:
        """Edge compute for an application configuration's operating point."""
        return self.edge_compute(self.client_compute_for(app), edge=edge)
