"""End-to-end energy consumption analysis model (Section V, Eqs. 19-21).

The energy of each pipeline segment is the integral of the segment's power
draw over its latency (Eq. 20); with the per-segment mean powers of the
power model this reduces to ``power x latency`` per segment.  On top of the
segment energies the model adds the thermal conversion term ``E_theta``
(a fraction of the computation energy) and the base energy ``E_base``
(always-on background power over the whole frame latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config.application import ApplicationConfig
from repro.config.network import NetworkConfig
from repro.core.latency import XRLatencyModel
from repro.core.power import PowerModel
from repro.core.results import EnergyBreakdown, LatencyBreakdown
from repro.core.segments import COMPUTE_SEGMENTS, Segment


@dataclass
class XREnergyModel:
    """Analytical per-frame energy model of the XR pipeline.

    Attributes:
        latency_model: the latency model supplying per-segment latencies.
        power_model: the power model supplying per-segment power draws.
    """

    latency_model: XRLatencyModel
    power_model: PowerModel

    # -- per-segment energy -------------------------------------------------------

    def segment_energy_mj(
        self,
        segment: Segment,
        latency_ms: float,
        app: ApplicationConfig,
        network: NetworkConfig,
    ) -> float:
        """Energy (mJ) of one segment given its latency (the Eq. 20 integrand)."""
        power_w = self.power_model.segment_power_w(segment, app, network)
        return power_w * latency_ms

    # -- end-to-end ----------------------------------------------------------------

    def from_latency_breakdown(
        self,
        breakdown: LatencyBreakdown,
        app: ApplicationConfig,
        network: NetworkConfig,
    ) -> EnergyBreakdown:
        """Energy breakdown corresponding to an existing latency breakdown.

        The remote-inference latency is spent waiting for the edge server, so
        the XR device only draws its (low) remote-inference power factor
        during it; the edge server's own energy is not billed to the device,
        matching the paper's device-centric energy model.
        """
        per_segment: Dict[Segment, float] = {}
        for segment, latency_ms in breakdown.per_segment_ms.items():
            per_segment[segment] = self.segment_energy_mj(
                segment, latency_ms, app, network
            )

        compute_energy = sum(
            energy
            for segment, energy in per_segment.items()
            if segment in breakdown.included_segments and segment in COMPUTE_SEGMENTS
        )
        thermal = self.power_model.thermal_energy_mj(compute_energy)
        base = self.power_model.base_energy_mj(breakdown.total_ms)
        return EnergyBreakdown(
            per_segment_mj=per_segment,
            included_segments=breakdown.included_segments,
            thermal_mj=thermal,
            base_mj=base,
            mode=breakdown.mode,
            mean_power_w=self.power_model.mean_power_for(app),
        )

    def end_to_end(
        self, app: ApplicationConfig, network: Optional[NetworkConfig] = None
    ) -> EnergyBreakdown:
        """Evaluate the full per-frame energy breakdown (Eq. 19)."""
        if network is None:
            network = NetworkConfig()
        latency = self.latency_model.end_to_end(app, network)
        return self.from_latency_breakdown(latency, app, network)
