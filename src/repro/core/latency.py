"""End-to-end latency analysis model (Section IV, Eqs. 1-18).

:class:`XRLatencyModel` evaluates the latency of every segment of the
object-detection XR pipeline for one frame and assembles the end-to-end
latency of Eq. (1).  The model is purely analytical: it consumes the device
and edge specifications, the application configuration and the network
configuration, and never simulates anything — the simulated testbed in
:mod:`repro.simulation` provides the ground truth this model is validated
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import units
from repro.cnn.model import CNNModel
from repro.cnn.zoo import get_cnn
from repro.config.application import ApplicationConfig, ExecutionMode
from repro.config.device import DeviceSpec, EdgeServerSpec
from repro.config.network import NetworkConfig
from repro.core.coefficients import CoefficientSet
from repro.core.resources import ComputeResourceModel
from repro.core.results import LatencyBreakdown
from repro.core.segments import (
    COMMON_SEGMENTS,
    LOCAL_ONLY_SEGMENTS,
    REMOTE_ONLY_SEGMENTS,
    Segment,
)
from repro.exceptions import ConfigurationError, ModelDomainError
from repro.network.handoff import HandoffModel
from repro.network.wifi import WifiLink
from repro.sensors.buffer import InputBuffer
from repro.sensors.sensor import ExternalSensor

#: Data size of an inference result (bounding boxes + labels) handed to the
#: renderer, in MB.  Used for the result-transfer term of Eq. (8).
INFERENCE_RESULT_SIZE_MB: float = 0.05

#: Valid values of the CNN-complexity placement mode (see DESIGN.md).
COMPLEXITY_MODES = ("paper", "proportional")


@dataclass
class XRLatencyModel:
    """Analytical per-frame latency model of the XR pipeline.

    Attributes:
        device: XR client device specification.
        edge: edge server specification used by the remote-inference path
            (may be None for purely local analyses).
        coefficients: regression coefficient set.
        complexity_mode: how CNN complexity enters the inference latency.
            ``"paper"`` follows Eq. (11)/(13) verbatim (complexity in the
            denominator); ``"proportional"`` multiplies by the complexity
            instead (see DESIGN.md for the rationale).
    """

    device: DeviceSpec
    edge: Optional[EdgeServerSpec] = None
    coefficients: CoefficientSet = field(default_factory=CoefficientSet.paper)
    complexity_mode: str = "paper"

    def __post_init__(self) -> None:
        if self.complexity_mode not in COMPLEXITY_MODES:
            raise ConfigurationError(
                f"complexity_mode must be one of {COMPLEXITY_MODES}, "
                f"got {self.complexity_mode!r}"
            )
        self.resources = ComputeResourceModel(self.coefficients)

    # ------------------------------------------------------------------ helpers --

    def client_compute(self, app: ApplicationConfig) -> float:
        """Allocated client compute ``c_client`` (Eq. 3)."""
        return self.resources.client_compute_for(app)

    def edge_compute(self, app: ApplicationConfig) -> float:
        """Allocated edge compute ``c_epsilon``."""
        return self.resources.edge_compute_for(app, edge=self.edge)

    def _client_memory_ms(self, data_size_mb: float) -> float:
        return units.memory_access_latency_ms(
            data_size_mb, self.device.memory_bandwidth_gb_s
        )

    def _edge_memory_ms(self, data_size_mb: float) -> float:
        if self.edge is None:
            raise ModelDomainError(
                "remote inference requires an edge server specification"
            )
        return units.memory_access_latency_ms(data_size_mb, self.edge.memory_bandwidth_gb_s)

    def _local_cnn(self, app: ApplicationConfig) -> CNNModel:
        return get_cnn(app.inference.local_cnn)

    def _remote_cnn(self, app: ApplicationConfig) -> CNNModel:
        return get_cnn(app.inference.remote_cnn)

    def converted_frame_side_px(self, app: ApplicationConfig) -> float:
        """Converted frame side ``s_f2``: explicit config or the local CNN input size."""
        if app.converted_frame_side_px is not None:
            return app.converted_frame_side_px
        return self._local_cnn(app).input_side_px

    def _inference_compute_ms(
        self, task_size_px: float, compute: float, complexity: float
    ) -> float:
        """Inference compute term, honouring the configured complexity mode."""
        if compute <= 0.0 or complexity <= 0.0:
            raise ModelDomainError(
                f"compute ({compute}) and complexity ({complexity}) must be > 0"
            )
        if self.complexity_mode == "paper":
            return task_size_px / (compute * complexity)
        return task_size_px * complexity / compute

    # --------------------------------------------------------------- segments ----

    def frame_generation_ms(self, app: ApplicationConfig) -> float:
        """Frame generation latency ``L_fg`` (Eq. 2)."""
        compute = self.client_compute(app)
        return (
            app.frame_period_ms
            + app.frame_side_px / compute
            + self._client_memory_ms(app.raw_frame_size_mb)
        )

    def volumetric_ms(self, app: ApplicationConfig) -> float:
        """Volumetric data generation latency ``L_vol`` (Eq. 4)."""
        compute = self.client_compute(app)
        return app.virtual_scene_side_px / compute + self._client_memory_ms(
            app.virtual_scene_data_mb
        )

    def external_information_ms(
        self, app: ApplicationConfig, network: NetworkConfig
    ) -> float:
        """External sensor information latency ``L_ext`` (Eqs. 5-6).

        The per-sensor latency of ``N`` updates accumulates sequentially;
        sensors deliver in parallel, so the slowest sensor dominates (the
        ``max`` of Eq. 5).
        """
        if not network.sensors or app.sensor_updates_per_frame == 0:
            return 0.0
        totals = []
        for config in network.sensors:
            sensor = ExternalSensor(
                config=config,
                propagation_speed_m_per_s=network.propagation_speed_m_per_s,
            )
            totals.append(sensor.total_latency_ms(app.sensor_updates_per_frame))
        return max(totals)

    def conversion_ms(self, app: ApplicationConfig) -> float:
        """Frame conversion (YUV->RGB, scale, crop) latency ``L_fc`` (Eq. 9)."""
        compute = self.client_compute(app)
        return app.frame_side_px / compute + self._client_memory_ms(app.raw_frame_size_mb)

    def encoding_ms(self, app: ApplicationConfig) -> float:
        """Frame encoding latency ``L_en`` (Eq. 10)."""
        compute = self.client_compute(app)
        numerator = self.coefficients.encoding.numerator(
            i_frame_interval=app.encoder.i_frame_interval,
            b_frame_count=app.encoder.b_frame_count,
            bitrate_mbps=app.encoder.bitrate_mbps,
            frame_side_px=app.frame_side_px,
            frame_rate_fps=app.frame_rate_fps,
            quantization=app.encoder.quantization,
        )
        return numerator / compute + self._client_memory_ms(app.raw_frame_size_mb)

    def local_inference_ms(self, app: ApplicationConfig) -> float:
        """Local inference latency ``L_loc`` (Eq. 11)."""
        share = app.inference.omega_client
        if share == 0.0:
            return 0.0
        cnn = self._local_cnn(app)
        complexity = self.coefficients.cnn_complexity.complexity(cnn)
        compute = self.client_compute(app)
        converted_side = self.converted_frame_side_px(app)
        converted_size_mb = app.converted_frame_size_mb(converted_side)
        return share * (
            self._inference_compute_ms(converted_side, compute, complexity)
            + self._client_memory_ms(converted_size_mb)
        )

    def decoding_ms(self, app: ApplicationConfig) -> float:
        """Edge-side decoding latency ``L_dec`` (Eq. 14)."""
        compute = self.client_compute(app)
        encoding_compute_ms = (
            self.coefficients.encoding.numerator(
                i_frame_interval=app.encoder.i_frame_interval,
                b_frame_count=app.encoder.b_frame_count,
                bitrate_mbps=app.encoder.bitrate_mbps,
                frame_side_px=app.frame_side_px,
                frame_rate_fps=app.frame_rate_fps,
                quantization=app.encoder.quantization,
            )
            / compute
        )
        edge_compute = self.edge_compute(app)
        return (
            encoding_compute_ms
            * self.coefficients.decode_discount
            * compute
            / edge_compute
        )

    def remote_inference_ms(self, app: ApplicationConfig) -> float:
        """Remote inference latency ``L_rem`` (Eqs. 13 and 15).

        With several edge servers the task executes in parallel and the
        slowest share dominates (Eq. 15).  All edge servers are assumed to
        share the configured edge specification.
        """
        shares = app.inference.edge_shares
        if not shares:
            return 0.0
        if self.edge is None:
            raise ModelDomainError(
                "remote inference requires an edge server specification"
            )
        cnn = self._remote_cnn(app)
        complexity = self.coefficients.cnn_complexity.complexity(cnn)
        edge_compute = self.edge_compute(app)
        decode = self.decoding_ms(app)
        encoded_size_mb = app.encoded_frame_size_mb
        per_share = []
        for share in shares:
            if share == 0.0:
                per_share.append(0.0)
                continue
            per_share.append(
                share
                * (
                    self._inference_compute_ms(app.frame_side_px, edge_compute, complexity)
                    + self._edge_memory_ms(encoded_size_mb)
                    + decode
                )
            )
        return max(per_share)

    def transmission_ms(self, app: ApplicationConfig, network: NetworkConfig) -> float:
        """Wireless transmission latency ``L_tr`` (Eq. 16)."""
        link = WifiLink(config=network)
        return link.transmission_latency_ms(app.encoded_frame_size_mb)

    def handoff_ms(self, app: ApplicationConfig, network: NetworkConfig) -> float:
        """Average per-frame handoff latency ``L_HO`` (Eq. 17)."""
        model = HandoffModel(network.handoff)
        return model.mean_handoff_latency_ms(app.frame_period_ms)

    def buffering_ms(self, app: ApplicationConfig, network: NetworkConfig) -> float:
        """Input-buffer delay ``t_buff`` (Eq. 7), via the M/M/1 model."""
        buffer = InputBuffer(app.buffer_service_rate_hz)
        return buffer.analytical_delays(app, network).total_ms

    def result_transfer_ms(
        self, app: ApplicationConfig, network: NetworkConfig, local: bool
    ) -> float:
        """Latency of moving the inference result to the renderer (Eq. 8 terms)."""
        if local:
            return self._client_memory_ms(INFERENCE_RESULT_SIZE_MB)
        link = WifiLink(config=network)
        return link.transmission_latency_ms(INFERENCE_RESULT_SIZE_MB)

    def rendering_ms(self, app: ApplicationConfig, network: NetworkConfig) -> float:
        """Frame rendering latency ``L_ren`` (Eq. 8)."""
        compute = self.client_compute(app)
        local = app.inference.mode is ExecutionMode.LOCAL
        return (
            app.frame_side_px / compute
            + self._client_memory_ms(app.raw_frame_size_mb)
            + self.buffering_ms(app, network)
            + self.result_transfer_ms(app, network, local=local)
        )

    def cooperation_ms(self, app: ApplicationConfig, network: NetworkConfig) -> float:
        """XR cooperation latency ``L_coop`` (Eq. 18)."""
        if not app.cooperation.enabled:
            return 0.0
        link = WifiLink(config=network)
        serialization = units.transmission_latency_ms(
            app.cooperation.data_size_mb, link.throughput_mbps()
        )
        propagation = network.propagation_delay_ms(app.cooperation.distance_m)
        return serialization + propagation

    # ------------------------------------------------------------- end-to-end ----

    def end_to_end(
        self, app: ApplicationConfig, network: Optional[NetworkConfig] = None
    ) -> LatencyBreakdown:
        """Evaluate the full per-frame latency breakdown (Eq. 1)."""
        if network is None:
            network = NetworkConfig()
        mode = app.inference.mode
        local = mode is ExecutionMode.LOCAL
        uses_local_path = local or (
            mode is ExecutionMode.SPLIT and app.inference.omega_client > 0.0
        )
        uses_remote_path = not local

        per_segment: Dict[Segment, float] = {
            Segment.FRAME_GENERATION: self.frame_generation_ms(app),
            Segment.VOLUMETRIC: self.volumetric_ms(app),
            Segment.EXTERNAL: self.external_information_ms(app, network),
            Segment.RENDERING: self.rendering_ms(app, network),
        }
        if uses_local_path:
            per_segment[Segment.CONVERSION] = self.conversion_ms(app)
            per_segment[Segment.LOCAL_INFERENCE] = self.local_inference_ms(app)
        if uses_remote_path:
            per_segment[Segment.ENCODING] = self.encoding_ms(app)
            per_segment[Segment.REMOTE_INFERENCE] = self.remote_inference_ms(app)
            per_segment[Segment.TRANSMISSION] = self.transmission_ms(app, network)
            per_segment[Segment.HANDOFF] = self.handoff_ms(app, network)
        if app.cooperation.enabled:
            per_segment[Segment.COOPERATION] = self.cooperation_ms(app, network)

        included = set(COMMON_SEGMENTS)
        if uses_local_path:
            included |= LOCAL_ONLY_SEGMENTS
        if uses_remote_path:
            included |= REMOTE_ONLY_SEGMENTS
        if app.cooperation.enabled and app.cooperation.include_in_totals:
            included.add(Segment.COOPERATION)
        included &= set(per_segment)

        return LatencyBreakdown(
            per_segment_ms=per_segment,
            included_segments=frozenset(included),
            mode=mode,
            client_compute=self.client_compute(app),
            edge_compute=self.edge_compute(app) if uses_remote_path and self.edge else None,
        )
