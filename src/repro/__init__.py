"""repro — performance analysis modeling framework for XR applications.

A faithful, laptop-scale reproduction of *"A Performance Analysis Modeling
Framework for Extended Reality Applications in Edge-Assisted Wireless
Networks"* (Mallik, Xie, Han — ICDCS 2024).  The package provides:

* the analytical latency / energy / Age-of-Information models of the paper
  (:mod:`repro.core`),
* every substrate those models depend on — device catalog, CNN zoo, queueing
  theory, wireless network, sensors, synthetic measurement campaign
  (:mod:`repro.devices`, :mod:`repro.cnn`, :mod:`repro.queueing`,
  :mod:`repro.network`, :mod:`repro.sensors`, :mod:`repro.measurement`),
* the FACT and LEAF baseline models the paper compares against
  (:mod:`repro.baselines`),
* a discrete-event simulated testbed that substitutes the paper's physical
  testbed and produces the ground truth the models are validated against
  (:mod:`repro.simulation`),
* an evaluation harness that regenerates every table and figure of the
  paper's evaluation section (:mod:`repro.evaluation`),
* a fleet layer that scales the per-user models to ``N`` users sharing one
  Wi-Fi channel and a pool of edge GPUs — population generators, channel
  contention, multi-tenant edge queueing, admission control, and
  SLO-constrained capacity planning (:mod:`repro.fleet`),
* a vectorized batch evaluation engine that computes whole operating-point
  grids (frame size x clocks x bitrate x throughput x device x placement)
  in NumPy array expressions, bit-compatible with the scalar models and
  orders of magnitude faster (:mod:`repro.batch`),
* a trace-driven adaptation layer that replays time-varying channel/load
  conditions (mobility handoffs, fading, fleet contention, synthetic
  drift/step/burst scenarios) and re-picks the operating point each control
  epoch with pluggable controllers (:mod:`repro.adaptive`),
* a closed-loop co-simulation that composes the three: every fleet user
  runs an adaptive controller while the shared-channel contention and edge
  queueing are recomputed from the controllers' own placement decisions
  each epoch — per-epoch best-response iteration to a fixed point, with
  equivalence-class batching and optional process-pool sharding
  (:mod:`repro.cosim`),
* a declarative experiment layer: versioned TOML/JSON scenario specs
  covering every subsystem, a runner that turns a suite into an
  attributable JSON run manifest, and regression gates that compare
  manifests and bench payloads against committed baselines — the single
  entry point CI uses to detect correctness and performance drift
  (:mod:`repro.experiments`),
* a figure/analytics layer over the persisted artifacts: a stdlib-only
  row-oriented :class:`~repro.figures.Table` with manifest / telemetry /
  bench flatteners, a :class:`~repro.figures.RunHistory` index turning a
  directory of manifests into per-metric time series, a registry of
  figure builders that re-render every committed ``results/`` artifact
  byte-identically (plus CSV and Vega-Lite sidecars), and structural
  telemetry-snapshot diffing (:mod:`repro.figures`),
* an invariant-checking lint engine behind ``repro lint``: stdlib-only
  AST rules for determinism (REP001), ``to_dict``/``from_dict``
  round-trip completeness (REP002), pickle-safe process-pool tasks
  (REP003), dotted telemetry naming (REP004), scenario-spec validity
  (REP005) and trustworthy ``__all__`` listings (REP006), with inline
  ``# repro: noqa[RULE]`` suppressions and a committed findings baseline
  (:mod:`repro.analysis`).

Quickstart::

    from repro import XRPerformanceModel

    model = XRPerformanceModel(device="XR1", edge="EDGE-AGX")
    report = model.analyze()
    print(report.summary())
"""

from repro._version import __version__
from repro.config import (
    ApplicationConfig,
    CooperationConfig,
    DeviceSpec,
    EdgeServerSpec,
    EncoderConfig,
    ExecutionMode,
    HandoffConfig,
    InferenceConfig,
    NetworkConfig,
    SensorConfig,
    SweepConfig,
    WorkloadConfig,
)
from repro.core import (
    AoIModel,
    AoIResult,
    CoefficientSet,
    EnergyBreakdown,
    LatencyBreakdown,
    OffloadingPlanner,
    PerformanceReport,
    Segment,
    SessionAnalyzer,
    SessionReport,
    XREnergyModel,
    XRLatencyModel,
    XRPerformanceModel,
    calibrated_coefficients,
)
from repro.batch import (
    BatchResult,
    OperatingPoint,
    ParameterGrid,
    evaluate_grid,
    evaluate_points,
)
from repro.adaptive import (
    AdaptationReport,
    AdaptiveRuntime,
    ConditionTrace,
    EpochConditions,
    EwmaPredictive,
    GreedyBatchSweep,
    HysteresisThreshold,
    StaticBaseline,
    make_trace,
)
from repro.devices import XRDevice, EdgeServer, get_device, get_edge_server
from repro.cnn import CNNModel, get_cnn, list_cnns
from repro.fleet import (
    CapacityPlan,
    EdgePlan,
    FleetAnalyzer,
    FleetPopulation,
    FleetReport,
    UserProfile,
    plan_capacity,
    plan_edges,
)
from repro.cosim import (
    CoSimulation,
    CosimReport,
    ShardedCosimReport,
    run_cosim,
)
from repro.experiments import (
    ExperimentRunner,
    RegressionReport,
    RunManifest,
    ScenarioSpec,
    ScenarioSuite,
    bundled_suite,
    compare_manifests,
    load_suite,
)
from repro.analysis import (
    Diagnostic,
    LintEngine,
    LintReport,
    run_lint,
)
from repro.figures import (
    FigureInputs,
    RunHistory,
    SnapshotDiff,
    Table,
    build_all,
    build_figure,
    check_figures,
    diff_snapshots,
)
from repro.exec import (
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro import figures, telemetry

__all__ = [
    "AdaptationReport",
    "AdaptiveRuntime",
    "AoIModel",
    "AoIResult",
    "ApplicationConfig",
    "BatchResult",
    "ConditionTrace",
    "EpochConditions",
    "EwmaPredictive",
    "GreedyBatchSweep",
    "HysteresisThreshold",
    "StaticBaseline",
    "CNNModel",
    "CapacityPlan",
    "CoSimulation",
    "CoefficientSet",
    "CooperationConfig",
    "CosimReport",
    "DeviceSpec",
    "Diagnostic",
    "EdgePlan",
    "EdgeServer",
    "EdgeServerSpec",
    "EncoderConfig",
    "EnergyBreakdown",
    "ExecutionBackend",
    "ExecutionMode",
    "ExperimentRunner",
    "FigureInputs",
    "FleetAnalyzer",
    "FleetPopulation",
    "FleetReport",
    "HandoffConfig",
    "InferenceConfig",
    "LatencyBreakdown",
    "LintEngine",
    "LintReport",
    "NetworkConfig",
    "OffloadingPlanner",
    "OperatingPoint",
    "ParameterGrid",
    "PerformanceReport",
    "ProcessPoolBackend",
    "RegressionReport",
    "RetryPolicy",
    "RunHistory",
    "RunManifest",
    "ScenarioSpec",
    "ScenarioSuite",
    "Segment",
    "SensorConfig",
    "SerialBackend",
    "SessionAnalyzer",
    "SessionReport",
    "ShardedCosimReport",
    "SnapshotDiff",
    "SweepConfig",
    "Table",
    "ThreadPoolBackend",
    "UserProfile",
    "WorkloadConfig",
    "XRDevice",
    "XREnergyModel",
    "XRLatencyModel",
    "XRPerformanceModel",
    "build_all",
    "build_figure",
    "bundled_suite",
    "calibrated_coefficients",
    "check_figures",
    "compare_manifests",
    "diff_snapshots",
    "evaluate_grid",
    "evaluate_points",
    "figures",
    "get_cnn",
    "get_device",
    "get_edge_server",
    "list_cnns",
    "load_suite",
    "make_trace",
    "plan_capacity",
    "plan_edges",
    "resolve_backend",
    "run_cosim",
    "run_lint",
    "telemetry",
    "__version__",
]
