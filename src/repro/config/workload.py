"""Workload and sweep definitions used by the evaluation harness.

The paper's evaluation sweeps frame size (300-700 pixel^2) and CPU clock
frequency (1, 2, 3 GHz) for the latency/energy figures, and sensor
information-generation frequency for the AoI figures.  These sweeps are
described declaratively here so the figure generators, the example scripts
and the benchmarks all consume the exact same definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.config.validation import (
    ensure_non_negative,
    ensure_positive,
    ensure_sorted_positive,
)


@dataclass(frozen=True)
class SweepConfig:
    """A two-dimensional (frame size x CPU frequency) evaluation sweep.

    Attributes:
        frame_sides_px: swept frame sizes (the paper uses 300..700 in steps
            of 100).
        cpu_freqs_ghz: swept CPU clock frequencies (the paper uses 1, 2, 3).
        repetitions: number of simulated ground-truth runs averaged per point.
        frames_per_run: number of frames simulated per ground-truth run.
        seed: base RNG seed for the simulated testbed.
    """

    frame_sides_px: Tuple[float, ...] = (300.0, 400.0, 500.0, 600.0, 700.0)
    cpu_freqs_ghz: Tuple[float, ...] = (1.0, 2.0, 3.0)
    repetitions: int = 3
    frames_per_run: int = 20
    seed: int = 2024

    def __post_init__(self) -> None:
        ensure_sorted_positive("frame_sides_px", self.frame_sides_px)
        ensure_sorted_positive("cpu_freqs_ghz", self.cpu_freqs_ghz)
        ensure_positive("repetitions", self.repetitions)
        ensure_positive("frames_per_run", self.frames_per_run)
        ensure_non_negative("seed", self.seed)

    def points(self) -> Iterator[Tuple[float, float]]:
        """Iterate over all (cpu_freq_ghz, frame_side_px) sweep points."""
        for cpu_freq in self.cpu_freqs_ghz:
            for frame_side in self.frame_sides_px:
                yield cpu_freq, frame_side

    @property
    def n_points(self) -> int:
        """Total number of sweep points."""
        return len(self.frame_sides_px) * len(self.cpu_freqs_ghz)

    @classmethod
    def paper_default(cls) -> "SweepConfig":
        """The sweep used by Figs. 4(a)-(d) and 5(a)-(b)."""
        return cls()

    @classmethod
    def quick(cls) -> "SweepConfig":
        """A reduced sweep for fast tests and smoke runs."""
        return cls(
            frame_sides_px=(300.0, 500.0, 700.0),
            cpu_freqs_ghz=(1.0, 3.0),
            repetitions=1,
            frames_per_run=5,
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """AoI emulation workload (Fig. 4(e)/(f)).

    Attributes:
        sensor_frequencies_hz: information-generation frequencies of the
            emulated sensors (the paper uses 200, 100 and 66.67 Hz).
        required_update_period_ms: the XR application's requested update
            period (1 update every 5 ms in the paper).
        horizon_ms: emulation horizon.
        buffer_service_rate_hz: service rate of the input buffer.
        sensor_distances_m: sensor-to-device distances.
        seed: RNG seed for the emulated arrival process.
    """

    sensor_frequencies_hz: Tuple[float, ...] = (200.0, 100.0, 66.67)
    required_update_period_ms: float = 5.0
    horizon_ms: float = 90.0
    buffer_service_rate_hz: float = 2000.0
    sensor_distances_m: Tuple[float, ...] = (10.0, 15.0, 20.0)
    seed: int = 7

    def __post_init__(self) -> None:
        ensure_sorted_positive(
            "sensor_frequencies_hz", tuple(sorted(self.sensor_frequencies_hz))
        )
        ensure_positive("required_update_period_ms", self.required_update_period_ms)
        ensure_positive("horizon_ms", self.horizon_ms)
        ensure_positive("buffer_service_rate_hz", self.buffer_service_rate_hz)
        ensure_non_negative("seed", self.seed)
        if len(self.sensor_distances_m) != len(self.sensor_frequencies_hz):
            raise_distances = (
                "sensor_distances_m must have the same length as "
                f"sensor_frequencies_hz ({len(self.sensor_frequencies_hz)}), "
                f"got {len(self.sensor_distances_m)}"
            )
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(raise_distances)
        for index, distance in enumerate(self.sensor_distances_m):
            ensure_non_negative(f"sensor_distances_m[{index}]", distance)

    @property
    def required_update_frequency_hz(self) -> float:
        """The XR application's required information frequency ``f_req``."""
        return 1e3 / self.required_update_period_ms

    @classmethod
    def paper_default(cls) -> "WorkloadConfig":
        """The AoI emulation workload used by Fig. 4(e)/(f)."""
        return cls()
