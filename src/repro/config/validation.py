"""Small validation helpers shared by every configuration dataclass.

The helpers raise :class:`repro.exceptions.ConfigurationError` with a message
naming the offending field, so errors surfaced to users always point at the
exact configuration value that is wrong.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError


def ensure_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise."""
    if not value > 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, otherwise raise."""
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_fraction(name: str, value: float) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value!r}")
    return value


def ensure_in_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if it lies in the closed interval [low, high]."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be within [{low}, {high}], got {value!r}"
        )
    return value


def ensure_choice(name: str, value: str, choices: Iterable[str]) -> str:
    """Return ``value`` if it is one of ``choices``."""
    allowed = tuple(choices)
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {allowed}, got {value!r}"
        )
    return value


def ensure_non_empty(name: str, value: Sequence) -> Sequence:
    """Return ``value`` if it contains at least one element."""
    if len(value) == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return value


def ensure_sorted_positive(name: str, values: Sequence[float]) -> Sequence[float]:
    """Return ``values`` if non-empty, strictly positive and non-decreasing."""
    ensure_non_empty(name, values)
    previous = None
    for item in values:
        ensure_positive(f"{name} entries", item)
        if previous is not None and item < previous:
            raise ConfigurationError(f"{name} must be non-decreasing, got {values!r}")
        previous = item
    return values
