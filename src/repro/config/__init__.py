"""Configuration layer for the XR performance analysis framework.

Every user-facing entry point of the framework is parameterised through the
frozen dataclasses defined in this package:

* :class:`~repro.config.device.DeviceSpec` /
  :class:`~repro.config.device.EdgeServerSpec` — hardware descriptions,
* :class:`~repro.config.application.ApplicationConfig` (plus
  :class:`~repro.config.application.EncoderConfig`,
  :class:`~repro.config.application.InferenceConfig`,
  :class:`~repro.config.application.CooperationConfig`) — the XR application
  pipeline parameters of Section III,
* :class:`~repro.config.network.NetworkConfig` (plus
  :class:`~repro.config.network.HandoffConfig`,
  :class:`~repro.config.network.SensorConfig`) — the wireless/edge topology,
* :class:`~repro.config.workload.SweepConfig` /
  :class:`~repro.config.workload.WorkloadConfig` — evaluation sweeps used by
  the benchmark harness.

All configs validate themselves at construction time and raise
:class:`repro.exceptions.ConfigurationError` on inconsistent input.
"""

from repro.config.application import (
    ApplicationConfig,
    CooperationConfig,
    EncoderConfig,
    ExecutionMode,
    InferenceConfig,
)
from repro.config.device import DeviceSpec, EdgeServerSpec
from repro.config.network import HandoffConfig, NetworkConfig, SensorConfig
from repro.config.workload import SweepConfig, WorkloadConfig

__all__ = [
    "ApplicationConfig",
    "CooperationConfig",
    "DeviceSpec",
    "EdgeServerSpec",
    "EncoderConfig",
    "ExecutionMode",
    "HandoffConfig",
    "InferenceConfig",
    "NetworkConfig",
    "SensorConfig",
    "SweepConfig",
    "WorkloadConfig",
]
