"""Wireless network, handoff and external-sensor topology configuration.

The paper's system model (Fig. 1/Fig. 2) connects the XR device to

* one or more edge servers over Wi-Fi (transmission latency, Eq. 16),
* M external sensors/devices that push control and environmental
  information (Eqs. 5-6 and the AoI model of Section VI),
* neighbouring coverage zones it may hand off to while moving (Eq. 17).

The configuration below captures that topology.  Path loss, shadowing and
fading are disabled by default — matching the paper's baseline assumption —
but can be enabled for the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro import units
from repro.config.validation import (
    ensure_fraction,
    ensure_non_negative,
    ensure_positive,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SensorConfig:
    """One external sensor or device feeding the XR input buffer.

    Attributes:
        name: identifier (e.g. ``"roadside-unit-1"``).
        generation_frequency_hz: information generation frequency ``f_t^m``.
        distance_m: distance to the XR device ``d_m``.
        packet_size_kb: control-information packet size; the paper treats the
            packets as negligibly small for throughput purposes but the
            simulator still moves concrete bytes.
        arrival_rate_hz: arrival rate ``lambda_m`` of the sensor's packets at
            the input buffer.  ``None`` means "equal to the generation
            frequency" (every generated packet arrives).
    """

    name: str
    generation_frequency_hz: float
    distance_m: float = 10.0
    packet_size_kb: float = 1.0
    arrival_rate_hz: Optional[float] = None

    def __post_init__(self) -> None:
        ensure_positive("generation_frequency_hz", self.generation_frequency_hz)
        ensure_non_negative("distance_m", self.distance_m)
        ensure_positive("packet_size_kb", self.packet_size_kb)
        if self.arrival_rate_hz is not None:
            ensure_positive("arrival_rate_hz", self.arrival_rate_hz)

    @property
    def effective_arrival_rate_hz(self) -> float:
        """Arrival rate at the buffer, defaulting to the generation rate."""
        if self.arrival_rate_hz is not None:
            return self.arrival_rate_hz
        return self.generation_frequency_hz

    @property
    def generation_period_ms(self) -> float:
        """Information generation period ``1/f_t^m`` in ms."""
        return units.hz_to_period_ms(self.generation_frequency_hz)


@dataclass(frozen=True)
class HandoffConfig:
    """Mobility-driven handoff parameters (Eq. 17).

    The average per-frame handoff latency is ``l_HO * P(HO)``; either provide
    the probability directly (``handoff_probability``) or let the random-walk
    mobility model of :mod:`repro.network.mobility` derive it from the cell
    geometry and device speed.

    Attributes:
        enabled: whether handoffs contribute to the end-to-end metrics.
        handoff_latency_ms: latency of one (vertical) handoff ``l_HO``.
        handoff_probability: per-frame handoff probability ``P(HO)``;
            ``None`` defers to the mobility model.
        vertical_fraction: fraction of handoffs that are vertical (across
            access technologies) rather than horizontal.
        cell_radius_m: coverage-zone radius used by the random-walk model.
        device_speed_m_per_s: XR device speed used by the random-walk model.
        power_w: radio power draw during a handoff.
    """

    enabled: bool = False
    handoff_latency_ms: float = 150.0
    handoff_probability: Optional[float] = None
    vertical_fraction: float = 0.3
    cell_radius_m: float = 50.0
    device_speed_m_per_s: float = 1.4
    power_w: float = 1.2

    def __post_init__(self) -> None:
        ensure_non_negative("handoff_latency_ms", self.handoff_latency_ms)
        if self.handoff_probability is not None:
            ensure_fraction("handoff_probability", self.handoff_probability)
        ensure_fraction("vertical_fraction", self.vertical_fraction)
        ensure_positive("cell_radius_m", self.cell_radius_m)
        ensure_non_negative("device_speed_m_per_s", self.device_speed_m_per_s)
        ensure_non_negative("power_w", self.power_w)


@dataclass(frozen=True)
class NetworkConfig:
    """Edge-assisted wireless network topology around one XR device.

    Attributes:
        throughput_mbps: available wireless throughput ``r_w`` between the XR
            device and the edge tier.
        edge_distance_m: distance between the XR device and the (closest)
            edge server ``d_epsilon``.
        propagation_speed_m_per_s: signal propagation speed ``c``.
        sensors: external sensors/devices connected to the XR device.
        handoff: mobility/handoff configuration.
        enable_path_loss: include log-distance path loss in the link budget
            (off by default to match the paper).
        path_loss_exponent: log-distance path-loss exponent when enabled.
        shadowing_sigma_db: log-normal shadowing standard deviation when
            path loss is enabled (0 disables shadowing).
        carrier_frequency_ghz: Wi-Fi carrier (2.4 or 5 GHz for the paper's
            LinkSys dual-band router).
        bandwidth_mhz: channel bandwidth used when deriving throughput from
            the link budget instead of taking ``throughput_mbps`` as given.
        tx_power_dbm: transmit power for the link-budget path.
        noise_figure_db: receiver noise figure for the link-budget path.
        radio_tx_power_w: device radio power draw while transmitting,
            used by the energy model for transmission segments.
        radio_idle_power_w: device radio power draw while idle/receiving.
    """

    throughput_mbps: float = 200.0
    edge_distance_m: float = 30.0
    propagation_speed_m_per_s: float = units.SPEED_OF_LIGHT_M_PER_S
    sensors: Tuple[SensorConfig, ...] = field(
        default_factory=lambda: (
            SensorConfig(name="sensor-1", generation_frequency_hz=200.0, distance_m=10.0),
            SensorConfig(name="sensor-2", generation_frequency_hz=100.0, distance_m=15.0),
            SensorConfig(name="sensor-3", generation_frequency_hz=66.67, distance_m=20.0),
        )
    )
    handoff: HandoffConfig = field(default_factory=HandoffConfig)
    enable_path_loss: bool = False
    path_loss_exponent: float = 3.0
    shadowing_sigma_db: float = 0.0
    carrier_frequency_ghz: float = 5.0
    bandwidth_mhz: float = 80.0
    tx_power_dbm: float = 20.0
    noise_figure_db: float = 7.0
    radio_tx_power_w: float = 1.1
    radio_idle_power_w: float = 0.25

    def __post_init__(self) -> None:
        ensure_positive("throughput_mbps", self.throughput_mbps)
        ensure_non_negative("edge_distance_m", self.edge_distance_m)
        ensure_positive("propagation_speed_m_per_s", self.propagation_speed_m_per_s)
        ensure_positive("path_loss_exponent", self.path_loss_exponent)
        ensure_non_negative("shadowing_sigma_db", self.shadowing_sigma_db)
        ensure_positive("carrier_frequency_ghz", self.carrier_frequency_ghz)
        ensure_positive("bandwidth_mhz", self.bandwidth_mhz)
        ensure_non_negative("noise_figure_db", self.noise_figure_db)
        ensure_non_negative("radio_tx_power_w", self.radio_tx_power_w)
        ensure_non_negative("radio_idle_power_w", self.radio_idle_power_w)
        names = [sensor.name for sensor in self.sensors]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"sensor names must be unique, got {names!r}")

    # -- derived quantities -------------------------------------------------

    @property
    def n_sensors(self) -> int:
        """Number of external sensors/devices (``M``)."""
        return len(self.sensors)

    @property
    def total_sensor_arrival_rate_hz(self) -> float:
        """Aggregate packet arrival rate into the input buffer from sensors."""
        return sum(sensor.effective_arrival_rate_hz for sensor in self.sensors)

    def propagation_delay_ms(self, distance_m: float) -> float:
        """Propagation delay for an arbitrary distance with this config's speed."""
        return units.propagation_delay_ms(distance_m, self.propagation_speed_m_per_s)

    @property
    def edge_propagation_delay_ms(self) -> float:
        """Propagation delay between the XR device and the edge server."""
        return self.propagation_delay_ms(self.edge_distance_m)

    def with_throughput(self, throughput_mbps: float) -> "NetworkConfig":
        """Return a copy with a different wireless throughput."""
        return replace(self, throughput_mbps=throughput_mbps)

    def with_sensors(self, sensors: Tuple[SensorConfig, ...]) -> "NetworkConfig":
        """Return a copy with a different sensor population."""
        return replace(self, sensors=sensors)
