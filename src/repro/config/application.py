"""XR application pipeline configuration (Section III of the paper).

The object-detection pipeline of Fig. 1 is parameterised by

* display/capture parameters (frame rate, frame size, virtual scene size),
* H.264 encoder parameters (I/B frame intervals, bitrate, quantisation),
* the inference placement decision (local, remote, or split across the
  client and one or more edge servers) and the CNN models involved,
* the input-buffer service rate used by the M/M/1 buffering model,
* the optional XR-cooperation segment.

Every piece is a frozen dataclass so configurations can be hashed, compared
and swept over safely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro import units
from repro.config.validation import (
    ensure_fraction,
    ensure_non_negative,
    ensure_positive,
)
from repro.exceptions import ConfigurationError


class ExecutionMode(enum.Enum):
    """Where the inference task of the pipeline executes."""

    LOCAL = "local"
    REMOTE = "remote"
    SPLIT = "split"

    @property
    def omega_loc(self) -> int:
        """The paper's binary local-inference indicator ``omega_loc``.

        ``SPLIT`` counts as remote for the purpose of the indicator because
        the remote path (encoding, transmission, remote inference) is active.
        """
        return 1 if self is ExecutionMode.LOCAL else 0


@dataclass(frozen=True)
class EncoderConfig:
    """H.264 encoder parameters used in the frame-encoding regression (Eq. 10).

    Attributes:
        i_frame_interval: number of frames between I-frames (``n_i``).
        b_frame_count: number of consecutive B-frames (``n_b``).
        bitrate_mbps: target encoder bitrate in Mbps (``n_bitrate``).
        quantization: quantisation parameter (``n_quant``), H.264 range 0-51.
        compression_ratio: ratio of raw YUV frame size to encoded frame size;
            used to derive the encoded data size ``delta_f3`` transmitted to
            the edge server.
    """

    i_frame_interval: int = 30
    b_frame_count: int = 2
    bitrate_mbps: float = 10.0
    quantization: int = 28
    compression_ratio: float = 20.0

    def __post_init__(self) -> None:
        ensure_positive("i_frame_interval", self.i_frame_interval)
        ensure_non_negative("b_frame_count", self.b_frame_count)
        ensure_positive("bitrate_mbps", self.bitrate_mbps)
        ensure_non_negative("quantization", self.quantization)
        if self.quantization > 51:
            raise ConfigurationError(
                f"quantization must be within the H.264 range [0, 51], got {self.quantization}"
            )
        ensure_positive("compression_ratio", self.compression_ratio)

    def encoded_frame_size_mb(self, frame_side_px: float) -> float:
        """Encoded frame data size ``delta_f3`` (MB) for a given frame side."""
        return units.yuv_frame_size_mb(frame_side_px) / self.compression_ratio


@dataclass(frozen=True)
class InferenceConfig:
    """Placement and CNN selection for the inference segment.

    Attributes:
        mode: local, remote, or split execution.
        local_cnn: name of the lightweight on-device CNN (Table II entry).
        remote_cnn: name of the large edge CNN (Table II entry).
        omega_client: fraction of the inference task kept on the client
            (``omega_client``), in [0, 1].
        edge_shares: per-edge-server task fractions ``omega_edge^e``; together
            with ``omega_client`` these must sum to ``total_task``.
        total_task: total inference workload per frame (``omega_task``),
            normally 1.0.
    """

    mode: ExecutionMode = ExecutionMode.LOCAL
    local_cnn: str = "MobileNetv2_300 Float"
    remote_cnn: str = "YOLOv3"
    omega_client: float = 1.0
    edge_shares: Tuple[float, ...] = ()
    total_task: float = 1.0

    def __post_init__(self) -> None:
        ensure_fraction("omega_client", self.omega_client)
        ensure_positive("total_task", self.total_task)
        for index, share in enumerate(self.edge_shares):
            ensure_fraction(f"edge_shares[{index}]", share)
        if self.mode is ExecutionMode.LOCAL:
            if self.edge_shares:
                raise ConfigurationError(
                    "LOCAL execution must not define edge_shares"
                )
        if self.mode is ExecutionMode.REMOTE and not self.edge_shares:
            # Remote with a single implicit edge server carrying the whole task.
            object.__setattr__(self, "edge_shares", (self.total_task,))
            object.__setattr__(self, "omega_client", 0.0)
        if self.mode is not ExecutionMode.LOCAL:
            total = self.omega_client + sum(self.edge_shares)
            if abs(total - self.total_task) > 1e-9:
                raise ConfigurationError(
                    "omega_client + sum(edge_shares) must equal total_task "
                    f"({self.total_task}), got {total}"
                )

    @property
    def n_edge_servers(self) -> int:
        """Number of edge servers participating in the inference task."""
        return len(self.edge_shares)


@dataclass(frozen=True)
class CooperationConfig:
    """XR-cooperation segment parameters (Eq. 18).

    Attributes:
        enabled: whether the application exchanges data with cooperative XR
            devices at all.
        data_size_mb: payload per frame sent to the cooperative device
            (``delta_f4``).
        distance_m: distance between the two communicating devices
            (``d_coop``).
        include_in_totals: whether the cooperation latency/energy is added to
            the end-to-end figures; the paper notes cooperation usually runs
            in parallel with rendering and is therefore excluded by default.
    """

    enabled: bool = False
    data_size_mb: float = 0.25
    distance_m: float = 20.0
    include_in_totals: bool = False

    def __post_init__(self) -> None:
        ensure_non_negative("data_size_mb", self.data_size_mb)
        ensure_non_negative("distance_m", self.distance_m)
        if self.include_in_totals and not self.enabled:
            raise ConfigurationError(
                "cooperation cannot be included in totals while disabled"
            )


@dataclass(frozen=True)
class ApplicationConfig:
    """Full parameterisation of the object-detection XR pipeline.

    Attributes:
        frame_rate_fps: camera capture rate ``n_fps``.
        frame_side_px: captured frame side length; the paper's "frame size
            (pixel^2)" sweep variable ``s_f1``.
        converted_frame_side_px: frame side after conversion/scaling for the
            local CNN input tensor (``s_f2``); ``None`` means "same as the
            local CNN's nominal input size" and is resolved by the framework.
        virtual_scene_side_px: virtual scene size driving volumetric data
            generation (``s_vol``).
        point_cloud_mb: 3D point cloud payload produced per frame
            (``delta_vol``).
        sensor_updates_per_frame: number of external-information updates the
            application requires per frame (``N``).
        buffer_service_rate_hz: service rate ``mu`` of the input buffer
            (items per second) for the M/M/1 buffering model.
        cpu_share: fraction of the computation mapped to the CPU
            (``omega_c``); the GPU receives ``1 - omega_c``.
        cpu_freq_ghz: operating CPU clock used for the resource model
            (``f_c``).
        gpu_freq_ghz: operating GPU clock (``f_g``).
        encoder: H.264 encoder parameters.
        inference: inference placement configuration.
        cooperation: XR-cooperation configuration.
    """

    frame_rate_fps: float = 30.0
    frame_side_px: float = 500.0
    converted_frame_side_px: Optional[float] = None
    virtual_scene_side_px: float = 600.0
    point_cloud_mb: float = 1.5
    sensor_updates_per_frame: int = 3
    buffer_service_rate_hz: float = 600.0
    cpu_share: float = 0.8
    cpu_freq_ghz: float = 2.0
    gpu_freq_ghz: float = 0.8
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    cooperation: CooperationConfig = field(default_factory=CooperationConfig)

    def __post_init__(self) -> None:
        ensure_positive("frame_rate_fps", self.frame_rate_fps)
        ensure_positive("frame_side_px", self.frame_side_px)
        if self.converted_frame_side_px is not None:
            ensure_positive("converted_frame_side_px", self.converted_frame_side_px)
        ensure_positive("virtual_scene_side_px", self.virtual_scene_side_px)
        ensure_non_negative("point_cloud_mb", self.point_cloud_mb)
        ensure_non_negative("sensor_updates_per_frame", self.sensor_updates_per_frame)
        ensure_positive("buffer_service_rate_hz", self.buffer_service_rate_hz)
        ensure_fraction("cpu_share", self.cpu_share)
        ensure_positive("cpu_freq_ghz", self.cpu_freq_ghz)
        ensure_positive("gpu_freq_ghz", self.gpu_freq_ghz)

    # -- derived quantities -------------------------------------------------

    @property
    def frame_period_ms(self) -> float:
        """Inter-frame period ``1/n_fps`` in milliseconds."""
        return units.hz_to_period_ms(self.frame_rate_fps)

    @property
    def raw_frame_size_mb(self) -> float:
        """Raw YUV frame data size ``delta_f1`` (MB)."""
        return units.yuv_frame_size_mb(self.frame_side_px)

    @property
    def virtual_scene_data_mb(self) -> float:
        """Volumetric payload ``delta_vol`` (MB): point cloud plus scene raster."""
        return self.point_cloud_mb + units.rgb_frame_size_mb(self.virtual_scene_side_px)

    @property
    def encoded_frame_size_mb(self) -> float:
        """Encoded frame data size ``delta_f3`` (MB)."""
        return self.encoder.encoded_frame_size_mb(self.frame_side_px)

    def converted_frame_size_mb(self, converted_side_px: float) -> float:
        """Converted RGB frame data size ``delta_f2`` (MB) for a given side."""
        return units.rgb_frame_size_mb(converted_side_px)

    # -- convenience constructors / transformers ----------------------------

    @classmethod
    def object_detection_default(cls) -> "ApplicationConfig":
        """The default object-detection pipeline used in the paper's evaluation."""
        return cls()

    def with_frame_side(self, frame_side_px: float) -> "ApplicationConfig":
        """Return a copy with a different captured frame size."""
        return replace(self, frame_side_px=frame_side_px)

    def with_cpu_freq(self, cpu_freq_ghz: float) -> "ApplicationConfig":
        """Return a copy with a different CPU clock frequency."""
        return replace(self, cpu_freq_ghz=cpu_freq_ghz)

    def with_mode(self, mode: ExecutionMode) -> "ApplicationConfig":
        """Return a copy running inference in the given execution mode."""
        if mode is ExecutionMode.LOCAL:
            inference = replace(
                self.inference, mode=mode, omega_client=1.0, edge_shares=()
            )
        elif mode is ExecutionMode.REMOTE:
            inference = replace(
                self.inference, mode=mode, omega_client=0.0, edge_shares=(self.inference.total_task,)
            )
        else:
            inference = replace(self.inference, mode=mode)
        return replace(self, inference=inference)
