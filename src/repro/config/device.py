"""Hardware descriptions of XR devices and edge servers.

These dataclasses capture the information in Table I of the paper (the seven
XR devices and the two Nvidia Jetson boards used as external sensor host and
edge server), plus the handful of extra parameters the analytical and
simulation layers need that the table reports indirectly (memory bandwidth,
base power, thermal conversion fraction).

Concrete catalog entries live in :mod:`repro.devices.catalog`; this module
only defines the shape and validation of a specification.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.config.validation import (
    ensure_fraction,
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
)


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware specification of an XR (client) device.

    Attributes:
        name: short identifier used throughout the framework (e.g. ``"XR1"``).
        model: commercial model name (e.g. ``"Huawei Mate 40 Pro"``).
        soc: system-on-chip name.
        process_nm: SoC manufacturing process in nanometres.
        cpu_cores: number of CPU cores.
        cpu_max_freq_ghz: maximum CPU clock frequency in GHz.
        gpu_name: GPU marketing name.
        gpu_max_freq_ghz: maximum GPU clock frequency in GHz.
        ram_gb: installed RAM in GB.
        memory_type: LPDDR generation string (``"LPDDR5"`` etc.).
        memory_bandwidth_gb_s: peak memory bandwidth in GB/s (``m_client``).
        os_name: operating system string.
        wifi_standards: supported IEEE 802.11 amendments (e.g. ``("a", "ax")``).
        release: human-readable release date.
        base_power_w: always-on background power draw (``E_base`` source).
        thermal_fraction: fraction of consumed energy converted to heat
            (``E_theta`` source), in [0, 1].
        idle_display_power_w: display/idle contribution included in base power
            accounting; kept separate so battery models can subtract it.
        battery_capacity_mah: nominal battery capacity (0 for tethered devices).
        battery_voltage_v: nominal battery voltage.
        role: ``"xr"`` for head-mounted/handheld clients, ``"external"`` for
            external sensor hosts, ``"edge"`` for edge servers described with
            the same fields.
    """

    name: str
    model: str
    soc: str
    process_nm: int
    cpu_cores: int
    cpu_max_freq_ghz: float
    gpu_name: str
    gpu_max_freq_ghz: float
    ram_gb: float
    memory_type: str
    memory_bandwidth_gb_s: float
    os_name: str
    wifi_standards: Tuple[str, ...]
    release: str
    base_power_w: float = 0.45
    thermal_fraction: float = 0.06
    idle_display_power_w: float = 0.30
    battery_capacity_mah: float = 4000.0
    battery_voltage_v: float = 3.85
    role: str = "xr"

    def __post_init__(self) -> None:
        ensure_positive("cpu_cores", self.cpu_cores)
        ensure_positive("cpu_max_freq_ghz", self.cpu_max_freq_ghz)
        ensure_positive("gpu_max_freq_ghz", self.gpu_max_freq_ghz)
        ensure_positive("ram_gb", self.ram_gb)
        ensure_positive("memory_bandwidth_gb_s", self.memory_bandwidth_gb_s)
        ensure_non_negative("base_power_w", self.base_power_w)
        ensure_fraction("thermal_fraction", self.thermal_fraction)
        ensure_non_negative("idle_display_power_w", self.idle_display_power_w)
        ensure_non_negative("battery_capacity_mah", self.battery_capacity_mah)
        ensure_non_negative("battery_voltage_v", self.battery_voltage_v)
        ensure_in_range("process_nm", self.process_nm, 1, 50)

    # -- derived quantities -------------------------------------------------

    @property
    def battery_capacity_mj(self) -> float:
        """Usable battery energy in millijoules (0 for tethered devices)."""
        # mAh * V = mWh; 1 mWh = 3600 mJ
        return self.battery_capacity_mah * self.battery_voltage_v * 3600.0

    @property
    def supports_5ghz_wifi(self) -> bool:
        """True when the device supports a 5 GHz capable 802.11 amendment."""
        return any(std in {"a", "ac", "ax"} for std in self.wifi_standards)

    def with_memory_bandwidth(self, bandwidth_gb_s: float) -> "DeviceSpec":
        """Return a copy of the spec with a different memory bandwidth."""
        return replace(self, memory_bandwidth_gb_s=bandwidth_gb_s)

    def describe(self) -> str:
        """One-line human readable description used by the report generator."""
        return (
            f"{self.name}: {self.model} ({self.soc}, {self.cpu_cores}-core up to "
            f"{self.cpu_max_freq_ghz:.2f} GHz, {self.gpu_name}, {self.ram_gb:.0f} GB "
            f"{self.memory_type}, {self.os_name})"
        )


@dataclass(frozen=True)
class EdgeServerSpec:
    """Static hardware specification of an edge server.

    The paper uses Nvidia Jetson boards (TX2 and AGX Xavier) as the edge tier.
    The analytical model mostly consumes the edge server through its allocated
    compute resource ``c_epsilon`` and memory bandwidth ``m_epsilon``; the
    remaining fields feed the simulated testbed and the device catalog table.

    Attributes:
        name: short identifier (e.g. ``"EDGE-AGX"``).
        model: board name.
        cpu_description: CPU complex description from Table I.
        cpu_cores: number of CPU cores.
        cpu_max_freq_ghz: maximum CPU clock in GHz.
        gpu_name: GPU description.
        gpu_cuda_cores: number of CUDA cores.
        ram_gb: installed RAM in GB.
        memory_type: memory generation.
        memory_bandwidth_gb_s: peak memory bandwidth (``m_epsilon``).
        os_name: operating system.
        release: release date string.
        compute_scale_vs_client: ratio of allocated edge compute to client
            compute; the paper derives ``c_epsilon = 11.76 * c_client`` from
            its measurements (Section IV-B, Eq. 14 discussion).
        idle_power_w: idle power of the board (edge energy is not billed to
            the XR device but the simulator tracks it).
        max_power_w: power ceiling of the board's performance mode.
    """

    name: str
    model: str
    cpu_description: str
    cpu_cores: int
    cpu_max_freq_ghz: float
    gpu_name: str
    gpu_cuda_cores: int
    ram_gb: float
    memory_type: str
    memory_bandwidth_gb_s: float
    os_name: str
    release: str
    compute_scale_vs_client: float = 11.76
    idle_power_w: float = 5.0
    max_power_w: float = 30.0

    def __post_init__(self) -> None:
        ensure_positive("cpu_cores", self.cpu_cores)
        ensure_positive("cpu_max_freq_ghz", self.cpu_max_freq_ghz)
        ensure_positive("gpu_cuda_cores", self.gpu_cuda_cores)
        ensure_positive("ram_gb", self.ram_gb)
        ensure_positive("memory_bandwidth_gb_s", self.memory_bandwidth_gb_s)
        ensure_positive("compute_scale_vs_client", self.compute_scale_vs_client)
        ensure_non_negative("idle_power_w", self.idle_power_w)
        ensure_positive("max_power_w", self.max_power_w)

    def describe(self) -> str:
        """One-line human readable description used by the report generator."""
        return (
            f"{self.name}: {self.model} ({self.cpu_description}, {self.gpu_name} with "
            f"{self.gpu_cuda_cores} CUDA cores, {self.ram_gb:.0f} GB {self.memory_type})"
        )
